"""Ablation: scenario-tree branching factor vs SRRP quality and cost.

The deterministic equivalent grows exponentially in the branching factor;
the paper keeps SRRP horizons short (6 h) for exactly this reason.  This
bench sweeps the branching factor at a fixed 6-slot horizon, timing the
solve and recording expected cost: richer trees must never *increase* the
modeled expected cost (finer distributions weakly improve the recourse).
"""

import numpy as np
import pytest

from repro.core import SRRPInstance, bid_adjusted_stage_distributions, build_tree, on_demand_schedule, solve_srrp
from repro.market import ec2_catalog, paper_window, reference_dataset
from repro.stats import EmpiricalDistribution

COSTS = {}


@pytest.mark.parametrize("branching", [1, 2, 3, 4])
def test_bench_tree_branching(benchmark, branching):
    vm = ec2_catalog()["c1.medium"]
    history = paper_window(reference_dataset()["c1.medium"]).estimation
    base = EmpiricalDistribution(history)
    bid = float(history.mean())
    dists = bid_adjusted_stage_distributions(base, np.full(5, bid), vm.on_demand_price, branching)
    tree = build_tree(bid, dists)
    rng = np.random.default_rng(3)
    demand = rng.uniform(0.2, 0.6, 6)
    inst = SRRPInstance(demand=demand, costs=on_demand_schedule(vm, 6), tree=tree)
    plan = benchmark.pedantic(lambda: solve_srrp(inst), rounds=1, iterations=1)
    print(f"\nbranching={branching} nodes={tree.num_nodes} expected_cost={plan.expected_cost:.4f}")
    COSTS[branching] = plan.expected_cost
    assert plan.status.has_solution
    # structural sanity: node count is the geometric series in the *actual*
    # branching factor (coarsening may merge the requested states into fewer)
    actual = len(tree.root.children)
    assert 1 <= actual <= branching
    assert tree.num_nodes == sum(actual**k for k in range(6))
