"""Ablation: scenario-tree construction — balanced branching (paper §IV-C)
vs sampled + forward-selection-reduced fan trees.

Both policies see the same bids and realized prices; the bench compares
realized cost and wall time.  Neither construction dominates in theory
(the balanced tree models multistage recourse, the fan tree models richer
marginals two-stage); the bench documents the trade on the reference
market.
"""

import numpy as np
import pytest

from repro.core import NormalDemand, ReducedScenarioPolicy, StochasticPolicy, simulate_policy
from repro.core.rolling import OraclePolicy
from repro.market import MeanBids, ec2_catalog, paper_window, reference_dataset
from repro.stats import EmpiricalDistribution

RESULTS = {}


def _setting():
    trace = reference_dataset()["c1.medium"]
    window = paper_window(trace)
    history = window.estimation
    realized = window.validation
    demand = NormalDemand().sample(24, 77)
    return ec2_catalog()["c1.medium"], history, realized, demand


@pytest.mark.parametrize(
    "kind",
    ["balanced-b3", "reduced-8of64", "oracle"],
)
def test_bench_tree_construction(benchmark, kind):
    vm, history, realized, demand = _setting()
    base = EmpiricalDistribution(history)
    if kind == "balanced-b3":
        policy = StochasticPolicy(MeanBids(), lookahead=6, max_branching=3)
    elif kind == "reduced-8of64":
        policy = ReducedScenarioPolicy(MeanBids(), lookahead=6, n_samples=64, n_keep=8)
    else:
        policy = OraclePolicy(realized)

    res = benchmark.pedantic(
        lambda: simulate_policy(
            policy, realized, demand, vm,
            base_distribution=base, price_history=history,
        ),
        rounds=1,
        iterations=1,
    )
    RESULTS[kind] = res.total_cost
    print(f"\n{kind}: realized cost ${res.total_cost:.3f}, out-of-bid {res.out_of_bid_events}")
    if "oracle" in RESULTS:
        assert all(c >= RESULTS["oracle"] - 1e-9 for c in RESULTS.values())
