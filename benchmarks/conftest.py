"""Shared fixtures for the benchmark harness.

Every ``test_bench_figN.py`` regenerates the corresponding figure of the
paper through :mod:`repro.experiments` and

* times the regeneration with pytest-benchmark (one round — these are
  end-to-end experiment harnesses, not microbenchmarks), and
* asserts the figure's qualitative findings, so a bench run doubles as a
  reproduction check.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment runner once and echo its table."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(lambda: fn(*args, **kwargs), rounds=1, iterations=1)
        print()
        print(result.to_text())
        return result

    return _run
