"""Shared fixtures for the benchmark harness.

Every ``test_bench_figN.py`` regenerates the corresponding figure of the
paper through :mod:`repro.experiments` and

* times the regeneration with pytest-benchmark (one round — these are
  end-to-end experiment harnesses, not microbenchmarks),
* asserts the figure's qualitative findings, so a bench run doubles as a
  reproduction check, and
* writes a machine-readable ``BENCH_<experiment>.json`` next to the
  working directory (override with ``REPRO_BENCH_DIR``): median wall
  time, event-derived work counters (for runners that accept a telemetry
  ``listener``), and the result's manifest digest — the perf-history
  record that used to exist only as human-readable text.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import inspect
import json
import os
import time
from pathlib import Path

import pytest

from repro.solver.telemetry import EventRecorder, jsonable

__all__ = ["write_bench_record"]


def write_bench_record(
    result,
    median_s: float,
    recorder: EventRecorder | None = None,
    out_dir: str | Path | None = None,
) -> Path | None:
    """Write ``BENCH_<experiment>.json`` for one benchmarked experiment.

    Returns the written path, or ``None`` when ``result`` has no
    experiment id (non-experiment benchmarks produce no record).
    """
    name = getattr(result, "experiment", None)
    if not name:
        return None
    counters: dict = {}
    if recorder is not None and len(recorder):
        summary = recorder.summary()
        counters = {
            "events": summary["events"],
            "solves": recorder.kinds().get("solve_start", 0),
            "nodes": summary["nodes"],
            "pruned": summary["pruned"],
            "incumbents": summary["incumbents"],
            "cut_rounds": summary["cut_rounds"],
            "benders_iterations": summary["benders_iterations"],
            "phase_seconds": summary["phase_seconds"],
        }
    payload = jsonable(
        {
            "name": name,
            "median_wall_s": float(median_s),
            "counters": counters,
            "manifest_digest": result.digest() if hasattr(result, "digest") else None,
            "created": time.time(),
        }
    )
    out_dir = Path(out_dir if out_dir is not None else os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")
    return path


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment runner once, echo its table, record JSON."""

    def _run(fn, *args, **kwargs):
        recorder = EventRecorder()
        if "listener" in inspect.signature(fn).parameters:
            kwargs.setdefault("listener", recorder)
        result = benchmark.pedantic(lambda: fn(*args, **kwargs), rounds=1, iterations=1)
        print()
        print(result.to_text())
        stats = getattr(getattr(benchmark, "stats", None), "stats", None)
        median = float(stats.median) if stats is not None else float("nan")
        write_bench_record(result, median, recorder)
        return result

    return _run
