"""Bench: Figure 12(a) — overpay vs ideal cost for the five schemes.

The heaviest experiment (hundreds of rolling MILP solves); bounded here to
two VM classes and a 48 h window so the bench suite stays minutes-scale.
The full three-class, 72 h version is ``fig12a_overpay.run()``'s default.
"""

from repro.experiments import fig12a_overpay


def test_bench_fig12a(run_experiment):
    result = run_experiment(
        fig12a_overpay.run,
        horizon=48,
        classes=("c1.medium", "m1.large"),
    )
    assert result.findings["overpay_all_nonnegative"]
    assert result.findings["on_demand_worst_everywhere"]
    assert result.findings["srrp_beats_drrp_in_most_pairs"]
