"""Ablation: L-shaped (Benders) decomposition vs the extensive form.

The paper cites Benders decomposition as a solution technique for SRRP's
deterministic equivalent.  This bench compares the decomposition against
solving the extensive form directly on two-stage newsvendor-style problems
of growing scenario count, asserting objective agreement.
"""

import numpy as np
import pytest

from repro.solver import solve_compiled
from repro.solver.benders import Scenario, TwoStageProblem, extensive_form, solve_benders


def build_problem(n_scenarios, seed=5):
    rng = np.random.default_rng(seed)
    demands = rng.uniform(3.0, 12.0, n_scenarios)
    probs = rng.dirichlet(np.ones(n_scenarios))
    scenarios = []
    for d, p in zip(demands, probs):
        W = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 1.0]])
        T = np.array([[-1.0], [0.0]])
        h = np.array([0.0, float(d)])
        q = np.array([-1.0, -0.1, 0.0])
        scenarios.append(Scenario(prob=float(p), q=q, W=W, T=T, h=h))
    return TwoStageProblem(
        c=np.array([0.6]),
        lb=np.array([0.0]),
        ub=np.array([100.0]),
        integrality=np.array([0]),
        scenarios=scenarios,
    )


@pytest.mark.parametrize("n_scenarios", [5, 20, 60])
def test_bench_benders(benchmark, n_scenarios):
    problem = build_problem(n_scenarios)
    res = benchmark.pedantic(lambda: solve_benders(problem), rounds=1, iterations=1)
    ext = solve_compiled(extensive_form(problem), backend="scipy", use_presolve=False)
    assert res.objective == pytest.approx(ext.objective, abs=1e-4)


@pytest.mark.parametrize("n_scenarios", [5, 20, 60])
def test_bench_extensive_form(benchmark, n_scenarios):
    problem = build_problem(n_scenarios)
    res = benchmark.pedantic(
        lambda: solve_compiled(extensive_form(problem), backend="scipy", use_presolve=False),
        rounds=1,
        iterations=1,
    )
    assert res.status.has_solution
