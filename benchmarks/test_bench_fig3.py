"""Bench: Figure 3 — spot-price box-whisker outlier analysis."""

from repro.experiments import fig3_outliers


def test_bench_fig3(run_experiment):
    result = run_experiment(fig3_outliers.run)
    assert result.findings["outliers_below_3pct_everywhere"]
    assert result.findings["outliers_increase_with_class_power"]
    assert len(result.rows) == 4
