"""Bench: Figure 6 — seasonal decomposition of the selected series."""

from repro.experiments import fig6_decompose


def test_bench_fig6(run_experiment):
    result = run_experiment(fig6_decompose.run)
    assert result.findings["no_clear_trend"]
    assert result.findings["cyclic_pattern_present"]
