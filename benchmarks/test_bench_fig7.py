"""Bench: Figure 7 — ACF/PACF correlograms."""

from repro.experiments import fig7_correlogram


def test_bench_fig7(run_experiment):
    result = run_experiment(fig7_correlogram.run)
    assert result.findings["some_lags_significant"]
    assert result.findings["correlation_weak_overall"]
    assert len(result.rows) == 30
