"""Bench: Figure 4 — daily spot-price update frequency variation."""

from repro.experiments import fig4_updates


def test_bench_fig4(run_experiment):
    result = run_experiment(fig4_updates.run)
    assert result.findings["sampling_is_irregular"]
    assert result.findings["daily_rate_varies_widely"]
    assert result.series["daily_update_counts"].size > 400
