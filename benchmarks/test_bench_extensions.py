"""Benches for the extension experiments (EVPI/VSS, availability, horizon)."""

from repro.experiments import ext_availability, ext_horizon, ext_risk, ext_value


def test_bench_ext_value(run_experiment):
    result = run_experiment(ext_value.run)
    assert result.findings["chain_ws_le_sp_le_eev"]


def test_bench_ext_availability(run_experiment):
    result = run_experiment(ext_availability.run)
    assert result.findings["availability_bids_ordered"]
    assert result.findings["mean_bid_risks_outages"]


def test_bench_ext_horizon(run_experiment):
    result = run_experiment(ext_horizon.run)
    assert result.findings["longer_horizons_never_cost_more"]
    assert result.findings["day_horizon_captures_most_value"]


def test_bench_ext_risk(run_experiment):
    result = run_experiment(ext_risk.run)
    assert result.findings["cvar_never_increases_with_risk_weight"]
    assert result.findings["expected_cost_never_decreases"]
