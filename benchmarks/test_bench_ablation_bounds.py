"""Ablation: the DRRP lower-bound hierarchy.

    max_mu L(mu)  ~=  LP(natural)  <=  LP(facility-location)  ==  OPT

Times each bound on the same 24 h instance and checks the chain.  The
Lagrangian needs no LP solver at all (two closed-form subproblems per
iteration), the natural LP one HiGHS solve, the facility-location LP a
larger solve that is already integral.
"""

import numpy as np
import pytest

from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp
from repro.core.drrp import build_drrp_model
from repro.core.lagrangian import lagrangian_bound
from repro.core.reformulation import build_facility_location_model
from repro.market import ec2_catalog
from repro.solver.scipy_backend import solve_lp_scipy

BOUNDS = {}


def _instance():
    vm = ec2_catalog()["m1.large"]
    return DRRPInstance(
        demand=NormalDemand().sample(24, 2012),
        costs=on_demand_schedule(vm, 24),
        vm_name=vm.name,
    )


def test_bench_bound_lagrangian(benchmark):
    inst = _instance()
    res = benchmark.pedantic(lambda: lagrangian_bound(inst, iterations=300), rounds=1, iterations=1)
    BOUNDS["lagrangian"] = res.best_bound
    print(f"\nlagrangian bound: {res.best_bound:.4f}")


def test_bench_bound_natural_lp(benchmark):
    inst = _instance()

    def solve_lp():
        model, _ = build_drrp_model(inst)
        compiled = model.compile()
        compiled.integrality[:] = 0
        return solve_lp_scipy(compiled).objective

    BOUNDS["natural-lp"] = benchmark.pedantic(solve_lp, rounds=1, iterations=1)
    print(f"\nnatural LP bound: {BOUNDS['natural-lp']:.4f}")


def test_bench_bound_facility_location_lp(benchmark):
    inst = _instance()

    def solve_fl():
        model, _x, _chi = build_facility_location_model(inst)
        compiled = model.compile()
        compiled.integrality[:] = 0
        return solve_lp_scipy(compiled).objective

    BOUNDS["fl-lp"] = benchmark.pedantic(solve_fl, rounds=1, iterations=1)
    print(f"\nfacility-location LP bound: {BOUNDS['fl-lp']:.4f}")


def test_bench_bound_hierarchy_holds(benchmark):
    inst = _instance()
    opt = benchmark.pedantic(
        lambda: solve_drrp(inst, backend="scipy").total_cost, rounds=1, iterations=1
    )
    BOUNDS["opt"] = opt
    print(f"\nMILP optimum: {opt:.4f}  | chain: {BOUNDS}")
    assert BOUNDS["lagrangian"] <= BOUNDS["natural-lp"] + 1e-5
    assert BOUNDS["natural-lp"] <= BOUNDS["fl-lp"] + 1e-5
    assert BOUNDS["fl-lp"] == pytest.approx(opt, abs=1e-4)
