"""Bench: Figure 11 — DRRP sensitivity to cost weights and demand mean."""

from repro.experiments import fig11_sensitivity


def test_bench_fig11(run_experiment):
    result = run_experiment(fig11_sensitivity.run)
    assert result.findings["cpu_cost_up_ratio_down"]
    assert result.findings["io_cost_up_ratio_up"]
    assert result.findings["heavy_demand_kills_saving"]
