"""Ablation: solver backends on the DRRP MILP.

DESIGN.md swaps the paper's CPLEX for a solver stack with several engines;
this bench times them on identical 12 h DRRP instances and checks they
agree on the optimum (12 h, not 24: the pure-Python stack's lot-sizing
relaxation still explores thousands of B&B nodes at 24 h — quantifying
that gap is the point of the ablation):

* ``scipy``        — HiGHS branch-and-cut (the default);
* ``bb-scipy``     — our branch-and-bound over HiGHS LP relaxations;
* ``simplex``      — fully from-scratch (pure-Python simplex + B&B);
* ``simplex+cuts`` — the same with Gomory root cuts.
"""

import numpy as np
import pytest

from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp
from repro.market import ec2_catalog


def make_instance(seed=11, horizon=12):
    vm = ec2_catalog()["m1.large"]
    return DRRPInstance(
        demand=NormalDemand().sample(horizon, seed),
        costs=on_demand_schedule(vm, horizon),
        vm_name=vm.name,
    )


REFERENCE = {}


@pytest.mark.parametrize("backend", ["scipy", "bb-scipy", "simplex", "simplex+cuts"])
def test_bench_solver_backend(benchmark, backend):
    inst = make_instance()
    plan = benchmark.pedantic(
        lambda: solve_drrp(inst, backend=backend), rounds=1, iterations=1
    )
    REFERENCE.setdefault("objective", plan.total_cost)
    assert plan.total_cost == pytest.approx(REFERENCE["objective"], abs=1e-5)
    plan.validate(inst)
