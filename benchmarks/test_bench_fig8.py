"""Bench: Figure 8 — day-ahead SARIMA prediction vs the mean predictor."""

from repro.experiments import fig8_prediction


def test_bench_fig8(run_experiment):
    result = run_experiment(fig8_prediction.run)
    assert result.findings["no_substantial_skill_over_mean"]
    assert result.findings["improvement_over_mean_small"]
    assert result.findings["forecasts_hover_near_mean"]
