"""Bench: Figure 12(b) — SRRP cost error vs bid approximation precision."""

from repro.experiments import fig12b_precision


def test_bench_fig12b(run_experiment):
    result = run_experiment(fig12b_precision.run)
    assert result.findings["errors_grow_with_imprecision"]
    assert result.findings["underbidding_hurts_at_least_as_much"]
    assert len(result.rows) == 10
