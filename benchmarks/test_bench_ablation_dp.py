"""Ablation: Wagner–Whitin DP vs the MILP on growing horizons.

DESIGN.md calls out the DP as both a correctness oracle and a fast path
for long deterministic horizons; this bench quantifies the speedup and
re-checks exact agreement at each size.
"""

import pytest

from repro.core import (
    DRRPInstance,
    NormalDemand,
    on_demand_schedule,
    solve_drrp,
    solve_wagner_whitin,
)
from repro.market import ec2_catalog


def make_instance(horizon):
    vm = ec2_catalog()["m1.xlarge"]
    return DRRPInstance(
        demand=NormalDemand().sample(horizon, 99),
        costs=on_demand_schedule(vm, horizon),
        vm_name=vm.name,
    )


@pytest.mark.parametrize("horizon", [24, 72, 168])
def test_bench_wagner_whitin(benchmark, horizon):
    inst = make_instance(horizon)
    plan = benchmark.pedantic(lambda: solve_wagner_whitin(inst), rounds=1, iterations=1)
    milp = solve_drrp(inst, backend="scipy")
    assert plan.total_cost == pytest.approx(milp.total_cost, abs=1e-5)


@pytest.mark.parametrize("horizon", [24, 72, 168])
def test_bench_milp(benchmark, horizon):
    inst = make_instance(horizon)
    plan = benchmark.pedantic(
        lambda: solve_drrp(inst, backend="scipy"), rounds=1, iterations=1
    )
    assert plan.status.has_solution
