"""Bench: Figure 5 — histogram/density vs normal approximation."""

from repro.experiments import fig5_histogram


def test_bench_fig5(run_experiment):
    result = run_experiment(fig5_histogram.run)
    assert result.findings["normality_rejected_shapiro"]
    assert result.findings["normality_rejected_jarque_bera"]
