"""Bench: Figure 10 — DRRP vs no-planning, and the DRRP cost structure."""

from repro.experiments import fig10_drrp_costs


def test_bench_fig10(run_experiment):
    result = run_experiment(fig10_drrp_costs.run)
    assert result.findings["drrp_always_cheaper"]
    assert result.findings["reduction_grows_with_class_power"]
    assert result.findings["xlarge_reduction_near_half"]
    assert result.findings["io_share_grows_with_class_power"]
