"""How much are forecasts and stochastic models actually worth?

The paper shows empirically (Fig. 12a) that SRRP beats deterministic
planning; this example computes the two textbook quantities behind that
result for an SRRP instance built from the reference market:

* **EVPI** — the expected value of perfect information: what a perfect
  spot-price forecaster would save over the stochastic plan.  This bounds
  what *any* prediction scheme (Fig. 8's SARIMA included) can ever be
  worth — and motivates why the paper bothers with predictability analysis.
* **VSS** — the value of the stochastic solution: what SRRP saves over
  planning at the expected price (the "det-exp-mean" mindset).

It then shows how both react to the out-of-bid risk by sweeping the bid
level: low bids make losing the auction likely, inflating both values.

Run:  python examples/value_of_information.py
"""

import numpy as np

from repro.core import (
    NormalDemand,
    SRRPInstance,
    bid_adjusted_stage_distributions,
    build_tree,
    evaluate_stochastic_value,
    on_demand_schedule,
)
from repro.market import ec2_catalog, paper_window, reference_dataset
from repro.stats import EmpiricalDistribution


def build_instance(vm, history, bid, horizon=6, branching=3, seed=5):
    base = EmpiricalDistribution(history)
    dists = bid_adjusted_stage_distributions(
        base, np.full(horizon - 1, bid), vm.on_demand_price, branching
    )
    tree = build_tree(bid, dists)
    return SRRPInstance(
        demand=NormalDemand().sample(horizon, seed),
        costs=on_demand_schedule(vm, horizon),
        tree=tree,
        vm_name=vm.name,
    )


def main() -> None:
    vm = ec2_catalog()["m1.xlarge"]
    history = paper_window(reference_dataset()["m1.xlarge"]).estimation
    mean_price = float(history.mean())
    print(f"{vm.name}: historical mean spot ${mean_price:.3f}, on-demand ${vm.on_demand_price:.2f}\n")

    print(f"{'bid':>8s} {'P(out-of-bid)':>14s} {'WS':>8s} {'SP':>8s} {'EEV':>8s} {'EVPI':>8s} {'VSS':>8s}")
    base = EmpiricalDistribution(history)
    for factor in (0.95, 1.0, 1.05, 1.15):
        bid = mean_price * factor
        oob = base.prob_above(bid)
        report = evaluate_stochastic_value(build_instance(vm, history, bid))
        print(
            f"${bid:7.3f} {oob:14.2%} {report.wait_and_see:8.4f} "
            f"{report.stochastic:8.4f} {report.expected_value_policy:8.4f} "
            f"{report.evpi:8.4f} {report.vss:8.4f}"
        )

    print(
        "\nReading the table: EVPI > 0 everywhere — perfect forecasts would"
        "\nalways help, which is why the paper studies predictability first."
        "\nSince Fig. 8 shows forecasts are no better than the mean, the only"
        "\nrecoverable slice is VSS: the saving SRRP realizes by planning"
        "\nagainst the price *distribution* instead of its mean, largest when"
        "\nthe out-of-bid probability is substantial."
    )


if __name__ == "__main__":
    main()
