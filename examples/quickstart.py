"""Quickstart: plan a day of cloud rentals for an elastic application.

Walks the library's three core moves in ~60 lines:

1. solve DRRP for a 24 h horizon at on-demand prices and compare against
   the no-planning baseline (the paper's Figure 10 scenario);
2. cross-check the MILP against the Wagner-Whitin dynamic program;
3. solve one SRRP instance over a bid-adjusted scenario tree built from a
   synthetic spot-price history.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    DRRPInstance,
    NormalDemand,
    Planner,
    on_demand_schedule,
    solve_drrp,
    solve_noplan,
    solve_wagner_whitin,
)
from repro.market import ec2_catalog, paper_window, reference_dataset


def main() -> None:
    # -- 1. deterministic planning vs no planning ---------------------------
    planner = Planner("m1.large")
    drrp, noplan = planner.plan_deterministic(horizon=24, seed=7)
    saving = 1.0 - drrp.total_cost / noplan.total_cost
    print("== DRRP vs no-plan (m1.large, 24h, demand ~ N(0.4, 0.2) GB/h) ==")
    print(f"  no-plan daily cost : ${noplan.total_cost:6.2f}")
    print(f"  DRRP daily cost    : ${drrp.total_cost:6.2f}  ({saving:.0%} saved)")
    print(f"  rentals            : {len(drrp.rent_slots)}/24 slots -> {[int(t) for t in drrp.rent_slots]}")
    shares = drrp.cost_shares()
    print(
        "  cost structure     : "
        f"compute {shares['compute']:.0%}, "
        f"I/O+storage {shares['io_storage']:.0%}, "
        f"transfer {shares['transfer']:.0%}"
    )

    # -- 2. the lot-sizing DP agrees with the MILP ---------------------------
    vm = ec2_catalog()["m1.large"]
    inst = DRRPInstance(
        demand=NormalDemand().sample(24, 7),
        costs=on_demand_schedule(vm, 24),
        vm_name=vm.name,
    )
    milp = solve_drrp(inst)
    dp = solve_wagner_whitin(inst)
    print("\n== Wagner-Whitin cross-check ==")
    print(f"  MILP objective     : ${milp.total_cost:.6f}")
    print(f"  DP objective       : ${dp.total_cost:.6f}")
    assert abs(milp.total_cost - dp.total_cost) < 1e-6

    # -- 3. stochastic planning under spot-price uncertainty -----------------
    history = paper_window(reference_dataset()["m1.large"]).estimation
    bids = np.full(6, float(history.mean()))  # the "exp-mean" strategy
    plan = planner.plan_stochastic(history, bids=bids, seed=7)
    print("\n== SRRP over a bid-adjusted scenario tree (6h lookahead) ==")
    print(f"  scenario-tree size : {plan.extra['tree_size']} vertices")
    print(f"  expected cost      : ${plan.expected_cost:.4f}")
    print(f"  here-and-now move  : rent={plan.first_chi}, generate {plan.first_alpha:.2f} GB")


if __name__ == "__main__":
    main()
