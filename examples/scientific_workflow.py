"""Scientific-workflow scenario: a Montage-style mosaic service in the cloud.

The paper's cost parameters come from Berriman et al.'s study of hosting an
astronomical mosaic service (Montage) on EC2 — an ASP serving science data
products to the public.  This example models that workload more concretely
than the quickstart:

* demand is diurnal (researchers query during the day) with a weekly batch
  drop, rather than iid normal;
* the application has a real bottleneck: I/O bandwidth caps how much data
  one instance can generate per hour (the paper's constraint (3));
* planning runs over a full week with a rolling 24 h DRRP horizon, and the
  example shows how initial inventory (ε, eq. 5) chains between days.

Run:  python examples/scientific_workflow.py
"""

import numpy as np

from repro.core import (
    DiurnalDemand,
    DRRPInstance,
    on_demand_schedule,
    solve_drrp,
    solve_noplan,
)
from repro.market import ec2_catalog


def weekly_demand(seed: int = 3) -> np.ndarray:
    """7 days of hourly demand: diurnal queries + a Monday batch release."""
    base = DiurnalDemand(mean=0.45, amplitude=0.25, noise_std=0.05).sample(168, seed)
    batch = np.zeros(168)
    batch[30:36] = 1.2  # Monday 06:00-12:00 data release
    return base + batch


def main() -> None:
    vm = ec2_catalog()["m1.xlarge"]  # mosaics need the big instances
    demand = weekly_demand()
    print(f"weekly demand: {demand.sum():.1f} GB total, peak {demand.max():.2f} GB/h")

    # -- one-shot weekly plan with an I/O bottleneck -------------------------
    # the instance can push at most 1.5 GB of new data per hour
    inst = DRRPInstance(
        demand=demand,
        costs=on_demand_schedule(vm, 168),
        bottleneck_rate=1.0,
        bottleneck_capacity=np.full(168, 1.5),
        vm_name=vm.name,
    )
    plan = solve_drrp(inst)
    base = solve_noplan(inst)
    print("\n== weekly plan (I/O-capped at 1.5 GB/h) ==")
    print(f"  no-plan cost : ${base.total_cost:7.2f}")
    print(f"  DRRP cost    : ${plan.total_cost:7.2f} ({1 - plan.total_cost/base.total_cost:.0%} saved)")
    print(f"  rentals      : {len(plan.rent_slots)}/168 slots")
    print(f"  peak storage : {plan.beta.max():.2f} GB held")
    # the batch drop forces pre-building under the bottleneck:
    pre_batch = plan.alpha[24:30].sum()
    print(f"  pre-built before the Monday release: {pre_batch:.2f} GB")

    # -- day-by-day re-planning with inventory carry-over --------------------
    print("\n== rolling daily plans (inventory chains via epsilon) ==")
    carry = 0.0
    total = 0.0
    for day in range(7):
        chunk = demand[day * 24 : (day + 1) * 24]
        day_inst = DRRPInstance(
            demand=chunk,
            costs=on_demand_schedule(vm, 24),
            initial_storage=carry,
            bottleneck_rate=1.0,
            bottleneck_capacity=np.full(24, 1.5),
            vm_name=vm.name,
        )
        day_plan = solve_drrp(day_inst)
        total += day_plan.total_cost
        carry = float(day_plan.beta[-1])
        print(
            f"  day {day}: cost ${day_plan.total_cost:6.2f}, "
            f"rentals {len(day_plan.rent_slots):2d}, carry-out {carry:.2f} GB"
        )
    print(f"  rolling total: ${total:.2f} (vs one-shot weekly ${plan.total_cost:.2f})")
    print("  -> shorter horizons cost more: the planner cannot amortize rentals across days.")


if __name__ == "__main__":
    main()
