"""Spot-market predictability study — the paper's §IV-A pipeline end-to-end.

Reproduces the analysis chain on the bundled reference dataset:

  outliers (Fig. 3) -> update frequency (Fig. 4) -> hourly resampling ->
  normality (Fig. 5) -> decomposition (Fig. 6) -> correlograms (Fig. 7) ->
  SARIMA selection + day-ahead forecast vs the mean predictor (Fig. 8)

and prints the paper's conclusion in numbers: the best SARIMA fit has no
usable skill over the trivial expected-mean predictor, which is why the
stochastic planner (SRRP) exists.

Run:  python examples/spot_market_analysis.py
"""

import numpy as np

from repro.market import (
    ANALYSIS_CLASSES,
    daily_update_counts,
    paper_window,
    reference_dataset,
)
from repro.stats import iqr_outliers, mspe, shapiro_wilk
from repro.timeseries import (
    AutoARIMASpec,
    auto_arima,
    correlogram,
    decompose_additive,
    mean_forecast,
)


def main() -> None:
    dataset = reference_dataset()

    print("== Step 1: outlier analysis (Fig. 3) ==")
    for name in ANALYSIS_CLASSES:
        _, stats = iqr_outliers(dataset[name].prices)
        print(
            f"  {name:10s}  median ${stats.median:.3f}  "
            f"IQR ${stats.iqr:.3f}  outliers {stats.outlier_fraction:.2%}"
        )

    trace = dataset["c1.medium"]
    counts = daily_update_counts(trace)
    print("\n== Step 2: update frequency (Fig. 4) ==")
    print(f"  c1.medium: {counts.min()}-{counts.max()} updates/day (mean {counts.mean():.1f})")
    print("  -> irregular sampling: resample to an hourly grid (LOCF)")

    window = paper_window(trace)
    prices = window.estimation
    sw = shapiro_wilk(prices)
    print("\n== Step 3: normality of the selected window (Fig. 5) ==")
    print(f"  2-month window [Dec 1 2010, Feb 1 2011): n={prices.size}")
    print(f"  Shapiro-Wilk W={sw.statistic:.4f}, p={sw.p_value:.2e} -> normality rejected")

    d = decompose_additive(prices, period=24)
    print("\n== Step 4: decomposition (Fig. 6) ==")
    print(f"  trend range        : {d.trend_range():.4f} (no clear trend)")
    print(f"  seasonal amplitude : {d.seasonal_amplitude:.4f} (mild daily cycle)")
    print(f"  seasonal strength  : {d.seasonal_strength():.3f}")

    cg = correlogram(prices, 30)
    sig = cg.significant_acf_lags()
    print("\n== Step 5: correlograms (Fig. 7) ==")
    print(f"  95% band ±{cg.confidence_limit:.3f}; significant lags: {sig[:6].tolist()}...")
    print(f"  max |ACF| beyond lag 0: {cg.max_abs_acf():.3f} (weak: far from 1)")

    print("\n== Step 6: SARIMA selection + day-ahead forecast (Fig. 8) ==")
    spec = AutoARIMASpec(max_p=2, max_q=2, max_P=2, max_Q=0, s=24)
    model = auto_arima(prices, spec)
    predicted = model.forecast(24)
    actual = window.validation
    m_model = mspe(actual, predicted)
    m_mean = mspe(actual, mean_forecast(prices, 24))
    print(f"  selected model : {model.order.label} (AIC {model.aic:.1f})")
    print(f"  model MSPE     : {m_model:.3e}")
    print(f"  mean  MSPE     : {m_mean:.3e}")
    ratio = m_model / m_mean
    print(f"  -> model/mean MSPE ratio {ratio:.2f}: no usable forecasting skill;")
    print("     deterministic planning on predictions is unreliable -> use SRRP.")

    rmse = float(np.sqrt(m_model))
    print(f"  (day-ahead RMSE ${rmse:.4f} vs price quantum $0.001)")


if __name__ == "__main__":
    main()
