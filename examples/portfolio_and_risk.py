"""Portfolio planning across VM classes, budgets, and tail risk.

Goes beyond the paper's per-class, risk-neutral planning with the
library's two extensions:

1. **Multi-class coupling** — plan c1.medium, m1.large and m1.xlarge
   jointly under a shared cloud-storage budget and a per-slot rental spend
   cap, and see what the coupling costs vs independent planning;
2. **Mean-CVaR SRRP** — sweep the risk weight to trade expected cost for
   a smaller cost tail when the bid can lose the spot auction;
3. **Shadow prices** — read per-slot marginal serving costs off the plan,
   the price signal for admission control / customer quotes.

Run:  python examples/portfolio_and_risk.py
"""

import numpy as np

from repro.core import (
    DRRPInstance,
    MultiClassInstance,
    NormalDemand,
    SRRPInstance,
    bid_adjusted_stage_distributions,
    build_tree,
    demand_shadow_prices,
    on_demand_schedule,
    solve_multiclass,
    solve_srrp_cvar,
)
from repro.market import PLANNING_CLASSES, ec2_catalog, paper_window, reference_dataset
from repro.stats import EmpiricalDistribution


def main() -> None:
    catalog = ec2_catalog()
    horizon = 24

    # -- 1. joint planning under shared budgets ------------------------------
    def class_demand(i: int) -> np.ndarray:
        d = NormalDemand().sample(horizon, 10 + i)
        if i == 2:
            d[0] = 0.0  # m1.xlarge ramps up an hour later
        return d

    instances = tuple(
        DRRPInstance(
            demand=class_demand(i),
            costs=on_demand_schedule(catalog[name], horizon),
            vm_name=name,
        )
        for i, name in enumerate(PLANNING_CLASSES)
    )
    free = solve_multiclass(MultiClassInstance(instances))
    coupled = solve_multiclass(
        MultiClassInstance(instances, storage_budget=2.0, rental_budget=1.2)
    )
    print("== multi-class portfolio (24h, three classes) ==")
    print(f"  independent plans : ${free.total_cost:.2f}"
          f"  (peak total storage {free.peak_total_storage():.2f} GB)")
    print(f"  shared budgets    : ${coupled.total_cost:.2f}"
          f"  (storage <= 2.0 GB, rental spend <= $1.2/slot)")
    print(f"  price of coupling : ${coupled.total_cost - free.total_cost:.2f}")

    # -- 2. risk-averse stochastic planning ----------------------------------
    vm = catalog["m1.xlarge"]
    history = paper_window(reference_dataset()["m1.xlarge"]).estimation
    base = EmpiricalDistribution(history)
    bid = float(history.mean()) * 0.97  # slightly shaded: real out-of-bid risk
    dists = bid_adjusted_stage_distributions(base, np.full(5, bid), vm.on_demand_price, 3)
    inst = SRRPInstance(
        demand=NormalDemand().sample(6, 3),
        costs=on_demand_schedule(vm, 6),
        tree=build_tree(bid, dists),
        vm_name=vm.name,
    )
    print("\n== mean-CVaR frontier (m1.xlarge, 6h tree, bid 3% under mean) ==")
    print(f"  {'lambda':>7s} {'E[cost]':>9s} {'CVaR90':>9s} {'std':>7s}")
    for lam in (0.0, 0.5, 1.0):
        plan = solve_srrp_cvar(inst, risk_weight=lam, confidence=0.9)
        print(f"  {lam:7.2f} {plan.expected_cost:9.4f} {plan.cvar:9.4f} {plan.cost_std():7.4f}")
    print("  lambda=0 is the paper's SRRP; higher lambda buys a flatter tail.")

    # -- 3. what is a marginal GB worth, and when? ---------------------------
    report = demand_shadow_prices(instances[2])  # m1.xlarge
    mc = report.marginal_cost
    print("\n== marginal serving cost per slot (m1.xlarge plan) ==")
    print(f"  cheapest slot : t={int(np.argmin(mc))} at ${mc.min():.3f}/GB")
    print(f"  dearest slot  : t={report.most_expensive_slot()} at ${mc.max():.3f}/GB")
    print("  slots generating fresh data price at transfer cost only; slots")
    print("  served from inventory inherit the holding cost of their age.")


if __name__ == "__main__":
    main()
