"""Bid-strategy bake-off in the spot market (the Figure 12(a) machinery).

Replays two days of realized spot prices for c1.medium and compares five
rental policies under identical demand:

* oracle (perfect information)         -> the ideal cost
* on-demand planning at fixed λ        -> the most expensive
* DRRP / SRRP with expected-mean bids
* DRRP / SRRP with SARIMA forecast bids

Prints realized cost, overpay vs the oracle, and out-of-bid counts, showing
SRRP's hedging value when losing the auction is a real risk.

Run:  python examples/bid_strategy_comparison.py
"""

from datetime import date

import numpy as np

from repro.core import (
    DeterministicPolicy,
    NoPlanPolicy,
    NormalDemand,
    OnDemandPolicy,
    Planner,
    StochasticPolicy,
)
from repro.experiments.fig8_prediction import fit_paper_forecaster
from repro.market import (
    MeanBids,
    ScheduleBids,
    hourly_series,
    hours_since_epoch,
    paper_window,
    reference_dataset,
)


def main() -> None:
    horizon = 48
    vm_class = "c1.medium"
    trace = reference_dataset()[vm_class]
    history = paper_window(trace).estimation
    start = hours_since_epoch(date(2011, 2, 1))
    realized = hourly_series(trace, start, start + horizon)
    demand = NormalDemand().sample(horizon, 21)

    print(f"evaluating {vm_class} over {horizon}h from Feb 1 2011")
    print(f"realized spot: ${realized.min():.3f}-${realized.max():.3f} "
          f"(mean ${realized.mean():.3f}); history mean ${history.mean():.3f}")

    model = fit_paper_forecaster(history)
    predicted = model.forecast(horizon)
    print(f"forecaster: {model.order.label}, day-ahead path "
          f"${predicted.min():.3f}-${predicted.max():.3f}\n")

    planner = Planner(vm_class)
    policies = {
        "no-plan (on-demand)": NoPlanPolicy(),
        "on-demand + DRRP": OnDemandPolicy(lookahead=6),
        "det-exp-mean": DeterministicPolicy(MeanBids(), lookahead=6),
        "sto-exp-mean": StochasticPolicy(MeanBids(), lookahead=6),
        "det-predict": DeterministicPolicy(ScheduleBids(values=predicted), lookahead=6, name="det-predict"),
        "sto-predict": StochasticPolicy(ScheduleBids(values=predicted), lookahead=6, name="sto-predict"),
    }
    comparison = planner.evaluate_policies(realized, demand, history, policies=policies)
    over = comparison.overpay_percentages()

    print(f"{'policy':22s} {'cost':>8s} {'overpay':>8s} {'out-of-bid':>11s} {'rentals':>8s}")
    order = sorted(comparison.results, key=lambda k: comparison.results[k].total_cost)
    for name in order:
        res = comparison.results[name]
        print(
            f"{name:22s} ${res.total_cost:7.3f} {over[name]:7.1f}% "
            f"{res.out_of_bid_events:11d} {res.rentals:8d}"
        )

    det = comparison.results["det-exp-mean"].total_cost
    sto = comparison.results["sto-exp-mean"].total_cost
    print(
        f"\nSRRP saves {1 - sto/det:.1%} over DRRP at the same bids: "
        "the scenario tree prices in the out-of-bid fallback to lambda, "
        "so it pre-builds inventory before risky slots."
    )


if __name__ == "__main__":
    main()
