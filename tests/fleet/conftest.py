"""Shared fixtures for the fleet-planning tests."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(2012)
