"""Tenant population generator: determinism, heterogeneity, pool sizing."""

import numpy as np
import pytest

from repro.fleet import (
    POOLS,
    PROFILES,
    SLAS,
    generate_tenants,
    uniform_pools,
)


class TestGenerateTenants:
    def test_seeded_reproducibility(self):
        a = generate_tenants(20, seed=7, horizon=12)
        b = generate_tenants(20, seed=7, horizon=12)
        for ta, tb in zip(a, b):
            assert ta.pool == tb.pool and ta.sla == tb.sla
            assert np.array_equal(ta.instance.demand, tb.instance.demand)
            assert np.array_equal(ta.instance.costs.compute, tb.instance.costs.compute)

    def test_different_seeds_differ(self):
        a = generate_tenants(20, seed=1, horizon=12)
        b = generate_tenants(20, seed=2, horizon=12)
        assert any(
            not np.array_equal(ta.instance.demand, tb.instance.demand)
            for ta, tb in zip(a, b)
        )

    def test_population_is_heterogeneous(self):
        tenants = generate_tenants(60, seed=0, horizon=12)
        assert {t.pool for t in tenants} == set(POOLS)
        assert {t.profile for t in tenants} == set(PROFILES)
        assert {t.sla for t in tenants} == set(SLAS)

    def test_shared_horizon_and_valid_instances(self):
        tenants = generate_tenants(10, seed=3, horizon=18)
        for t in tenants:
            assert t.horizon == 18
            assert np.all(t.instance.demand >= 0)
            assert np.all(t.instance.costs.compute > 0)

    def test_escalation_eligibility_follows_sla(self):
        tenants = generate_tenants(40, seed=0, horizon=12)
        for t in tenants:
            assert t.escalation_eligible == np.isfinite(SLAS[t.sla].gap_tolerance)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            generate_tenants(0)
        with pytest.raises(ValueError):
            generate_tenants(4, horizon=0)


class TestUniformPools:
    def test_covers_every_pool_in_use(self):
        tenants = generate_tenants(30, seed=0, horizon=12)
        pools = uniform_pools(tenants)
        assert set(pools) == {t.pool for t in tenants}
        for pool in pools.values():
            assert pool.horizon == 12
            assert np.all(pool.capacity >= 1)

    def test_slot0_floor_covers_forced_renters(self):
        tenants = generate_tenants(50, seed=5, horizon=12)
        pools = uniform_pools(tenants, utilization=0.3)
        for name, pool in pools.items():
            forced = sum(
                1
                for t in tenants
                if t.pool == name
                and float(t.instance.demand[0]) > float(t.instance.initial_storage) + 1e-12
            )
            assert pool.capacity[0] >= forced

    def test_rejects_bad_utilization(self):
        tenants = generate_tenants(4, seed=0, horizon=6)
        with pytest.raises(ValueError):
            uniform_pools(tenants, utilization=0.0)
        with pytest.raises(ValueError):
            uniform_pools([], utilization=0.5)
