"""The heuristic tier against its lower bound and the exact MILP.

The acceptance bar for the whole tier: the heuristic's cost is always a
valid upper bound (>= the MILP optimum, since the MILP is exact), the
Wagner–Whitin relaxation is always a valid lower bound (certified
escalation gap), and the exact-Fraction accounting re-prices to the same
objective a certificate walk computes.
"""

from dataclasses import replace
from fractions import Fraction

import numpy as np
import pytest

from repro.core.drrp import solve_drrp
from repro.core.lotsizing import solve_wagner_whitin
from repro.fleet import HeuristicInfeasible, generate_tenants, solve_heuristic
from repro.fleet.planner import _knock
from repro.verify import certify_drrp_plan


def close(a, b, tol=1e-6):
    return abs(a - b) <= tol * (1 + abs(b))


class TestSolveHeuristic:
    def test_plan_is_feasible_and_exactly_priced(self):
        for tenant in generate_tenants(12, seed=4, horizon=16):
            res = solve_heuristic(tenant.instance)
            res.plan.validate(tenant.instance)
            report = certify_drrp_plan(tenant.instance, res.plan)
            assert report.ok, report.failures
            assert Fraction(res.plan.extra["exact_objective"]) == res.exact_objective
            assert close(float(res.exact_objective), res.objective)

    def test_objective_between_lower_bound_and_heuristic_claim(self):
        for tenant in generate_tenants(12, seed=8, horizon=16):
            res = solve_heuristic(tenant.instance)
            ww = solve_wagner_whitin(tenant.instance)
            assert res.lower_bound <= ww.objective + 1e-9
            assert float(res.exact_objective) >= res.lower_bound - 1e-9
            assert res.gap >= 0.0

    def test_heuristic_never_beats_the_milp(self):
        ratios = []
        for tenant in generate_tenants(20, seed=0, horizon=16):
            res = solve_heuristic(tenant.instance)
            milp = solve_drrp(tenant.instance, backend="auto")
            assert float(res.exact_objective) >= float(milp.objective) - 1e-6
            ratios.append(float(res.exact_objective) / max(float(milp.objective), 1e-9))
        # The paper-quality bar the bench gates on, on a small cohort.
        assert float(np.mean(ratios)) <= 1.05

    def test_matches_ww_exactly_on_uncapacitated_single_setup(self):
        # One cheap setup slot and huge setups elsewhere: both the DP and
        # the greedy must find the single-setup plan, so they agree.
        tenant = generate_tenants(1, seed=2, horizon=10)[0]
        inst = tenant.instance
        compute = np.full(10, 500.0)
        compute[0] = 0.5
        inst = replace(inst, costs=inst.costs.with_compute(compute))
        res = solve_heuristic(inst)
        ww = solve_wagner_whitin(inst)
        assert close(float(res.exact_objective), ww.objective)

    def test_respects_knocked_slots(self):
        tenant = generate_tenants(1, seed=6, horizon=12)[0]
        knocked = _knock(tenant.instance, (3, 4))
        res = solve_heuristic(knocked)
        assert res.plan.alpha[3] <= 1e-12 and res.plan.alpha[4] <= 1e-12
        rate = knocked.bottleneck_rate
        assert np.all(rate * res.plan.alpha <= knocked.bottleneck_capacity + 1e-6)

    def test_infeasible_when_every_productive_slot_is_knocked(self):
        tenant = generate_tenants(1, seed=1, horizon=8)[0]
        inst = tenant.instance
        assert float(inst.demand[0]) > float(inst.initial_storage)
        knocked = _knock(inst, tuple(range(8)))
        with pytest.raises(HeuristicInfeasible):
            solve_heuristic(knocked)
