"""plan_fleet: escalation routing, pool repair, and joint feasibility."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.drrp import solve_drrp
from repro.fleet import (
    CapacityPool,
    FleetConfig,
    fleet_cost,
    generate_tenants,
    plan_fleet,
    pool_usage,
    uniform_pools,
    verify_fleet_feasible,
)


class TestPlanFleet:
    def test_uncoupled_fleet_needs_no_repair(self):
        tenants = generate_tenants(8, seed=0, horizon=12)
        pools = uniform_pools(tenants, utilization=1.0)
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        assert fleet.feasible
        assert fleet.repair_rounds == 0 and fleet.knockouts == 0
        assert len(fleet.outcomes) == len(tenants)
        assert sum(fleet.methods.values()) == len(tenants)

    def test_tight_pools_are_repaired_to_feasibility(self):
        tenants = generate_tenants(24, seed=3, horizon=12)
        pools = uniform_pools(tenants, utilization=0.4)
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        assert fleet.feasible, fleet.failures
        assert verify_fleet_feasible(tenants, fleet.outcomes, pools) == []
        usage = pool_usage(tenants, {o.tenant_id: o.plan.chi for o in fleet.outcomes}, pools)
        for name, pool in pools.items():
            assert np.all(usage[name] <= pool.capacity + 1e-9)

    def test_escalated_plans_match_direct_milp_bit_for_bit(self):
        tenants = generate_tenants(20, seed=0, horizon=16)
        pools = uniform_pools(tenants, utilization=1.0)
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        escalated = [o for o in fleet.outcomes if o.escalated and not o.knocked]
        assert escalated, "seed 0 must escalate at least one tenant"
        for o in escalated:
            direct = solve_drrp(o.instance, backend="auto")
            assert np.array_equal(np.asarray(o.plan.alpha), np.asarray(direct.alpha))
            assert np.array_equal(np.asarray(o.plan.beta), np.asarray(direct.beta))
            assert np.array_equal(np.asarray(o.plan.chi), np.asarray(direct.chi))
            assert float(o.plan.objective) == float(direct.objective)

    def test_batch_slas_never_escalate_on_gap(self):
        tenants = generate_tenants(40, seed=2, horizon=12)
        pools = uniform_pools(tenants, utilization=1.0)
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        by_id = {t.tenant_id: t for t in tenants}
        for o in fleet.outcomes:
            if by_id[o.tenant_id].sla == "batch":
                assert o.reason != "gap"

    def test_escalate_false_keeps_every_unknocked_tenant_heuristic(self):
        tenants = generate_tenants(16, seed=0, horizon=12)
        pools = uniform_pools(tenants, utilization=1.0)
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1, escalate=False))
        assert fleet.feasible
        assert all(o.reason != "gap" for o in fleet.outcomes)

    def test_total_cost_is_exact_sum(self):
        tenants = generate_tenants(10, seed=5, horizon=12)
        pools = uniform_pools(tenants, utilization=1.0)
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        assert fleet.total_cost_exact == fleet_cost(fleet.outcomes)
        assert abs(fleet.total_cost - float(fleet.total_cost_exact)) <= 1e-9

    def test_summary_is_json_able(self):
        tenants = generate_tenants(6, seed=0, horizon=8)
        pools = uniform_pools(tenants, utilization=1.0)
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        text = json.dumps(fleet.summary(tenants))
        out = json.loads(text)
        assert out["kind"] == "fleet" and len(out["tenant_plans"]) == 6

    def test_structurally_infeasible_pool_is_rejected(self):
        tenants = generate_tenants(12, seed=5, horizon=12)
        # A zero-capacity slot 0 cannot host the tenants whose initial
        # storage misses their slot-0 demand: repair must refuse, not spin.
        pools = {
            name: CapacityPool(name, np.concatenate([[0.0], pool.capacity[1:]]))
            for name, pool in uniform_pools(tenants, utilization=1.0).items()
        }
        forced = sum(
            1
            for t in tenants
            if float(t.instance.demand[0]) > float(t.instance.initial_storage) + 1e-12
        )
        assert forced > 0
        with pytest.raises((ValueError, RuntimeError)):
            plan_fleet(tenants, pools, FleetConfig(workers=1))

    def test_mismatched_horizons_are_rejected(self):
        a = generate_tenants(2, seed=0, horizon=8)
        b = generate_tenants(2, seed=0, horizon=12)
        mixed = [a[0], b[1]]
        with pytest.raises(ValueError):
            plan_fleet(mixed, uniform_pools(a), FleetConfig(workers=1))


class TestPoolRepairProperty:
    @given(
        seed=st.integers(0, 10_000),
        count=st.integers(4, 14),
        utilization=st.floats(0.25, 1.0),
    )
    @settings(max_examples=12, deadline=None)
    def test_repaired_fleet_never_exceeds_pool_capacity(self, seed, count, utilization):
        """Whatever the population and however tight the pools, the plan
        that comes back satisfies every per-slot cap (or repair raises)."""
        tenants = generate_tenants(count, seed=seed, horizon=10)
        pools = uniform_pools(tenants, utilization=utilization)
        try:
            fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        except (ValueError, RuntimeError):
            return  # structurally infeasible draw: refusing is correct
        assert fleet.feasible, fleet.failures
        usage = pool_usage(
            tenants, {o.tenant_id: o.plan.chi for o in fleet.outcomes}, pools
        )
        for name, pool in pools.items():
            assert np.all(usage[name] <= pool.capacity + 1e-9)
        for o in fleet.outcomes:
            o.plan.validate(o.instance)
