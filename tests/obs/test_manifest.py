"""Run manifests: canonical digests, provenance fields, replay diffing."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.obs import (
    RunManifest,
    backend_chain,
    canonical_json,
    diff_manifests,
    event_counts,
    package_versions,
    result_digest,
)
from repro.solver.telemetry import SolveEvent


def ev(kind, t, **data):
    return SolveEvent(kind=kind, t=float(t), data=data)


class TestDigest:
    def test_key_order_irrelevant(self):
        assert result_digest({"a": 1, "b": 2}) == result_digest({"b": 2, "a": 1})

    def test_sub_ulp_float_noise_collapses(self):
        a = {"cost": 2.614623904732118}
        b = {"cost": 2.614623904732118 * (1 + 1e-15)}
        assert result_digest(a) == result_digest(b)

    def test_real_changes_detected(self):
        assert result_digest({"cost": 1.0}) != result_digest({"cost": 1.0001})

    def test_handles_exotic_scalars(self):
        digest = result_digest({
            "frac": Fraction(1, 3),
            "np": np.float64(2.5),
            "arr": np.arange(3),
            "inf": math.inf,
        })
        assert digest.startswith("sha256:")

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_json({"b": 1, "a": [1.0, 2.0]})
        assert text == '{"a":[1.0,2.0],"b":1}'


class TestProvenanceHelpers:
    def test_backend_chain_records_degradation_hops(self):
        events = [
            ev("solve_start", 0.0, backend="scipy"),
            ev("backend_degraded", 0.1, from_backend="scipy", to_backend="simplex"),
            ev("solve_start", 0.2, backend="simplex"),
            ev("solve_end", 0.5, status="optimal"),
        ]
        assert backend_chain(events) == ["scipy", "simplex"]

    def test_backend_chain_collapses_repeats(self):
        events = [ev("solve_start", 0.1 * i, backend="simplex") for i in range(5)]
        assert backend_chain(events) == ["simplex"]

    def test_event_counts(self):
        events = [ev("node_open", 0.1, node=1), ev("node_open", 0.2, node=2),
                  ev("incumbent", 0.3, objective=1.0)]
        assert event_counts(events) == {"incumbent": 1, "node_open": 2}

    def test_package_versions_has_python_and_repro(self):
        versions = package_versions()
        assert "python" in versions and "repro" in versions


class TestRunManifest:
    def make(self, seed=7, cost=3.25):
        events = [
            ev("solve_start", 0.0, backend="simplex"),
            ev("solve_end", 0.4, status="optimal"),
        ]
        return RunManifest.from_run(
            "plan", "unit", result={"cost": cost}, seed=seed,
            config={"horizon": 8}, recorded_events=events,
            deadline_budget=2.0, elapsed=0.4,
        )

    def test_from_run_populates_provenance(self):
        man = self.make()
        assert man.backends == ["simplex"]
        assert man.events == {"solve_end": 1, "solve_start": 1}
        assert man.result_digest.startswith("sha256:")
        assert man.deadline_budget == 2.0
        assert "seed=7" in man.summary_line()

    def test_write_load_round_trip(self, tmp_path):
        man = self.make()
        path = man.write(tmp_path / "manifest.json")
        back = RunManifest.load(path)
        assert back.result_digest == man.result_digest
        assert back.config == {"horizon": 8}
        assert diff_manifests(man, back) == {}

    def test_replays_true_for_identical_runs(self):
        assert self.make().replays(self.make())

    def test_seed_change_breaks_replay(self):
        a, b = self.make(seed=7), self.make(seed=8)
        assert not a.replays(b)
        assert "seed" in diff_manifests(a, b)

    def test_result_drift_breaks_replay(self):
        a, b = self.make(cost=3.25), self.make(cost=3.26)
        diff = diff_manifests(a, b)
        assert list(diff) == ["result_digest"]

    def test_volatile_fields_excluded_unless_asked(self):
        a, b = self.make(), self.make()
        b.created = a.created + 100.0
        b.elapsed = 99.0
        assert diff_manifests(a, b) == {}
        assert "created" in diff_manifests(a, b, include_volatile=True)


class TestExperimentDigestReplay:
    def test_same_experiment_digests_identically(self):
        # The acceptance property: rerunning a seeded experiment replays
        # to the identical result digest.
        from repro.experiments import fig4_updates

        a = fig4_updates.run()
        b = fig4_updates.run()
        assert a.digest() == b.digest()
        assert a.digest().startswith("sha256:")

    def test_run_instrumented_manifest_replays(self):
        from repro.experiments.report import run_instrumented

        kwargs = dict(seed=2012, n_trials=1, horizon=6, backend="scipy")
        pytest.importorskip("scipy")
        a = run_instrumented("fig10", **kwargs)
        b = run_instrumented("fig10", **kwargs)
        assert a.manifest.replays(b.manifest)
        assert a.manifest.kind == "experiment" and a.manifest.name == "fig10"
        assert a.roots and a.roots[0].name == "experiment:fig10"
        # inner solves nested under the experiment root span
        assert any(c.category == "solve" for c in a.roots[0].children)
