"""Span reconstruction: nesting, interleaved nodes, slices, truncation."""

from repro.obs import Span, Tracer, span
from repro.solver.telemetry import EventRecorder, SolveEvent, Telemetry


def ev(kind, t, **data):
    return SolveEvent(kind=kind, t=float(t), data=data)


class TestNesting:
    def test_phases_nest_under_solve(self):
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="simplex"),
            ev("phase_start", 0.1, phase="presolve"),
            ev("phase_end", 0.3, phase="presolve", duration=0.2),
            ev("phase_start", 0.3, phase="simplex_phase2"),
            ev("phase_end", 0.9, phase="simplex_phase2", duration=0.6, pivots=40),
            ev("solve_end", 1.0, status="optimal"),
        ])
        roots = tracer.finish()
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "solve[simplex]" and root.category == "solve"
        assert [c.name for c in root.children] == ["presolve", "simplex_phase2"]
        assert abs(root.duration - 1.0) < 1e-12
        assert abs(root.self_time - 0.2) < 1e-12  # 1.0 - (0.2 + 0.6)
        assert root.children[1].attrs["pivots"] == 40

    def test_nested_solves(self):
        # Benders: inner master solves nest under the outer solve span.
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="benders"),
            ev("solve_start", 0.1, backend="scipy"),
            ev("solve_end", 0.4, status="optimal"),
            ev("solve_end", 1.0, status="optimal"),
        ])
        root = tracer.finish()[0]
        assert len(root.children) == 1
        assert root.children[0].name == "solve[scipy]"
        assert root.children[0].parent_id == root.span_id

    def test_span_context_manager_emits_phase_pair(self):
        rec = EventRecorder()
        tracer = Tracer()
        hub = Telemetry(listeners=[rec, tracer])
        with span(hub, "experiment:test", trials=3) as info:
            info["rows"] = 7
        roots = tracer.finish()
        assert [e.kind for e in rec.events] == ["phase_start", "phase_end"]
        assert roots[0].name == "experiment:test"
        assert roots[0].attrs["trials"] == 3 and roots[0].attrs["rows"] == 7

    def test_span_with_none_hub_is_noop(self):
        with span(None, "anything") as info:
            info["ignored"] = 1  # must not raise
        assert info == {"ignored": 1}


class TestDeadlineTruncation:
    def test_unbalanced_phase_closed_by_solve_end(self):
        # Deadline expiry unwinds without phase_end; solve_end closes it.
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="simplex"),
            ev("phase_start", 0.2, phase="simplex_phase2"),
            ev("deadline_exceeded", 0.5, budget=0.5),
            ev("solve_end", 0.5, status="feasible"),
        ])
        root = tracer.finish()[0]
        phase = root.children[0]
        assert phase.truncated
        assert abs(phase.end - 0.5) < 1e-12
        assert not root.truncated or root.end is not None  # root closed normally

    def test_stream_ending_mid_phase_truncates_on_finish(self):
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="simplex"),
            ev("phase_start", 0.2, phase="simplex_phase2"),
        ])
        roots = tracer.finish()
        assert all(s.truncated for s, _ in roots[0].walk())
        assert roots[0].end == 0.2  # last observed timestamp

    def test_finish_is_idempotent(self):
        tracer = Tracer().replay([ev("solve_start", 0.0, backend="x")])
        first = tracer.finish()
        assert tracer.finish() is first


class TestInterleavedNodes:
    def test_nodes_match_by_id_not_stack_order(self):
        # Best-first exploration: node 1 opens, node 2 opens, node 1 closes
        # first — intervals interleave, both attach to the solve span.
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="simplex"),
            ev("node_open", 0.1, node=1, depth=0),
            ev("node_open", 0.2, node=2, depth=1),
            ev("node_close", 0.4, node=1),
            ev("node_prune", 0.6, node=2, reason="bound"),
            ev("solve_end", 1.0, status="optimal"),
        ])
        root = tracer.finish()[0]
        nodes = {c.name: c for c in root.children if c.category == "node"}
        assert set(nodes) == {"node 1", "node 2"}
        assert abs(nodes["node 1"].duration - 0.3) < 1e-12
        assert nodes["node 2"].attrs["pruned"] is True
        assert nodes["node 2"].parent_id == root.span_id
        assert root.counters["nodes_opened"] == 2
        assert root.counters["nodes_closed"] == 1
        assert root.counters["nodes_pruned"] == 1

    def test_node_spans_do_not_zero_parent_self_time(self):
        # Queue residency overlaps the solve loop; self_time must ignore it.
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="simplex"),
            ev("node_open", 0.0, node=1),
            ev("node_close", 1.0, node=1),
            ev("solve_end", 1.0, status="optimal"),
        ])
        root = tracer.finish()[0]
        assert abs(root.self_time - 1.0) < 1e-12

    def test_nodes_open_at_solve_end_flagged_open_at_exit(self):
        # Bound domination prunes the remaining heap in one step: nodes
        # still open when the solve closes are closed with it, not left
        # for finish() to call truncated.
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="simplex"),
            ev("node_open", 0.1, node=1),
            ev("node_open", 0.2, node=2),
            ev("node_close", 0.5, node=1),
            ev("solve_end", 0.8, status="optimal"),
        ])
        root = tracer.finish()[0]
        leftover = [c for c in root.children if c.attrs.get("open_at_exit")]
        assert len(leftover) == 1
        assert leftover[0].name == "node 2"
        assert leftover[0].end == 0.8 and not leftover[0].truncated

    def test_worker_lanes_kept_distinct(self):
        # Same node id on two workers must not collide.
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="simplex"),
            ev("node_open", 0.1, node=1, worker=1),
            ev("node_open", 0.2, node=1, worker=2),
            ev("node_close", 0.3, node=1, worker=1),
            ev("node_close", 0.5, node=1, worker=2),
            ev("solve_end", 1.0, status="optimal"),
        ])
        root = tracer.finish()[0]
        durs = sorted(round(c.duration, 6) for c in root.children)
        assert durs == [0.2, 0.3]
        assert sorted(c.worker for c in root.children) == [1, 2]


class TestSlices:
    def test_benders_iterations_tile_the_parent(self):
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="benders"),
            ev("benders_iteration", 0.4, iteration=1, lower=1.0, upper=5.0),
            ev("benders_iteration", 0.7, iteration=2, lower=2.0, upper=3.0),
            ev("solve_end", 1.0, status="optimal"),
        ])
        root = tracer.finish()[0]
        iters = [c for c in root.children if c.category == "benders_iter"]
        assert [c.name for c in iters] == ["benders_iter 1", "benders_iter 2"]
        # back-to-back: [0, 0.4], [0.4, 0.7]
        assert abs(iters[0].start - 0.0) < 1e-12 and abs(iters[0].end - 0.4) < 1e-12
        assert abs(iters[1].start - 0.4) < 1e-12 and abs(iters[1].end - 0.7) < 1e-12
        assert root.counters["benders_iters"] == 2

    def test_fuzz_cases_slice_too(self):
        tracer = Tracer().replay([
            ev("phase_start", 0.0, phase="campaign"),
            ev("fuzz_case", 0.2, index=0, family="lp", certified=True),
            ev("fuzz_case", 0.5, index=1, family="milp", certified=True),
            ev("phase_end", 0.6, phase="campaign", duration=0.6),
        ])
        root = tracer.finish()[0]
        cases = [c for c in root.children if c.category == "fuzz_case"]
        assert len(cases) == 2 and cases[1].start == 0.2 and cases[1].end == 0.5


class TestMarkers:
    def test_instants_become_markers_and_counters(self):
        tracer = Tracer().replay([
            ev("solve_start", 0.0, backend="simplex+cuts"),
            ev("cut_round", 0.2, round=1, generated=4, added=3),
            ev("incumbent", 0.5, objective=7.0, bound=6.5, gap=0.07),
            ev("backend_degraded", 0.6, from_backend="scipy", to_backend="simplex"),
            ev("solve_end", 1.0, status="optimal"),
        ])
        root = tracer.finish()[0]
        assert {m.kind for m in tracer.markers} == {
            "cut_round", "incumbent", "backend_degraded"
        }
        assert root.counters["cut_rounds"] == 1
        assert root.counters["cuts_added"] == 3
        assert root.counters["incumbents"] == 1
        assert root.counters["degradations"] == 1


class TestSpanUtilities:
    def test_walk_find_total_counter(self):
        root = Span(name="a", category="solve", start=0.0, end=2.0, span_id=1)
        child = Span(name="b", category="phase", start=0.0, end=1.0,
                     span_id=2, parent_id=1)
        root.children.append(child)
        root.count("pivots", 3)
        child.count("pivots", 4)
        assert [s.name for s, _ in root.walk()] == ["a", "b"]
        assert root.find("b") is child and root.find("zzz") is None
        assert root.total_counter("pivots") == 7


class TestWorkerReTiming:
    """Forwarded worker events re-anchored onto the parent clock.

    ``parallel_map`` re-emits captured worker events only after the pool
    completes, so their parent-hub timestamps all collapse at the fan-out's
    end; ``worker_t`` recovers real in-worker start times per lane.
    """

    def _fanout(self, phase, t0, t1, worker_events):
        events = [ev("phase_start", t0, phase=phase)]
        # Re-emission: every forwarded event lands at the fan-out's end.
        events += [ev(kind, t1, worker=w, worker_t=wt, **data)
                   for kind, w, wt, data in worker_events]
        events.append(ev("phase_end", t1, phase=phase))
        return events

    def test_two_worker_lanes_keep_in_phase_intervals(self):
        tracer = Tracer().replay(self._fanout("fanout", 1.0, 2.0, [
            ("phase_start", 1, 0.1, {"phase": "sub[0]"}),
            ("phase_end", 1, 0.4, {"phase": "sub[0]", "duration": 0.3}),
            ("phase_start", 2, 0.2, {"phase": "sub[1]"}),
            ("phase_end", 2, 0.5, {"phase": "sub[1]", "duration": 0.3}),
        ]))
        fanout = tracer.finish()[0]
        subs = {c.worker: c for c in fanout.children}
        assert set(subs) == {1, 2}               # one lane per worker
        for sub in subs.values():
            # Re-timed, not collapsed at the re-emission instant...
            assert abs(sub.duration - 0.3) < 1e-12
            # ...and anchored inside the enclosing fan-out phase.
            assert fanout.start <= sub.start and sub.end <= fanout.end
        # Each worker's first event anchors at the fan-out start.
        assert abs(subs[1].start - 1.0) < 1e-12
        assert abs(subs[2].start - 1.0) < 1e-12

    def test_worker_epoch_resets_across_fanouts(self):
        # A second pool restarts worker ids and epochs: the offset is keyed
        # per enclosing span, so restarted worker_t clocks re-anchor there.
        events = (
            self._fanout("round1", 1.0, 2.0, [
                ("phase_start", 1, 0.5, {"phase": "sub"}),
                ("phase_end", 1, 0.8, {"phase": "sub", "duration": 0.3}),
            ])
            + self._fanout("round2", 3.0, 4.0, [
                ("phase_start", 1, 0.05, {"phase": "sub"}),
                ("phase_end", 1, 0.25, {"phase": "sub", "duration": 0.2}),
            ])
        )
        r1, r2 = Tracer().replay(events).finish()
        assert abs(r1.children[0].start - 1.0) < 1e-12
        assert abs(r2.children[0].start - 3.0) < 1e-12   # not 1.0 - 0.45
        assert abs(r2.children[0].duration - 0.2) < 1e-12

    def test_retimed_span_never_outruns_reemission(self):
        # A worker clock running ahead of the parent's is clamped at the
        # re-emission time: the fan-out demonstrably finished by then.
        tracer = Tracer().replay(self._fanout("fanout", 1.0, 1.2, [
            ("phase_start", 1, 0.0, {"phase": "sub"}),
            ("phase_end", 1, 5.0, {"phase": "sub", "duration": 5.0}),
        ]))
        sub = tracer.finish()[0].children[0]
        assert sub.end <= 1.2

    def test_chrome_trace_puts_workers_on_distinct_tids(self):
        from repro.obs.exporters import to_chrome_trace

        tracer = Tracer().replay(self._fanout("fanout", 0.0, 1.0, [
            ("phase_start", 1, 0.1, {"phase": "sub[0]"}),
            ("phase_end", 1, 0.6, {"phase": "sub[0]", "duration": 0.5}),
            ("phase_start", 2, 0.1, {"phase": "sub[1]"}),
            ("phase_end", 2, 0.7, {"phase": "sub[1]", "duration": 0.6}),
        ]))
        doc = to_chrome_trace(tracer.finish(), tracer.markers)
        lanes = {e["name"]: e["tid"] for e in doc["traceEvents"] if e.get("ph") == "X"}
        assert lanes["fanout"] == 0
        assert {lanes["sub[0]"], lanes["sub[1]"]} == {1, 2}
