"""Registry thread-safety: create-on-first-use races and live snapshots.

The planning service mutates instruments from solver worker threads
while HTTP handler threads snapshot ``/metrics``.  An unlocked
check-then-set in ``MetricsRegistry._get`` hands two racing threads
*different* instruments for the same name — one thread's observations
then land in an object the registry no longer holds, silently dropped.
These tests force the interleaving with a tiny switch interval and a
barrier so every thread hits the create path for the same fresh names
at once.
"""

import sys
import threading

import pytest

from repro.obs.metrics import MetricsRegistry, to_prometheus


@pytest.fixture
def fast_switching():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    yield
    sys.setswitchinterval(old)


def _run_threads(n, target):
    barrier = threading.Barrier(n)
    errors = []

    def runner(ix):
        try:
            barrier.wait()
            target(ix)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


class TestConcurrentCreate:
    N_THREADS = 8
    N_NAMES = 64

    def test_all_threads_get_the_same_counter(self, fast_switching):
        reg = MetricsRegistry()
        names = [f"hammer.counter.{i}" for i in range(self.N_NAMES)]
        seen = [dict() for _ in range(self.N_THREADS)]

        def grab(ix):
            for name in names:
                seen[ix][name] = id(reg.counter(name))

        _run_threads(self.N_THREADS, grab)
        assert len(reg) == self.N_NAMES
        for name in names:
            ids = {seen[ix][name] for ix in range(self.N_THREADS)}
            assert len(ids) == 1, f"{name} resolved to {len(ids)} instruments"

    def test_all_instrument_kinds(self, fast_switching):
        reg = MetricsRegistry()

        def grab(ix):
            for i in range(16):
                reg.counter(f"c{i}").inc()
                reg.gauge(f"g{i}").set(float(ix))
                reg.histogram(f"h{i}").observe(0.01)
                reg.series(f"s{i}").observe(float(i), float(ix))

        _run_threads(self.N_THREADS, grab)
        assert len(reg) == 64
        snap = reg.snapshot()
        # Histogram observations all landed in the single shared instrument.
        assert snap["h0"]["count"] == self.N_THREADS
        assert snap["s0"]["n"] == self.N_THREADS

    def test_increments_on_shared_counter_are_not_dropped_wholesale(self, fast_switching):
        # Each thread fetches the counter exactly once, then increments its
        # private reference: with a locked registry all references alias one
        # object, so the final value counts every thread's contribution.
        reg = MetricsRegistry()
        lock = threading.Lock()

        def work(ix):
            counter = reg.counter("shared")
            with lock:
                counter.inc(1.0)

        _run_threads(self.N_THREADS, work)
        assert reg.counter("shared").value == self.N_THREADS


class TestSnapshotUnderLoad:
    def test_snapshot_while_creating(self, fast_switching):
        reg = MetricsRegistry()
        n_writers, n_names = 4, 128
        stop = threading.Event()
        snapshots = [[], []]

        def reader(out):
            while not stop.is_set():
                snap = reg.snapshot()
                text = to_prometheus(snap)
                assert text.endswith("\n")
                out.append(len(snap))

        readers = [threading.Thread(target=reader, args=(out,)) for out in snapshots]
        for t in readers:
            t.start()

        def write(ix):
            for i in range(n_names):
                reg.counter(f"load.{ix}.{i}").inc(i)

        try:
            _run_threads(n_writers, write)
        finally:
            stop.set()
            for t in readers:
                t.join()

        assert len(reg) == n_writers * n_names
        # Per-reader snapshot sizes only ever grow; none raised mid-mutation.
        for out in snapshots:
            assert out == sorted(out)

    def test_type_conflict_still_raises_under_lock(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
