"""Phase profiler: wall partition, breakdowns, speedscope export."""

import json
import math

import pytest

from repro.obs.prof import (
    PhaseProfile,
    parent_clock_spans,
    profile_events,
    to_speedscope,
    write_speedscope,
)
from repro.solver.telemetry import SolveEvent


def ev(kind, t, **data):
    return SolveEvent(kind=kind, t=float(t), data=data)


def solve_stream(inner):
    """Wrap phase events in a solve_start/solve_end bracket 0..1s."""
    return [ev("solve_start", 0.0, backend="bb"), *inner, ev("solve_end", 1.0)]


class TestPartition:
    def test_simple_phases_tile_the_wall(self):
        prof = profile_events(solve_stream([
            ev("phase_start", 0.0, phase="presolve"),
            ev("phase_end", 0.3, phase="presolve"),
            ev("phase_start", 0.3, phase="simplex_phase2"),
            ev("phase_end", 1.0, phase="simplex_phase2"),
        ]))
        assert prof.wall == pytest.approx(1.0)
        assert prof.entries["presolve"] == pytest.approx(0.3)
        assert prof.entries["simplex_phase2"] == pytest.approx(0.7)
        # The solve root contributes only its (zero) self time.
        assert prof.entries["solve[bb]"] == pytest.approx(0.0)
        assert prof.tracked == pytest.approx(prof.wall)
        assert prof.coverage == pytest.approx(1.0)

    def test_untracked_gap_lowers_coverage(self):
        prof = profile_events([
            ev("phase_start", 0.0, phase="a"),
            ev("phase_end", 0.5, phase="a"),
            ev("phase_start", 0.8, phase="b"),
            ev("phase_end", 1.0, phase="b"),
        ])
        assert prof.wall == pytest.approx(1.0)
        assert prof.coverage == pytest.approx(0.7)

    def test_empty_stream(self):
        prof = profile_events([])
        assert prof.wall == 0.0 and prof.entries == {}
        assert math.isnan(prof.coverage)


class TestBreakdown:
    def test_breakdown_splits_phase_with_residual(self):
        prof = profile_events(solve_stream([
            ev("phase_start", 0.0, phase="simplex_phase2"),
            ev("phase_end", 1.0, phase="simplex_phase2",
               breakdown={"pricing": 0.4, "ratio_test": 0.25, "basis_update": 0.15}),
        ]))
        assert prof.entries["simplex.pricing"] == pytest.approx(0.4)
        assert prof.entries["simplex.ratio_test"] == pytest.approx(0.25)
        assert prof.entries["simplex.basis_update"] == pytest.approx(0.15)
        # Residual (un-attributed loop time) stays under the phase name.
        assert prof.entries["simplex_phase2"] == pytest.approx(0.2)
        assert prof.tracked == pytest.approx(prof.wall)

    def test_breakdown_overshoot_clamps_residual_to_zero(self):
        prof = profile_events(solve_stream([
            ev("phase_start", 0.0, phase="simplex_warm"),
            ev("phase_end", 0.5, phase="simplex_warm",
               breakdown={"refactorization": 0.6}),
        ]))
        assert prof.entries["simplex.refactorization"] == pytest.approx(0.6)
        assert prof.entries["simplex_warm"] == 0.0  # negative residual clamped


class TestBenders:
    def test_subproblem_ipc_split(self):
        # 0.8s fan-out, 1.2 CPU-seconds over 2 workers -> 0.6s compute wall.
        prof = profile_events(solve_stream([
            ev("phase_start", 0.1, phase="benders_subproblems"),
            ev("phase_end", 0.9, phase="benders_subproblems",
               subproblem_s=1.2, workers=2),
        ]))
        assert prof.entries["benders.subproblem"] == pytest.approx(0.6)
        assert prof.entries["benders.ipc"] == pytest.approx(0.2)
        assert prof.extras["benders_subproblem_cpu_s"] == pytest.approx(1.2)

    def test_subproblem_wall_capped_at_phase_duration(self):
        prof = profile_events(solve_stream([
            ev("phase_start", 0.0, phase="benders_subproblems"),
            ev("phase_end", 0.5, phase="benders_subproblems",
               subproblem_s=4.0, workers=2),
        ]))
        assert prof.entries["benders.subproblem"] == pytest.approx(0.5)
        assert prof.entries["benders.ipc"] == pytest.approx(0.0)

    def test_forwarded_worker_spans_not_double_counted(self):
        # Worker-forwarded phases inside the fan-out must not add buckets:
        # subproblem/ipc already partition that interval.
        prof = profile_events(solve_stream([
            ev("phase_start", 0.0, phase="benders_subproblems"),
            ev("phase_start", 0.1, phase="simplex_phase2", worker=1),
            ev("phase_end", 0.3, phase="simplex_phase2", worker=1),
            ev("phase_end", 0.4, phase="benders_subproblems",
               subproblem_s=0.2, workers=1),
        ]))
        assert "simplex_phase2" not in prof.entries
        total = prof.entries["benders.subproblem"] + prof.entries["benders.ipc"]
        assert total == pytest.approx(0.4)


class TestOverlappingCategories:
    def test_nodes_counted_not_partitioned(self):
        prof = profile_events(solve_stream([
            ev("phase_start", 0.0, phase="bb_loop"),
            ev("node_open", 0.1, node=0),
            ev("node_open", 0.2, node=1),
            ev("node_close", 0.6, node=0),
            ev("node_prune", 0.7, node=1),
            ev("phase_end", 1.0, phase="bb_loop"),
        ]))
        assert prof.counts["nodes"] == 2
        # Residencies overlap (0.5 + 0.5 > loop wall is fine as an extra).
        assert prof.extras["node_residency_s"] == pytest.approx(1.0)
        # The loop keeps its full self time: nodes contribute nothing.
        assert prof.entries["bb_loop"] == pytest.approx(1.0)
        assert prof.tracked == pytest.approx(prof.wall)

    def test_lp_markers_become_counts_and_extras(self):
        prof = profile_events(solve_stream([
            ev("lp_warm", 0.2, node=0, duration=0.05),
            ev("lp_cold", 0.4, node=1, duration=0.11),
            ev("lp_warm", 0.6, node=2, duration=0.07),
        ]))
        assert prof.counts["lp_warm"] == 2 and prof.counts["lp_cold"] == 1
        assert prof.extras["lp_warm_s"] == pytest.approx(0.12)
        assert prof.extras["lp_cold_s"] == pytest.approx(0.11)


class TestInstantSpans:
    def test_queue_wait_duration_credited(self):
        # A bare phase_end carrying `duration`: time elapsed outside this
        # stream (service submit-to-start wait).
        prof = profile_events(solve_stream([
            ev("phase_end", 0.0, phase="service_queue_wait", duration=0.25, job="j1"),
        ]))
        assert prof.entries["service_queue_wait"] == pytest.approx(0.25)
        assert prof.counts["service_queue_wait"] == 1


class TestParentClock:
    def test_worker_t_is_stripped_for_profiling(self):
        # With worker_t honored, the worker span would be re-anchored to the
        # enclosing span's start; the profiler must use parent timestamps.
        events = solve_stream([
            ev("phase_start", 0.2, phase="fanout"),
            ev("phase_start", 0.8, phase="sub", worker=1, worker_t=5.0),
            ev("phase_end", 0.9, phase="sub", worker=1, worker_t=5.1),
            ev("phase_end", 1.0, phase="fanout"),
        ])
        roots, _ = parent_clock_spans(events)
        sub = roots[0].find("sub")
        assert sub.start == pytest.approx(0.8) and sub.end == pytest.approx(0.9)


class TestRender:
    def test_render_table_and_footer(self):
        prof = profile_events(solve_stream([
            ev("phase_start", 0.0, phase="a"),
            ev("phase_end", 1.0, phase="a"),
            ev("lp_warm", 0.5, duration=0.1),
        ]))
        text = prof.render()
        assert "a" in text and "100.0%" in text
        assert "tracked" in text and "wall" in text
        assert "[lp_warm_s] 0.1000" in text

    def test_render_empty(self):
        assert PhaseProfile().render() == "(no phases recorded)"

    def test_to_dict_sorted_and_complete(self):
        prof = profile_events(solve_stream([
            ev("phase_start", 0.0, phase="small"),
            ev("phase_end", 0.1, phase="small"),
            ev("phase_start", 0.1, phase="big"),
            ev("phase_end", 1.0, phase="big"),
        ]))
        d = prof.to_dict()
        assert set(d) == {"wall_s", "tracked_s", "coverage", "entries",
                          "counts", "extras"}
        entries = list(d["entries"])
        assert entries.index("big") < entries.index("small")


def _validate_speedscope(doc):
    assert doc["$schema"].endswith("file-format-schema.json")
    profile = doc["profiles"][0]
    assert profile["type"] == "evented" and profile["unit"] == "seconds"
    frames = doc["shared"]["frames"]
    depth, last_at = 0, profile["startValue"]
    stack = []
    for event in profile["events"]:
        assert event["at"] >= last_at          # non-decreasing timestamps
        assert 0 <= event["frame"] < len(frames)
        last_at = event["at"]
        if event["type"] == "O":
            stack.append(event["frame"])
            depth += 1
        else:
            assert stack and stack.pop() == event["frame"]  # strict nesting
            depth -= 1
    assert depth == 0 and not stack
    assert last_at <= profile["endValue"]


class TestSpeedscope:
    def test_valid_evented_profile(self):
        roots, _ = parent_clock_spans(solve_stream([
            ev("phase_start", 0.1, phase="a"),
            ev("phase_start", 0.2, phase="b"),
            ev("phase_end", 0.5, phase="b"),
            ev("phase_end", 0.6, phase="a"),
        ]))
        doc = to_speedscope(roots, name="unit")
        _validate_speedscope(doc)
        assert doc["name"] == "unit"
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert names == ["solve[bb]", "a", "b"]

    def test_overlapping_spans_dropped(self):
        roots, _ = parent_clock_spans(solve_stream([
            ev("node_open", 0.1, node=0),
            ev("node_open", 0.2, node=1),
            ev("node_close", 0.6, node=0),
            ev("node_close", 0.7, node=1),
        ]))
        doc = to_speedscope(roots)
        _validate_speedscope(doc)
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert names == ["solve[bb]"]  # node spans excluded

    def test_child_clamped_into_parent(self):
        # A truncated/skewed child extending past its parent is clamped.
        roots, _ = parent_clock_spans([
            ev("phase_start", 0.0, phase="outer"),
            ev("phase_start", 0.4, phase="inner"),
            ev("phase_end", 0.5, phase="outer"),  # closes inner as truncated
        ])
        doc = to_speedscope(roots)
        _validate_speedscope(doc)

    def test_write_speedscope_round_trips(self, tmp_path):
        roots, _ = parent_clock_spans(solve_stream([
            ev("phase_start", 0.0, phase="p"),
            ev("phase_end", 1.0, phase="p"),
        ]))
        out = write_speedscope(tmp_path / "deep" / "profile.speedscope.json", roots)
        doc = json.loads(out.read_text())
        _validate_speedscope(doc)
