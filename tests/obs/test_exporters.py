"""Exporter round-trips (JSONL, Chrome trace) and terminal rendering."""

from fractions import Fraction

from repro.obs import (
    MetricsRegistry,
    Tracer,
    load_chrome_trace,
    read_events_jsonl,
    render_report,
    render_span_tree,
    top_self_time,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.solver.telemetry import SolveEvent


def ev(kind, t, **data):
    return SolveEvent(kind=kind, t=float(t), data=data)


def sample_events():
    return [
        ev("solve_start", 0.0, backend="simplex"),
        ev("phase_start", 0.1, phase="presolve"),
        ev("phase_end", 0.2, phase="presolve", duration=0.1),
        ev("node_open", 0.3, node=1),
        ev("incumbent", 0.4, objective=5.0, certificate=Fraction(10, 2)),
        ev("node_close", 0.5, node=1),
        ev("backend_degraded", 0.6, from_backend="scipy", to_backend="simplex"),
        ev("solve_end", 1.0, status="optimal"),
    ]


def flatten(roots):
    out = []
    for root in roots:
        for s, depth in root.walk():
            out.append((depth, s.name, s.category, round(s.start, 9),
                        round(s.duration, 9), s.worker, s.truncated))
    return sorted(out)


class TestJsonl:
    def test_round_trip(self, tmp_path):
        events = sample_events()
        path = write_events_jsonl(tmp_path / "events.jsonl", events)
        back = read_events_jsonl(path)
        assert [e.kind for e in back] == [e.kind for e in events]
        assert [e.t for e in back] == [e.t for e in events]
        # Fraction certificates serialize exactly as "p/q" strings
        assert back[4].data["certificate"] == "5/1"

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "solve_start", "t": 0.0, "backend": "x"}\n\n')
        assert len(read_events_jsonl(path)) == 1


class TestChromeTrace:
    def test_round_trip_preserves_tree(self, tmp_path):
        tracer = Tracer().replay(sample_events())
        roots = tracer.finish()
        path = write_chrome_trace(tmp_path / "t.trace.json", roots, tracer.markers)
        back_roots, back_markers = load_chrome_trace(path)
        assert flatten(back_roots) == flatten(roots)
        assert {m.kind for m in back_markers} == {m.kind for m in tracer.markers}

    def test_document_shape(self, tmp_path):
        import json

        tracer = Tracer().replay(sample_events())
        path = write_chrome_trace(tmp_path / "t.trace.json", tracer.finish(),
                                  tracer.markers, label="unit")
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        phases = {rec["ph"] for rec in doc["traceEvents"]}
        assert "X" in phases and "i" in phases and "M" in phases
        meta = doc["traceEvents"][0]
        assert meta["args"]["name"] == "unit"
        # timestamps are microseconds: the solve span lasts 1 s
        solve = next(r for r in doc["traceEvents"]
                     if r["ph"] == "X" and r["name"].startswith("solve"))
        assert abs(solve["dur"] - 1e6) < 1.0

    def test_foreign_trace_degrades_to_flat_roots(self, tmp_path):
        import json

        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "dur": 1000, "pid": 0, "tid": 0},
            {"name": "b", "ph": "X", "ts": 100, "dur": 200, "pid": 0, "tid": 0},
        ]}))
        roots, markers = load_chrome_trace(path)
        assert sorted(r.name for r in roots) == ["a", "b"]
        assert markers == []


class TestRendering:
    def test_top_self_time_skips_nodes(self):
        tracer = Tracer().replay(sample_events())
        roots = tracer.finish()
        names = [name for name, _, _ in top_self_time(roots, k=10)]
        assert "presolve" in names
        assert not any(name.startswith("node") for name in names)

    def test_span_tree_elides_long_sibling_runs(self):
        events = [ev("solve_start", 0.0, backend="simplex")]
        for i in range(40):
            events.append(ev("node_open", 0.01 * i, node=i))
            events.append(ev("node_close", 0.01 * i + 0.005, node=i))
        events.append(ev("solve_end", 1.0, status="optimal"))
        tracer = Tracer().replay(events)
        text = render_span_tree(tracer.finish(), max_children=6)
        assert "more spans" in text
        assert text.count("node ") < 40

    def test_render_report_sections(self):
        tracer = Tracer().replay(sample_events())
        roots = tracer.finish()
        reg = MetricsRegistry()
        reg.counter("solves").inc()
        text = render_report(roots, reg, tracer.markers)
        assert "== span tree ==" in text
        assert "by self-time ==" in text
        assert "== notices ==" in text and "backend_degraded" in text
        assert "== metrics ==" in text and "solves" in text

    def test_render_report_empty(self):
        assert "(no spans)" in render_report([], None, [])
