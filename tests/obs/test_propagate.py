"""Trace-context parsing, ambient propagation, process files, and merging."""

import json

import pytest

from repro.obs.propagate import (
    TraceContext,
    activate,
    collect_event_files,
    current_trace,
    ensure_trace,
    merge_process_traces,
    parse_traceparent,
    read_process_events,
    write_merged_trace,
    write_process_events,
)
from repro.solver.telemetry import SolveEvent


def ev(kind, t, **data):
    return SolveEvent(kind=kind, t=float(t), data=data)


class TestTraceContext:
    def test_new_root_shapes(self):
        ctx = TraceContext.new_root()
        assert len(ctx.trace_id) == 32 and len(ctx.span_id) == 16
        assert ctx.sampled
        int(ctx.trace_id, 16)  # valid hex
        int(ctx.span_id, 16)

    def test_child_keeps_trace_id_fresh_span(self):
        ctx = TraceContext.new_root()
        child = ctx.child()
        assert child.trace_id == ctx.trace_id
        assert child.span_id != ctx.span_id
        assert child.sampled == ctx.sampled

    def test_traceparent_round_trip(self):
        ctx = TraceContext.new_root()
        parsed = parse_traceparent(ctx.to_traceparent())
        assert parsed == ctx
        unsampled = TraceContext(ctx.trace_id, ctx.span_id, sampled=False)
        assert parse_traceparent(unsampled.to_traceparent()) == unsampled

    def test_dict_round_trip(self):
        ctx = TraceContext.new_root()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx


class TestParseTraceparent:
    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-zz-11-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",   # all-zero span id
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",   # reserved version
        "00-" + "1" * 31 + "-" + "2" * 16 + "-01",   # short trace id
        "00-" + "A" * 32 + "-" + "2" * 16 + "-01",   # uppercase hex forbidden
        "00-" + "1" * 32 + "-" + "2" * 16 + "-01-extra",
    ])
    def test_invalid_headers_yield_none(self, header):
        assert parse_traceparent(header) is None

    def test_valid_header(self):
        ctx = parse_traceparent("00-" + "a" * 32 + "-" + "b" * 16 + "-01")
        assert ctx is not None and ctx.sampled
        assert ctx.trace_id == "a" * 32 and ctx.span_id == "b" * 16
        assert not parse_traceparent("00-" + "a" * 32 + "-" + "b" * 16 + "-00").sampled


class TestAmbient:
    def test_default_is_none(self):
        assert current_trace() is None

    def test_activate_nests_and_restores(self):
        a, b = TraceContext.new_root(), TraceContext.new_root()
        with activate(a):
            assert current_trace() is a
            with activate(b):
                assert current_trace() is b
            assert current_trace() is a
        assert current_trace() is None

    def test_activate_none_masks_outer(self):
        a = TraceContext.new_root()
        with activate(a):
            with activate(None):
                assert current_trace() is None
            assert current_trace() is a

    def test_ensure_trace_reuses_or_creates(self):
        fresh = ensure_trace()
        assert fresh is not None
        a = TraceContext.new_root()
        with activate(a):
            assert ensure_trace() is a


class TestProcessFiles:
    def test_round_trip_with_meta(self, tmp_path):
        ctx = TraceContext.new_root()
        events = [ev("phase_start", 0.0, phase="x"), ev("phase_end", 0.5, phase="x")]
        path = tmp_path / "events.jsonl"
        write_process_events(path, events, label="unit", trace=ctx,
                             parent_span_id="f" * 16, wall_t0=123.0)
        meta, back = read_process_events(path)
        assert meta["label"] == "unit" and meta["wall_t0"] == 123.0
        assert meta["trace"]["trace_id"] == ctx.trace_id
        assert meta["trace"]["parent_span_id"] == "f" * 16
        assert [e.kind for e in back] == ["phase_start", "phase_end"]
        assert back[1].t == 0.5 and back[1].data["phase"] == "x"

    def test_read_plain_jsonl_has_no_meta(self, tmp_path):
        path = tmp_path / "plain.jsonl"
        path.write_text(json.dumps({"kind": "solve_start", "t": 0.0}) + "\n")
        meta, events = read_process_events(path)
        assert meta is None and len(events) == 1

    def test_collect_event_files_recurses_sorted(self, tmp_path):
        (tmp_path / "b").mkdir()
        for name in ("b/z.jsonl", "a.jsonl"):
            (tmp_path / name).write_text("")
        (tmp_path / "skip.json").write_text("{}")
        found = collect_event_files(tmp_path)
        assert [p.name for p in found] == ["a.jsonl", "z.jsonl"]


class TestMergeProcessTraces:
    def _write(self, path, label, trace, events, wall_t0, parent_span_id=None):
        write_process_events(path, events, label=label, trace=trace,
                             parent_span_id=parent_span_id, wall_t0=wall_t0)

    def test_merge_pid_lanes_and_flow_arrows(self, tmp_path):
        root = TraceContext.new_root()
        request = root.child()
        job = request.child()
        # Client process: a service_request span advertising its span id.
        self._write(
            tmp_path / "client.jsonl", "campaign", root,
            [ev("phase_start", 0.0, phase="service_request",
                span_id=request.span_id),
             ev("phase_end", 1.0, phase="service_request",
                span_id=request.span_id, duration=1.0)],
            wall_t0=100.0,
        )
        # Server process: its meta says "my parent is that span".
        self._write(
            tmp_path / "server.jsonl", "service:j1", job,
            [ev("phase_start", 0.0, phase="solve"),
             ev("phase_end", 0.4, phase="solve", duration=0.4)],
            wall_t0=100.2, parent_span_id=request.span_id,
        )
        doc = merge_process_traces(
            [tmp_path / "client.jsonl", tmp_path / "server.jsonl"])
        evs = doc["traceEvents"]
        pids = {e["pid"] for e in evs if e.get("ph") == "X"}
        assert pids == {1, 2}                       # one lane per process
        assert doc["otherData"]["trace_ids"] == [root.trace_id]
        starts = [e for e in evs if e.get("ph") == "s"]
        finishes = [e for e in evs if e.get("ph") == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["id"] == request.span_id == finishes[0]["id"]
        assert starts[0]["pid"] == 1 and finishes[0]["pid"] == 2
        # Wall-clock offset: server events shifted 0.2s after the client's.
        solve = next(e for e in evs if e.get("ph") == "X" and e["name"].startswith("solve"))
        assert solve["ts"] == pytest.approx(0.2e6, rel=1e-6)
        # The arrow lands at (or after) its source so the renderer draws it.
        assert finishes[0]["ts"] >= starts[0]["ts"]

    def test_merge_without_parent_links_has_no_arrows(self, tmp_path):
        a, b = TraceContext.new_root(), TraceContext.new_root()
        self._write(tmp_path / "a.jsonl", "a", a,
                    [ev("phase_start", 0.0, phase="p"),
                     ev("phase_end", 0.1, phase="p", duration=0.1)], 10.0)
        self._write(tmp_path / "b.jsonl", "b", b,
                    [ev("phase_start", 0.0, phase="q"),
                     ev("phase_end", 0.1, phase="q", duration=0.1)], 11.0)
        doc = merge_process_traces([tmp_path / "a.jsonl", tmp_path / "b.jsonl"])
        assert not [e for e in doc["traceEvents"] if e.get("ph") in ("s", "f")]
        assert doc["otherData"]["trace_ids"] == sorted({a.trace_id, b.trace_id})

    def test_write_merged_trace(self, tmp_path):
        ctx = TraceContext.new_root()
        self._write(tmp_path / "a.jsonl", "a", ctx,
                    [ev("phase_start", 0.0, phase="p"),
                     ev("phase_end", 0.1, phase="p", duration=0.1)], 1.0)
        out = write_merged_trace(tmp_path / "merged.trace.json",
                                 [tmp_path / "a.jsonl"], label="t")
        doc = json.loads(out.read_text())
        assert doc["otherData"]["label"] == "t"
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
