"""Metrics instruments, the no-op disabled path, and the event aggregator."""

import math

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsAggregator,
    MetricsRegistry,
    NULL_REGISTRY,
    Series,
)
from repro.solver.telemetry import SolveEvent


def ev(kind, t, **data):
    return SolveEvent(kind=kind, t=float(t), data=data)


class TestInstruments:
    def test_counter_and_gauge(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        g = Gauge()
        g.set(4)
        g.set(7)
        assert g.value == 7.0 and g.snapshot()["type"] == "gauge"

    def test_histogram_buckets_and_stats(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4 and h.min == 0.5 and h.max == 50.0
        assert abs(h.mean - 14.375) < 1e-12
        assert h.buckets[-1] == math.inf  # inf bound appended automatically
        assert h.counts == [1, 2, 1]
        assert h.quantile(0.5) == 10.0

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(3.0, 1.0))

    def test_histogram_empty_stats_are_nan(self):
        h = Histogram()
        assert math.isnan(h.mean) and math.isnan(h.quantile(0.5))

    def test_series_trajectory(self):
        s = Series()
        s.observe(0.0, 10.0)
        s.observe(1.0, 4.0)
        assert s.last == 4.0
        snap = s.snapshot()
        assert snap["first"] == 10.0 and snap["n"] == 2


class TestRegistry:
    def test_create_on_first_use_and_reuse(self):
        reg = MetricsRegistry()
        reg.counter("nodes").inc()
        reg.counter("nodes").inc()
        assert reg.counter("nodes").value == 2
        assert "nodes" in reg and len(reg) == 1

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_and_table(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.histogram("b").observe(0.02)
        snap = reg.snapshot()
        assert snap["a"]["value"] == 5 and snap["b"]["count"] == 1
        table = reg.render_table()
        assert "a" in table and "histogram" in table

    def test_empty_table(self):
        assert MetricsRegistry().render_table() == "(no metrics)"


class TestNullRegistry:
    def test_all_instruments_share_one_noop(self):
        # Identity check: the disabled path allocates nothing per call.
        a = NULL_REGISTRY.counter("anything")
        b = NULL_REGISTRY.histogram("else")
        assert a is b
        a.inc()
        b.observe(1.0)
        NULL_REGISTRY.gauge("g").set(2.0)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry.enabled is True


class TestAggregator:
    def test_folds_solve_stream_into_registry(self):
        reg = MetricsRegistry()
        agg = MetricsAggregator(reg)
        for event in [
            ev("solve_start", 0.0, backend="simplex"),
            ev("phase_end", 0.4, phase="simplex_phase2", duration=0.4, pivots=80),
            ev("node_open", 0.5, node=1),
            ev("node_close", 0.6, node=1),
            ev("node_prune", 0.7, node=2),
            ev("incumbent", 0.7, objective=9.0, gap=0.1),
            ev("cut_round", 0.8, round=1, generated=5, added=2),
            ev("solve_end", 1.0, status="optimal"),
        ]:
            agg.on_event(event)
        assert reg.counter("simplex_pivots").value == 80
        assert reg.gauge("pivots_per_sec").value == pytest.approx(200.0)
        assert reg.counter("nodes_opened").value == 1
        assert reg.counter("nodes_explored").value == 1
        assert reg.counter("nodes_pruned").value == 1
        assert reg.counter("cuts_added").value == 2
        assert reg.series("incumbent_objective").last == 9.0
        assert reg.series("incumbent_gap").last == pytest.approx(0.1)
        assert reg.histogram("solve_seconds").count == 1
        assert reg.histogram("solve_seconds").max == pytest.approx(1.0)

    def test_infinite_incumbent_gap_not_recorded(self):
        reg = MetricsRegistry()
        agg = MetricsAggregator(reg)
        agg.on_event(ev("incumbent", 0.1, objective=3.0, gap=math.inf))
        assert "incumbent_gap" not in reg
        assert reg.series("incumbent_objective").last == 3.0

    def test_benders_bound_trajectories(self):
        reg = MetricsRegistry()
        agg = MetricsAggregator(reg)
        agg.on_event(ev("benders_iteration", 0.2, iteration=1, lower=1.0, upper=math.inf))
        agg.on_event(ev("benders_iteration", 0.5, iteration=2, lower=2.0, upper=4.0))
        assert reg.counter("benders_iterations").value == 2
        assert [v for _, v in reg.series("benders_lower").points] == [1.0, 2.0]
        assert [v for _, v in reg.series("benders_upper").points] == [4.0]

    def test_fuzz_tallies(self):
        reg = MetricsRegistry()
        agg = MetricsAggregator(reg)
        agg.on_event(ev("fuzz_case", 0.1, index=0, certified=True))
        agg.on_event(ev("fuzz_case", 0.2, index=1, certified=False))
        agg.on_event(SolveEvent(kind="fuzz_disagreement", t=0.2,
                                data={"family": "lp", "kind": "objective"}))
        assert reg.counter("fuzz_cases").value == 2
        assert reg.counter("fuzz_certified").value == 1
        assert reg.counter("fuzz_disagreements").value == 1

    def test_warm_cold_lp_solves(self):
        reg = MetricsRegistry()
        agg = MetricsAggregator(reg)
        agg.on_event(ev("lp_cold", 0.1, node=0, pivots=40, reason="no_warm_start"))
        agg.on_event(ev("lp_warm", 0.2, node=1, pivots=3, mode="dual"))
        agg.on_event(ev("lp_warm", 0.3, node=2, pivots=6, mode="primal"))
        assert reg.counter("lp_warm_solves").value == 2
        assert reg.counter("lp_cold_solves").value == 1
        assert reg.gauge("lp_warm_hit_rate").value == pytest.approx(2 / 3)
        hist = reg.histogram("lp_pivots_per_solve")
        assert hist.count == 3
        assert hist.max == 40

    def test_benders_parallel_rounds(self):
        reg = MetricsRegistry()
        agg = MetricsAggregator(reg)
        agg.on_event(ev("benders_parallel", 0.1, iteration=1, scenarios=8,
                        workers=4, warm_hits=0))
        agg.on_event(ev("benders_parallel", 0.4, iteration=2, scenarios=8,
                        workers=4, warm_hits=8))
        assert reg.counter("benders_parallel_rounds").value == 2
        assert reg.counter("benders_warm_hits").value == 8
        assert reg.gauge("benders_workers").value == 4.0
