"""CLI smoke/behaviour tests (in-process via main(argv))."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.vm == "m1.large" and args.horizon == 24


class TestPlanCommand:
    def test_prints_schedule(self, capsys):
        code = main(["plan", "--vm", "c1.medium", "--horizon", "6", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "DRRP cost" in out
        assert out.count("RENT") >= 1

    def test_unknown_vm(self, capsys):
        code = main(["plan", "--vm", "t2.nano"])
        assert code == 2
        assert "unknown VM class" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_summary_contents(self, capsys):
        code = main(["analyze", "--vm", "c1.medium"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Shapiro-Wilk" in out
        assert "ADF" in out

    def test_unknown_vm(self, capsys):
        assert main(["analyze", "--vm", "bogus"]) == 2


class TestSimulateCommand:
    def test_bakeoff_runs(self, capsys):
        code = main(["simulate", "--vm", "c1.medium", "--hours", "6", "--lookahead", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "oracle" in out and "overpay" in out

    def test_unknown_vm(self, capsys):
        assert main(["simulate", "--vm", "bogus"]) == 2


class TestReportCommand:
    def test_single_figure(self, capsys):
        code = main(["report", "fig4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4" in out


class TestFuzzCommand:
    def test_small_seeded_run(self, capsys):
        code = main(["fuzz", "--seed", "0", "--cases", "7", "--no-shrink"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz: cases=7 certified=7 gap_violations=0" in out

    def test_family_subset_and_tallies(self, capsys):
        code = main(["fuzz", "--seed", "2", "--cases", "4", "--families", "lp,drrp"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lp" in out and "drrp" in out and "milp" not in out

    def test_unknown_family_exits_2(self, capsys):
        code = main(["fuzz", "--families", "lp,bogus"])
        assert code == 2
        assert "unknown families" in capsys.readouterr().err

    def test_telemetry_summary(self, capsys):
        code = main(["fuzz", "--seed", "1", "--cases", "3", "--telemetry", "summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry: events=4" in out  # 3 fuzz_case + 1 fuzz_summary

    def test_telemetry_json_lists_event_kinds(self, capsys):
        code = main(["fuzz", "--seed", "1", "--cases", "2", "--telemetry", "json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz_case" in out and "fuzz_summary" in out

    def test_zero_time_limit_stops_on_deadline(self, capsys):
        # Deadline-truncated campaigns are clean-but-partial: exit 3, not 0.
        code = main(["fuzz", "--seed", "0", "--time-limit", "0"])
        out = capsys.readouterr().out
        assert code == 3
        assert "cases=0" in out and "deadline" in out


class TestExitCodeContract:
    """0 optimal / 1 failure / 2 usage / 3 usable-but-not-optimal."""

    def test_plan_optimal_is_0(self, capsys):
        assert main(["plan", "--vm", "c1.medium", "--horizon", "5", "--seed", "1"]) == 0
        capsys.readouterr()

    def test_plan_time_limited_incumbent_is_3(self, capsys):
        # a zero budget still yields the warm-start incumbent -> exit 3
        code = main(["plan", "--vm", "c1.medium", "--horizon", "6", "--seed", "1",
                     "--time-limit", "0"])
        out = capsys.readouterr().out
        assert code == 3
        assert "best incumbent" in out

    def test_plan_usage_error_is_2(self, capsys):
        assert main(["plan", "--vm", "t2.bogus"]) == 2
        capsys.readouterr()

    def test_fuzz_clean_run_is_0(self, capsys):
        assert main(["fuzz", "--seed", "0", "--cases", "3", "--no-shrink"]) == 0
        capsys.readouterr()


class TestServiceCommands:
    def test_submit_unreachable_server_is_1(self, capsys):
        code = main(["submit", "--url", "http://127.0.0.1:1", "--horizon", "4"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_submit_roundtrip_and_cache_exit_codes(self, capsys):
        from repro.service import ServiceConfig, serve

        service, httpd = serve(port=0, config=ServiceConfig(workers=1), block=False)
        try:
            argv = ["submit", "--url", httpd.url, "--vm", "c1.medium",
                    "--horizon", "5", "--seed", "3"]
            assert main(argv) == 0
            out = capsys.readouterr().out
            assert "optimal" in out and "cost $" in out
            assert main(argv) == 0  # cache hit is still an optimal answer
            assert "[cache hit]" in capsys.readouterr().out
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()

    def test_bench_service_small_run(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        code = main(["bench-service", "--requests", "20", "--duplicate-share", "0.3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "service bench: 20 reqs" in out
        assert (tmp_path / "BENCH_service.json").exists()

    def test_bench_service_bad_args_is_2(self, capsys):
        assert main(["bench-service", "--requests", "0"]) == 2
        capsys.readouterr()


class TestExportCommand:
    def test_writes_csvs(self, tmp_path, capsys):
        code = main(["export-dataset", str(tmp_path / "ds")])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count(".csv") == 4
        from repro.market import traces_from_csv_dir

        back = traces_from_csv_dir(tmp_path / "ds")
        assert len(back) == 4


class TestRunCommand:
    def test_drrp_trace_round_trips_and_root_matches_solve(self, tmp_path, capsys):
        out_dir = tmp_path / "run"
        code = main(["run", "drrp", "--horizon", "8", "--seed", "3",
                     "--out-dir", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "== span tree ==" in out and "manifest:" in out

        from repro.obs import load_chrome_trace, read_events_jsonl

        roots, _ = load_chrome_trace(out_dir / "drrp.trace.json")
        solve_roots = [r for r in roots if r.category == "solve"]
        assert len(solve_roots) == 1
        root = solve_roots[0]

        # acceptance: root span duration == solve_start -> solve_end, <1 ms off
        events = read_events_jsonl(out_dir / "events.jsonl")
        t0 = next(e.t for e in events if e.kind == "solve_start")
        t1 = next(e.t for e in reversed(events) if e.kind == "solve_end")
        assert abs(root.duration - (t1 - t0)) < 1e-3

        # `report` on the trace file renders the same tree
        code = main(["report", str(out_dir / "drrp.trace.json")])
        rep = capsys.readouterr().out
        assert code == 0
        assert "chrome trace" in rep and "solve[" in rep

    def test_run_writes_replayable_manifest(self, tmp_path, capsys):
        out_dir = tmp_path / "m"
        code = main(["run", "drrp", "--horizon", "6", "--seed", "1",
                     "--out-dir", str(out_dir)])
        capsys.readouterr()
        assert code == 0

        from repro.obs import RunManifest

        first = RunManifest.load(out_dir / "manifest.json")
        code = main(["run", "drrp", "--horizon", "6", "--seed", "1",
                     "--out-dir", str(tmp_path / "m2")])
        capsys.readouterr()
        assert code == 0
        second = RunManifest.load(tmp_path / "m2" / "manifest.json")
        assert first.replays(second)

    def test_experiment_target(self, tmp_path, capsys):
        out_dir = tmp_path / "fig4"
        code = main(["run", "fig4", "--out-dir", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4" in out and "experiment:fig4" in out
        assert (out_dir / "manifest.json").exists()
        assert (out_dir / "fig4.trace.json").exists()
        assert (out_dir / "events.jsonl").exists()

    def test_unknown_target_exits_2(self, capsys):
        assert main(["run", "bogus"]) == 2
        assert "unknown run target" in capsys.readouterr().err


class TestReportOnRecordedFiles:
    def test_manifest_file_renders_provenance(self, tmp_path, capsys):
        out_dir = tmp_path / "run"
        assert main(["run", "drrp", "--horizon", "6", "--out-dir", str(out_dir)]) == 0
        capsys.readouterr()
        code = main(["report", str(out_dir / "manifest.json")])
        out = capsys.readouterr().out
        assert code == 0
        assert "run manifest" in out and "result_digest: sha256:" in out

    def test_event_log_renders_tree_and_metrics(self, tmp_path, capsys):
        out_dir = tmp_path / "run"
        assert main(["run", "drrp", "--horizon", "6", "--out-dir", str(out_dir)]) == 0
        capsys.readouterr()
        code = main(["report", str(out_dir / "events.jsonl")])
        out = capsys.readouterr().out
        assert code == 0
        assert "event log" in out and "== metrics ==" in out

    def test_unrecognized_file_exits_2(self, tmp_path, capsys):
        junk = tmp_path / "junk.txt"
        junk.write_text("not an artifact")
        code = main(["report", str(junk)])
        assert code == 2
        assert "not a trace" in capsys.readouterr().err


class TestPlanObservability:
    def test_trace_and_manifest_flags(self, tmp_path, capsys):
        trace = tmp_path / "plan.trace.json"
        manifest = tmp_path / "plan.manifest.json"
        code = main(["plan", "--horizon", "6", "--seed", "2",
                     "--trace", str(trace), "--manifest", str(manifest)])
        out = capsys.readouterr().out
        assert code == 0
        assert trace.exists() and manifest.exists()
        assert "manifest: plan/m1.large/6" in out

        from repro.obs import RunManifest, load_chrome_trace

        roots, _ = load_chrome_trace(trace)
        assert any(r.category == "solve" for r in roots)
        man = RunManifest.load(manifest)
        assert man.seed == 2 and man.config["horizon"] == 6


class TestFuzzObservability:
    def test_manifest_flag(self, tmp_path, capsys):
        manifest = tmp_path / "fuzz.manifest.json"
        code = main(["fuzz", "--seed", "4", "--cases", "6",
                     "--manifest", str(manifest)])
        out = capsys.readouterr().out
        assert code == 0
        assert manifest.exists() and "manifest: fuzz/campaign" in out

        from repro.obs import RunManifest

        man = RunManifest.load(manifest)
        assert man.events.get("fuzz_case") == 6

    def test_workers_flag_shards_campaign(self, capsys):
        code = main(["fuzz", "--seed", "4", "--cases", "8", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cases=8" in out


class TestBenchSolverCommand:
    def _tiny(self, extra=()):
        return [
            "bench-solver", "--seed", "1", "--bb-instances", "1",
            "--bb-vars", "6", "--bb-rows", "4", "--node-limit", "200",
            "--drrp-horizon", "6", "--scenarios", "8", *extra,
        ]

    def test_writes_record_and_summary(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        code = main(self._tiny(["--out", "BENCH_tiny.json"]))
        out = capsys.readouterr().out
        assert code == 0
        assert "bb: warm" in out and "benders:" in out
        assert (tmp_path / "BENCH_tiny.json").exists()

    def test_check_against_self_passes(self, capsys, tmp_path, monkeypatch):
        # --out and --check-against point at the same file: the fresh
        # record is written first, so the gate compares a record against
        # itself — deterministic, exercises the full CLI path.
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        code = main(self._tiny([
            "--out", "base.json", "--check-against", str(tmp_path / "base.json"),
        ]))
        out = capsys.readouterr().out
        assert code == 0
        assert "regression gate passed" in out

    def test_missing_baseline_exits_2(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        code = main(self._tiny(["--check-against", str(tmp_path / "nope.json")]))
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_too_few_scenarios_exits_2(self, capsys):
        code = main(["bench-solver", "--scenarios", "3"])
        assert code == 2
        assert "scenarios" in capsys.readouterr().err
