"""CLI smoke/behaviour tests (in-process via main(argv))."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.vm == "m1.large" and args.horizon == 24


class TestPlanCommand:
    def test_prints_schedule(self, capsys):
        code = main(["plan", "--vm", "c1.medium", "--horizon", "6", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "DRRP cost" in out
        assert out.count("RENT") >= 1

    def test_unknown_vm(self, capsys):
        code = main(["plan", "--vm", "t2.nano"])
        assert code == 2
        assert "unknown VM class" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_summary_contents(self, capsys):
        code = main(["analyze", "--vm", "c1.medium"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Shapiro-Wilk" in out
        assert "ADF" in out

    def test_unknown_vm(self, capsys):
        assert main(["analyze", "--vm", "bogus"]) == 2


class TestSimulateCommand:
    def test_bakeoff_runs(self, capsys):
        code = main(["simulate", "--vm", "c1.medium", "--hours", "6", "--lookahead", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "oracle" in out and "overpay" in out

    def test_unknown_vm(self, capsys):
        assert main(["simulate", "--vm", "bogus"]) == 2


class TestReportCommand:
    def test_single_figure(self, capsys):
        code = main(["report", "fig4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig4" in out


class TestFuzzCommand:
    def test_small_seeded_run(self, capsys):
        code = main(["fuzz", "--seed", "0", "--cases", "7", "--no-shrink"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz: cases=7 certified=7 gap_violations=0" in out

    def test_family_subset_and_tallies(self, capsys):
        code = main(["fuzz", "--seed", "2", "--cases", "4", "--families", "lp,drrp"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lp" in out and "drrp" in out and "milp" not in out

    def test_unknown_family_exits_2(self, capsys):
        code = main(["fuzz", "--families", "lp,bogus"])
        assert code == 2
        assert "unknown families" in capsys.readouterr().err

    def test_telemetry_summary(self, capsys):
        code = main(["fuzz", "--seed", "1", "--cases", "3", "--telemetry", "summary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry: events=4" in out  # 3 fuzz_case + 1 fuzz_summary

    def test_telemetry_json_lists_event_kinds(self, capsys):
        code = main(["fuzz", "--seed", "1", "--cases", "2", "--telemetry", "json"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz_case" in out and "fuzz_summary" in out

    def test_zero_time_limit_stops_on_deadline(self, capsys):
        code = main(["fuzz", "--seed", "0", "--time-limit", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cases=0" in out and "deadline" in out


class TestExportCommand:
    def test_writes_csvs(self, tmp_path, capsys):
        code = main(["export-dataset", str(tmp_path / "ds")])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count(".csv") == 4
        from repro.market import traces_from_csv_dir

        back = traces_from_csv_dir(tmp_path / "ds")
        assert len(back) == 4
