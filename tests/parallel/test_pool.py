"""Process-pool mapping tests."""

import os

import numpy as np
import pytest

from repro.parallel import default_workers, parallel_map, spawn_rngs


def square(x):
    return x * x


def pid_of(_):
    return os.getpid()


class TestParallelMap:
    def test_serial_path_matches_map(self):
        items = list(range(20))
        assert parallel_map(square, items, n_workers=1) == [x * x for x in items]

    def test_parallel_path_matches_serial(self):
        items = list(range(50))
        serial = parallel_map(square, items, n_workers=1)
        parallel = parallel_map(square, items, n_workers=2)
        assert serial == parallel

    def test_order_preserved(self):
        items = list(range(100, 0, -1))
        out = parallel_map(square, items, n_workers=2)
        assert out == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(square, [], n_workers=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(pid_of, [1], n_workers=4) == [os.getpid()]

    def test_uses_multiple_processes(self):
        if (os.cpu_count() or 1) < 2:
            pytest.skip("single-core machine")
        pids = set(parallel_map(pid_of, list(range(32)), n_workers=2, chunksize=1))
        assert os.getpid() not in pids  # ran in workers

    def test_default_workers_positive(self):
        assert 1 <= default_workers() <= 8

    def test_workers_clamped_to_item_count(self):
        # 2 items must never fan out to more than 2 worker processes
        pids = set(parallel_map(pid_of, [1, 2], n_workers=8, chunksize=1))
        assert len(pids) <= 2


class TestWorkersEnvOverride:
    def test_env_value_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_overrides_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "12")
        assert default_workers() == 12

    def test_env_floored_at_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        assert default_workers() == 1

    def test_junk_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert 1 <= default_workers() <= 8


class TestSeeding:
    def test_spawned_streams_deterministic(self):
        a = [r.normal() for r in spawn_rngs(3, 4)]
        b = [r.normal() for r in spawn_rngs(3, 4)]
        assert np.allclose(a, b)


class TestWorkerTelemetryMerging:
    def test_four_worker_fuzz_run_merges_into_one_ordered_stream(self, tmp_path):
        from repro.solver.telemetry import EventRecorder
        from repro.verify import FuzzConfig, run_fuzz_parallel

        recorder = EventRecorder()
        config = FuzzConfig(seed=11, max_cases=12, out_dir=str(tmp_path))
        report = run_fuzz_parallel(config, n_workers=4, listener=recorder)
        assert report.cases == 12 and report.ok

        events = recorder.events
        assert events, "workers must forward their events to the parent hub"
        # one stream, monotone non-decreasing parent timestamps
        times = [e.t for e in events]
        assert times == sorted(times)
        # every worker-side event is tagged with a compact worker id
        case_events = [e for e in events if e.kind == "fuzz_case"]
        assert len(case_events) == 12
        workers = {e.data["worker"] for e in case_events}
        assert workers and workers <= {0, 1, 2, 3}
        # the merged campaign summary comes from the parent, after the cases
        summary = [e for e in events if e.kind == "fuzz_summary"][-1]
        assert summary.data["cases"] == 12
        assert summary.data["shards"] == 4

    def test_worker_events_preserve_worker_local_clock(self):
        from repro.solver.telemetry import EventRecorder
        from repro.verify import FuzzConfig, run_fuzz_parallel

        recorder = EventRecorder()
        run_fuzz_parallel(FuzzConfig(seed=3, max_cases=4), n_workers=2,
                          listener=recorder)
        shard_events = [e for e in recorder.events if "worker" in e.data]
        assert shard_events
        assert all(e.data["worker_t"] >= 0.0 for e in shard_events)
