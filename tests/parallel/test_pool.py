"""Process-pool mapping tests."""

import os

import numpy as np
import pytest

from repro.parallel import default_workers, parallel_map, spawn_rngs


def square(x):
    return x * x


def pid_of(_):
    return os.getpid()


class TestParallelMap:
    def test_serial_path_matches_map(self):
        items = list(range(20))
        assert parallel_map(square, items, n_workers=1) == [x * x for x in items]

    def test_parallel_path_matches_serial(self):
        items = list(range(50))
        serial = parallel_map(square, items, n_workers=1)
        parallel = parallel_map(square, items, n_workers=2)
        assert serial == parallel

    def test_order_preserved(self):
        items = list(range(100, 0, -1))
        out = parallel_map(square, items, n_workers=2)
        assert out == [x * x for x in items]

    def test_empty_input(self):
        assert parallel_map(square, [], n_workers=4) == []

    def test_single_item_stays_serial(self):
        assert parallel_map(pid_of, [1], n_workers=4) == [os.getpid()]

    def test_uses_multiple_processes(self):
        if (os.cpu_count() or 1) < 2:
            pytest.skip("single-core machine")
        pids = set(parallel_map(pid_of, list(range(32)), n_workers=2, chunksize=1))
        assert os.getpid() not in pids  # ran in workers

    def test_default_workers_positive(self):
        assert 1 <= default_workers() <= 8

    def test_workers_clamped_to_item_count(self):
        # 2 items must never fan out to more than 2 worker processes
        pids = set(parallel_map(pid_of, [1, 2], n_workers=8, chunksize=1))
        assert len(pids) <= 2


class TestWorkersEnvOverride:
    def test_env_value_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_overrides_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "12")
        assert default_workers() == 12

    def test_env_floored_at_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        assert default_workers() == 1

    def test_junk_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        assert 1 <= default_workers() <= 8


class TestSeeding:
    def test_spawned_streams_deterministic(self):
        a = [r.normal() for r in spawn_rngs(3, 4)]
        b = [r.normal() for r in spawn_rngs(3, 4)]
        assert np.allclose(a, b)
