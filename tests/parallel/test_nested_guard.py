"""Nested fork-bomb guard: parallel_map inside a worker stays serial."""

import os

from repro.parallel import (
    PARALLEL_DEPTH_ENV,
    in_parallel_worker,
    parallel_map,
    serial_guard,
)


def pid_of(_):
    return os.getpid()


def nested_map(_):
    """Runs inside a pool worker; tries to fan out again."""
    pids = parallel_map(pid_of, list(range(6)), n_workers=4, chunksize=1)
    return (os.getpid(), sorted(set(pids)), in_parallel_worker())


class TestProcessDepthGuard:
    def test_nested_parallel_map_is_forced_serial(self):
        results = parallel_map(nested_map, [1, 2], n_workers=2, chunksize=1)
        for worker_pid, inner_pids, flagged in results:
            assert flagged, "worker process must know it is a worker"
            # the inner map must not have forked: one pid, the worker's own
            assert inner_pids == [worker_pid]

    def test_env_depth_marks_worker(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_DEPTH_ENV, "1")
        assert in_parallel_worker()
        monkeypatch.setenv(PARALLEL_DEPTH_ENV, "garbage")
        assert not in_parallel_worker()
        monkeypatch.delenv(PARALLEL_DEPTH_ENV)
        assert not in_parallel_worker()


class TestSerialGuard:
    def test_guard_forces_serial_in_thread(self):
        assert not in_parallel_worker()
        with serial_guard():
            assert in_parallel_worker()
            pids = set(parallel_map(pid_of, list(range(8)), n_workers=4, chunksize=1))
            assert pids == {os.getpid()}
        assert not in_parallel_worker()

    def test_guard_is_reentrant(self):
        with serial_guard():
            with serial_guard():
                assert in_parallel_worker()
            assert in_parallel_worker()
        assert not in_parallel_worker()

    def test_explicit_single_worker_unaffected(self):
        with serial_guard():
            assert parallel_map(pid_of, [1], n_workers=1) == [os.getpid()]
