"""Extension experiments: EVPI/VSS, availability, horizon-length."""

import pytest

from repro.experiments import ext_availability, ext_horizon, ext_risk, ext_value


class TestExtValue:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_value.run(horizon=4, max_branching=2, classes=("c1.medium",))

    def test_chain_holds(self, result):
        assert result.findings["chain_ws_le_sp_le_eev"]
        assert result.findings["perfect_information_has_value"]

    def test_row_fields(self, result):
        row = result.rows[0]
        assert row["evpi"] == pytest.approx(row["stochastic"] - row["wait_and_see"])
        assert row["vss"] == pytest.approx(
            row["expected_value_policy"] - row["stochastic"]
        )


class TestExtAvailability:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_availability.run()

    def test_findings(self, result):
        assert result.findings["availability_bids_ordered"]
        assert result.findings["effective_price_above_bid"]

    def test_three_classes(self, result):
        assert len(result.rows) == 3
        for row in result.rows:
            assert 0.0 <= row["mean_bid_availability"] <= 1.0


class TestExtHorizon:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_horizon.run(horizons=(6, 12, 24, 48), total_hours=48)

    def test_monotone(self, result):
        assert result.findings["longer_horizons_never_cost_more"]

    def test_validation(self):
        with pytest.raises(ValueError):
            ext_horizon.run(horizons=(96,), total_hours=48)

    def test_rows_per_horizon(self, result):
        assert [r["horizon_h"] for r in result.rows] == [6, 12, 24, 48]


class TestExtRisk:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_risk.run(horizon=4, max_branching=2, risk_weights=(0.0, 1.0))

    def test_frontier_monotone(self, result):
        assert result.findings["cvar_never_increases_with_risk_weight"]
        assert result.findings["expected_cost_never_decreases"]

    def test_rows(self, result):
        assert [r["risk_weight"] for r in result.rows] == [0.0, 1.0]
        for row in result.rows:
            assert row["cvar"] >= row["expected_cost"] - 1e-6
