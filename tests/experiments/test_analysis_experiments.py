"""Experiment modules for the spot-price analysis figures (3-8)."""

import numpy as np
import pytest

from repro.experiments import (
    fig3_outliers,
    fig4_updates,
    fig5_histogram,
    fig6_decompose,
    fig7_correlogram,
    fig8_prediction,
)
from repro.experiments.base import ExperimentResult, format_table
from repro.timeseries import AutoARIMASpec


class TestBase:
    def test_format_table_alignment(self):
        rows = [{"a": 1.23456, "b": "x"}, {"a": 2.0, "b": "long-entry"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "1.2346" in lines[2]

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_to_text_includes_findings(self):
        r = ExperimentResult("figX", "t", rows=[{"v": 1}], findings={"ok": True})
        assert "ok: True" in r.to_text()


class TestFig3:
    def test_paper_findings_hold(self):
        r = fig3_outliers.run()
        assert r.findings["outliers_below_3pct_everywhere"]
        assert r.findings["outliers_increase_with_class_power"]

    def test_rows_cover_four_classes(self):
        r = fig3_outliers.run()
        assert {row["vm_class"] for row in r.rows} == {
            "m1.large", "m1.xlarge", "c1.medium", "c1.xlarge",
        }
        for row in r.rows:
            assert row["q1"] <= row["median"] <= row["q3"]


class TestFig4:
    def test_irregular_sampling_detected(self):
        r = fig4_updates.run()
        assert r.findings["sampling_is_irregular"]
        assert r.rows[0]["max_per_day"] > r.rows[0]["min_per_day"]

    def test_series_length_matches_days(self):
        r = fig4_updates.run()
        assert r.series["daily_update_counts"].size == r.rows[0]["days"]


class TestFig5:
    def test_normality_rejected(self):
        r = fig5_histogram.run()
        assert r.findings["normality_rejected_shapiro"]
        assert r.rows[0]["shapiro_p"] < 0.05

    def test_density_series_shapes(self):
        r = fig5_histogram.run(bins=20)
        assert r.series["histogram_counts"].size == 20
        assert r.series["density_x"].shape == r.series["density"].shape


class TestFig6:
    def test_paper_findings_hold(self):
        r = fig6_decompose.run()
        assert r.findings["no_clear_trend"]
        assert r.findings["cyclic_pattern_present"]

    def test_components_align(self):
        r = fig6_decompose.run()
        n = r.series["observed"].size
        assert r.series["trend"].size == n
        assert r.series["seasonal"].size == n


class TestFig7:
    def test_weak_but_significant_correlation(self):
        r = fig7_correlogram.run()
        assert r.findings["some_lags_significant"]
        assert r.findings["correlation_weak_overall"]
        assert 0 < r.findings["max_abs_acf"] < 0.9

    def test_row_count_matches_lags(self):
        r = fig7_correlogram.run(max_lag=12)
        assert len(r.rows) == 12


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        # small search box keeps the test quick; conclusions are unchanged
        return fig8_prediction.run(
            spec=AutoARIMASpec(max_p=1, max_q=1, max_P=1, max_Q=0, s=24)
        )

    def test_no_substantial_skill(self, result):
        assert result.findings["no_substantial_skill_over_mean"]
        assert result.findings["improvement_over_mean_small"]

    def test_forecast_hover(self, result):
        assert result.findings["forecasts_hover_near_mean"]
        assert result.series["predicted"].size == 24

    def test_four_predictors_reported(self, result):
        assert len(result.rows) == 4
        names = {row["predictor"] for row in result.rows}
        assert "expected-mean" in names and "holt-winters(24)" in names

    def test_holt_winters_also_lacks_skill(self, result):
        assert result.findings["holt_winters_no_substantial_skill"]

    def test_series_stationary(self, result):
        assert result.findings["series_stationary_adf"]
