"""Smoke-test the benchmark harness's machine-readable BENCH_<name>.json.

``benchmarks/conftest.py`` is not a package, so load it by path; the
record writer itself must work under plain pytest (no pytest-benchmark).
"""

import importlib.util
import json
from pathlib import Path

from repro.experiments import fig4_updates, fig10_drrp_costs
from repro.solver.telemetry import EventRecorder


def _load_bench_conftest():
    path = Path(__file__).resolve().parents[2] / "benchmarks" / "conftest.py"
    spec = importlib.util.spec_from_file_location("bench_conftest", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestBenchRecord:
    def test_writes_record_for_figure_bench(self, tmp_path):
        bench = _load_bench_conftest()
        result = fig4_updates.run()
        path = bench.write_bench_record(result, 0.123, out_dir=tmp_path)
        assert path == tmp_path / "BENCH_fig4.json"
        payload = json.loads(path.read_text())
        assert payload["name"] == "fig4"
        assert payload["median_wall_s"] == 0.123
        assert payload["manifest_digest"] == result.digest()
        assert payload["counters"] == {}  # no recorder attached

    def test_counters_come_from_recorded_events(self, tmp_path):
        bench = _load_bench_conftest()
        recorder = EventRecorder()
        result = fig10_drrp_costs.run(horizon=6, n_trials=1, listener=recorder)
        path = bench.write_bench_record(result, 0.5, recorder=recorder,
                                        out_dir=tmp_path)
        payload = json.loads(path.read_text())
        counters = payload["counters"]
        assert counters["events"] == len(recorder)
        assert counters["solves"] == 3  # one DRRP solve per planning class
        assert "phase_seconds" in counters
        assert payload["manifest_digest"].startswith("sha256:")

    def test_env_var_redirects_output(self, tmp_path, monkeypatch):
        bench = _load_bench_conftest()
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "env"))
        result = fig4_updates.run()
        path = bench.write_bench_record(result, 0.01)
        assert path.parent == tmp_path / "env"

    def test_non_experiment_result_yields_no_record(self, tmp_path):
        bench = _load_bench_conftest()
        assert bench.write_bench_record(object(), 0.1, out_dir=tmp_path) is None
        assert list(tmp_path.iterdir()) == []
