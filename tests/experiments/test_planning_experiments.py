"""Experiment modules for the planning figures (10, 11, 12a, 12b) — run with
reduced parameters so the unit suite stays fast; the full-parameter runs
live in benchmarks/."""

import pytest

from repro.experiments import (
    fig10_drrp_costs,
    fig11_sensitivity,
    fig12a_overpay,
    fig12b_precision,
)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_drrp_costs.run(n_trials=2)

    def test_drrp_beats_noplan(self, result):
        assert result.findings["drrp_always_cheaper"]

    def test_reduction_ordering(self, result):
        assert result.findings["reduction_grows_with_class_power"]

    def test_io_share_ordering(self, result):
        assert result.findings["io_share_grows_with_class_power"]

    def test_rows_have_share_decomposition(self, result):
        for row in result.rows:
            total = row["share_compute"] + row["share_io_storage"] + row["share_transfer"]
            assert total == pytest.approx(1.0, abs=1e-6)


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_sensitivity.run(n_trials=1, steps=2, demand_means=(0.2, 0.8, 1.6))

    def test_cpu_direction(self, result):
        assert result.findings["cpu_cost_up_ratio_down"]

    def test_io_direction(self, result):
        assert result.findings["io_cost_up_ratio_up"]

    def test_demand_direction(self, result):
        assert result.findings["heavy_demand_kills_saving"]
        ratios = result.series["demand_ratios"]
        assert ratios[-1] > ratios[0]

    def test_ratios_are_in_unit_interval(self, result):
        for row in result.rows:
            assert 0.0 < row["cost_ratio"] <= 1.0 + 1e-9


class TestFig12a:
    @pytest.fixture(scope="class")
    def result(self):
        # one class, short window: exercises the full pipeline cheaply
        from repro.timeseries import AutoARIMASpec

        return fig12a_overpay.run(
            horizon=12,
            lookahead=4,
            max_branching=2,
            classes=("c1.medium",),
            forecast_spec=AutoARIMASpec(max_p=1, max_q=0, max_P=0, max_Q=0, s=24),
        )

    def test_overpays_nonnegative(self, result):
        assert result.findings["overpay_all_nonnegative"]

    def test_srrp_beats_drrp(self, result):
        # the robust claim at any window size; "on-demand worst" needs the
        # longer default window and is asserted by the fig12a benchmark
        row = result.rows[0]
        assert row["sto-predict"] <= row["det-predict"] + 1e-9
        assert row["sto-exp-mean"] <= row["det-exp-mean"] + 1e-9
        assert row["on-demand"] > 0

    def test_ideal_cost_positive(self, result):
        assert result.rows[0]["ideal_cost"] > 0


class TestFig12b:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12b_precision.run(
            horizon=12,
            lookahead=4,
            max_branching=2,
            deviations=(-0.10, -0.02, 0.02, 0.10),
        )

    def test_row_per_deviation(self, result):
        assert len(result.rows) == 4

    def test_underbidding_hurts(self, result):
        errs = {row["deviation_pct"]: row["percent_error"] for row in result.rows}
        assert errs[-10.0] >= errs[10.0] - 1.0

    def test_baseline_recorded(self, result):
        assert result.series["baseline_cost"][0] > 0


class TestReportRegistry:
    def test_all_experiments_registered(self):
        from repro.experiments.report import ALL_EXPERIMENTS

        assert set(ALL_EXPERIMENTS) == {
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig10", "fig11", "fig12a", "fig12b",
            "ext_value", "ext_availability", "ext_horizon", "ext_risk",
        }

    def test_unknown_id_rejected(self):
        from repro.experiments.report import run_all

        with pytest.raises(ValueError):
            run_all(["fig99"])

    def test_run_subset_and_render(self):
        from repro.experiments.report import render_report, run_all

        results = run_all(["fig4"])
        text = render_report(results)
        assert "fig4" in text
