"""Branch-and-bound correctness: knapsacks, lot-sizing-like MILPs,
randomized cross-check against scipy.optimize.milp, and option handling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import (
    BranchAndBoundOptions,
    Model,
    SolverStatus,
    branch_and_bound,
    solve,
)
from repro.solver.scipy_backend import solve_lp_scipy, solve_milp_scipy
from repro.solver.simplex import solve_lp_simplex


def knapsack_model(values, weights, cap):
    m = Model("knapsack")
    xs = [m.add_var(f"x{i}", vtype="binary") for i in range(len(values))]
    m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= cap)
    m.set_objective(sum(v * x for v, x in zip(values, xs)), sense="max")
    return m


class TestKnapsack:
    def test_small_knapsack_exact(self):
        m = knapsack_model([10, 13, 7, 8], [3, 4, 2, 3], 7)
        r = solve(m, backend="bb-scipy")
        assert r.status is SolverStatus.OPTIMAL
        assert r.objective == pytest.approx(23.0)

    def test_simplex_backend_agrees(self):
        m = knapsack_model([10, 13, 7, 8], [3, 4, 2, 3], 7)
        r = solve(m, backend="simplex")
        assert r.objective == pytest.approx(23.0)

    def test_all_items_fit(self):
        m = knapsack_model([1, 2, 3], [1, 1, 1], 10)
        r = solve(m, backend="bb-scipy")
        assert r.objective == pytest.approx(6.0)
        assert np.allclose(np.round(r.x), 1.0)

    def test_nothing_fits(self):
        m = knapsack_model([5, 5], [10, 10], 3)
        r = solve(m, backend="bb-scipy")
        assert r.objective == pytest.approx(0.0)


class TestFixedChargeStructure:
    """Miniature of the DRRP structure: continuous flow + forcing binaries."""

    def _model(self, setup_cost):
        m = Model("lot")
        T = 4
        demand = [2.0, 1.0, 3.0, 2.0]
        alpha = [m.add_var(f"a{t}") for t in range(T)]
        beta = [m.add_var(f"b{t}") for t in range(T)]
        chi = [m.add_var(f"c{t}", vtype="binary") for t in range(T)]
        B = 100.0
        hold = 0.3
        for t in range(T):
            prev = beta[t - 1] if t else 0.0
            m.add_constr(prev + alpha[t] - beta[t] == demand[t])
            m.add_constr(alpha[t] <= B * chi[t])
        m.set_objective(
            sum(setup_cost * chi[t] + hold * beta[t] for t in range(T))
        )
        return m

    def test_high_setup_consolidates(self):
        r = solve(self._model(setup_cost=10.0), backend="bb-scipy")
        chi = np.round(r.x[8:12])
        assert chi.sum() < 4  # consolidation happened

    def test_zero_setup_produces_just_in_time(self):
        r = solve(self._model(setup_cost=0.0), backend="bb-scipy")
        beta = r.x[4:8]
        assert np.allclose(beta, 0.0, atol=1e-6)  # no inventory held

    def test_backends_agree(self):
        m = self._model(setup_cost=3.0)
        objs = [solve(m, backend=be).objective for be in ("scipy", "bb-scipy", "simplex")]
        assert max(objs) - min(objs) < 1e-5


class TestOptionsAndLimits:
    def _hard_model(self, n=14, seed=3):
        rng = np.random.default_rng(seed)
        vals = rng.integers(5, 30, n).astype(float)
        wts = rng.integers(3, 15, n).astype(float)
        return knapsack_model(list(vals), list(wts), float(wts.sum() // 3))

    def test_node_limit_returns_feasible_or_limit(self):
        m = self._hard_model()
        opts = BranchAndBoundOptions(node_limit=3)
        r = branch_and_bound(m.compile(), solve_lp_scipy, opts)
        assert r.status in (SolverStatus.FEASIBLE, SolverStatus.NODE_LIMIT, SolverStatus.OPTIMAL)

    def test_gap_termination_bounds_error(self):
        m = self._hard_model()
        exact = solve_milp_scipy(m.compile())
        opts = BranchAndBoundOptions(rel_gap=0.10)
        r = branch_and_bound(m.compile(), solve_lp_scipy, opts)
        assert r.status.has_solution
        # within 10% of true optimum (maximization)
        assert r.objective >= exact.objective * 0.9 - 1e-9

    def test_infeasible_mip(self):
        m = Model()
        x = m.add_var("x", vtype="integer", lb=0, ub=10)
        m.add_constr(2 * x == 3)  # no integer solution
        m.set_objective(x)
        r = solve(m, backend="bb-scipy", use_presolve=False)
        assert r.status is SolverStatus.INFEASIBLE

    def test_pure_lp_passthrough(self):
        m = Model()
        x = m.add_var("x", ub=2)
        m.set_objective(-x)
        r = solve(m, backend="bb-scipy")
        assert r.status is SolverStatus.OPTIMAL and r.objective == pytest.approx(-2.0)

    def test_result_gap_property(self):
        m = knapsack_model([4, 5], [1, 1], 2)
        r = solve(m, backend="bb-scipy")
        assert r.gap <= 1e-6


@st.composite
def random_milp(draw):
    """Random mixed problems with a guaranteed feasible integer point."""
    n = draw(st.integers(2, 5))
    m_rows = draw(st.integers(1, 4))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    c = rng.integers(-8, 9, size=n).astype(float)
    A = rng.integers(-4, 5, size=(m_rows, n)).astype(float)
    x0 = rng.integers(0, 3, size=n).astype(float)  # integer anchor point
    b = A @ x0 + rng.integers(0, 4, size=m_rows).astype(float)
    ub = x0 + rng.integers(1, 5, size=n).astype(float)
    n_int = draw(st.integers(1, n))
    return c, A, b, ub, n_int


class TestRandomizedAgainstHiGHS:
    @given(random_milp())
    @settings(max_examples=40, deadline=None)
    def test_bb_matches_scipy_milp(self, data):
        c, A, b, ub, n_int = data
        m = Model()
        xs = []
        for j in range(len(c)):
            vt = "integer" if j < n_int else "continuous"
            xs.append(m.add_var(f"x{j}", lb=0, ub=float(ub[j]), vtype=vt))
        for i in range(A.shape[0]):
            m.add_constr(sum(float(A[i, j]) * xs[j] for j in range(len(xs))) <= float(b[i]))
        m.set_objective(sum(float(c[j]) * xs[j] for j in range(len(xs))))
        p = m.compile()
        ref = solve_milp_scipy(p)
        ours = branch_and_bound(p, solve_lp_scipy)
        assert ref.status is SolverStatus.OPTIMAL
        assert ours.status is SolverStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=1e-5)
        assert p.is_feasible(ours.x, tol=1e-5)

    @given(random_milp())
    @settings(max_examples=15, deadline=None)
    def test_pure_simplex_bb_matches_too(self, data):
        c, A, b, ub, n_int = data
        m = Model()
        xs = []
        for j in range(len(c)):
            vt = "integer" if j < n_int else "continuous"
            xs.append(m.add_var(f"x{j}", lb=0, ub=float(ub[j]), vtype=vt))
        for i in range(A.shape[0]):
            m.add_constr(sum(float(A[i, j]) * xs[j] for j in range(len(xs))) <= float(b[i]))
        m.set_objective(sum(float(c[j]) * xs[j] for j in range(len(xs))))
        p = m.compile()
        ref = solve_milp_scipy(p)
        ours = branch_and_bound(p, solve_lp_simplex)
        assert ours.status is SolverStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=1e-5)
