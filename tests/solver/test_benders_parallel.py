"""Parallel Benders fan-out and per-scenario warm starts.

Every mode — serial simplex subproblems, multi-worker fan-out, and the
legacy cold HiGHS path — must land on the same optimum as the extensive
form; the fan-out only changes *where* subproblems run, never what they
return.
"""

import numpy as np
import pytest

from repro.solver import SolverStatus
from repro.solver.benders import (
    BendersOptions,
    Scenario,
    TwoStageProblem,
    extensive_form,
    solve_benders,
)
from repro.solver.scipy_backend import scipy_available
from repro.solver.telemetry import EventRecorder


def _complete_recourse(seed=0, n=4, m=6, ny0=10, S=8):
    """Two-stage program with elastic recourse: W = [W0 I -I]."""
    rng = np.random.default_rng(seed)
    scenarios = []
    for _ in range(S):
        W0 = rng.uniform(0.1, 1.0, (m, ny0))
        W = np.hstack([W0, np.eye(m), -np.eye(m)])
        T = rng.uniform(0.0, 0.5, (m, n))
        h = rng.uniform(2.0, 8.0, m)
        q = np.concatenate([rng.uniform(0.5, 2.0, ny0), np.full(2 * m, 6.0)])
        y_ub = np.concatenate([rng.uniform(0.5, 3.0, ny0), np.full(2 * m, np.inf)])
        scenarios.append(Scenario(prob=1.0 / S, q=q, W=W, T=T, h=h, y_ub=y_ub))
    return TwoStageProblem(
        c=rng.uniform(1.0, 4.0, n), lb=np.zeros(n), ub=np.full(n, 5.0),
        integrality=np.zeros(n, dtype=int), scenarios=scenarios,
    )


class TestSimplexSubproblems:
    def test_serial_matches_extensive_form(self):
        from repro.solver import solve_compiled

        tsp = _complete_recourse()
        res = solve_benders(tsp, options=BendersOptions(n_workers=1))
        ref = solve_compiled(extensive_form(tsp))
        assert res.status is SolverStatus.OPTIMAL
        assert ref.status is SolverStatus.OPTIMAL
        assert res.objective == pytest.approx(ref.objective, rel=1e-6)

    @pytest.mark.skipif(not scipy_available(), reason="needs scipy")
    def test_simplex_and_scipy_subproblems_agree(self):
        tsp = _complete_recourse(seed=3)
        fast = solve_benders(tsp, options=BendersOptions(subproblem_backend="simplex"))
        legacy = solve_benders(tsp, options=BendersOptions(subproblem_backend="scipy"))
        assert fast.objective == pytest.approx(legacy.objective, rel=1e-6)

    def test_scenarios_warm_start_across_iterations(self):
        tsp = _complete_recourse(seed=5)
        res = solve_benders(tsp, options=BendersOptions(n_workers=1))
        iters = res.nodes
        # iteration 1 is cold for every scenario; each later iteration
        # should warm-start every scenario from its previous basis
        assert res.extra["subproblem_warm_hits"] == len(tsp.scenarios) * (iters - 1)


class TestParallelFanOut:
    def test_parallel_matches_serial(self):
        tsp = _complete_recourse(seed=1)
        serial = solve_benders(tsp, options=BendersOptions(n_workers=1))
        fanned = solve_benders(tsp, options=BendersOptions(n_workers=3))
        assert fanned.status is SolverStatus.OPTIMAL
        assert fanned.objective == pytest.approx(serial.objective, rel=1e-8)
        assert fanned.extra["workers"] == 3
        assert serial.extra["workers"] == 1

    def test_parallel_telemetry(self):
        tsp = _complete_recourse(seed=2)
        rec = EventRecorder()
        res = solve_benders(tsp, options=BendersOptions(n_workers=2), listener=rec)
        assert res.status is SolverStatus.OPTIMAL
        rounds = rec.of_kind("benders_parallel")
        assert len(rounds) == res.nodes  # one fan-out event per iteration
        for ev in rounds:
            assert ev.data["workers"] == 2
            assert ev.data["scenarios"] == len(tsp.scenarios)
        # warm hits reported per round: 0 on the first, all scenarios after
        assert rounds[0].data["warm_hits"] == 0
        assert all(
            ev.data["warm_hits"] == len(tsp.scenarios) for ev in rounds[1:]
        )

    def test_serial_emits_no_parallel_events(self):
        tsp = _complete_recourse(seed=4)
        rec = EventRecorder()
        solve_benders(tsp, options=BendersOptions(n_workers=1), listener=rec)
        assert rec.kinds().get("benders_parallel", 0) == 0

    def test_workers_capped_by_scenario_count(self):
        tsp = _complete_recourse(seed=6, S=2)
        res = solve_benders(tsp, options=BendersOptions(n_workers=16))
        assert res.status is SolverStatus.OPTIMAL
        assert res.extra["workers"] == 2


class TestDeadline:
    def test_zero_budget_returns_time_limit(self):
        from repro.solver.telemetry import Deadline

        tsp = _complete_recourse(seed=7)
        res = solve_benders(
            tsp, options=BendersOptions(n_workers=2), deadline=Deadline(0.0)
        )
        assert res.status in (SolverStatus.TIME_LIMIT, SolverStatus.FEASIBLE)
