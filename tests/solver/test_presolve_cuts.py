"""Presolve and Gomory-cut tests: reductions must preserve the feasible set,
cuts must never remove integer-feasible points."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import Model, SolverStatus, presolve, solve, solve_compiled
from repro.solver.cuts import generate_gmi_cuts, strengthen_with_gomory_cuts
from repro.solver.scipy_backend import solve_milp_scipy
from repro.solver.simplex import solve_lp_simplex


class TestPresolve:
    def test_singleton_row_becomes_bound(self):
        m = Model()
        x = m.add_var("x", ub=100)
        m.add_constr(2 * x <= 10)
        pre = presolve(m.compile())
        assert not pre.infeasible
        assert pre.problem.A_ub.shape[0] == 0
        assert pre.problem.ub[0] == pytest.approx(5.0)

    def test_singleton_ge_row_tightens_lb(self):
        m = Model()
        x = m.add_var("x", ub=100)
        m.add_constr(x >= 3)
        pre = presolve(m.compile())
        assert pre.problem.lb[0] == pytest.approx(3.0)

    def test_integer_bounds_rounded(self):
        m = Model()
        x = m.add_var("x", lb=0.2, ub=4.9, vtype="integer")
        pre = presolve(m.compile())
        assert pre.problem.lb[0] == 1.0 and pre.problem.ub[0] == 4.0

    def test_detects_crossed_integer_bounds(self):
        m = Model()
        m.add_var("x", lb=0.4, ub=0.6, vtype="integer")
        pre = presolve(m.compile())
        assert pre.infeasible

    def test_detects_row_infeasibility(self):
        m = Model()
        x = m.add_var("x", ub=1)
        y = m.add_var("y", ub=1)
        m.add_constr(x + y >= 5)
        pre = presolve(m.compile())
        assert pre.infeasible

    def test_redundant_row_removed(self):
        m = Model()
        x = m.add_var("x", ub=1)
        y = m.add_var("y", ub=1)
        m.add_constr(x + y <= 10)  # always true within the box
        pre = presolve(m.compile())
        assert pre.rows_removed >= 1
        assert pre.problem.A_ub.shape[0] == 0

    def test_empty_contradictory_row(self):
        m = Model()
        x = m.add_var("x")
        m.add_constr(0 * x <= -1)
        pre = presolve(m.compile())
        assert pre.infeasible

    def test_solution_preserved(self):
        m = Model()
        x = m.add_var("x", ub=100)
        y = m.add_var("y", ub=100)
        m.add_constr(x <= 7)
        m.add_constr(x + y <= 12)
        m.set_objective(-(x + 2 * y))
        with_pre = solve(m, backend="scipy", use_presolve=True)
        without = solve(m, backend="scipy", use_presolve=False)
        assert with_pre.objective == pytest.approx(without.objective)


def _random_mip_model(seed, n=4, m_rows=3):
    rng = np.random.default_rng(seed)
    m = Model()
    xs = [m.add_var(f"x{j}", lb=0, ub=float(rng.integers(2, 6)), vtype="integer") for j in range(n)]
    x0 = np.array([float(rng.integers(0, 3)) for _ in range(n)])
    for i in range(m_rows):
        row = rng.integers(-3, 4, size=n).astype(float)
        b = float(row @ np.minimum(x0, [x.ub for x in xs]) + rng.integers(0, 3))
        m.add_constr(sum(float(row[j]) * xs[j] for j in range(n)) <= b)
    m.set_objective(sum(float(rng.integers(-5, 6)) * x for x in xs))
    return m


class TestGomoryCuts:
    def test_cut_on_classic_instance(self):
        # LP relaxation fractional: max x+y st 3x+2y<=6, -3x+2y<=0, x,y int
        m = Model()
        x = m.add_var("x", ub=10, vtype="integer")
        y = m.add_var("y", ub=10, vtype="integer")
        m.add_constr(3 * x + 2 * y <= 6)
        m.add_constr(-3 * x + 2 * y <= 0)
        m.set_objective(x + y, sense="max")
        p = m.compile()
        lp = solve_lp_simplex(p)
        frac = np.abs(lp.x - np.round(lp.x))
        assert frac.max() > 1e-4  # relaxation really is fractional
        strengthened = strengthen_with_gomory_cuts(p)
        assert strengthened.A_ub.shape[0] > p.A_ub.shape[0]
        # strengthened LP bound must be no worse and still valid
        lp2 = solve_lp_simplex(strengthened)
        assert lp2.status is SolverStatus.OPTIMAL
        exact = solve_milp_scipy(p)
        # cuts never cut off the integer optimum
        x_int = np.round(exact.x)
        assert np.all(strengthened.A_ub @ x_int <= strengthened.b_ub + 1e-6)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_cuts_are_valid_inequalities(self, seed):
        m = _random_mip_model(seed)
        p = m.compile()
        exact = solve_milp_scipy(p)
        if not exact.status.has_solution:
            return
        strengthened = strengthen_with_gomory_cuts(p, max_rounds=3)
        x_int = np.round(exact.x)
        if strengthened.A_ub.size:
            assert np.all(strengthened.A_ub @ x_int <= strengthened.b_ub + 1e-6)
        # and solving the strengthened MILP gives the same optimum
        again = solve_milp_scipy(strengthened)
        assert again.objective == pytest.approx(exact.objective, abs=1e-6)

    def test_generate_returns_empty_for_continuous(self):
        m = Model()
        x = m.add_var("x", ub=3)
        m.add_constr(2 * x <= 5)
        m.set_objective(-x)
        p = m.compile()
        assert strengthen_with_gomory_cuts(p) is p

    def test_cuts_skipped_for_free_variables(self):
        m = Model()
        x = m.add_var("x", lb=-np.inf, ub=10)
        z = m.add_var("z", vtype="integer", ub=5)
        m.add_constr(x + 2 * z <= 7)
        m.set_objective(-x - z)
        p = m.compile()
        res = solve_lp_simplex(p)
        if res.status is SolverStatus.OPTIMAL:
            cuts = generate_gmi_cuts(p, res.extra["tableau"], res.extra["standard_form"])
            assert cuts == []


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        m = Model()
        m.add_var("x")
        with pytest.raises(ValueError, match="unknown backend"):
            solve(m, backend="gurobi")

    def test_solve_compiled_direct(self):
        m = Model()
        x = m.add_var("x", ub=4)
        m.set_objective(-x)
        r = solve_compiled(m.compile())
        assert r.objective == pytest.approx(-4.0)
