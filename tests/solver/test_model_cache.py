"""Model.compile() memoization: invalidation, digest sharing, no aliasing."""

import numpy as np

from repro.solver.model import Model


def _toy_model(rhs=4.0):
    m = Model("toy")
    x = m.add_var("x", lb=0.0, ub=10.0)
    y = m.add_var("y", lb=0.0, ub=10.0, vtype="integer")
    m.add_constr(x + 2.0 * y <= rhs)
    m.set_objective(-x - y)
    return m


class TestInstanceCache:
    def test_second_compile_is_cached(self):
        m = _toy_model()
        p1 = m.compile()
        p2 = m.compile()
        assert p1 is not p2  # defensive copies, never the same object
        assert np.array_equal(p1.c, p2.c)
        assert np.array_equal(p1.A_ub, p2.A_ub)

    def test_mutation_invalidates(self):
        m = _toy_model()
        p1 = m.compile()
        z = m.add_var("z", lb=0.0, ub=1.0)
        m.set_objective(-z)
        p2 = m.compile()
        assert p2.num_vars == p1.num_vars + 1
        assert p2.c[-1] == -1.0

    def test_add_constr_invalidates(self):
        m = _toy_model()
        p1 = m.compile()
        x = m.variables[0]
        m.add_constr(x <= 1.5)
        p2 = m.compile()
        assert p2.num_constraints == p1.num_constraints + 1

    def test_returned_arrays_are_not_aliased(self):
        m = _toy_model()
        p1 = m.compile()
        p1.c[:] = 999.0
        p1.A_ub[:] = 999.0
        p1.b_ub[:] = 999.0
        p2 = m.compile()
        assert not np.array_equal(p1.c, p2.c)
        assert p2.c[0] == -1.0


class TestDigestCache:
    def test_structurally_equal_models_share_compilation(self):
        # Two distinct Model instances with identical structure hit the
        # module-level digest cache; results must still be independent.
        a = _toy_model().compile()
        b = _toy_model().compile()
        assert np.array_equal(a.c, b.c)
        assert np.array_equal(a.A_ub, b.A_ub)
        b.c[:] = 7.0
        assert a.c[0] == -1.0

    def test_different_rhs_do_not_collide(self):
        a = _toy_model(rhs=4.0).compile()
        b = _toy_model(rhs=9.0).compile()
        assert a.b_ub[0] == 4.0
        assert b.b_ub[0] == 9.0

    def test_names_do_not_affect_structure_digest_correctness(self):
        # Variable names differ but structure matches: sharing is allowed,
        # and the variables list on each result is the owner's.
        m1 = Model("a")
        v1 = m1.add_var("first", lb=0.0, ub=1.0)
        m1.set_objective(v1)
        m2 = Model("b")
        v2 = m2.add_var("second", lb=0.0, ub=1.0)
        m2.set_objective(v2)
        p1 = m1.compile()
        p2 = m2.compile()
        assert p1.variables[0].name == "first"
        assert p2.variables[0].name == "second"


class TestCompileCorrectness:
    def test_ge_rows_fold_to_ub_form(self):
        m = Model()
        x = m.add_var("x", lb=0.0, ub=5.0)
        y = m.add_var("y", lb=0.0, ub=5.0)
        m.add_constr(x + y >= 2.0)
        m.add_constr(x - y <= 1.0)
        m.set_objective(x + y)
        p = m.compile()
        # >= row stored negated in <= form
        assert p.A_ub.shape == (2, 2)
        rows = {tuple(r): rhs for r, rhs in zip(p.A_ub, p.b_ub)}
        assert rows[(-1.0, -1.0)] == -2.0
        assert rows[(1.0, -1.0)] == 1.0

    def test_solution_unchanged_by_caching(self):
        from repro.solver import SolverStatus, solve

        m = _toy_model()
        r1 = solve(m, backend="simplex")
        r2 = solve(m, backend="simplex")  # cached compile
        assert r1.status is SolverStatus.OPTIMAL
        assert r1.objective == r2.objective
