"""Warm-start correctness: basis reuse, cycling regression, cross-backend.

Warm starts are a pure optimization — every test here pins the invariant
that a warm solve returns *exactly* the result a cold solve would, just
faster.  Coverage:

* LP level: the exported ``SimplexBasis`` round-trips, repairs after
  branching-style bound changes, and falls back cold on layout mismatch.
* Degenerate cycling: the Dantzig->Bland stall switch terminates Beale's
  classic cycling LP, cold and warm.
* B&B level: warm and cold searches agree with the planted optimum on
  the ``repro.verify`` generator families, and the ``lp_warm``/``lp_cold``
  telemetry tells the truth.
* Oracle level: a seeded mini fuzz campaign (warm starts on by default)
  certifies cleanly.
"""

import numpy as np
import pytest

from repro.solver import BranchAndBoundOptions, SolverStatus, solve_compiled
from repro.solver.model import CompiledProblem
from repro.solver.scipy_backend import scipy_available
from repro.solver.simplex import solve_lp_simplex
from repro.solver.telemetry import EventRecorder
from repro.verify.generators import planted_lp, planted_milp


def _lp(c, A, b, ub=None):
    n = len(c)
    return CompiledProblem(
        c=np.asarray(c, float), c0=0.0,
        A_ub=np.asarray(A, float), b_ub=np.asarray(b, float),
        A_eq=np.zeros((0, n)), b_eq=np.zeros(0),
        lb=np.zeros(n),
        ub=np.full(n, np.inf) if ub is None else np.asarray(ub, float),
        integrality=np.zeros(n, dtype=int), maximize=False,
    )


class TestSimplexBasisRoundTrip:
    def test_optimal_result_carries_basis(self):
        p = _lp([-3.0, -2.0], [[1.0, 1.0], [2.0, 1.0]], [4.0, 6.0])
        res = solve_lp_simplex(p)
        assert res.status is SolverStatus.OPTIMAL
        assert res.extra["basis"] is not None
        assert res.extra["warm"] == {"used": False, "reason": "no_warm_start"}

    def test_resolve_from_own_basis_is_free(self):
        p = _lp([-3.0, -2.0], [[1.0, 1.0], [2.0, 1.0]], [4.0, 6.0])
        cold = solve_lp_simplex(p)
        warm = solve_lp_simplex(p, warm_start=cold.extra["basis"])
        assert warm.status is SolverStatus.OPTIMAL
        assert warm.extra["warm"]["used"] is True
        assert warm.objective == pytest.approx(cold.objective)
        assert np.allclose(warm.x, cold.x)
        # identical problem, optimal basis supplied: no pivots needed
        assert warm.iterations == 0

    def test_warm_after_bound_tightening_matches_cold(self):
        # Branching tightens one variable bound; the parent basis stays
        # dual feasible and must repair to the same optimum a cold solve
        # finds.
        rng = np.random.default_rng(7)
        for _ in range(20):
            case = planted_lp(rng)
            p = case.instance
            parent = solve_lp_simplex(p)
            assert parent.status is SolverStatus.OPTIMAL
            child = p.copy() if hasattr(p, "copy") else p
            ub2 = p.ub.copy()
            j = int(np.argmax(np.abs(parent.x - np.round(parent.x)))) \
                if parent.x is not None else 0
            ub2[j] = max(p.lb[j], np.floor(parent.x[j]))
            tightened = CompiledProblem(
                c=p.c, c0=p.c0, A_ub=p.A_ub, b_ub=p.b_ub,
                A_eq=p.A_eq, b_eq=p.b_eq, lb=p.lb, ub=ub2,
                integrality=p.integrality, maximize=p.maximize,
            )
            warm = solve_lp_simplex(tightened, warm_start=parent.extra["basis"])
            cold = solve_lp_simplex(tightened)
            assert warm.status is cold.status
            if cold.status is SolverStatus.OPTIMAL:
                assert warm.objective == pytest.approx(cold.objective, abs=1e-8)

    def test_layout_mismatch_falls_back_cold(self):
        p1 = _lp([-3.0, -2.0], [[1.0, 1.0], [2.0, 1.0]], [4.0, 6.0])
        p2 = _lp([-1.0, -1.0, -1.0], [[1.0, 1.0, 1.0]], [3.0])
        basis = solve_lp_simplex(p1).extra["basis"]
        res = solve_lp_simplex(p2, warm_start=basis)
        assert res.status is SolverStatus.OPTIMAL
        assert res.extra["warm"]["used"] is False
        assert res.extra["warm"]["reason"] == "layout_mismatch"


class TestCyclingRegression:
    """Beale's degenerate LP cycles under naive Dantzig pricing; the
    stall-triggered switch to Bland's rule must terminate it — from a
    cold start and from a warm basis alike."""

    def _beale(self):
        return _lp(
            c=[-0.75, 150.0, -0.02, 6.0],
            A=[
                [0.25, -60.0, -0.04, 9.0],
                [0.5, -90.0, -0.02, 3.0],
                [0.0, 0.0, 1.0, 0.0],
            ],
            b=[0.0, 0.0, 1.0],
        )

    def test_cold_solve_terminates_at_optimum(self):
        res = solve_lp_simplex(self._beale())
        assert res.status is SolverStatus.OPTIMAL
        assert res.objective == pytest.approx(-0.05, abs=1e-9)

    def test_warm_solve_terminates_at_optimum(self):
        p = self._beale()
        basis = solve_lp_simplex(p).extra["basis"]
        # Perturb a bound so the warm path has real pivoting to do on the
        # same degenerate geometry.
        p2 = CompiledProblem(
            c=p.c, c0=p.c0, A_ub=p.A_ub, b_ub=p.b_ub, A_eq=p.A_eq,
            b_eq=p.b_eq, lb=p.lb, ub=np.array([np.inf, np.inf, 0.5, np.inf]),
            integrality=p.integrality, maximize=p.maximize,
        )
        warm = solve_lp_simplex(p2, warm_start=basis)
        cold = solve_lp_simplex(p2)
        assert warm.status is SolverStatus.OPTIMAL
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)


class TestBranchBoundWarmStarts:
    def test_generator_families_warm_equals_cold_equals_planted(self):
        rng = np.random.default_rng(11)
        for _ in range(15):
            case = planted_milp(rng)
            warm = solve_compiled(
                case.instance, backend="simplex",
                bb_options=BranchAndBoundOptions(warm_start_lps=True),
            )
            cold = solve_compiled(
                case.instance, backend="simplex",
                bb_options=BranchAndBoundOptions(warm_start_lps=False),
            )
            assert warm.status is SolverStatus.OPTIMAL
            assert cold.status is SolverStatus.OPTIMAL
            assert warm.objective == pytest.approx(case.optimum, abs=1e-6)
            assert cold.objective == pytest.approx(case.optimum, abs=1e-6)

    @pytest.mark.skipif(not scipy_available(), reason="needs scipy")
    def test_cross_backend_agreement(self):
        rng = np.random.default_rng(23)
        for _ in range(10):
            case = planted_milp(rng)
            warm = solve_compiled(case.instance, backend="simplex")
            highs = solve_compiled(case.instance, backend="scipy")
            assert warm.objective == pytest.approx(highs.objective, abs=1e-6)

    def test_telemetry_and_counters(self):
        rng = np.random.default_rng(3)
        case = planted_milp(rng, n=10, m=8)
        rec = EventRecorder()
        res = solve_compiled(
            case.instance, backend="simplex", listener=rec,
            bb_options=BranchAndBoundOptions(warm_start_lps=True),
        )
        assert res.status is SolverStatus.OPTIMAL
        kinds = rec.kinds()
        n_warm = kinds.get("lp_warm", 0)
        n_cold = kinds.get("lp_cold", 0)
        # extra counters mirror the event stream exactly
        assert res.extra["lp_warm"] == n_warm
        assert res.extra["lp_cold"] == n_cold
        # root is always cold; children warm when any branching happened
        assert n_cold >= 1
        if res.nodes > 1:
            assert n_warm > 0
        for ev in rec.of_kind("lp_warm"):
            assert ev.data["mode"] in ("primal", "dual")

    def test_warm_disabled_emits_only_cold(self):
        rng = np.random.default_rng(5)
        case = planted_milp(rng, n=8, m=6)
        rec = EventRecorder()
        res = solve_compiled(
            case.instance, backend="simplex", listener=rec,
            bb_options=BranchAndBoundOptions(warm_start_lps=False),
        )
        assert res.status is SolverStatus.OPTIMAL
        assert rec.kinds().get("lp_warm", 0) == 0
        assert res.extra["lp_warm"] == 0
        assert res.extra["lp_cold"] == rec.kinds().get("lp_cold", 0)


class TestFuzzOracleWithWarmStarts:
    def test_mini_campaign_certifies(self):
        # Warm starts are on by default in the simplex B&B, so the
        # differential oracle exercises them on every MILP case.
        from repro.verify.fuzz import FuzzConfig, run_fuzz

        report = run_fuzz(FuzzConfig(
            seed=13, max_cases=40, families=("lp", "milp"), shrink=False,
        ))
        assert report.cases == 40
        assert report.ok, report.to_dict()
