"""Simplex correctness: hand instances + randomized cross-check vs HiGHS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.solver import Model, SolverStatus, solve
from repro.solver.simplex import solve_lp_simplex, standardize
from repro.solver.scipy_backend import solve_lp_scipy


def _solve_both(model):
    p = model.compile()
    return solve_lp_simplex(p), solve_lp_scipy(p)


class TestHandInstances:
    def test_textbook_max(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constr(x + 2 * y <= 14)
        m.add_constr(3 * x - y >= 0)
        m.add_constr(x - y <= 2)
        m.set_objective(3 * x + 4 * y, sense="max")
        r = solve(m, backend="simplex")
        assert r.status is SolverStatus.OPTIMAL
        assert r.objective == pytest.approx(34.0)
        assert r.x == pytest.approx([6.0, 4.0])

    def test_infeasible(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constr(x >= 2)
        r = solve(m, backend="simplex", use_presolve=False)
        assert r.status is SolverStatus.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.add_var("x")
        m.set_objective(-x)
        r = solve(m, backend="simplex", use_presolve=False)
        assert r.status is SolverStatus.UNBOUNDED

    def test_degenerate_lp_terminates(self):
        # Classic degenerate instance (multiple ties in the ratio test).
        m = Model()
        x = [m.add_var(f"x{i}") for i in range(3)]
        m.add_constr(x[0] + x[1] <= 1)
        m.add_constr(x[0] + x[2] <= 1)
        m.add_constr(x[1] + x[2] <= 1)
        m.add_constr(x[0] + x[1] + x[2] <= 1)
        m.set_objective(x[0] + x[1] + x[2], sense="max")
        r = solve(m, backend="simplex")
        assert r.status is SolverStatus.OPTIMAL
        assert r.objective == pytest.approx(1.0, abs=1e-7)

    def test_free_variable_split(self):
        m = Model()
        x = m.add_var("x", lb=-np.inf)  # free
        y = m.add_var("y", ub=0.0)
        m.add_constr(x + y >= -3)
        m.add_constr(x <= 5)
        m.set_objective(x)
        r = solve(m, backend="simplex", use_presolve=False)
        assert r.status is SolverStatus.OPTIMAL
        assert r.objective == pytest.approx(-3.0)

    def test_negative_lower_bounds(self):
        m = Model()
        x = m.add_var("x", lb=-4, ub=-1)
        m.set_objective(x)
        r = solve(m, backend="simplex", use_presolve=False)
        assert r.objective == pytest.approx(-4.0)

    def test_equality_only(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constr(x + y == 10)
        m.set_objective(2 * x + y)
        r = solve(m, backend="simplex")
        assert r.objective == pytest.approx(10.0)
        assert r.x == pytest.approx([0.0, 10.0])

    def test_no_constraints(self):
        m = Model()
        x = m.add_var("x", ub=3)
        m.set_objective(-x)
        r = solve(m, backend="simplex")
        assert r.objective == pytest.approx(-3.0)


class TestStandardize:
    def test_recover_roundtrip(self):
        m = Model()
        m.add_var("a", lb=2, ub=9)
        m.add_var("b", lb=-np.inf)
        m.add_var("c", lb=-1)
        mdl = m.compile()
        sf = standardize(mdl)
        # choose x_std hitting each case
        x_std = np.zeros(sf.A.shape[1])
        x_std[sf.pos[0]] = 1.0            # a = 2 + 1
        x_std[sf.pos[1]] = 5.0            # b = 5 - 2
        x_std[sf.neg[1]] = 2.0
        x_std[sf.pos[2]] = 0.5            # c = -1 + 0.5
        x = sf.recover(x_std)
        assert x == pytest.approx([3.0, 3.0, -0.5])

    def test_rhs_nonnegative(self):
        m = Model()
        x = m.add_var("x", lb=5, ub=20)
        m.add_constr(x <= 7)
        m.add_constr(x >= 6)
        sf = standardize(m.compile())
        assert np.all(sf.b >= 0)


@st.composite
def random_lp(draw):
    """Random bounded-feasible LP: box-bounded vars, random <= rows anchored
    to a known interior point so feasibility is guaranteed."""
    n = draw(st.integers(2, 6))
    m_rows = draw(st.integers(1, 6))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    c = rng.normal(size=n)
    A = rng.normal(size=(m_rows, n))
    x0 = rng.uniform(0.5, 1.5, size=n)  # interior anchor
    b = A @ x0 + rng.uniform(0.1, 2.0, size=m_rows)
    ub = x0 + rng.uniform(1.0, 3.0, size=n)
    return c, A, b, ub


class TestRandomCrossCheck:
    @given(random_lp())
    @settings(max_examples=60, deadline=None)
    def test_matches_highs(self, data):
        c, A, b, ub = data
        m = Model()
        xs = [m.add_var(f"x{i}", lb=0, ub=float(ub[i])) for i in range(len(c))]
        for i in range(A.shape[0]):
            m.add_constr(sum(float(A[i, j]) * xs[j] for j in range(len(xs))) <= float(b[i]))
        m.set_objective(sum(float(c[j]) * xs[j] for j in range(len(xs))))
        ours, ref = _solve_both(m)
        assert ours.status is SolverStatus.OPTIMAL
        assert ref.status is SolverStatus.OPTIMAL
        assert ours.objective == pytest.approx(ref.objective, abs=1e-6, rel=1e-6)
        # our solution must be feasible for the compiled problem
        assert m.compile().is_feasible(ours.x, tol=1e-6)
