"""Revised-simplex engine: parity, degeneracy, refactorization, escape hatch.

The revised engine must be observably *boring*: same answers, same
certificates, same warm-start semantics as the dense tableau — only
faster.  Coverage:

* Engine selection: ``REPRO_SIMPLEX`` escape hatch, explicit-arg
  precedence, loud ``RuntimeWarning`` on an unknown value.
* Beale's cycling LP terminates on the revised path, cold and warm.
* Degenerate ratio-test ties and bound-flip-only iterations reach the
  same optimum on both engines.
* Stress-small refactorization budget (``max_updates=1``) keeps the
  factorization honest without changing the answer.
* Cross-engine agreement on objectives, exact dual certificates and
  Farkas rays over the planted generator families.
* A rejected warm basis falls back cold *loudly* — the
  ``warm_start_rejected`` event names the engine and the reason.
* Differential fuzz oracle (all families, smoke-scale budget) certifies
  against the revised backend.
"""

import numpy as np
import pytest

from repro.solver import SolverStatus
from repro.solver.model import CompiledProblem
from repro.solver.revised import revised_solve
from repro.solver.simplex import (
    SIMPLEX_ENGINES,
    resolve_engine,
    solve_lp_simplex,
    standardize,
)
from repro.solver.telemetry import EventRecorder, Telemetry
from repro.verify.certify import certify_result
from repro.verify.fuzz import FuzzConfig, run_fuzz
from repro.verify.generators import FAMILIES, planted_lp


def _lp(c, A, b, ub=None):
    n = len(c)
    return CompiledProblem(
        c=np.asarray(c, float), c0=0.0,
        A_ub=np.asarray(A, float), b_ub=np.asarray(b, float),
        A_eq=np.zeros((0, n)), b_eq=np.zeros(0),
        lb=np.zeros(n),
        ub=np.full(n, np.inf) if ub is None else np.asarray(ub, float),
        integrality=np.zeros(n, dtype=int), maximize=False,
    )


def _beale():
    return _lp(
        c=[-0.75, 150.0, -0.02, 6.0],
        A=[
            [0.25, -60.0, -0.04, 9.0],
            [0.5, -90.0, -0.02, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ],
        b=[0.0, 0.0, 1.0],
    )


class TestEngineSelection:
    def test_registry_and_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIMPLEX", raising=False)
        assert set(SIMPLEX_ENGINES) == {"revised", "tableau"}
        assert resolve_engine(None) == "revised"
        assert resolve_engine("tableau") == "tableau"

    def test_env_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMPLEX", "tableau")
        p = _lp([-3.0, -2.0], [[1.0, 1.0], [2.0, 1.0]], [4.0, 6.0])
        res = solve_lp_simplex(p)
        assert res.status is SolverStatus.OPTIMAL
        assert res.extra["engine"] == "tableau"

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMPLEX", "tableau")
        p = _lp([-3.0, -2.0], [[1.0, 1.0], [2.0, 1.0]], [4.0, 6.0])
        res = solve_lp_simplex(p, engine="revised")
        assert res.extra["engine"] == "revised"

    def test_unknown_engine_warns_and_uses_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIMPLEX", "bogus")
        with pytest.warns(RuntimeWarning, match="bogus"):
            assert resolve_engine(None) == "revised"


class TestBealeCyclingRevised:
    """The stall-triggered Dantzig->Bland switch must terminate Beale's
    cycling LP on the factored path too — cold and warm."""

    def test_cold_terminates_at_optimum(self):
        res = solve_lp_simplex(_beale(), engine="revised")
        assert res.status is SolverStatus.OPTIMAL
        assert res.extra["engine"] == "revised"
        assert res.objective == pytest.approx(-0.05, abs=1e-9)

    def test_warm_terminates_at_optimum(self):
        p = _beale()
        basis = solve_lp_simplex(p, engine="revised").extra["basis"]
        p2 = CompiledProblem(
            c=p.c, c0=p.c0, A_ub=p.A_ub, b_ub=p.b_ub, A_eq=p.A_eq,
            b_eq=p.b_eq, lb=p.lb, ub=np.array([np.inf, np.inf, 0.5, np.inf]),
            integrality=p.integrality, maximize=p.maximize,
        )
        warm = solve_lp_simplex(p2, warm_start=basis, engine="revised")
        cold = solve_lp_simplex(p2, engine="tableau")
        assert warm.status is SolverStatus.OPTIMAL
        assert warm.extra["warm"]["used"] is True
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_warm_resolve_is_free(self):
        p = _beale()
        cold = solve_lp_simplex(p, engine="revised")
        warm = solve_lp_simplex(
            p, warm_start=cold.extra["basis"], engine="revised"
        )
        assert warm.status is SolverStatus.OPTIMAL
        assert warm.iterations == 0
        assert warm.objective == pytest.approx(cold.objective)


class TestDegenerateAndBoundFlips:
    def test_degenerate_ratio_ties_agree(self):
        # Duplicated rows force exact ties in the leaving-row ratio test;
        # the tie-break must still terminate and both engines must land on
        # the same optimum.
        p = _lp(
            c=[-1.0, -1.0],
            A=[[1.0, 0.0], [1.0, 0.0], [1.0, 1.0]],
            b=[1.0, 1.0, 2.0],
        )
        rev = solve_lp_simplex(p, engine="revised")
        tab = solve_lp_simplex(p, engine="tableau")
        assert rev.status is SolverStatus.OPTIMAL
        assert rev.objective == pytest.approx(-2.0, abs=1e-9)
        assert tab.objective == pytest.approx(rev.objective, abs=1e-9)

    def test_bound_flip_only_iterations(self):
        # Upper bounds bind before any constraint: the optimum is reached
        # purely by nonbasic bound flips (0 -> ub) with no basis change.
        p = _lp(
            c=[-1.0, -1.0],
            A=[[1.0, 1.0]],
            b=[10.0],
            ub=[2.0, 2.0],
        )
        rev = solve_lp_simplex(p, engine="revised")
        tab = solve_lp_simplex(p, engine="tableau")
        assert rev.status is SolverStatus.OPTIMAL
        assert rev.objective == pytest.approx(-4.0, abs=1e-12)
        assert np.allclose(rev.x, [2.0, 2.0])
        assert tab.objective == pytest.approx(rev.objective, abs=1e-12)

    def test_at_upper_statuses_survive_roundtrip(self):
        p = _lp(
            c=[-1.0, -1.0],
            A=[[1.0, 1.0]],
            b=[10.0],
            ub=[2.0, 2.0],
        )
        cold = solve_lp_simplex(p, engine="revised")
        warm = solve_lp_simplex(
            p, warm_start=cold.extra["basis"], engine="revised"
        )
        assert warm.status is SolverStatus.OPTIMAL
        assert warm.iterations == 0
        assert np.allclose(warm.x, [2.0, 2.0])


class TestRefactorizationPolicy:
    def test_tiny_update_budget_same_answer(self):
        # max_updates=1 forces a refactorization on essentially every
        # pivot; the answer must not move and the factor must report the
        # extra work honestly.
        rng = np.random.default_rng(17)
        for _ in range(5):
            case = planted_lp(rng)
            sf = standardize(case.instance)
            if sf.A.shape[0] == 0:
                continue
            rec = EventRecorder()
            stressed = revised_solve(
                sf, max_updates=1, telemetry=Telemetry(rec)
            )
            default = revised_solve(sf)
            assert stressed[0] == default[0]
            if stressed[0] == "optimal":
                assert stressed[2] == pytest.approx(default[2], abs=1e-8)
            refacts = [
                ev.data["refactorizations"]
                for ev in rec.of_kind("phase_end")
                if "refactorizations" in ev.data
            ]
            assert refacts and max(refacts) >= 1


class TestCrossEngineAgreement:
    def test_planted_lps_certify_on_both_engines(self):
        rng = np.random.default_rng(29)
        for _ in range(20):
            case = planted_lp(rng)
            rev = solve_lp_simplex(case.instance, engine="revised")
            tab = solve_lp_simplex(case.instance, engine="tableau")
            assert rev.status is tab.status
            if rev.status is not SolverStatus.OPTIMAL:
                continue
            assert rev.objective == pytest.approx(tab.objective, abs=1e-7)
            for res in (rev, tab):
                report = certify_result(case.instance, res)
                assert report.verdict == "certified", (res.extra["engine"],
                                                       report.to_dict())

    def test_farkas_rays_certify_on_both_engines(self):
        # lb=0 with row -x1 <= -2 and ub=1: provably empty.
        p = _lp(c=[1.0], A=[[-1.0]], b=[-2.0], ub=[1.0])
        for engine in SIMPLEX_ENGINES:
            res = solve_lp_simplex(p, engine=engine)
            assert res.status is SolverStatus.INFEASIBLE
            assert res.extra.get("farkas_certificate") is not None
            report = certify_result(p, res)
            assert report.verdict == "certified", (engine, report.to_dict())

    def test_unbounded_agrees(self):
        p = _lp(c=[-1.0, 0.0], A=[[0.0, 1.0]], b=[1.0])
        for engine in SIMPLEX_ENGINES:
            res = solve_lp_simplex(p, engine=engine)
            assert res.status is SolverStatus.UNBOUNDED, engine


class TestLoudWarmRejection:
    def test_layout_mismatch_emits_event(self):
        p1 = _lp([-3.0, -2.0], [[1.0, 1.0], [2.0, 1.0]], [4.0, 6.0])
        p2 = _lp([-1.0, -1.0, -1.0], [[1.0, 1.0, 1.0]], [3.0])
        basis = solve_lp_simplex(p1, engine="revised").extra["basis"]
        for engine in SIMPLEX_ENGINES:
            rec = EventRecorder()
            res = solve_lp_simplex(
                p2, warm_start=basis, telemetry=Telemetry(rec), engine=engine
            )
            assert res.status is SolverStatus.OPTIMAL
            assert res.extra["warm"] == {
                "used": False, "reason": "layout_mismatch",
            }
            events = rec.of_kind("warm_start_rejected")
            assert len(events) == 1
            assert events[0].data["where"] == "simplex"
            assert events[0].data["engine"] == engine
            assert events[0].data["reason"] == "layout_mismatch"

    def test_accepted_warm_start_stays_quiet(self):
        p = _lp([-3.0, -2.0], [[1.0, 1.0], [2.0, 1.0]], [4.0, 6.0])
        basis = solve_lp_simplex(p, engine="revised").extra["basis"]
        rec = EventRecorder()
        res = solve_lp_simplex(
            p, warm_start=basis, telemetry=Telemetry(rec), engine="revised"
        )
        assert res.extra["warm"]["used"] is True
        assert not rec.of_kind("warm_start_rejected")


class TestFuzzOracleRevisedBackend:
    def test_all_families_mini_campaign_certifies(self, monkeypatch):
        # The oracle solves through the default engine; pin it so the run
        # exercises the revised path even under an escape-hatch env.
        monkeypatch.delenv("REPRO_SIMPLEX", raising=False)
        assert len(FAMILIES) == 10
        report = run_fuzz(FuzzConfig(seed=41, max_cases=20, shrink=False))
        assert report.cases == 20
        assert report.ok, report.to_dict()
