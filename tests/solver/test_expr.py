"""Unit tests for the algebraic modeling primitives."""

import math

import pytest

from repro.solver import ConstraintSense, LinExpr, Model, VarType, lin_sum
from repro.solver.expr import Constraint


@pytest.fixture()
def model():
    return Model("t")


class TestVariable:
    def test_defaults(self, model):
        x = model.add_var("x")
        assert x.lb == 0.0 and x.ub == math.inf
        assert x.vtype is VarType.CONTINUOUS
        assert not x.is_integral

    def test_binary_bounds_clamped(self, model):
        z = model.add_var("z", lb=-5, ub=7, vtype="binary")
        assert (z.lb, z.ub) == (0.0, 1.0)
        assert z.is_integral

    def test_crossed_bounds_rejected(self, model):
        with pytest.raises(ValueError):
            model.add_var("bad", lb=3, ub=1)

    def test_duplicate_name_rejected(self, model):
        model.add_var("x")
        with pytest.raises(ValueError):
            model.add_var("x")

    def test_auto_naming(self, model):
        v0 = model.add_var()
        v1 = model.add_var()
        assert v0.name != v1.name

    def test_add_vars_batch(self, model):
        vs = model.add_vars(4, "alpha", ub=2.0)
        assert [v.index for v in vs] == [0, 1, 2, 3]
        assert all(v.ub == 2.0 for v in vs)


class TestLinExpr:
    def test_addition_merges_terms(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        e = x + y + x
        assert e.terms[x] == 2.0 and e.terms[y] == 1.0

    def test_zero_coefficients_dropped(self, model):
        x = model.add_var("x")
        e = x - x
        assert e.terms == {}

    def test_scalar_operations(self, model):
        x = model.add_var("x")
        e = (3 * x + 4) / 2
        assert e.terms[x] == 1.5 and e.constant == 2.0

    def test_negation_and_rsub(self, model):
        x = model.add_var("x")
        e = 5 - 2 * x
        assert e.terms[x] == -2.0 and e.constant == 5.0

    def test_value_evaluation(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        e = 2 * x - y + 1
        assert e.value({x: 3.0, y: 4.0}) == pytest.approx(3.0)

    def test_nonscalar_multiplication_rejected(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        with pytest.raises(TypeError):
            _ = x.to_expr() * y.to_expr()

    def test_lin_sum_matches_builtin_sum(self, model):
        vs = model.add_vars(10, "v")
        a = lin_sum(2 * v for v in vs)
        b = sum((2 * v for v in vs), LinExpr())
        assert a.terms == b.terms and a.constant == b.constant

    def test_lin_sum_of_scalars(self):
        e = lin_sum([1, 2, 3.5])
        assert e.constant == 6.5 and e.terms == {}


class TestConstraint:
    def test_le_normalization(self, model):
        x = model.add_var("x")
        c = x + 3 <= 10
        assert isinstance(c, Constraint)
        assert c.sense is ConstraintSense.LE
        assert c.rhs == pytest.approx(7.0)

    def test_eq_sense(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        c = x + y == 4
        assert c.sense is ConstraintSense.EQ
        assert c.rhs == pytest.approx(4.0)

    def test_violation_measure(self, model):
        x = model.add_var("x")
        c = 2 * x <= 4
        assert c.violation({x: 1.0}) == 0.0
        assert c.violation({x: 3.0}) == pytest.approx(2.0)

    def test_ge_violation(self, model):
        x = model.add_var("x")
        c = x >= 5
        assert c.violation({x: 2.0}) == pytest.approx(3.0)
        assert c.violation({x: 7.0}) == 0.0


class TestModelCompile:
    def test_shapes_and_masks(self, model):
        x = model.add_var("x", ub=5)
        y = model.add_var("y", vtype="integer", ub=3)
        model.add_constr(x + y <= 4)
        model.add_constr(x - y >= -2)
        model.add_constr(x + 2 * y == 3)
        model.set_objective(x + y)
        p = model.compile()
        assert p.A_ub.shape == (2, 2)  # GE row negated into UB form
        assert p.A_eq.shape == (1, 2)
        assert list(p.integrality) == [0, 1]
        assert p.num_constraints == 3

    def test_ge_rows_negated(self, model):
        x, y = model.add_var("x"), model.add_var("y")
        model.add_constr(x - y >= -2)
        p = model.compile()
        assert p.A_ub[0].tolist() == [-1.0, 1.0]
        assert p.b_ub[0] == pytest.approx(2.0)

    def test_maximize_negates_objective(self, model):
        x = model.add_var("x", ub=1)
        model.set_objective(5 * x, sense="max")
        p = model.compile()
        assert p.c[0] == -5.0
        assert p.objective_value(__import__("numpy").array([1.0])) == pytest.approx(5.0)

    def test_is_feasible_checks_everything(self, model):
        import numpy as np

        x = model.add_var("x", ub=2, vtype="integer")
        model.add_constr(x >= 1)
        p = model.compile()
        assert p.is_feasible(np.array([1.0]))
        assert not p.is_feasible(np.array([0.0]))   # constraint violated
        assert not p.is_feasible(np.array([1.5]))   # fractional
        assert not p.is_feasible(np.array([3.0]))   # bound violated

    def test_add_constr_rejects_bool(self, model):
        with pytest.raises(TypeError):
            model.add_constr(True)

    def test_bad_objective_sense(self, model):
        x = model.add_var("x")
        with pytest.raises(ValueError):
            model.set_objective(x, sense="upwards")
