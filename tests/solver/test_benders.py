"""L-shaped decomposition vs extensive form on small stochastic programs."""

import numpy as np
import pytest

from repro.solver import SolverStatus, solve_compiled
from repro.solver.benders import (
    BendersOptions,
    Scenario,
    TwoStageProblem,
    extensive_form,
    solve_benders,
)


def newsvendor(prices=(1.0,), demands=(5.0, 10.0), probs=(0.5, 0.5), cost=0.6, salvage=0.1, sell=1.0):
    """Classic newsvendor as a two-stage problem.

    Stage 1: order x at ``cost``.  Stage 2 (per demand scenario d):
    sell y1 = min(x, d) at ``sell``, salvage y2 = x - y1 at ``salvage``.
    Recourse rows: y1 + y2 == x  and  y1 + y3 == d (y3 = lost sales >= 0).
    """
    scenarios = []
    for d, p in zip(demands, probs):
        W = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 1.0]])
        T = np.array([[-1.0], [0.0]])
        h = np.array([0.0, d])
        q = np.array([-sell, -salvage, 0.0])
        scenarios.append(Scenario(prob=p, q=q, W=W, T=T, h=h))
    return TwoStageProblem(
        c=np.array([cost]),
        lb=np.array([0.0]),
        ub=np.array([100.0]),
        integrality=np.array([0]),
        scenarios=scenarios,
    )


class TestNewsvendor:
    def test_benders_matches_extensive_form(self):
        p = newsvendor()
        ext = solve_compiled(extensive_form(p), backend="scipy", use_presolve=False)
        ben = solve_benders(p)
        assert ext.status is SolverStatus.OPTIMAL
        assert ben.status is SolverStatus.OPTIMAL
        assert ben.objective == pytest.approx(ext.objective, abs=1e-5)

    def test_optimal_order_quantity_is_critical_fractile(self):
        # overage = cost - salvage = .5, underage = sell - cost = .4
        # fractile = .4/.9 ≈ .444 < .5 -> order the low demand
        p = newsvendor()
        ben = solve_benders(p)
        assert ben.x[0] == pytest.approx(5.0, abs=1e-4)

    def test_skewed_probabilities_shift_order(self):
        p = newsvendor(probs=(0.05, 0.95))
        ben = solve_benders(p)
        assert ben.x[0] == pytest.approx(10.0, abs=1e-4)

    def test_single_scenario_degenerates_to_lp(self):
        p = newsvendor(demands=(7.0,), probs=(1.0,))
        ben = solve_benders(p)
        ext = solve_compiled(extensive_form(p), backend="scipy", use_presolve=False)
        assert ben.objective == pytest.approx(ext.objective, abs=1e-6)
        assert ben.x[0] == pytest.approx(7.0, abs=1e-4)


class TestIntegerMaster:
    def test_integer_first_stage(self):
        p = newsvendor(demands=(5.5, 9.5), probs=(0.5, 0.5))
        p.integrality = np.array([1])
        ben = solve_benders(p)
        ext = solve_compiled(extensive_form(p), backend="scipy", use_presolve=False)
        assert ben.status is SolverStatus.OPTIMAL
        assert abs(ben.x[0] - round(ben.x[0])) < 1e-6
        assert ben.objective == pytest.approx(ext.objective, abs=1e-5)


class TestManyScenarios:
    def test_ten_scenarios(self):
        rng = np.random.default_rng(7)
        demands = rng.uniform(3, 12, size=10)
        probs = rng.dirichlet(np.ones(10))
        p = newsvendor(demands=tuple(demands), probs=tuple(probs))
        ben = solve_benders(p)
        ext = solve_compiled(extensive_form(p), backend="scipy", use_presolve=False)
        assert ben.objective == pytest.approx(ext.objective, abs=1e-4)

    def test_trace_is_monotone_lower_bound(self):
        p = newsvendor(demands=(4.0, 8.0, 12.0), probs=(0.3, 0.4, 0.3))
        ben = solve_benders(p)
        lowers = [t["lower"] for t in ben.extra["trace"]]
        assert all(lowers[i] <= lowers[i + 1] + 1e-7 for i in range(len(lowers) - 1))


class TestValidation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError, match="probabilities"):
            newsvendor(probs=(0.5, 0.4))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Scenario(prob=1.0, q=np.ones(2), W=np.ones((2, 2)), T=np.ones((3, 1)), h=np.ones(2))

    def test_iteration_limit_status(self):
        p = newsvendor(demands=(4.0, 8.0, 12.0), probs=(0.3, 0.4, 0.3))
        res = solve_benders(p, BendersOptions(max_iterations=1))
        assert res.status in (SolverStatus.ITERATION_LIMIT, SolverStatus.OPTIMAL)
