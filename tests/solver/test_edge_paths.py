"""Edge-path coverage: limits, reprs, error statuses, small conversions."""

import math

import numpy as np
import pytest

from repro.solver import (
    BranchAndBoundOptions,
    Model,
    SolverResult,
    SolverStatus,
    branch_and_bound,
    solve,
    solve_compiled,
)
from repro.solver.scipy_backend import solve_lp_scipy
from repro.solver.simplex import simplex_solve, solve_lp_simplex


class TestSimplexLimits:
    def test_iteration_limit_status(self):
        rng = np.random.default_rng(0)
        m = Model()
        xs = [m.add_var(f"x{i}", ub=10) for i in range(8)]
        for i in range(10):
            row = rng.uniform(-1, 1, 8)
            m.add_constr(sum(float(row[j]) * xs[j] for j in range(8)) <= 5.0)
        m.set_objective(sum(-x for x in xs))
        p = m.compile()
        res = solve_lp_simplex(p, max_iter=1)
        assert res.status in (SolverStatus.ITERATION_LIMIT, SolverStatus.OPTIMAL)

    def test_raw_interface_empty_constraints(self):
        status, x, obj, iters, tab = simplex_solve(
            np.zeros((0, 2)), np.zeros(0), np.array([1.0, 2.0])
        )
        assert status == "optimal" and obj == 0.0

    def test_raw_interface_unbounded_free_direction(self):
        status, *_ = simplex_solve(
            np.zeros((0, 1)), np.zeros(0), np.array([-1.0])
        )
        assert status == "unbounded"


class TestBranchBoundLimits:
    def _model(self):
        rng = np.random.default_rng(1)
        m = Model()
        xs = [m.add_var(f"x{i}", vtype="binary") for i in range(16)]
        vals = rng.integers(3, 30, 16)
        wts = rng.integers(2, 12, 16)
        m.add_constr(sum(int(w) * x for w, x in zip(wts, xs)) <= int(wts.sum() // 3))
        m.set_objective(sum(int(v) * x for v, x in zip(vals, xs)), sense="max")
        return m.compile()

    def test_time_limit(self):
        res = branch_and_bound(
            self._model(), solve_lp_scipy, BranchAndBoundOptions(time_limit=0.0)
        )
        assert res.status in (
            SolverStatus.TIME_LIMIT, SolverStatus.FEASIBLE, SolverStatus.OPTIMAL
        )

    def test_node_limit_zero(self):
        res = branch_and_bound(
            self._model(), solve_lp_scipy, BranchAndBoundOptions(node_limit=0)
        )
        assert res.status in (SolverStatus.NODE_LIMIT, SolverStatus.FEASIBLE)

    def test_root_infeasible(self):
        m = Model()
        x = m.add_var("x", vtype="binary")
        m.add_constr(x >= 2)
        res = branch_and_bound(m.compile(), solve_lp_scipy)
        assert res.status is SolverStatus.INFEASIBLE

    def test_root_unbounded(self):
        m = Model()
        x = m.add_var("x", vtype="integer")  # unbounded above
        y = m.add_var("y")
        m.add_constr(y <= 1)
        m.set_objective(-x)
        res = branch_and_bound(m.compile(), solve_lp_scipy)
        assert res.status is SolverStatus.UNBOUNDED


class TestResultTypes:
    def test_value_of_without_solution(self):
        m = Model()
        x = m.add_var("x", ub=1)
        res = SolverResult(status=SolverStatus.INFEASIBLE)
        with pytest.raises(ValueError):
            res.value_of(x)

    def test_gap_with_nan(self):
        res = SolverResult(status=SolverStatus.ERROR)
        assert res.gap == math.inf

    def test_status_has_solution(self):
        assert SolverStatus.OPTIMAL.has_solution
        assert SolverStatus.FEASIBLE.has_solution
        assert not SolverStatus.INFEASIBLE.has_solution


class TestReprsAndMisc:
    def test_model_repr(self):
        m = Model("demo")
        m.add_var("x", vtype="integer")
        m.add_constr(m.variables[0] <= 3)
        text = repr(m)
        assert "demo" in text and "int=1" in text

    def test_linexpr_repr(self):
        m = Model()
        x = m.add_var("cost")
        assert "cost" in repr(2 * x + 1)

    def test_variable_repr(self):
        m = Model()
        v = m.add_var("alpha", lb=1, ub=2, vtype="integer")
        assert "alpha" in repr(v) and "integer" in repr(v)

    def test_constraint_repr(self):
        m = Model()
        x = m.add_var("x")
        assert "<=" in repr(x <= 4)

    def test_presolve_infeasible_through_solve(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constr(x >= 5)
        res = solve(m)  # presolve catches it before any backend runs
        assert res.status is SolverStatus.INFEASIBLE

    def test_solve_compiled_respects_maximize(self):
        m = Model()
        x = m.add_var("x", ub=7)
        m.set_objective(x, sense="max")
        res = solve_compiled(m.compile())
        assert res.objective == pytest.approx(7.0)

    def test_compiled_num_properties(self):
        m = Model()
        m.add_var("a", vtype="binary")
        m.add_var("b")
        m.add_constr(m.variables[0] + m.variables[1] <= 2)
        p = m.compile()
        assert p.num_vars == 2
        assert p.num_constraints == 1
