"""LP sensitivity (duals/reduced costs) and B&B warm starts."""

import numpy as np
import pytest

from repro.solver import (
    BranchAndBoundOptions,
    Model,
    SolverStatus,
    branch_and_bound,
    lp_sensitivity,
)
from repro.solver.scipy_backend import solve_lp_scipy


class TestLPSensitivity:
    def _diet_lp(self):
        # min 2x + 3y  s.t. x + y >= 4, x <= 10, y <= 10
        m = Model()
        x = m.add_var("x", ub=10)
        y = m.add_var("y", ub=10)
        m.add_constr(x + y >= 4)
        m.set_objective(2 * x + 3 * y)
        return m

    def test_shadow_price_of_binding_row(self):
        p = self._diet_lp().compile()
        rep = lp_sensitivity(p)
        # constraint compiled as -x - y <= -4; relaxing b_ub by 1 unit
        # (allowing one unit less coverage) saves $2 -> marginal is +2
        assert rep.objective == pytest.approx(8.0)
        assert abs(rep.duals_ub[0]) == pytest.approx(2.0)

    def test_dual_matches_finite_difference(self):
        m = self._diet_lp()
        base = lp_sensitivity(m.compile())
        m2 = Model()
        x = m2.add_var("x", ub=10)
        y = m2.add_var("y", ub=10)
        m2.add_constr(x + y >= 5)  # one more unit of requirement
        m2.set_objective(2 * x + 3 * y)
        bumped = lp_sensitivity(m2.compile())
        fd = bumped.objective - base.objective
        # marginal cost of the requirement = |dual| of the row
        assert fd == pytest.approx(abs(base.duals_ub[0]), abs=1e-9)

    def test_reduced_cost_of_nonbasic_variable(self):
        p = self._diet_lp().compile()
        rep = lp_sensitivity(p)
        # y stays at 0: its reduced cost is c_y - c_x = 1 (cost of forcing
        # one unit of y into the solution)
        assert rep.x[1] == pytest.approx(0.0)
        assert rep.reduced_costs[1] == pytest.approx(1.0)

    def test_equality_duals(self):
        m = Model()
        x = m.add_var("x")
        y = m.add_var("y")
        m.add_constr(x + y == 6)
        m.set_objective(x + 4 * y)
        rep = lp_sensitivity(m.compile())
        assert rep.duals_eq[0] == pytest.approx(1.0)  # served by cheap x

    def test_maximize_sign_flip(self):
        m = Model()
        x = m.add_var("x", ub=5)
        m.add_constr(x <= 3)
        m.set_objective(x, sense="max")
        rep = lp_sensitivity(m.compile())
        assert rep.objective == pytest.approx(3.0)
        # one more unit of the cap is worth +1 in the maximize sense
        assert rep.duals_ub[0] == pytest.approx(1.0)

    def test_infeasible_raises(self):
        m = Model()
        x = m.add_var("x", ub=1)
        m.add_constr(x >= 3)
        with pytest.raises(RuntimeError):
            lp_sensitivity(m.compile())

    def test_binding_rows_helper(self):
        p = self._diet_lp().compile()
        rep = lp_sensitivity(p)
        assert 0 in rep.binding_ub_rows()


class TestWarmStart:
    def _knapsack(self):
        m = Model()
        xs = [m.add_var(f"x{i}", vtype="binary") for i in range(8)]
        values = [9, 7, 6, 5, 5, 4, 3, 2]
        weights = [5, 4, 3, 3, 2, 2, 2, 1]
        m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= 10)
        m.set_objective(sum(v * x for v, x in zip(values, xs)), sense="max")
        return m

    def test_feasible_incumbent_accepted(self):
        p = self._knapsack().compile()
        x0 = np.zeros(8)
        x0[7] = 1.0  # take the lightest item: feasible
        res = branch_and_bound(
            p, solve_lp_scipy, BranchAndBoundOptions(initial_incumbent=x0)
        )
        assert res.status is SolverStatus.OPTIMAL
        assert res.objective >= 2.0  # never worse than the seed

    def test_infeasible_incumbent_warns_and_is_ignored(self):
        p = self._knapsack().compile()
        x0 = np.ones(8)  # overweight
        with pytest.warns(UserWarning, match="initial_incumbent"):
            res = branch_and_bound(
                p, solve_lp_scipy, BranchAndBoundOptions(initial_incumbent=x0)
            )
        assert res.status is SolverStatus.OPTIMAL

    def test_wrong_shape_rejected_loudly(self):
        # Regression: a wrong-shaped warm start used to be dropped silently,
        # discarding valid Wagner-Whitin seeds on any bookkeeping slip.
        p = self._knapsack().compile()
        with pytest.raises(ValueError, match="initial_incumbent"):
            branch_and_bound(
                p, solve_lp_scipy, BranchAndBoundOptions(initial_incumbent=np.zeros(3))
            )

    def test_optimal_incumbent_short_circuits(self):
        p = self._knapsack().compile()
        # solve once to learn the optimum, then re-solve seeded with it
        ref = branch_and_bound(p, solve_lp_scipy)
        seeded = branch_and_bound(
            p, solve_lp_scipy, BranchAndBoundOptions(initial_incumbent=np.round(ref.x))
        )
        assert seeded.objective == pytest.approx(ref.objective, abs=1e-6)
        assert seeded.nodes <= ref.nodes

    def test_drrp_warm_start_path(self):
        from repro.core import DRRPInstance, solve_drrp

        inst = DRRPInstance.example(horizon=10)
        cold = solve_drrp(inst, backend="bb-scipy")
        warm = solve_drrp(inst, backend="bb-scipy", warm_start=True)
        assert warm.total_cost == pytest.approx(cold.total_cost, abs=1e-6)
        # the WW seed is optimal, so the warm run never needs more nodes
        assert warm.extra["nodes"] <= cold.extra["nodes"]
