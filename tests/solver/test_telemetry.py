"""Telemetry + deadline layer: auto-backend fallback, warm-start handling,
deadline enforcement inside node/cut/pivot loops, event-stream well-formedness,
and cross-backend agreement.

This file must import and (mostly) run without SciPy — the CI job with SciPy
uninstalled executes it to exercise the pure-Python fallback chain; tests that
genuinely need HiGHS are skipped there.
"""

import math
import time

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.solver.interface as interface_mod
import repro.solver.scipy_backend as scipy_backend_mod
from repro.solver import (
    BranchAndBoundOptions,
    Deadline,
    EventRecorder,
    Model,
    SolverStatus,
    branch_and_bound,
    scipy_available,
    solve,
    solve_compiled,
)
from repro.solver.cuts import strengthen_with_gomory_cuts
from repro.solver.simplex import solve_lp_simplex
from repro.solver.telemetry import EVENT_KINDS, SolveEvent, Telemetry

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="scipy not installed")


def knapsack_model(values=(9, 7, 6, 5, 5, 4, 3, 2), weights=(5, 4, 3, 3, 2, 2, 2, 1), cap=10):
    m = Model("knapsack")
    xs = [m.add_var(f"x{i}", vtype="binary") for i in range(len(values))]
    m.add_constr(sum(w * x for w, x in zip(weights, xs)) <= cap)
    m.set_objective(sum(v * x for v, x in zip(values, xs)), sense="max")
    return m


def lot_sizing_model(demand, setup_cost, hold=0.3):
    m = Model("lot")
    T = len(demand)
    alpha = [m.add_var(f"a{t}") for t in range(T)]
    beta = [m.add_var(f"b{t}") for t in range(T)]
    chi = [m.add_var(f"c{t}", vtype="binary") for t in range(T)]
    B = float(sum(demand)) + 1.0
    for t in range(T):
        prev = beta[t - 1] if t else 0.0
        m.add_constr(prev + alpha[t] - beta[t] == float(demand[t]))
        m.add_constr(alpha[t] <= B * chi[t])
    m.set_objective(sum(setup_cost * chi[t] + hold * beta[t] for t in range(T)))
    return m


class TestDeadlineObject:
    def test_basic_semantics(self):
        dl = Deadline(1000.0)
        assert not dl.expired()
        assert 0.0 <= dl.elapsed() < dl.remaining()
        assert Deadline(0.0).expired()
        assert not Deadline.never().expired()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_tightened_keeps_sooner(self):
        dl = Deadline(1000.0)
        assert dl.tightened(math.inf) is dl
        assert dl.tightened(2000.0) is dl
        tight = dl.tightened(0.001)
        assert tight is not dl
        assert tight.remaining() <= dl.remaining()


class TestAutoFallback:
    """Regression: backend='auto' used to dispatch to scipy unconditionally
    and crash with ImportError when it was absent, despite the docstring
    promising a pure-Python fallback."""

    def test_auto_falls_back_without_scipy(self, monkeypatch):
        monkeypatch.setattr(interface_mod, "scipy_available", lambda: False)
        rec = EventRecorder()
        with pytest.warns(RuntimeWarning, match="falling back"):
            res = solve(knapsack_model(), backend="auto", listener=rec)
        assert res.status is SolverStatus.OPTIMAL
        assert res.objective == pytest.approx(20.0)
        degr = rec.of_kind("backend_degraded")
        assert len(degr) == 1
        assert degr[0].data["from_backend"] == "scipy"
        assert degr[0].data["to_backend"] == "simplex"

    def test_auto_fallback_lp_path(self, monkeypatch):
        monkeypatch.setattr(interface_mod, "scipy_available", lambda: False)
        m = Model()
        x = m.add_var("x", ub=4)
        m.add_constr(x >= 1)
        m.set_objective(x)
        with pytest.warns(RuntimeWarning):
            res = solve(m, backend="auto")
        assert res.status is SolverStatus.OPTIMAL
        assert res.objective == pytest.approx(1.0)

    def test_explicit_scipy_backend_raises_without_scipy(self, monkeypatch):
        monkeypatch.setattr(scipy_backend_mod, "sciopt", None)
        with pytest.raises(ImportError, match="requires scipy"):
            solve(knapsack_model(), backend="scipy")

    @needs_scipy
    def test_auto_prefers_scipy_when_available(self):
        rec = EventRecorder()
        res = solve(knapsack_model(), backend="auto", listener=rec)
        assert res.status is SolverStatus.OPTIMAL
        assert not rec.of_kind("backend_degraded")


class TestWarmStartRegressions:
    def test_wrong_shape_raises(self):
        p = knapsack_model().compile()
        with pytest.raises(ValueError, match="initial_incumbent"):
            branch_and_bound(
                p, solve_lp_simplex, BranchAndBoundOptions(initial_incumbent=np.zeros(2))
            )

    def test_presolve_tightened_bound_no_longer_drops_warm_start(self):
        # Regression: presolve turns the singleton row 1e-7*x <= 2e-7 into
        # the bound x <= 2, and the old shape/feasibility check against the
        # presolved problem silently discarded a warm start (x=3) that was
        # feasible for the *original* model within tolerance.  It must now
        # be mapped (clipped) through the presolve reductions and kept.
        m = Model()
        x = m.add_var("x", vtype="integer", ub=10)
        m.add_constr(1e-7 * x <= 2e-7)
        m.set_objective(x, sense="max")
        rec = EventRecorder()
        res = solve_compiled(
            m.compile(),
            backend="simplex",
            bb_options=BranchAndBoundOptions(initial_incumbent=np.array([3.0])),
            listener=rec,
        )
        assert res.status is SolverStatus.OPTIMAL
        assert res.objective == pytest.approx(2.0)
        sources = [ev.data["source"] for ev in rec.of_kind("incumbent")]
        assert "warm_start" in sources
        assert not rec.of_kind("warm_start_rejected")

    def test_infeasible_warm_start_is_loud(self):
        p = knapsack_model().compile()
        rec = EventRecorder()
        with pytest.warns(UserWarning, match="initial_incumbent"):
            res = branch_and_bound(
                p,
                solve_lp_simplex,
                BranchAndBoundOptions(initial_incumbent=np.ones(8)),
                telemetry=Telemetry(rec),
            )
        assert res.status is SolverStatus.OPTIMAL
        assert len(rec.of_kind("warm_start_rejected")) == 1

    def test_wagner_whitin_warm_start_survives_presolve_and_cuts(self):
        from repro.core import DRRPInstance, solve_drrp

        inst = DRRPInstance.example(horizon=10)
        rec = EventRecorder()
        plan = solve_drrp(inst, backend="simplex+cuts", warm_start=True, listener=rec)
        assert plan.status is SolverStatus.OPTIMAL
        sources = [ev.data["source"] for ev in rec.of_kind("incumbent")]
        assert sources and sources[0] == "warm_start"
        assert not rec.of_kind("warm_start_rejected")


class TestDeadlineEnforcement:
    def test_deadline_checked_between_child_solves(self):
        # Regression: the budget was only checked at the top of the node
        # loop, so a node spawning two slow child LP solves overran the
        # limit by 2 LP solves.  With the mid-node check the overrun is at
        # most one child solve.
        p = knapsack_model(
            values=(10, 13, 7, 8, 9, 4), weights=(3, 4, 2, 3, 3, 1), cap=7
        ).compile()
        calls = {"n": 0}

        def slow_lp(prob):
            calls["n"] += 1
            if calls["n"] > 1:  # root stays fast so branching starts
                time.sleep(0.2)
            return solve_lp_simplex(prob)

        start = time.monotonic()
        res = branch_and_bound(p, slow_lp, BranchAndBoundOptions(time_limit=0.05))
        elapsed = time.monotonic() - start
        assert res.status in (SolverStatus.TIME_LIMIT, SolverStatus.FEASIBLE)
        # old behavior: two sleeping children ≈ 0.4 s; fixed: ≤ one child
        assert elapsed < 0.35

    def test_expired_deadline_inside_cut_rounds(self):
        p = knapsack_model().compile()
        rec = EventRecorder()
        strengthened = strengthen_with_gomory_cuts(
            p, deadline=Deadline(0.0), telemetry=Telemetry(rec)
        )
        assert strengthened.A_ub.shape == p.A_ub.shape  # no rounds ran
        events = rec.of_kind("deadline_exceeded")
        assert events and events[0].data["where"] == "gomory_cuts"

    def test_simplex_pivot_loop_respects_deadline(self):
        # A moderately large dense LP cannot finish in zero budget; the
        # pivot loop must unwind with TIME_LIMIT instead of completing.
        rng = np.random.default_rng(0)
        n = 40
        m = Model()
        xs = [m.add_var(f"x{i}", ub=10.0) for i in range(n)]
        for _ in range(n):
            coefs = rng.uniform(0.1, 1.0, n)
            m.add_constr(sum(float(c) * x for c, x in zip(coefs, xs)) >= float(rng.uniform(5, 20)))
        m.set_objective(sum(float(c) * x for c, x in zip(rng.uniform(0.5, 2.0, n), xs)))
        res = solve(m, backend="simplex", deadline=Deadline(0.0), use_presolve=False)
        assert res.status is SolverStatus.TIME_LIMIT

    def test_large_srrp_deadline_returns_fast_with_honest_status(self):
        # Acceptance: 0.1 s budget on a large SRRP deterministic equivalent
        # returns FEASIBLE/TIME_LIMIT within ~2x the budget — never hangs.
        from repro.core import SRRPInstance, build_tree
        from repro.core.costs import on_demand_schedule
        from repro.core.srrp import build_srrp_model
        from repro.market import ec2_catalog

        depth = 7  # 2^8 - 1 = 255 vertices, 765 variables
        tree = build_tree(
            0.34,
            [(np.array([0.2, 0.5]), np.array([0.5, 0.5]))] * depth,
        )
        rng = np.random.default_rng(3)
        inst = SRRPInstance(
            demand=rng.uniform(0.2, 1.5, depth + 1),
            costs=on_demand_schedule(ec2_catalog()["m1.large"], depth + 1),
            tree=tree,
        )
        model, _ = build_srrp_model(inst)
        start = time.monotonic()
        res = solve(model, backend="simplex", time_limit=0.1)
        elapsed = time.monotonic() - start
        assert res.status in (SolverStatus.TIME_LIMIT, SolverStatus.FEASIBLE)
        assert elapsed < 1.0  # ~2x budget plus generous CI slack

    @needs_scipy
    def test_benders_deadline_returns_honest_status(self):
        from tests.solver.test_benders import newsvendor
        from repro.solver.benders import solve_benders

        res = solve_benders(newsvendor(), deadline=Deadline(0.0))
        assert res.status in (SolverStatus.TIME_LIMIT, SolverStatus.FEASIBLE)

    @needs_scipy
    def test_milp_scipy_deadline_maps_to_time_limit(self):
        res = solve(knapsack_model(), backend="scipy", deadline=Deadline(0.0))
        assert res.status in (SolverStatus.TIME_LIMIT, SolverStatus.FEASIBLE)


class TestEventStream:
    def _assert_well_formed(self, rec: EventRecorder):
        assert rec.events, "no events recorded"
        for ev in rec.events:
            assert isinstance(ev, SolveEvent)
            assert ev.kind in EVENT_KINDS
        ts = [ev.t for ev in rec.events]
        assert ts == sorted(ts), "timestamps must be monotone non-decreasing"
        starts = [ev.data["phase"] for ev in rec.of_kind("phase_start")]
        ends = [ev.data["phase"] for ev in rec.of_kind("phase_end")]
        assert sorted(starts) == sorted(ends), "unbalanced phase brackets"

    def test_simplex_lp_stream(self):
        m = Model()
        x = m.add_var("x", ub=3)
        y = m.add_var("y", ub=3)
        m.add_constr(x + y <= 4)
        m.set_objective(-1 * x - 2 * y)
        rec = EventRecorder()
        res = solve(m, backend="simplex", listener=rec)
        assert res.status is SolverStatus.OPTIMAL
        self._assert_well_formed(rec)
        assert rec.events[0].kind == "solve_start"
        assert rec.events[-1].kind == "solve_end"
        phases = {ev.data["phase"] for ev in rec.of_kind("phase_end")}
        assert "simplex_phase1" in phases and "simplex_phase2" in phases
        pivots = [ev.data["pivots"] for ev in rec.of_kind("phase_end") if "pivots" in ev.data]
        assert pivots and all(p >= 0 for p in pivots)

    def test_branch_and_bound_stream(self):
        rec = EventRecorder()
        res = solve(knapsack_model(), backend="simplex", listener=rec)
        assert res.status is SolverStatus.OPTIMAL
        self._assert_well_formed(rec)
        kinds = rec.kinds()
        assert kinds.get("node_open", 0) >= 1
        assert kinds.get("node_close", 0) >= 1
        assert kinds.get("incumbent", 0) >= 1
        # every close refers to a previously opened node id
        opened = {ev.data["node"] for ev in rec.of_kind("node_open")}
        assert {ev.data["node"] for ev in rec.of_kind("node_close")} <= opened
        # incumbent objectives improve monotonically (maximize: increasing)
        objs = [ev.data["objective"] for ev in rec.of_kind("incumbent")]
        assert objs == sorted(objs)

    @needs_scipy
    def test_benders_stream(self):
        from tests.solver.test_benders import newsvendor
        from repro.solver.benders import solve_benders

        rec = EventRecorder()
        res = solve_benders(newsvendor(), listener=rec)
        assert res.status is SolverStatus.OPTIMAL
        iters = rec.of_kind("benders_iteration")
        assert iters
        assert [ev.data["iteration"] for ev in iters] == list(range(len(iters)))

    def test_summary_line_and_json_roundtrip(self):
        import json

        rec = EventRecorder()
        solve(knapsack_model(), backend="simplex", listener=rec)
        line = rec.summary_line()
        assert line.startswith("telemetry:") and "nodes=" in line
        payload = json.loads(rec.to_json())
        assert len(payload) == len(rec.events)
        assert all("kind" in item and "t" in item for item in payload)

    def test_plain_callable_listener(self):
        seen = []
        res = solve(knapsack_model(), backend="simplex", listener=seen.append)
        assert res.status is SolverStatus.OPTIMAL
        assert seen and all(isinstance(ev, SolveEvent) for ev in seen)

    def test_bad_listener_rejected(self):
        with pytest.raises(TypeError):
            solve(knapsack_model(), backend="simplex", listener=object())


class TestCrossBackendAgreement:
    """Property: all backends agree (objective within 1e-6) on randomized
    small lot-sizing / DRRP-structured instances."""

    def _backends(self):
        backends = ["simplex", "simplex+cuts"]
        if scipy_available():
            backends.append("scipy")
        return backends

    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_lot_sizing_instances(self, seed):
        rng = np.random.default_rng(seed)
        T = int(rng.integers(2, 6))
        demand = rng.uniform(0.0, 3.0, T)
        setup = float(rng.uniform(0.5, 8.0))
        hold = float(rng.uniform(0.05, 1.0))
        m = lot_sizing_model(demand, setup, hold)
        objs = {be: solve(m, backend=be).objective for be in self._backends()}
        lo, hi = min(objs.values()), max(objs.values())
        assert hi - lo < 1e-6, f"backends disagree: {objs}"

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_random_drrp_instances(self, seed):
        from repro.core import DRRPInstance
        from repro.core.costs import CostSchedule
        from repro.core.drrp import build_drrp_model

        rng = np.random.default_rng(seed)
        T = int(rng.integers(2, 6))
        costs = CostSchedule(
            compute=rng.uniform(0.05, 1.0, T),
            storage=rng.uniform(0.0, 0.01, T),
            io=rng.uniform(0.01, 0.4, T),
            transfer_in=rng.uniform(0.0, 0.2, T),
            transfer_out=rng.uniform(0.0, 0.3, T),
        )
        inst = DRRPInstance(demand=rng.uniform(0.0, 2.0, T), costs=costs)
        model, _ = build_drrp_model(inst)
        objs = {be: solve(model, backend=be).objective for be in self._backends()}
        lo, hi = min(objs.values()), max(objs.values())
        assert hi - lo < 1e-6, f"backends disagree: {objs}"


class TestEventJsonSerialization:
    """EventRecorder.to_json must survive exact-arithmetic payloads."""

    def test_certificate_carrying_event_round_trips(self):
        import json
        from fractions import Fraction

        rec = EventRecorder()
        hub = Telemetry(listeners=[rec])
        hub.emit(
            "incumbent",
            objective=Fraction(22, 7),
            dual=np.float64(1.25),
            basis=np.array([1, 0, 1]),
            bound=-math.inf,
            gap=math.nan,
        )
        payload = json.loads(rec.to_json())  # must not raise
        data = payload[0]
        assert data["objective"] == "22/7"
        assert data["dual"] == 1.25
        assert data["basis"] == [1, 0, 1]
        assert data["bound"] == "-Infinity"
        assert data["gap"] == "NaN"

    def test_to_json_is_strict_json(self):
        rec = EventRecorder()
        Telemetry(listeners=[rec]).emit("incumbent", objective=math.inf)
        assert "Infinity\"" in rec.to_json()  # string, not the bare token
        assert ": Infinity" not in rec.to_json()

    def test_jsonable_handles_nested_containers(self):
        from fractions import Fraction

        from repro.solver.telemetry import jsonable

        out = jsonable({"a": [Fraction(1, 2), {np.int64(3)}], "b": (math.inf,)})
        assert out["a"][0] == "1/2"
        assert out["a"][1] == [3]
        assert out["b"] == ["Infinity"]


class TestDisabledTelemetryFastPath:
    """With no listener attached, the solvers must emit zero events —
    the hot loops are guarded by ``if telemetry:`` on a ``None`` hub."""

    def test_from_listener_none_is_identity_none(self):
        assert Telemetry.from_listener(None) is None

    def test_from_listener_passes_hub_through(self):
        hub = Telemetry()
        assert Telemetry.from_listener(hub) is hub

    def test_solve_without_listener_keeps_recorder_empty(self):
        # A global recorder would have to be fed explicitly; nothing in the
        # disabled path may emit. Solve twice (LP relaxation + B&B) and
        # confirm no event reaches a recorder created alongside.
        rec = EventRecorder()
        res = solve(knapsack_model(), backend="simplex")
        assert res.status is SolverStatus.OPTIMAL
        assert len(rec) == 0
