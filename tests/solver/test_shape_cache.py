"""The structural shape cache: same-shape models share one compiled skeleton.

Distinct from the instance/digest caches in ``test_model_cache.py``:
those memoize *identical* problems; the shape cache covers models with
the same constraint structure but different coefficients — a fleet of
same-horizon DRRP tenants — and must reproduce exactly what a cold
compile builds.
"""

import numpy as np

from repro.solver import (
    compile_cache_stats,
    reset_compile_cache,
    reset_compile_cache_stats,
)
from repro.solver.model import Model


def _lot_model(seed):
    """A small DRRP-shaped model; structure fixed, values seeded."""
    rng = np.random.default_rng(seed)
    T = 5
    m = Model(f"lot-{seed}")
    alpha = [m.add_var(f"a{t}", lb=0.0) for t in range(T)]
    beta = [m.add_var(f"b{t}", lb=0.0) for t in range(T)]
    chi = [m.add_var(f"x{t}", lb=0.0, ub=1.0, vtype="binary") for t in range(T)]
    demand = rng.uniform(0.5, 2.0, T)
    for t in range(T):
        prev = beta[t - 1] if t else 0.0
        m.add_constr(prev + alpha[t] - beta[t] == float(demand[t]))
        m.add_constr(alpha[t] - float(demand[t:].sum()) * chi[t] <= 0.0)
    m.set_objective(
        sum(float(rng.uniform(0.5, 3.0)) * v for v in alpha + beta + chi)
    )
    return m


def _assert_identical(p, q):
    assert np.array_equal(p.c, q.c)
    assert p.c0 == q.c0
    assert np.array_equal(p.A_ub, q.A_ub) and np.array_equal(p.b_ub, q.b_ub)
    assert np.array_equal(p.A_eq, q.A_eq) and np.array_equal(p.b_eq, q.b_eq)
    assert np.array_equal(p.lb, q.lb) and np.array_equal(p.ub, q.ub)
    assert np.array_equal(p.integrality, q.integrality)
    assert p.maximize == q.maximize


class TestShapeFastPath:
    def test_fast_path_matches_cold_compile(self):
        # Prime the shape cache with one model, then compile nine others
        # of the same shape: each fast-path result must equal the matrices
        # a from-scratch build produces for that model.
        _lot_model(0).compile()
        for seed in range(1, 10):
            m = _lot_model(seed)
            fast = m.compile()
            cold = _lot_model(seed)._compile_uncached()
            _assert_identical(fast, cold)

    def test_same_shape_different_values_hit_shape_cache(self):
        _lot_model(100).compile()  # prime
        reset_compile_cache_stats()
        for seed in range(101, 105):
            _lot_model(seed).compile()
        stats = compile_cache_stats()
        assert stats["compiles"] == 4
        assert stats["shape_hits"] == 4
        assert stats["full_builds"] == 0

    def test_different_shapes_build_fresh(self):
        # Full reset: the LRUs are process-wide, and an earlier test may
        # have cached a model of this same (tiny) shape.
        reset_compile_cache()
        m = Model("other")
        x = m.add_var("x", lb=0.0)
        m.add_constr(x <= 3.0)
        m.set_objective(x)
        m.compile()
        stats = compile_cache_stats()
        assert stats["full_builds"] >= 1

    def test_stats_layers_are_disjoint_and_complete(self):
        reset_compile_cache_stats()
        m = _lot_model(7)
        m.compile()   # digest or shape or full, depending on prior tests
        m.compile()   # instance hit
        stats = compile_cache_stats()
        assert stats["compiles"] == 2
        assert stats["instance_hits"] == 1
        assert (
            stats["digest_hits"] + stats["shape_hits"] + stats["full_builds"] == 1
        )

    def test_shape_reuse_solves_to_the_right_optimum(self):
        from repro.solver import solve_compiled

        _lot_model(200).compile()  # prime the skeleton
        for seed in (201, 202):
            m = _lot_model(seed)
            fast = solve_compiled(m.compile(), backend="simplex", use_presolve=False)
            cold = solve_compiled(
                _lot_model(seed)._compile_uncached(),
                backend="simplex", use_presolve=False,
            )
            assert abs(fast.objective - cold.objective) <= 1e-9
