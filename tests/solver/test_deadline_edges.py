"""Zero/expired deadline edges: every entry point degrades, none raises.

Satellite contract: ``time_limit=0`` or an already-expired ``Deadline``
returns the Wagner-Whitin incumbent with ``TIME_LIMIT`` status from the
plan entry point, and an honest non-exception status from branch-and-bound
and Benders.
"""

import numpy as np
import pytest

from repro.core.drrp import DRRPInstance, solve_drrp
from repro.core.lotsizing import solve_wagner_whitin
from repro.solver import BranchAndBoundOptions
from repro.solver.benders import BendersOptions, solve_benders
from repro.solver.interface import solve_compiled
from repro.solver.result import SolverStatus
from repro.solver.scipy_backend import scipy_available
from repro.solver.telemetry import Deadline
from repro.verify.generators import planted_milp, random_two_stage

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="scipy not installed")

BACKENDS = ["simplex"] + (["scipy", "bb-scipy"] if scipy_available() else [])


@pytest.fixture
def instance():
    return DRRPInstance.example(horizon=12, seed=3)


class TestPlanEntryPoint:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_time_limit_zero_returns_ww_incumbent(self, instance, backend):
        plan = solve_drrp(instance, backend=backend, time_limit=0)
        assert plan.status is SolverStatus.TIME_LIMIT
        ww = solve_wagner_whitin(instance)
        assert plan.objective == pytest.approx(ww.objective)
        assert np.allclose(plan.chi, ww.chi)
        plan.validate(instance)

    def test_expired_deadline_object(self, instance):
        plan = solve_drrp(instance, backend="auto", deadline=Deadline(0.0))
        assert plan.status is SolverStatus.TIME_LIMIT
        assert plan.extra.get("fallback") == "wagner-whitin"

    def test_cli_plan_time_limit_zero_exits_cleanly(self, capsys):
        from repro.cli import main

        # a usable-but-not-optimal incumbent is exit 3, not 0 (and not 1:
        # the plan still printed)
        code = main(["plan", "--horizon", "8", "--time-limit", "0"])
        assert code == 3
        out = capsys.readouterr().out
        assert "DRRP cost" in out

    def test_capacitated_instance_still_raises(self, instance):
        # no WW fallback exists under a bottleneck: an honest error beats
        # silently ignoring the capacity constraint
        capped = DRRPInstance(
            demand=instance.demand,
            costs=instance.costs,
            bottleneck_rate=1.0,
            bottleneck_capacity=np.full(instance.horizon, 1e6),
            vm_name=instance.vm_name,
        )
        with pytest.raises(RuntimeError, match="time_limit"):
            solve_drrp(capped, backend="auto", time_limit=0)


class TestBranchAndBoundEntryPoint:
    def test_expired_no_incumbent_returns_time_limit(self):
        case = planted_milp(np.random.default_rng(0))
        backend = "bb-scipy" if scipy_available() else "simplex"
        res = solve_compiled(case.instance, backend=backend, use_presolve=False, time_limit=0)
        assert res.status is SolverStatus.TIME_LIMIT
        assert res.x is None

    def test_expired_with_warm_start_keeps_incumbent(self):
        case = planted_milp(np.random.default_rng(0))
        backend = "bb-scipy" if scipy_available() else "simplex"
        res = solve_compiled(
            case.instance, backend=backend, use_presolve=False, time_limit=0,
            bb_options=BranchAndBoundOptions(initial_incumbent=case.x_star),
        )
        assert res.status is SolverStatus.FEASIBLE
        assert res.x is not None
        assert res.objective == pytest.approx(case.optimum)


@needs_scipy
class TestBendersEntryPoint:
    def test_zero_time_limit_does_not_raise(self):
        case = random_two_stage(np.random.default_rng(4))
        res = solve_benders(case.instance, options=BendersOptions(time_limit=0.0))
        assert res.status is SolverStatus.TIME_LIMIT

    def test_expired_deadline_does_not_raise(self):
        case = random_two_stage(np.random.default_rng(4))
        res = solve_benders(case.instance, deadline=Deadline(0.0))
        assert res.status is SolverStatus.TIME_LIMIT
