"""The generators' planted optima must match what the solvers find."""

import numpy as np
import pytest

from repro.core.drrp import solve_drrp
from repro.core.lotsizing import solve_wagner_whitin
from repro.core.srrp import solve_srrp
from repro.solver.benders import extensive_form, solve_benders
from repro.solver.interface import solve_compiled
from repro.solver.result import SolverStatus
from repro.solver.scipy_backend import scipy_available
from repro.verify.generators import (
    FAMILIES,
    bid_dominance,
    infeasible_lp,
    planted_drrp,
    planted_evicted_drrp,
    planted_lp,
    planted_milp,
    planted_srrp,
    random_two_stage,
)

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="scipy not installed")


def close(a, b, tol=1e-6):
    return abs(a - b) <= tol * (1 + abs(b))


class TestPlantedLP:
    def test_optimum_matches_solver(self, rng):
        for _ in range(15):
            case = planted_lp(rng)
            res = solve_compiled(case.instance, backend="simplex", use_presolve=False)
            assert res.status is SolverStatus.OPTIMAL
            assert close(res.objective, case.optimum)

    def test_x_star_is_feasible(self, rng):
        for _ in range(15):
            case = planted_lp(rng)
            assert case.instance.is_feasible(case.x_star)

    def test_seeded_reproducibility(self):
        a = planted_lp(np.random.default_rng(7))
        b = planted_lp(np.random.default_rng(7))
        assert np.array_equal(a.instance.c, b.instance.c)
        assert a.optimum == b.optimum


class TestPlantedMILP:
    def test_optimum_matches_branch_and_bound(self, rng):
        backend = "bb-scipy" if scipy_available() else "simplex"
        for _ in range(8):
            case = planted_milp(rng)
            res = solve_compiled(case.instance, backend=backend, use_presolve=False)
            assert res.status.has_solution
            assert close(res.objective, case.optimum)
            assert case.instance.integrality.any()


class TestInfeasibleLP:
    def test_reported_infeasible(self, rng):
        for _ in range(8):
            case = infeasible_lp(rng)
            assert not case.feasible
            res = solve_compiled(case.instance, backend="simplex", use_presolve=False)
            assert res.status is SolverStatus.INFEASIBLE


class TestPlantedDRRP:
    def test_both_sub_families_match_ww_and_milp(self, rng):
        seen = set()
        for _ in range(20):
            case = planted_drrp(rng)
            seen.add(case.meta["sub_family"])
            assert close(solve_wagner_whitin(case.instance).objective, case.optimum)
            plan = solve_drrp(case.instance, backend="auto")
            assert close(plan.objective, case.optimum)
        assert seen == {"rent-per-slot", "single-setup"}

    def test_x_star_is_a_valid_plan(self, rng):
        from repro.core.drrp import RentalPlan

        case = planted_drrp(rng)
        T = case.instance.horizon
        plan = RentalPlan(
            alpha=case.x_star[:T], beta=case.x_star[T : 2 * T], chi=case.x_star[2 * T :],
            compute_cost=0, inventory_cost=0, transfer_in_cost=0, transfer_out_cost=0,
            objective=case.optimum, status=SolverStatus.OPTIMAL,
        )
        plan.validate(case.instance)


class TestPlantedSRRP:
    def test_optimum_matches_deterministic_equivalent(self, rng):
        for _ in range(5):
            case = planted_srrp(rng)
            plan = solve_srrp(case.instance, backend="auto")
            assert close(plan.expected_cost, case.optimum)
            plan.validate(case.instance)


@needs_scipy
class TestTwoStage:
    def test_extensive_form_agrees_with_benders(self, rng):
        for _ in range(6):
            case = random_two_stage(rng)
            ef = solve_compiled(extensive_form(case.instance), backend="auto", use_presolve=False)
            bd = solve_benders(case.instance)
            assert ef.status.has_solution and bd.status.has_solution
            assert close(ef.objective, bd.objective, tol=1e-5)


class TestPlantedEvictedDRRP:
    def test_optimum_matches_milp(self, rng):
        for _ in range(10):
            case = planted_evicted_drrp(rng)
            plan = solve_drrp(case.instance, backend="auto")
            assert close(plan.objective, case.optimum)

    def test_evicted_slots_are_knocked_out(self, rng):
        for _ in range(10):
            case = planted_evicted_drrp(rng)
            evicted = case.meta["evicted"]
            assert evicted and 0 not in evicted
            cap = case.instance.bottleneck_capacity
            assert all(cap[e] == 0.0 for e in evicted)
            plan = solve_drrp(case.instance, backend="auto")
            assert all(plan.alpha[e] <= 1e-9 for e in evicted)

    def test_x_star_is_a_valid_plan(self, rng):
        from repro.core.drrp import RentalPlan

        case = planted_evicted_drrp(rng)
        T = case.instance.horizon
        plan = RentalPlan(
            alpha=case.x_star[:T], beta=case.x_star[T : 2 * T], chi=case.x_star[2 * T :],
            compute_cost=0, inventory_cost=0, transfer_in_cost=0, transfer_out_cost=0,
            objective=case.optimum, status=SolverStatus.OPTIMAL,
        )
        plan.validate(case.instance)


class TestBidDominance:
    def test_higher_bid_weakly_dominates(self, rng):
        from repro.market.interruptions import fixed_bid_outcome

        for _ in range(20):
            case = bid_dominance(rng)
            inst = case.instance
            lo = fixed_bid_outcome(inst, inst.bid_lo)
            hi = fixed_bid_outcome(inst, inst.bid_hi)
            assert hi.cost <= lo.cost
            assert hi.interruptions <= lo.interruptions
            assert float(hi.cost) == case.optimum

    def test_outcome_matches_simulator_bit_for_bit(self, rng):
        from repro.core.rolling import NoPlanPolicy, simulate_policy
        from repro.market.auction import FixedBids
        from repro.market.catalog import CostRates, VMClass
        from repro.market.interruptions import fixed_bid_outcome

        for _ in range(5):
            case = bid_dominance(rng)
            inst = case.instance
            vm = VMClass(name="bid-dominance", on_demand_price=inst.on_demand_price)
            for bid in (inst.bid_lo, inst.bid_hi):
                analytic = fixed_bid_outcome(inst, bid)
                sim = simulate_policy(
                    NoPlanPolicy(FixedBids(value=bid)), inst.prices, inst.demand,
                    vm, rates=CostRates(), interruption_loss=inst.work_loss,
                )
                assert float(analytic.cost) == sim.total_cost
                assert analytic.interruptions == sim.out_of_bid_events


class TestPlantedFleetPool:
    def test_per_tenant_optima_match_ww(self, rng):
        from repro.verify.generators import planted_fleet_pool

        for _ in range(5):
            case = planted_fleet_pool(rng)
            fc = case.instance
            for inst, opt in zip(fc.tenants, case.meta["per_tenant_optima"]):
                assert close(solve_wagner_whitin(inst).objective, opt)

    def test_fleet_optimum_is_sum_plus_min_delta(self, rng):
        from repro.verify.generators import planted_fleet_pool

        for _ in range(5):
            case = planted_fleet_pool(rng)
            expected = sum(case.meta["per_tenant_optima"]) + min(case.meta["deltas"])
            assert close(case.optimum, expected)

    def test_plan_fleet_attains_the_optimum(self, rng):
        from repro.fleet import CapacityPool, FleetConfig, Tenant, plan_fleet
        from repro.verify.generators import planted_fleet_pool

        case = planted_fleet_pool(rng)
        fc = case.instance
        tenants = [
            Tenant(
                tenant_id=i, name=f"t{i}", vm_name="planted", profile="constant",
                sla="premium", pool="shared", size=1.0, instance=inst,
            )
            for i, inst in enumerate(fc.tenants)
        ]
        pools = {"shared": CapacityPool("shared", fc.capacity)}
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        assert fleet.feasible
        assert close(fleet.total_cost, case.optimum)


def test_family_registry_is_complete(rng):
    assert set(FAMILIES) == {
        "lp", "milp", "lp-infeasible", "drrp", "drrp-random", "drrp-evicted",
        "srrp", "two-stage", "bid-dominance", "fleet-pool",
    }
    for gen in FAMILIES.values():
        case = gen(rng)
        assert case.family in FAMILIES
