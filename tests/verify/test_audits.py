"""Process audits: healthy solver streams pass, corrupted evidence fails."""

import numpy as np
import pytest

from repro.solver.benders import solve_benders
from repro.solver.interface import solve_compiled
from repro.solver.scipy_backend import scipy_available
from repro.solver.telemetry import EventRecorder, SolveEvent
from repro.verify.audits import all_passed, audit_bb_events, audit_benders_cuts
from repro.verify.generators import planted_milp, random_two_stage

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="scipy not installed")


def ev(kind, **data):
    return SolveEvent(kind=kind, t=0.0, data=data)


class TestBBAudit:
    def test_real_bb_stream_passes(self, rng):
        backend = "bb-scipy" if scipy_available() else "simplex"
        for _ in range(4):
            case = planted_milp(rng)
            rec = EventRecorder()
            solve_compiled(case.instance, backend=backend, use_presolve=False, listener=rec)
            checks = audit_bb_events(rec.events)
            assert all_passed(checks), [c.detail for c in checks if not c.passed]

    def test_decreasing_bounds_flagged(self):
        events = [ev("node_close", node=0, bound=5.0), ev("node_close", node=1, bound=3.0)]
        checks = audit_bb_events(events)
        bad = [c for c in checks if not c.passed]
        assert [c.name for c in bad] == ["bounds_monotone"]

    def test_unjustified_prune_flagged(self):
        events = [ev("node_prune", node=4, bound=1.0, incumbent=10.0)]
        checks = audit_bb_events(events)
        assert any(c.name == "prunes_justified" and not c.passed for c in checks)

    def test_worsening_incumbent_flagged(self):
        events = [ev("incumbent", objective=3.0), ev("incumbent", objective=7.0)]
        checks = audit_bb_events(events)
        assert any(c.name == "incumbents_improve" and not c.passed for c in checks)
        # ...but it is the expected direction under maximize
        assert all_passed(audit_bb_events(events, maximize=True))


@needs_scipy
class TestBendersCutAudit:
    def test_real_cut_records_pass(self, rng):
        for _ in range(4):
            case = random_two_stage(rng)
            bd = solve_benders(case.instance)
            checks = audit_benders_cuts(
                case.instance, bd.extra["cut_records"], bd.extra["penalty"]
            )
            assert all_passed(checks), [c.detail for c in checks if not c.passed]
            assert len(checks) == len(bd.extra["cut_records"])

    def test_dual_infeasible_cut_flagged(self, rng):
        case = random_two_stage(rng)
        bd = solve_benders(case.instance)
        rec = dict(bd.extra["cut_records"][0])
        rec["dual"] = np.asarray(rec["dual"]) * 100.0 + 10.0
        checks = audit_benders_cuts(case.instance, [rec], bd.extra["penalty"])
        assert not all_passed(checks)

    def test_negative_mu_flagged(self, rng):
        case = random_two_stage(rng)
        bd = solve_benders(case.instance)
        rec = dict(bd.extra["cut_records"][0])
        rec["mu"] = np.full(case.instance.scenarios[0].q.shape[0], -1.0)
        checks = audit_benders_cuts(case.instance, [rec], bd.extra["penalty"])
        failing = [c for c in checks if not c.passed]
        assert failing and "mu_nonneg" in failing[0].name


@needs_scipy
class TestBendersBoundDualRegression:
    """Regression for the finite-y_ub cut bug the oracle originally caught:
    with binding recourse upper bounds, cuts built from the equality duals
    alone overshoot and Benders converges to a wrong (higher) objective."""

    def test_binding_y_ub_converges_to_extensive_form(self):
        from repro.solver.benders import extensive_form

        rng = np.random.default_rng(1)
        worst = 0.0
        for _ in range(12):
            case = random_two_stage(rng)
            ef = solve_compiled(extensive_form(case.instance), backend="auto", use_presolve=False)
            bd = solve_benders(case.instance)
            assert bd.status.has_solution
            worst = max(worst, abs(ef.objective - bd.objective) / (1 + abs(ef.objective)))
        assert worst <= 1e-6
