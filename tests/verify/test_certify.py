"""Exact certificate checking: real answers certify, corrupted ones don't."""

import numpy as np
import pytest

from repro.solver.interface import solve_compiled
from repro.solver.result import SolverStatus
from repro.solver.scipy_backend import scipy_available
from repro.verify import certify_drrp_plan, certify_result
from repro.verify.generators import infeasible_lp, planted_drrp, planted_lp

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="scipy not installed")

BACKENDS = ["simplex"] + (["scipy"] if scipy_available() else [])


class TestLPCertificates:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_optimal_lp_certifies_on_both_backends(self, rng, backend):
        for _ in range(10):
            case = planted_lp(rng)
            res = solve_compiled(case.instance, backend=backend, use_presolve=False)
            assert res.status is SolverStatus.OPTIMAL
            assert "dual_certificate" in res.extra
            report = certify_result(case.instance, res)
            assert report.ok, [str(c.detail) for c in report.failures()]
            assert report.duality_gap is not None
            assert abs(report.duality_gap) <= 1e-6 * (1 + abs(res.objective))

    def test_infeasible_lp_farkas_certifies(self, rng):
        for _ in range(10):
            case = infeasible_lp(rng)
            res = solve_compiled(case.instance, backend="simplex", use_presolve=False)
            assert res.status is SolverStatus.INFEASIBLE
            assert "farkas_certificate" in res.extra
            report = certify_result(case.instance, res)
            assert report.ok, [str(c.detail) for c in report.failures()]

    def test_certificate_survives_maximize_sense(self, rng):
        case = planted_lp(rng)
        problem = case.instance
        # flip to an equivalent maximize model: max -c'x has optimum -opt
        problem.c = -problem.c
        problem.maximize = True
        res = solve_compiled(problem, backend="simplex", use_presolve=False)
        assert res.status is SolverStatus.OPTIMAL
        assert certify_result(problem, res).ok


class TestCorruptionDetection:
    """Acceptance: a deliberately corrupted solution must be rejected."""

    def test_mutated_objective_rejected(self, rng):
        case = planted_lp(rng)
        res = solve_compiled(case.instance, backend="simplex", use_presolve=False)
        res.objective -= 1.0
        report = certify_result(case.instance, res)
        assert report.rejected
        assert any(c.name == "objective_consistent" for c in report.failures())

    def test_tampered_solution_vector_rejected(self, rng):
        case = planted_lp(rng)
        res = solve_compiled(case.instance, backend="simplex", use_presolve=False)
        res.x = res.x + 10.0  # pushed out of the box / constraint set
        report = certify_result(case.instance, res)
        assert report.rejected

    def test_infeasible_drrp_plan_rejected(self, rng):
        case = planted_drrp(rng)
        from repro.core.drrp import solve_drrp

        plan = solve_drrp(case.instance, backend="auto")
        assert certify_drrp_plan(case.instance, plan).ok
        plan.alpha = plan.alpha.copy()
        plan.alpha[0] += 2.0  # breaks the inventory balance recursion
        report = certify_drrp_plan(case.instance, plan)
        assert report.rejected
        assert any("balance" in c.name for c in report.failures())

    def test_understated_cost_rejected(self, rng):
        case = planted_drrp(rng)
        from repro.core.drrp import solve_drrp

        plan = solve_drrp(case.instance, backend="auto")
        plan.objective *= 0.5
        report = certify_drrp_plan(case.instance, plan)
        assert report.rejected
        assert any(c.name == "objective_consistent" for c in report.failures())


class TestGapIsExact:
    def test_planted_optimum_has_zero_gap(self, rng):
        # integer data end to end: gap must be *exactly* zero in Fraction math
        case = planted_lp(rng)
        res = solve_compiled(case.instance, backend="simplex", use_presolve=False)
        report = certify_result(case.instance, res)
        assert report.ok
        assert report.dual_bound is not None
        assert abs(res.objective - case.optimum) <= 1e-9 * (1 + abs(case.optimum))
