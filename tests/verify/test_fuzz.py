"""Fuzz driver: budgets, telemetry, tallies, and the smoke gate contract."""

import math

import pytest

from repro.solver.telemetry import EventRecorder
from repro.verify.fuzz import SMOKE_CASES, FuzzConfig, FuzzReport, run_fuzz
from repro.verify.generators import FAMILIES


class TestRunFuzz:
    def test_small_run_is_clean_and_tallied(self):
        rec = EventRecorder()
        report = run_fuzz(FuzzConfig(seed=5, max_cases=14), listener=rec)
        assert report.cases == 14
        assert report.certified == 14
        assert report.gap_violations == 0
        assert report.ok
        assert sum(f["cases"] for f in report.by_family.values()) == 14
        kinds = rec.kinds()
        assert kinds.get("fuzz_case") == 14
        assert kinds.get("fuzz_summary") == 1
        assert "fuzz_disagreement" not in kinds

    def test_zero_budget_stops_immediately(self):
        report = run_fuzz(FuzzConfig(seed=0, max_cases=50, budget=0.0))
        assert report.cases == 0
        assert report.stopped_by == "deadline"

    def test_seeded_runs_are_reproducible(self):
        a = run_fuzz(FuzzConfig(seed=3, max_cases=7))
        b = run_fuzz(FuzzConfig(seed=3, max_cases=7))
        assert a.to_dict()["by_family"] == b.to_dict()["by_family"]

    def test_family_subset_and_unknown_family(self):
        report = run_fuzz(FuzzConfig(seed=1, max_cases=4, families=("lp", "drrp")))
        assert set(report.by_family) == {"lp", "drrp"}
        with pytest.raises(ValueError, match="unknown fuzz families"):
            run_fuzz(FuzzConfig(families=("lp", "bogus")))

    def test_report_shapes(self):
        report = run_fuzz(FuzzConfig(seed=2, max_cases=len(FAMILIES)))
        d = report.to_dict()
        assert set(d) >= {"cases", "certified", "gap_violations", "disagreements", "by_family"}
        assert isinstance(report.summary_line(), str)
        assert math.isfinite(report.elapsed)


class TestSmokeContract:
    """The CI gate: `repro fuzz --smoke --seed 0` must certify >= 200
    instances with zero duality-gap violations.  Run here at a reduced
    case count for speed; `test_cli.py` and CI exercise the full preset."""

    def test_smoke_preset_exceeds_200_cases(self):
        assert SMOKE_CASES >= 200

    def test_reduced_smoke_certifies_everything(self):
        report = run_fuzz(FuzzConfig(seed=0, max_cases=35, budget=120.0))
        assert report.certified == report.cases == 35
        assert report.gap_violations == 0
        assert not report.disagreements


def test_fuzz_report_defaults():
    r = FuzzReport()
    assert r.ok and r.cases == 0
