"""Differential oracle: agreement on healthy solvers, shrinkage on broken ones."""

import json

import numpy as np
import pytest

import repro.solver.interface as interface
from repro.solver.result import SolverResult, SolverStatus
from repro.solver.scipy_backend import scipy_available
from repro.verify.fuzz import FuzzConfig, run_fuzz
from repro.verify.generators import FAMILIES, infeasible_lp, planted_lp, random_drrp
from repro.verify.oracle import cross_check_case, serialize_witness, shrink_disagreement
from repro.verify.shrink import shrink_drrp, shrink_problem

needs_scipy = pytest.mark.skipif(not scipy_available(), reason="scipy not installed")


class TestHealthyStack:
    def test_every_family_cross_checks_clean(self, rng):
        for name, gen in FAMILIES.items():
            for _ in range(2):
                case = gen(rng)
                assert cross_check_case(case) == [], f"family {name} diverged"


class TestShrinking:
    def test_infeasible_core_is_extracted(self, rng):
        case = infeasible_lp(rng, n=5, m=4)

        def still_infeasible(p):
            res = interface.solve_compiled(p, backend="simplex", use_presolve=False)
            return res.status is SolverStatus.INFEASIBLE

        small = shrink_problem(case.instance, still_infeasible, max_evals=250)
        assert still_infeasible(small)
        # the contradictory pair needs only one variable and two rows
        assert small.c.shape[0] <= 2
        assert small.A_ub.shape[0] <= 3

    def test_drrp_truncates_under_stable_predicate(self, rng):
        case = random_drrp(rng)
        small = shrink_drrp(case.instance, lambda inst: True, max_evals=60)
        assert small.horizon == 1

    def test_shrink_respects_eval_budget(self, rng):
        case = infeasible_lp(rng)
        calls = []

        def predicate(p):
            calls.append(1)
            return False

        shrink_problem(case.instance, predicate, max_evals=7)
        assert len(calls) <= 7


@needs_scipy
class TestInjectedBug:
    """Break one backend on purpose: the oracle must catch it, shrink the
    witness, and persist a reproducer — the full acceptance path."""

    @pytest.fixture
    def broken_scipy_lp(self, monkeypatch):
        real = interface.solve_lp_scipy

        def lying_solver(problem, **kwargs):
            res = real(problem, **kwargs)
            if res.status is SolverStatus.OPTIMAL:
                return SolverResult(
                    status=res.status, x=res.x, objective=res.objective + 0.75,
                    bound=res.bound, iterations=res.iterations, extra=res.extra,
                )
            return res

        monkeypatch.setattr(interface, "solve_lp_scipy", lying_solver)

    def test_disagreement_found_and_shrunk(self, rng, broken_scipy_lp):
        case = planted_lp(rng)
        found = cross_check_case(case)
        assert found, "oracle missed an injected objective corruption"
        kinds = {d.kind for d in found}
        assert kinds & {"objective", "certificate", "ground-truth"}
        d = next(x for x in found if x.kind in ("objective", "certificate"))
        d = shrink_disagreement(d, max_evals=80)
        assert d.shrunk is not None
        assert d.shrunk.c.shape[0] <= d.witness.c.shape[0]
        assert d.shrunk.A_ub.shape[0] <= d.witness.A_ub.shape[0]

    def test_fuzz_persists_reproducer(self, broken_scipy_lp, tmp_path):
        report = run_fuzz(
            FuzzConfig(seed=11, max_cases=3, families=("lp",), out_dir=tmp_path),
        )
        assert not report.ok
        assert report.reproducer_files
        payload = json.loads((tmp_path / report.reproducer_files[0].split("/")[-1]).read_text())
        assert payload["family"] == "lp"
        assert payload["witness"]["type"] == "CompiledProblem"
        assert payload["shrunk"] is not None
        assert len(payload["shrunk"]["c"]) <= len(payload["witness"]["c"])


class TestSerialization:
    def test_every_family_serializes_to_json(self, rng):
        for gen in FAMILIES.values():
            case = gen(rng)
            json.dumps(serialize_witness(case.instance))

    def test_compiled_problem_round_trip_fields(self, rng):
        case = planted_lp(rng)
        d = serialize_witness(case.instance)
        assert np.allclose(d["c"], case.instance.c)
        assert np.allclose(d["A_ub"], case.instance.A_ub)
        assert d["maximize"] is False
