"""Smoke tests for the solver benchmark and its regression gate."""

import copy
import json

import pytest

from repro.bench import (
    SolverBenchConfig,
    check_solver_regression,
    run_solver_bench,
    summary_lines,
)


@pytest.fixture(scope="module")
def record(tmp_path_factory, request):
    # One tiny-but-real run shared by the module: every leg executes, the
    # record is written through the REPRO_BENCH_DIR path, and tests below
    # only inspect the result.
    out_dir = tmp_path_factory.mktemp("bench")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_BENCH_DIR", str(out_dir))
    request.addfinalizer(mp.undo)
    cfg = SolverBenchConfig(
        seed=1, bb_instances=1, bb_vars=8, bb_rows=6, node_limit=300,
        drrp_horizon=6, scenarios=8, recourse_rows=8, recourse_vars=12,
        benders_workers=2, large_horizon=6, large_classes=2, large_resolves=6,
        out="BENCH_test.json",
    )
    return run_solver_bench(cfg), out_dir


class TestRunSolverBench:
    def test_record_shape(self, record):
        rec, _ = record
        assert rec["benchmark"] == "solver"
        assert rec["cpu_count"] >= 1
        for leg in ("bb", "drrp", "benders"):
            assert leg in rec
        for mode in ("warm", "cold"):
            assert rec["bb"][mode]["nodes"] >= 1
            assert rec["bb"][mode]["wall_s"] > 0
        assert rec["bb"]["node_throughput_ratio"] > 0
        assert 0.0 <= rec["bb"]["warm"]["warm_hit_rate"] <= 1.0
        assert rec["benders"]["serial"]["objective"] == pytest.approx(
            rec["benders"]["parallel"]["objective"], rel=1e-6
        )
        lg = rec["large"]
        assert lg["vars"] >= 1 and lg["rows"] >= 1
        assert lg["speedup"] > 0
        assert lg["revised"]["resolves"] == lg["resolves"]
        assert 0 <= lg["revised"]["warm_used"] <= lg["resolves"]

    def test_record_written_and_parses(self, record):
        rec, out_dir = record
        path = out_dir / "BENCH_test.json"
        assert str(path) == rec["path"]
        on_disk = json.loads(path.read_text())
        assert on_disk["benchmark"] == "solver"
        assert on_disk["seed"] == 1

    def test_summary_lines(self, record):
        rec, _ = record
        lines = summary_lines(rec)
        assert len(lines) == 4
        assert lines[0].startswith("bb:")
        assert lines[2].startswith("benders:")
        assert lines[3].startswith("large:")

    def test_scenarios_floor_enforced(self):
        with pytest.raises(ValueError, match=">= 8 scenarios"):
            SolverBenchConfig(scenarios=4)


class TestRegressionGate:
    def test_self_comparison_passes(self, record):
        rec, _ = record
        assert check_solver_regression(rec, rec) == []

    def test_throughput_regression_fails(self, record):
        rec, _ = record
        bad = copy.deepcopy(rec)
        bad["bb"]["node_throughput_ratio"] = 0.5 * rec["bb"]["node_throughput_ratio"]
        failures = check_solver_regression(bad, rec)
        assert any("node-throughput ratio regressed" in f for f in failures)

    def test_warm_slower_than_cold_fails(self, record):
        rec, _ = record
        bad = copy.deepcopy(rec)
        bad["bb"]["node_throughput_ratio"] = 0.9
        base = copy.deepcopy(rec)
        base["bb"]["node_throughput_ratio"] = 1.0  # permissive baseline
        failures = check_solver_regression(bad, base)
        assert any("slower than cold" in f for f in failures)

    def test_benders_speedup_gated_only_with_cores(self, record):
        rec, _ = record
        slow = copy.deepcopy(rec)
        slow["benders"]["speedup"] = 0.5
        slow["cpu_count"] = 1
        assert not any(
            "Benders" in f for f in check_solver_regression(slow, rec)
        )
        slow["cpu_count"] = 8
        assert any("Benders" in f for f in check_solver_regression(slow, rec))

    @staticmethod
    def _as_big(rec):
        # Inflate the fixture's tiny tier to gate-eligible dimensions so the
        # machine-independent checks fire without paying for a real 768-var
        # run inside the test suite.
        big = copy.deepcopy(rec)
        big["large"]["vars"] = 768
        big["large"]["rows"] = 96
        return big

    def test_large_speedup_below_floor_fails(self, record):
        rec, _ = record
        base = self._as_big(rec)
        bad = copy.deepcopy(base)
        bad["large"]["speedup"] = 1.0
        failures = check_solver_regression(bad, base)
        assert any("speedup 1.00x is below" in f for f in failures)

    def test_large_warm_rejection_fails(self, record):
        rec, _ = record
        base = self._as_big(rec)
        bad = copy.deepcopy(base)
        bad["large"]["revised"]["warm_used"] = 0
        failures = check_solver_regression(bad, base)
        assert any("warm bases are being rejected" in f for f in failures)

    def test_missing_large_tier_fails(self, record):
        rec, _ = record
        bad = copy.deepcopy(rec)
        del bad["large"]
        failures = check_solver_regression(bad, rec)
        assert any("missing the large" in f for f in failures)

    def test_shrunken_large_tier_fails(self, record):
        rec, _ = record
        base = self._as_big(rec)
        failures = check_solver_regression(rec, base)
        assert any("shrank" in f for f in failures)
