"""Bench-report rendering on fixture records (no live benchmarks)."""

import json

from repro.bench.report import (
    BENCH_FILES,
    bench_kind,
    headline_metrics,
    load_records,
    report_lines,
)

SOLVER = {
    "benchmark": "solver",
    "bb": {"node_throughput_ratio": 2.36, "warm": {"warm_hit_rate": 0.9668}},
    "benders": {"speedup": 0.572},
}
SIM = {
    "benchmark": "sim",
    "ratios": {"no-plan": 1.9907, "oracle": 1.0, "rolling-drrp": 1.2219},
    "service": {"replay_cache_hit_rate": 1.0},
}
SERVICE = {
    "name": "service",
    "requests": 40,
    "dropped": 2,
    "duplicate_share": 0.25,
    "cache": {"hit_rate": 0.8},
}


def _write(root, name, record):
    (root / name).write_text(json.dumps(record))


class TestHeadlineMetrics:
    def test_kind_detection(self):
        assert bench_kind(SOLVER) == "solver"
        assert bench_kind(SERVICE) == "service"  # loadgen labels with "name"
        assert bench_kind({}) == "?"

    def test_solver_metrics(self):
        m = headline_metrics(SOLVER)
        assert m["bb node-throughput ratio (x)"] == 2.36
        assert m["bb warm-hit rate"] == 0.9668
        assert m["benders speedup (x)"] == 0.572

    def test_sim_metrics_sorted_policies(self):
        m = headline_metrics(SIM)
        assert list(m)[:3] == [
            "no-plan cost / oracle", "oracle cost / oracle",
            "rolling-drrp cost / oracle",
        ]
        assert m["service replay cache-hit rate"] == 1.0

    def test_service_metrics(self):
        m = headline_metrics(SERVICE)
        assert m["cache hit rate"] == 0.8
        assert m["dropped / requests"] == 0.05
        assert m["duplicate share"] == 0.25

    def test_malformed_record_never_raises(self):
        assert headline_metrics({"benchmark": "solver"}) == {}
        assert headline_metrics({"benchmark": "solver", "bb": None}) == {}
        assert headline_metrics({"benchmark": "novel-family", "x": 1}) == {}


class TestLoadRecords:
    def test_skips_missing_and_unparsable(self, tmp_path):
        _write(tmp_path, "BENCH_solver.json", SOLVER)
        (tmp_path / "BENCH_sim.json").write_text("{not json")
        records = load_records(tmp_path)
        assert list(records) == ["BENCH_solver.json"]

    def test_only_known_names(self, tmp_path):
        _write(tmp_path, "BENCH_other.json", SOLVER)
        assert load_records(tmp_path) == {}


class TestReportLines:
    def test_committed_only(self, tmp_path):
        _write(tmp_path, "BENCH_solver.json", SOLVER)
        _write(tmp_path, "BENCH_sim.json", SIM)
        lines = report_lines(tmp_path)
        text = "\n".join(lines)
        assert text.index("solver (BENCH_solver.json)") < text.index("sim (BENCH_sim.json)")
        assert "2.3600" in text and "0.9668" in text
        # Without a fresh dir there is no delta column.
        assert "%" not in text

    def test_committed_vs_fresh_delta(self, tmp_path):
        committed, fresh = tmp_path / "c", tmp_path / "f"
        committed.mkdir(), fresh.mkdir()
        _write(committed, "BENCH_solver.json", SOLVER)
        newer = json.loads(json.dumps(SOLVER))
        newer["bb"]["node_throughput_ratio"] = 2.36 * 1.10
        _write(fresh, "BENCH_solver.json", newer)
        text = "\n".join(report_lines(committed, fresh))
        assert "+10.0%" in text

    def test_fresh_only_family(self, tmp_path):
        committed, fresh = tmp_path / "c", tmp_path / "f"
        committed.mkdir(), fresh.mkdir()
        _write(committed, "BENCH_solver.json", SOLVER)
        _write(fresh, "BENCH_service.json", SERVICE)
        text = "\n".join(report_lines(committed, fresh))
        assert "service (BENCH_service.json)" in text
        assert "cache hit rate" in text

    def test_empty_dirs_explain(self, tmp_path):
        lines = report_lines(tmp_path)
        assert len(lines) == 1 and "no BENCH_" in lines[0]

    def test_headline_free_record_notes_it(self, tmp_path):
        _write(tmp_path, "BENCH_solver.json", {"benchmark": "solver"})
        assert "  (no headline metrics)" in report_lines(tmp_path)

    def test_display_order_matches_bench_files(self):
        assert BENCH_FILES == (
            "BENCH_solver.json", "BENCH_sim.json", "BENCH_service.json")
