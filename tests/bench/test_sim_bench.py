"""Smoke tests for the simulation benchmark and its regression gate."""

import copy
import json

import pytest

from repro.sim import SimBenchConfig, check_sim_regression, run_sim_bench
from repro.sim.bench import summary_lines


@pytest.fixture(scope="module")
def record(tmp_path_factory, request):
    # One tiny-but-real run shared by the module: all four legs execute
    # (campaign, service consistency + replay, backpressure, bid sweep)
    # and the record is written through the REPRO_BENCH_DIR path.
    out_dir = tmp_path_factory.mktemp("bench")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_BENCH_DIR", str(out_dir))
    request.addfinalizer(mp.undo)
    cfg = SimBenchConfig(
        slots=48, estimation_slots=240, prediction=24, control=12,
        coarse_block=4, service_slots=24, bid_slots=48,
        out="BENCH_test_sim.json",
    )
    return run_sim_bench(cfg), out_dir


class TestRunSimBench:
    def test_record_shape(self, record):
        rec, _ = record
        assert rec["benchmark"] == "sim"
        for key in ("ratios", "service", "backpressure", "bid_sweep",
                    "manifest_digest"):
            assert key in rec
        assert rec["ratios"]["oracle"] == pytest.approx(1.0)
        assert rec["replans"] == 4  # 48 slots / control 12
        assert rec["replan_latency"]["count"] == 4

    def test_service_leg_consistent_and_cached(self, record):
        rec, _ = record
        svc = rec["service"]
        assert svc["consistent_with_in_process"]
        assert svc["routed_cost"] == svc["in_process_cost"]
        assert svc["replay_cache_hit_rate"] == pytest.approx(1.0)

    def test_backpressure_legs_exercised(self, record):
        rec, _ = record
        bp = rec["backpressure"]
        assert bp["degrade"]["degraded_plans"] == bp["degrade"]["replans"] > 0
        assert bp["reject"]["local_fallbacks"] == bp["reject"]["replans"] > 0
        assert bp["degrade"]["forced_topups"] == 0
        assert bp["reject"]["forced_topups"] == 0

    def test_record_written_and_parses(self, record):
        rec, out_dir = record
        path = out_dir / "BENCH_test_sim.json"
        assert str(path) == rec["path"]
        on_disk = json.loads(path.read_text())
        assert on_disk["benchmark"] == "sim"
        assert on_disk["ratios"] == rec["ratios"]

    def test_bid_sweep_leg(self, record):
        rec, _ = record
        sweep = rec["bid_sweep"]
        assert set(sweep["policies"]) == {
            "bid-fixed", "bid-od-index", "bid-percentile", "bid-rebid",
        }
        for entry in sweep["policies"].values():
            assert entry["ratio"] >= 1.0 - 1e-9
        fixed = sweep["policies"]["bid-fixed"]["ratio"]
        assert any(
            e["ratio"] < fixed
            for n, e in sweep["policies"].items() if n != "bid-fixed"
        )

    def test_summary_lines(self, record):
        rec, _ = record
        lines = summary_lines(rec)
        assert len(lines) == 5
        assert "campaign" in lines[0]
        assert "bid sweep" in lines[-1]


class TestRegressionGate:
    def test_self_check_passes(self, record):
        rec, _ = record
        assert check_sim_regression(rec, rec) == []

    def test_ratio_drift_fails(self, record):
        rec, _ = record
        tampered = copy.deepcopy(rec)
        tampered["ratios"]["rolling-drrp"] *= 2.0
        failures = check_sim_regression(rec, tampered)
        assert any("drifted" in f for f in failures)

    def test_different_config_skips_ratio_comparison(self, record):
        rec, _ = record
        other = copy.deepcopy(rec)
        other["config"]["slots"] = 9999
        other["ratios"]["rolling-drrp"] *= 2.0
        assert check_sim_regression(rec, other) == []

    def test_broken_ordering_fails(self, record):
        rec, _ = record
        broken = copy.deepcopy(rec)
        broken["ratios"]["no-plan"] = broken["ratios"]["rolling-drrp"] - 0.01
        failures = check_sim_regression(broken, rec)
        assert any("not strictly worse" in f for f in failures)

    def test_beating_the_oracle_fails(self, record):
        rec, _ = record
        broken = copy.deepcopy(rec)
        broken["ratios"]["rolling-drrp"] = 0.9
        failures = check_sim_regression(broken, rec)
        assert any("accounting bug" in f for f in failures)

    def test_service_divergence_fails(self, record):
        rec, _ = record
        broken = copy.deepcopy(rec)
        broken["service"]["consistent_with_in_process"] = False
        failures = check_sim_regression(broken, rec)
        assert any("diverged" in f for f in failures)

    def test_missing_policy_fails(self, record):
        rec, _ = record
        pruned = copy.deepcopy(rec)
        del pruned["ratios"]["rolling-drrp"]
        failures = check_sim_regression(pruned, rec)
        assert any("missing" in f for f in failures)

    def test_bid_sweep_fixed_bid_must_be_beaten(self, record):
        rec, _ = record
        broken = copy.deepcopy(rec)
        best = min(
            e["ratio"] for e in broken["bid_sweep"]["policies"].values()
        )
        broken["bid_sweep"]["policies"]["bid-fixed"]["ratio"] = best - 0.01
        failures = check_sim_regression(broken, rec)
        assert any("fixed mean" in f for f in failures)

    def test_bid_sweep_beating_the_oracle_fails(self, record):
        rec, _ = record
        broken = copy.deepcopy(rec)
        broken["bid_sweep"]["policies"]["bid-rebid"]["ratio"] = 0.9
        failures = check_sim_regression(broken, rec)
        assert any("bid sweep" in f and "accounting bug" in f for f in failures)

    def test_bid_sweep_ratio_drift_fails(self, record):
        rec, _ = record
        tampered = copy.deepcopy(rec)
        tampered["bid_sweep"]["policies"]["bid-percentile"]["ratio"] *= 2.0
        failures = check_sim_regression(rec, tampered)
        assert any("bid sweep" in f and "drifted" in f for f in failures)

    def test_bid_sweep_different_config_skips_drift(self, record):
        rec, _ = record
        other = copy.deepcopy(rec)
        other["bid_sweep"]["slots"] = 9999
        other["bid_sweep"]["policies"]["bid-percentile"]["ratio"] *= 2.0
        assert check_sim_regression(rec, other) == []
