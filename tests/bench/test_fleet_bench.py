"""Smoke tests for the fleet benchmark and its regression gate."""

import copy
import json

import pytest

from repro.bench import (
    FleetBenchConfig,
    check_fleet_regression,
    fleet_summary_lines,
    run_fleet_bench,
)


@pytest.fixture(scope="module")
def record(tmp_path_factory, request):
    # One tiny-but-real run shared by the module: every leg executes, the
    # record is written through the REPRO_BENCH_DIR path, and tests below
    # only inspect the result.
    out_dir = tmp_path_factory.mktemp("bench")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_BENCH_DIR", str(out_dir))
    request.addfinalizer(mp.undo)
    cfg = FleetBenchConfig(
        seed=1, tenants=20, horizon=10, milp_sample=4, workers=1,
        out="BENCH_test.json",
    )
    return run_fleet_bench(cfg), out_dir


class TestRunFleetBench:
    def test_record_shape(self, record):
        rec, _ = record
        assert rec["benchmark"] == "fleet"
        assert rec["cpu_count"] >= 1
        for leg in ("generate", "plan", "cohort", "feasibility"):
            assert leg in rec
        assert rec["plan"]["tenants_per_minute"] > 0
        assert rec["plan"]["total_cost"] > 0
        assert sum(rec["plan"]["methods"].values()) == 20
        assert 0.0 <= rec["plan"]["escalation_fraction"] <= 1.0
        assert 0.0 <= rec["plan"]["shape_hit_rate"] <= 1.0
        assert rec["feasibility"]["feasible"] is True

    def test_cohort_ratio_is_a_valid_upper_bound(self, record):
        rec, _ = record
        # The MILP is exact, so the heuristic can never price below it.
        assert rec["cohort"]["cost_ratio_mean"] >= 1.0 - 1e-9
        assert rec["cohort"]["cost_ratio_max"] >= rec["cohort"]["cost_ratio_mean"]
        assert rec["cohort"]["sampled"] >= 1

    def test_record_written_and_parses(self, record):
        rec, out_dir = record
        path = out_dir / "BENCH_test.json"
        assert str(path) == rec["path"]
        on_disk = json.loads(path.read_text())
        assert on_disk["benchmark"] == "fleet"
        assert on_disk["seed"] == 1

    def test_summary_lines(self, record):
        rec, _ = record
        lines = fleet_summary_lines(rec)
        assert len(lines) == 4
        assert any("tenants" in line for line in lines)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetBenchConfig(tenants=0)
        with pytest.raises(ValueError):
            FleetBenchConfig(utilization=0.0)
        with pytest.raises(ValueError):
            FleetBenchConfig(milp_sample=0)


class TestCheckFleetRegression:
    def test_self_comparison_passes(self, record):
        rec, _ = record
        assert check_fleet_regression(rec, rec) == []

    def test_infeasible_record_fails(self, record):
        rec, _ = record
        bad = copy.deepcopy(rec)
        bad["feasibility"]["feasible"] = False
        assert any("infeasible" in f for f in check_fleet_regression(bad, rec))

    def test_cost_ratio_ceiling_fails(self, record):
        rec, _ = record
        bad = copy.deepcopy(rec)
        bad["cohort"]["cost_ratio_mean"] = 1.2
        failures = check_fleet_regression(bad, rec)
        assert any("ceiling" in f for f in failures)

    def test_cost_ratio_band_fails(self, record):
        rec, _ = record
        base = copy.deepcopy(rec)
        base["cohort"]["cost_ratio_mean"] = 1.02
        bad = copy.deepcopy(rec)
        bad["cohort"]["cost_ratio_mean"] = 1.045  # under the absolute ceiling
        assert any("regressed" in f for f in check_fleet_regression(bad, base))

    def test_shape_hit_rate_regression_fails(self, record):
        rec, _ = record
        base = copy.deepcopy(rec)
        base["plan"]["shape_hit_rate"] = 0.9
        bad = copy.deepcopy(rec)
        bad["plan"]["shape_hit_rate"] = 0.2
        assert any("shape-cache" in f for f in check_fleet_regression(bad, base))

    def test_escalation_collapse_fails(self, record):
        rec, _ = record
        base = copy.deepcopy(rec)
        base["plan"]["escalation_fraction"] = 0.15
        bad = copy.deepcopy(rec)
        bad["plan"]["escalation_fraction"] = 0.0
        assert any("escalation" in f for f in check_fleet_regression(bad, base))
