"""SARIMA estimation/forecasting tests: parameter recovery on simulated
processes, forecast behaviour, order search, diagnostics."""

import numpy as np
import pytest

from repro.timeseries import (
    ARIMAOrder,
    AutoARIMASpec,
    auto_arima,
    candidate_orders,
    compare_to_mean_forecast,
    fit_arima,
    is_weakly_stationary,
    ljung_box,
    mean_forecast,
    naive_forecast,
)


def simulate_arma(n, phi=(), theta=(), seed=0, mean=0.0, sigma=1.0):
    rng = np.random.default_rng(seed)
    p, q = len(phi), len(theta)
    burn = 200
    eps = rng.normal(0, sigma, size=n + burn)
    x = np.zeros(n + burn)
    for t in range(max(p, q), n + burn):
        x[t] = eps[t]
        for i, ph in enumerate(phi):
            x[t] += ph * x[t - i - 1]
        for j, th in enumerate(theta):
            x[t] += th * eps[t - j - 1]
    return x[burn:] + mean


class TestOrderValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ARIMAOrder(-1, 0, 0)

    def test_seasonal_needs_period(self):
        with pytest.raises(ValueError):
            ARIMAOrder(1, 0, 0, P=1, s=0)

    def test_label(self):
        assert ARIMAOrder(2, 0, 1, 2, 0, 0, 24).label == "SARIMA(2,0,1)x(2,0,0)_24"
        assert ARIMAOrder(1, 1, 1).label == "ARIMA(1,1,1)"


class TestParameterRecovery:
    def test_ar1(self):
        x = simulate_arma(3000, phi=(0.7,), seed=1, mean=5.0)
        res = fit_arima(x, ARIMAOrder(1, 0, 0))
        assert res.params[0] == pytest.approx(0.7, abs=0.05)
        assert res.mean == pytest.approx(5.0, abs=0.3)

    def test_ma1(self):
        x = simulate_arma(3000, theta=(0.6,), seed=2)
        res = fit_arima(x, ARIMAOrder(0, 0, 1))
        assert res.params[0] == pytest.approx(0.6, abs=0.07)

    def test_arma11(self):
        x = simulate_arma(5000, phi=(0.5,), theta=(0.4,), seed=3)
        res = fit_arima(x, ARIMAOrder(1, 0, 1))
        assert res.params[0] == pytest.approx(0.5, abs=0.1)
        assert res.params[1] == pytest.approx(0.4, abs=0.12)

    def test_ar2(self):
        x = simulate_arma(5000, phi=(0.5, 0.3), seed=4)
        res = fit_arima(x, ARIMAOrder(2, 0, 0))
        assert res.params[0] == pytest.approx(0.5, abs=0.08)
        assert res.params[1] == pytest.approx(0.3, abs=0.08)

    def test_integrated_series(self):
        inc = simulate_arma(2000, phi=(0.5,), seed=5)
        x = np.cumsum(inc)
        res = fit_arima(x, ARIMAOrder(1, 1, 0))
        assert res.params[0] == pytest.approx(0.5, abs=0.08)

    def test_residual_whiteness_on_true_model(self):
        x = simulate_arma(2000, phi=(0.6,), seed=6)
        res = fit_arima(x, ARIMAOrder(1, 0, 0))
        lb = ljung_box(res.residuals, lags=10, fitted_params=1)
        assert lb.residuals_look_white()

    def test_seasonal_ar_recovery(self):
        rng = np.random.default_rng(7)
        n, s, Phi = 2000, 12, 0.6
        x = np.zeros(n)
        for t in range(s, n):
            x[t] = Phi * x[t - s] + rng.normal()
        res = fit_arima(x, ARIMAOrder(0, 0, 0, P=1, s=12))
        assert res.params[0] == pytest.approx(Phi, abs=0.06)


class TestForecasting:
    def test_ar1_forecast_decays_to_mean(self):
        x = simulate_arma(2000, phi=(0.8,), seed=8, mean=10.0)
        res = fit_arima(x, ARIMAOrder(1, 0, 0))
        fc = res.forecast(60)
        assert abs(fc[-1] - res.mean) < 0.2
        # geometric decay toward the mean
        gaps = np.abs(fc - res.mean)
        assert np.all(np.diff(gaps) <= 1e-9)

    def test_random_walk_forecast_is_flat(self):
        rng = np.random.default_rng(9)
        x = np.cumsum(rng.normal(size=800))
        res = fit_arima(x, ARIMAOrder(0, 1, 0))
        fc = res.forecast(5)
        assert np.allclose(fc, x[-1], atol=1e-8)

    def test_forecast_steps_validation(self):
        x = simulate_arma(300, phi=(0.5,), seed=10)
        res = fit_arima(x, ARIMAOrder(1, 0, 0))
        with pytest.raises(ValueError):
            res.forecast(0)

    def test_forecast_interval_widens(self):
        x = simulate_arma(1000, phi=(0.6,), seed=11)
        res = fit_arima(x, ARIMAOrder(1, 0, 0))
        point, lo, hi = res.forecast_interval(10)
        width = hi - lo
        assert np.all(np.diff(width) >= -1e-9)
        assert np.all(lo <= point) and np.all(point <= hi)

    def test_seasonal_forecast_tracks_cycle(self):
        t = np.arange(720)
        rng = np.random.default_rng(12)
        x = 5 + 2 * np.sin(2 * np.pi * t / 24) + 0.2 * rng.normal(size=720)
        res = fit_arima(x, ARIMAOrder(1, 0, 0, P=1, D=1, Q=0, s=24))
        fc = res.forecast(24)
        expected = 5 + 2 * np.sin(2 * np.pi * np.arange(720, 744) / 24)
        assert np.sqrt(np.mean((fc - expected) ** 2)) < 0.6

    def test_mean_and_naive_baselines(self):
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(mean_forecast(x, 2), 2.0)
        assert np.allclose(naive_forecast(x, 2), 3.0)


class TestModelSelection:
    def test_candidate_grid_size(self):
        spec = AutoARIMASpec(max_p=1, max_q=1, max_P=1, max_Q=0, s=12)
        orders = candidate_orders(spec)
        # p,q in {0,1}, P in {0,1}, Q=0 -> 8 combos, minus seasonal collapse dupes
        assert 4 <= len(orders) <= 8

    def test_auto_arima_picks_ar_for_ar_data(self):
        x = simulate_arma(1200, phi=(0.8,), seed=13)
        res = auto_arima(x, AutoARIMASpec(max_p=2, max_q=1, include_seasonal=False, d=0))
        assert res.order.p >= 1

    def test_auto_arima_aic_beats_white_noise_model(self):
        x = simulate_arma(1200, phi=(0.8,), seed=14)
        best = auto_arima(x, AutoARIMASpec(max_p=2, max_q=1, include_seasonal=False))
        trivial = fit_arima(x, ARIMAOrder(0, 0, 0))
        assert best.aic < trivial.aic

    def test_criterion_validation(self):
        with pytest.raises(ValueError):
            AutoARIMASpec(criterion="hqic")

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError):
            fit_arima(np.arange(5, dtype=float), ARIMAOrder(2, 0, 2))


class TestDiagnostics:
    def test_ljung_box_flags_correlated_residuals(self):
        x = simulate_arma(2000, phi=(0.8,), seed=15)
        lb = ljung_box(x, lags=10)
        assert not lb.residuals_look_white()

    def test_ljung_box_validation(self):
        with pytest.raises(ValueError):
            ljung_box(np.arange(5, dtype=float), lags=10)

    def test_stationary_screen(self):
        rng = np.random.default_rng(16)
        assert is_weakly_stationary(rng.normal(size=500))
        assert not is_weakly_stationary(np.cumsum(rng.normal(size=500) + 0.5))

    def test_forecast_comparison(self):
        history = np.full(100, 5.0)
        actual = np.array([5.0, 5.0, 5.0])
        good = np.array([5.0, 5.0, 5.0])
        bad = np.array([9.0, 9.0, 9.0])
        assert compare_to_mean_forecast(history, actual, good).improvement == pytest.approx(0.0)
        cmp_bad = compare_to_mean_forecast(history, actual, bad)
        assert not cmp_bad.model_beats_mean
