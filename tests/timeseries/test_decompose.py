"""Classical decomposition tests (the Figure 6 pipeline)."""

import numpy as np
import pytest

from repro.timeseries import decompose_additive


def make_series(n=240, period=24, trend_slope=0.0, amp=1.0, noise=0.1, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (
        trend_slope * t
        + amp * np.sin(2 * np.pi * t / period)
        + noise * rng.normal(size=n)
    )


class TestDecomposeAdditive:
    def test_components_sum_to_observed(self):
        x = make_series()
        d = decompose_additive(x, 24)
        mask = ~np.isnan(d.trend)
        recon = d.trend[mask] + d.seasonal[mask] + d.remainder[mask]
        assert np.allclose(recon, x[mask], atol=1e-10)

    def test_seasonal_is_periodic_and_centered(self):
        d = decompose_additive(make_series(), 24)
        assert np.allclose(d.seasonal[:24], d.seasonal[24:48])
        assert d.seasonal[:24].mean() == pytest.approx(0.0, abs=1e-10)

    def test_recovers_sinusoid_amplitude(self):
        d = decompose_additive(make_series(amp=2.0, noise=0.05), 24)
        assert d.seasonal_amplitude == pytest.approx(4.0, abs=0.3)

    def test_trend_recovered_for_linear_drift(self):
        d = decompose_additive(make_series(trend_slope=0.1, noise=0.05), 24)
        t = d.trend[~np.isnan(d.trend)]
        slope = np.polyfit(np.arange(t.size), t, 1)[0]
        assert slope == pytest.approx(0.1, abs=0.01)

    def test_edges_are_nan(self):
        d = decompose_additive(make_series(), 24)
        assert np.isnan(d.trend[:12]).all()
        assert np.isnan(d.trend[-12:]).all()
        assert not np.isnan(d.trend[12:-12]).any()

    def test_odd_period(self):
        x = make_series(n=105, period=7)
        d = decompose_additive(x, 7)
        assert np.isnan(d.trend[:3]).all() and not np.isnan(d.trend[3]).item()

    def test_seasonal_strength_contrast(self):
        strong = decompose_additive(make_series(amp=3.0, noise=0.05), 24)
        weak = decompose_additive(make_series(amp=0.02, noise=1.0, seed=3), 24)
        assert strong.seasonal_strength() > 0.9
        assert weak.seasonal_strength() < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            decompose_additive(np.arange(10, dtype=float), 24)
        with pytest.raises(ValueError):
            decompose_additive(np.arange(100, dtype=float), 1)

    def test_flat_series_has_no_structure(self):
        d = decompose_additive(np.full(96, 2.5), 24)
        assert d.seasonal_amplitude == pytest.approx(0.0, abs=1e-12)
        assert d.trend_range() == pytest.approx(0.0, abs=1e-12)
