"""Differencing round-trips, ACF/PACF correctness."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.timeseries import (
    DifferencingTransform,
    acf,
    correlogram,
    difference,
    pacf,
    seasonal_difference,
)


finite_series = arrays(
    np.float64,
    st.integers(30, 80),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)


class TestDifference:
    def test_first_difference_of_linear_is_constant(self):
        x = 3.0 * np.arange(10) + 2
        d = difference(x)
        assert np.allclose(d, 3.0)

    def test_second_difference_of_quadratic(self):
        x = np.arange(10, dtype=float) ** 2
        assert np.allclose(difference(x, 2), 2.0)

    def test_seasonal_difference_removes_cycle(self):
        t = np.arange(96)
        x = np.sin(2 * np.pi * t / 24)
        assert np.allclose(seasonal_difference(x, 24), 0.0, atol=1e-12)

    def test_seasonal_too_short(self):
        with pytest.raises(ValueError):
            seasonal_difference(np.arange(5, dtype=float), 24)


class TestDifferencingTransform:
    @given(finite_series, st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_ordinary_roundtrip(self, x, d):
        tr = DifferencingTransform(d=d)
        w = tr.apply(x)
        back = tr.invert(w)
        assert np.allclose(back, x, atol=1e-8)

    @given(finite_series, st.integers(1, 2))
    @settings(max_examples=30, deadline=None)
    def test_seasonal_roundtrip(self, x, D):
        period = 7
        if x.size <= D * period + 2:
            return
        tr = DifferencingTransform(D=D, period=period)
        w = tr.apply(x)
        assert np.allclose(tr.invert(w), x, atol=1e-8)

    @given(finite_series)
    @settings(max_examples=30, deadline=None)
    def test_mixed_roundtrip(self, x):
        tr = DifferencingTransform(d=1, D=1, period=5)
        if x.size <= 8:
            return
        w = tr.apply(x)
        assert np.allclose(tr.invert(w), x, atol=1e-8)

    def test_extend_forecast_continues_linear_trend(self):
        x = 2.0 * np.arange(50) + 1
        tr = DifferencingTransform(d=1)
        tr.apply(x)
        fc = tr.extend_forecast(x, np.full(5, 2.0))  # constant slope forecast
        assert np.allclose(fc, 2.0 * np.arange(50, 55) + 1)

    def test_extend_forecast_seasonal(self):
        t = np.arange(48)
        x = np.sin(2 * np.pi * t / 12)
        tr = DifferencingTransform(D=1, period=12)
        tr.apply(x)
        fc = tr.extend_forecast(x, np.zeros(12))  # zero seasonal-diff forecast
        expected = np.sin(2 * np.pi * np.arange(48, 60) / 12)
        assert np.allclose(fc, expected, atol=1e-9)

    def test_seasonal_requires_period(self):
        tr = DifferencingTransform(D=1, period=0)
        with pytest.raises(ValueError):
            tr.apply(np.arange(30, dtype=float))


class TestACF:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(0)
        assert acf(rng.normal(size=100), 5)[0] == 1.0

    def test_white_noise_has_small_acf(self):
        rng = np.random.default_rng(1)
        r = acf(rng.normal(size=5000), 10)
        assert np.all(np.abs(r[1:]) < 0.05)

    def test_ar1_acf_geometric(self):
        rng = np.random.default_rng(2)
        n, phi = 20000, 0.8
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = phi * x[t - 1] + rng.normal()
        r = acf(x, 4)
        for k in range(1, 5):
            assert r[k] == pytest.approx(phi**k, abs=0.05)

    def test_alternating_series_negative_lag1(self):
        x = np.tile([1.0, -1.0], 50)
        assert acf(x, 1)[1] < -0.9

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            acf(np.arange(10, dtype=float), 10)
        with pytest.raises(ValueError):
            acf(np.full(10, 2.0), 3)  # constant series

    @given(finite_series)
    @settings(max_examples=30, deadline=None)
    def test_acf_bounded_by_one(self, x):
        if np.std(x) < 1e-9:
            return
        r = acf(x, min(10, x.size - 1))
        assert np.all(np.abs(r) <= 1.0 + 1e-9)


class TestPACF:
    def test_ar1_pacf_cuts_off_after_lag1(self):
        rng = np.random.default_rng(3)
        n, phi = 20000, 0.7
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = phi * x[t - 1] + rng.normal()
        p = pacf(x, 5)
        assert p[1] == pytest.approx(phi, abs=0.05)
        assert np.all(np.abs(p[2:]) < 0.05)

    def test_ar2_pacf_cuts_off_after_lag2(self):
        rng = np.random.default_rng(4)
        n = 30000
        x = np.zeros(n)
        for t in range(2, n):
            x[t] = 0.5 * x[t - 1] + 0.3 * x[t - 2] + rng.normal()
        p = pacf(x, 6)
        assert abs(p[2]) > 0.2
        assert np.all(np.abs(p[3:]) < 0.05)

    def test_lag1_pacf_equals_acf(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=500)
        assert pacf(x, 3)[1] == pytest.approx(acf(x, 1)[1])


class TestCorrelogram:
    def test_confidence_band(self):
        rng = np.random.default_rng(6)
        cg = correlogram(rng.normal(size=400), 20)
        assert cg.confidence_limit == pytest.approx(1.96 / 20.0)

    def test_significant_lags_on_seasonal_series(self):
        t = np.arange(480)
        rng = np.random.default_rng(7)
        x = np.sin(2 * np.pi * t / 24) + 0.2 * rng.normal(size=480)
        cg = correlogram(x, 30)
        assert 24 in cg.significant_acf_lags()
        assert cg.max_abs_acf() > 0.5

    def test_weak_correlation_on_noise(self):
        rng = np.random.default_rng(8)
        cg = correlogram(rng.normal(size=1000), 25)
        # the paper's criterion: max |ACF| greatly deviated from 1
        assert cg.max_abs_acf() < 0.2
