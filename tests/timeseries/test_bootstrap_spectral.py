"""Moving-block bootstrap and periodogram tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.timeseries import (
    default_block_length,
    dominant_period,
    moving_block_bootstrap,
    periodogram,
)


class TestBlockBootstrap:
    def test_shape_and_support(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=300)
        paths = moving_block_bootstrap(x, n_paths=20, horizon=50, rng=1)
        assert paths.shape == (20, 50)
        assert paths.min() >= x.min() and paths.max() <= x.max()

    def test_deterministic_per_seed(self):
        x = np.arange(100, dtype=float)
        a = moving_block_bootstrap(x, 5, 30, rng=7)
        b = moving_block_bootstrap(x, 5, 30, rng=7)
        assert np.array_equal(a, b)

    def test_block_length_one_is_iid(self):
        # with L=1 every value is an independent draw from the marginal
        x = np.array([1.0, 2.0, 3.0])
        paths = moving_block_bootstrap(x, 200, 10, block_length=1, rng=3)
        assert set(np.unique(paths)) <= {1.0, 2.0, 3.0}

    def test_blocks_preserve_transitions(self):
        # strictly increasing series: within-block steps are always +1
        x = np.arange(50, dtype=float)
        paths = moving_block_bootstrap(x, 50, 40, block_length=5, rng=4)
        diffs = np.diff(paths, axis=1)
        # 4 of every 5 transitions are within-block -> equal to +1
        frac_plus_one = np.mean(np.isclose(diffs, 1.0))
        assert frac_plus_one >= 0.7

    def test_preserves_autocorrelation_better_than_iid(self):
        from repro.timeseries import acf

        rng = np.random.default_rng(5)
        n = 2000
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = 0.8 * x[t - 1] + rng.normal()
        boot = moving_block_bootstrap(x, 1, 1500, block_length=50, rng=6)[0]
        iid = rng.choice(x, size=1500)
        assert acf(boot, 1)[1] > acf(iid, 1)[1] + 0.3

    def test_validation(self):
        x = np.arange(20, dtype=float)
        with pytest.raises(ValueError):
            moving_block_bootstrap(x, 0, 5)
        with pytest.raises(ValueError):
            moving_block_bootstrap(x, 2, 5, block_length=21)
        with pytest.raises(ValueError):
            default_block_length(2)

    @given(st.integers(10, 200), st.integers(1, 30), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_always_within_observed_range(self, n, horizon, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        paths = moving_block_bootstrap(x, 3, horizon, rng=seed)
        assert paths.shape == (3, horizon)
        assert paths.min() >= x.min() - 1e-12
        assert paths.max() <= x.max() + 1e-12


class TestPeriodogram:
    def test_detects_planted_period(self):
        rng = np.random.default_rng(0)
        t = np.arange(600)
        x = np.sin(2 * np.pi * t / 24) + 0.3 * rng.normal(size=600)
        assert dominant_period(x, max_period=80) == 24

    def test_detects_weekly_period(self):
        rng = np.random.default_rng(1)
        t = np.arange(980)
        x = 2 * np.cos(2 * np.pi * t / 7) + 0.5 * rng.normal(size=980)
        assert dominant_period(x, max_period=30) == 7

    def test_white_noise_has_no_stable_peak(self):
        # the peak of pure noise lands anywhere: run twice, expect disagreement
        rng = np.random.default_rng(2)
        p1 = dominant_period(rng.normal(size=512), max_period=100)
        p2 = dominant_period(rng.normal(size=512), max_period=100)
        rng3 = np.random.default_rng(3)
        p3 = dominant_period(rng3.normal(size=512), max_period=100)
        assert len({p1, p2, p3}) >= 2

    def test_parseval_energy(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=256)
        pg = periodogram(x)
        # sum of two-sided power ~ total variance * n; one-sided within 2x
        energy = float(np.sum((x - x.mean()) ** 2))
        assert 0.4 * energy <= pg.power.sum() <= 1.1 * energy

    def test_peak_period_inverse_of_frequency(self):
        t = np.arange(512)
        x = np.sin(2 * np.pi * t / 16)
        pg = periodogram(x)
        assert pg.peak_period() == pytest.approx(16.0, rel=0.05)

    def test_reference_window_has_daily_cycle(self):
        from repro.market import paper_window, reference_dataset

        prices = paper_window(reference_dataset()["c1.medium"]).estimation
        pg = periodogram(prices)
        # power at 24h beats the local spectral floor (mild but present)
        neighborhood = [pg.power_at_period(p) for p in (18.0, 20.0, 30.0, 36.0)]
        assert pg.power_at_period(24.0) > 0.5 * float(np.mean(neighborhood))

    def test_validation(self):
        with pytest.raises(ValueError):
            periodogram(np.arange(4, dtype=float))
        with pytest.raises(ValueError):
            dominant_period(np.arange(100, dtype=float), min_period=5, max_period=4)
