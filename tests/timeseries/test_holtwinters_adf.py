"""Holt-Winters smoothing and the ADF unit-root test."""

import numpy as np
import pytest

from repro.timeseries import adf_test, fit_holt_winters


def seasonal_series(n=600, period=24, slope=0.0, amp=2.0, noise=0.2, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 10 + slope * t + amp * np.sin(2 * np.pi * t / period) + noise * rng.normal(size=n)


class TestHoltWinters:
    def test_tracks_seasonal_pattern(self):
        x = seasonal_series()
        hw = fit_holt_winters(x, period=24)
        fc = hw.forecast(24)
        expected = 10 + 2 * np.sin(2 * np.pi * np.arange(600, 624) / 24)
        assert np.sqrt(np.mean((fc - expected) ** 2)) < 0.5

    def test_tracks_trend(self):
        x = seasonal_series(slope=0.05, amp=0.0, noise=0.05)
        hw = fit_holt_winters(x, period=0)
        fc = hw.forecast(10)
        expected = 10 + 0.05 * np.arange(600, 610)
        assert np.allclose(fc, expected, atol=0.5)

    def test_flat_series_flat_forecast(self):
        hw = fit_holt_winters(np.full(100, 5.0), period=0)
        assert np.allclose(hw.forecast(5), 5.0, atol=1e-6)

    def test_params_in_unit_box(self):
        hw = fit_holt_winters(seasonal_series(seed=2), period=24)
        assert 0 < hw.alpha < 1 and 0 <= hw.beta < 1 and 0 <= hw.gamma < 1

    def test_fitted_length(self):
        x = seasonal_series(n=200)
        hw = fit_holt_winters(x, period=24)
        assert hw.fitted.shape == x.shape
        assert hw.sse == pytest.approx(float(np.sum((x - hw.fitted) ** 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_holt_winters(np.arange(5, dtype=float), period=24)
        hw = fit_holt_winters(seasonal_series(n=100), period=24)
        with pytest.raises(ValueError):
            hw.forecast(0)

    def test_seasonal_indices_wrap(self):
        x = seasonal_series(n=240, period=24, noise=0.01)
        hw = fit_holt_winters(x, period=24)
        fc48 = hw.forecast(48)
        # two forecast cycles should repeat (no trend in this series)
        assert np.allclose(fc48[:24], fc48[24:], atol=0.3)


class TestADF:
    def test_stationary_ar1_rejects_unit_root(self):
        rng = np.random.default_rng(0)
        x = np.zeros(800)
        for t in range(1, 800):
            x[t] = 0.5 * x[t - 1] + rng.normal()
        assert adf_test(x).rejects_unit_root()

    def test_random_walk_does_not_reject(self):
        rng = np.random.default_rng(1)
        rw = np.cumsum(rng.normal(size=800))
        assert not adf_test(rw).rejects_unit_root()

    def test_white_noise_strongly_rejects(self):
        rng = np.random.default_rng(2)
        res = adf_test(rng.normal(size=500))
        assert res.rejects_unit_root(alpha=0.01)

    def test_critical_values_ordered(self):
        rng = np.random.default_rng(3)
        res = adf_test(rng.normal(size=300))
        cv = res.critical_values
        assert cv[0.01] < cv[0.05] < cv[0.10] < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            adf_test(np.arange(5, dtype=float))
        with pytest.raises(ValueError):
            adf_test(np.full(100, 3.0))
        rng = np.random.default_rng(4)
        res = adf_test(rng.normal(size=300))
        with pytest.raises(ValueError):
            res.rejects_unit_root(alpha=0.025)

    def test_paper_window_is_stationary(self):
        # the claim §IV-A2 makes before fitting SARIMA(d=0) models
        from repro.market import paper_window, reference_dataset

        prices = paper_window(reference_dataset()["c1.medium"]).estimation
        assert adf_test(prices).rejects_unit_root()
