"""Reference-dataset tests: calibration targets the paper's analysis relies on."""

import numpy as np
import pytest

from repro.market import (
    ANALYSIS_CLASSES,
    TRACE_EPOCH,
    ec2_catalog,
    hours_since_epoch,
    paper_window,
    reference_dataset,
)
from repro.stats import iqr_outliers, shapiro_wilk


@pytest.fixture(scope="module")
def dataset():
    return reference_dataset()


class TestReferenceDataset:
    def test_all_analysis_classes_present(self, dataset):
        assert set(dataset) == set(ANALYSIS_CLASSES)

    def test_deterministic(self, dataset):
        again = reference_dataset()
        for name in dataset:
            assert np.array_equal(dataset[name].prices, again[name].prices)

    def test_covers_the_crawl_period(self, dataset):
        tr = dataset["c1.medium"]
        assert tr.duration_hours > 500 * 24 * 0.99

    def test_outlier_fraction_below_three_percent(self, dataset):
        # Figure 3's headline: outliers < 3% for every class
        for name, tr in dataset.items():
            _, stats = iqr_outliers(tr.prices)
            assert stats.outlier_fraction < 0.03, name

    def test_outliers_increase_with_class_power(self, dataset):
        cat = ec2_catalog()
        fr = {
            name: iqr_outliers(tr.prices)[1].outlier_fraction
            for name, tr in dataset.items()
        }
        ordered = sorted(fr, key=lambda n: cat[n].power_rank)
        values = [fr[n] for n in ordered]
        assert values == sorted(values)

    def test_spot_well_below_on_demand(self, dataset):
        cat = ec2_catalog()
        for name, tr in dataset.items():
            assert np.median(tr.prices) < 0.5 * cat[name].on_demand_price


class TestPaperWindow:
    def test_window_lengths(self, dataset):
        w = paper_window(dataset["c1.medium"])
        assert w.estimation.size == 62 * 24  # Dec (31) + Jan (31)
        assert w.validation.size == 24

    def test_window_offsets(self):
        assert hours_since_epoch(TRACE_EPOCH) == 0.0
        # Feb 1 2010 -> Dec 1 2010 is 303 days
        from datetime import date

        assert hours_since_epoch(date(2010, 12, 1)) == 303 * 24.0

    def test_estimation_prices_in_paper_band(self, dataset):
        # Figure 5's axis: c1.medium bulk prices around 0.056-0.064
        w = paper_window(dataset["c1.medium"])
        q10, q90 = np.percentile(w.estimation, [10, 90])
        assert 0.045 < q10 < q90 < 0.08

    def test_normality_rejected_like_fig5(self, dataset):
        w = paper_window(dataset["c1.medium"])
        assert shapiro_wilk(w.estimation).rejects_normality()

    def test_short_trace_rejected(self, dataset):
        short = dataset["c1.medium"].window(0.0, 100.0)
        with pytest.raises(ValueError):
            paper_window(short)
