"""Bid policies, interruption scanning, and the single-charge invariant.

Covers :mod:`repro.market.policy` and :mod:`repro.market.interruptions`:
the stateful bid policies (fixed / od-index / percentile / rebid), the
trace scanner and its restart-lag blackouts, the DRRP capacity knock-out,
the regression pinning the availability↔interruption single-charge
invariant (a slot is either a win charged spot or an eviction charged λ —
exactly once), and a Hypothesis property asserting bid monotonicity.
Failed property examples are persisted as shrunk JSON reproducers the way
the fuzz oracle persists disagreement witnesses.
"""

import json
import os
from fractions import Fraction
from pathlib import Path

import numpy as np
import pytest

from repro.core.costs import CostSchedule
from repro.core.drrp import DRRPInstance, solve_drrp
from repro.core.rolling import NoPlanPolicy, simulate_policy
from repro.market.auction import FixedBids, is_out_of_bid
from repro.market.availability import availability_of_bid, bid_for_availability
from repro.market.catalog import CostRates, VMClass
from repro.market.interruptions import (
    BidDominanceCase,
    InterruptionEvent,
    InterruptionModel,
    apply_interruptions,
    eviction_mask,
    fixed_bid_outcome,
    knocked_out_slots,
    scan_trace,
)
from repro.market.policy import (
    BID_POLICY_KINDS,
    FixedBidPolicy,
    IndexedBidPolicy,
    PercentileBidPolicy,
    PolicyBids,
    RebidPolicy,
    make_bid_policy,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - baked into the CI image
    HAVE_HYPOTHESIS = False

LAMBDA = 0.2  # c1.medium's on-demand price, the scale all tests use


def event(slot=0, lost=0.0, salvaged=1.0, lag=0):
    return InterruptionEvent(
        slot=slot, spot_price=0.1, bid=0.05,
        lost_gb=lost, salvaged_gb=salvaged, restart_lag=lag,
    )


class TestBidPolicies:
    def test_fixed_value_and_historical_mean(self):
        observed = np.array([0.04, 0.06, 0.08])
        explicit = FixedBidPolicy(0.07)
        explicit.reset(LAMBDA)
        assert explicit.bid(observed) == 0.07
        mean = FixedBidPolicy()
        mean.reset(LAMBDA)
        assert mean.bid(observed) == pytest.approx(0.06)

    def test_fixed_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedBidPolicy(0.0)

    def test_od_index_tracks_lambda(self):
        policy = IndexedBidPolicy(fraction=0.9)
        policy.reset(LAMBDA)
        assert policy.bid(np.array([0.01])) == pytest.approx(0.9 * LAMBDA)
        policy.reset(2 * LAMBDA)
        assert policy.bid(np.array([0.01])) == pytest.approx(1.8 * LAMBDA)

    def test_percentile_matches_availability_helper(self):
        rng = np.random.default_rng(5)
        observed = rng.uniform(0.03, 0.1, 400)
        policy = PercentileBidPolicy(availability=0.9)
        policy.reset(LAMBDA)
        bid = policy.bid(observed)
        assert bid == bid_for_availability(observed, 0.9)
        assert availability_of_bid(observed, bid) >= 0.9

    def test_rebid_escalates_and_caps_at_lambda(self):
        rng = np.random.default_rng(5)
        observed = rng.uniform(0.03, 0.1, 400)
        policy = RebidPolicy(availability=0.5, escalation=1.25)
        policy.reset(LAMBDA)
        base = policy.bid(observed)
        # lossless eviction (everything checkpointed): one escalation step
        policy.notify_eviction(event(lost=0.0, salvaged=1.0))
        assert policy.bid(observed) == pytest.approx(base * 1.25)
        # total loss escalates twice as hard
        policy.notify_eviction(event(lost=1.0, salvaged=0.0))
        assert policy.bid(observed) == pytest.approx(base * 1.25 * 1.5)
        # enough evictions hit the λ cap and never exceed it
        for _ in range(20):
            policy.notify_eviction(event())
        assert policy.bid(observed) == LAMBDA
        # reset restores the initial level
        policy.reset(LAMBDA)
        assert policy.bid(observed) == base

    def test_rebid_rejects_non_escalating_factor(self):
        with pytest.raises(ValueError):
            RebidPolicy(escalation=1.0)

    def test_make_bid_policy_roster(self):
        for kind in BID_POLICY_KINDS:
            policy = make_bid_policy(kind)
            assert policy.name == kind
        assert make_bid_policy("fixed", 0.08).value == 0.08
        assert make_bid_policy("od-index", 0.5).fraction == 0.5
        assert make_bid_policy("percentile", 0.8).availability == 0.8
        assert make_bid_policy("rebid", 0.6).availability == 0.6
        with pytest.raises(ValueError):
            make_bid_policy("martingale")

    def test_policy_bids_adapter(self):
        policy = FixedBidPolicy(0.07)
        policy.reset(LAMBDA)
        strat = PolicyBids(policy)
        assert strat.name == "bid-fixed"
        bids = strat.bids(np.array([0.05, 0.06]), 5)
        np.testing.assert_array_equal(bids, np.full(5, 0.07))


class TestScanTrace:
    def test_events_match_eviction_mask(self):
        rng = np.random.default_rng(11)
        prices = rng.uniform(0.02, 0.12, 50)
        bid = 0.06
        events = scan_trace(prices, bid)
        assert [e.slot for e in events] == list(np.flatnonzero(eviction_mask(prices, bid)))
        for e in events:
            assert is_out_of_bid(e.bid, e.spot_price)

    def test_tie_is_a_win(self):
        events = scan_trace(np.array([0.05, 0.05]), 0.05)
        assert events == []
        assert not eviction_mask(np.array([0.05]), 0.05).any()

    def test_restart_lag_blackout(self):
        prices = np.full(6, 0.1)  # every slot would evict a 0.05 bid
        events = scan_trace(prices, 0.05, model=InterruptionModel(restart_lag=2))
        assert [e.slot for e in events] == [0, 3]
        mask = knocked_out_slots(events, 6)
        np.testing.assert_array_equal(mask, np.ones(6, dtype=bool))

    def test_generation_filter_and_checkpoint_split(self):
        prices = np.array([0.1, 0.1, 0.1])
        generation = np.array([2.0, 0.0, 4.0])
        model = InterruptionModel(checkpoint_fraction=0.75)
        events = scan_trace(prices, 0.05, model=model, generation=generation)
        assert [e.slot for e in events] == [0, 2]  # idle slot 1 cannot be evicted
        assert events[0].lost_gb == pytest.approx(0.5)
        assert events[0].salvaged_gb == pytest.approx(1.5)
        assert events[1].lost_gb == pytest.approx(1.0)
        assert events[1].salvaged_gb == pytest.approx(3.0)


def _drrp(demand, initial_storage=0.0, **kwargs):
    T = len(demand)
    costs = CostSchedule(
        compute=np.full(T, 3.0), storage=np.full(T, 0.1), io=np.full(T, 0.1),
        transfer_in=np.full(T, 0.2), transfer_out=np.full(T, 0.2),
    )
    return DRRPInstance(
        demand=np.asarray(demand, dtype=float), costs=costs,
        phi=0.5, initial_storage=initial_storage, **kwargs,
    )


class TestApplyInterruptions:
    def test_knockout_and_salvage(self):
        inst = _drrp([1.0, 2.0, 1.0, 2.0])
        events = [event(slot=2, lost=0.5, salvaged=1.5)]
        repaired = apply_interruptions(inst, events)
        assert repaired.bottleneck_rate == 1.0
        assert repaired.bottleneck_capacity[2] == 0.0
        assert (repaired.bottleneck_capacity[[0, 1, 3]] > 0).all()
        assert repaired.initial_storage == pytest.approx(1.5)
        plan = solve_drrp(repaired, backend="auto")
        assert plan.alpha[2] <= 1e-9  # the evicted slot produces nothing

    def test_existing_bottleneck_preserved(self):
        inst = _drrp(
            [1.0, 1.0, 1.0],
            bottleneck_rate=2.0, bottleneck_capacity=np.array([5.0, 6.0, 7.0]),
        )
        repaired = apply_interruptions(inst, [event(slot=1, salvaged=0.0)])
        assert repaired.bottleneck_rate == 2.0
        np.testing.assert_array_equal(repaired.bottleneck_capacity, [5.0, 0.0, 7.0])

    def test_restart_lag_widens_the_knockout(self):
        inst = _drrp([0.0, 0.0, 1.0, 1.0], initial_storage=2.0)
        repaired = apply_interruptions(inst, [event(slot=1, salvaged=0.0, lag=1)])
        np.testing.assert_array_equal(
            repaired.bottleneck_capacity == 0.0, [False, True, True, False]
        )


class TestSingleChargeInvariant:
    """A slot is a win (spot, once) xor an eviction (λ, once) — never both.

    Pins the fix for the availability↔interruption double-count: both
    layers now share ``is_out_of_bid``/its complement, so the win and
    eviction sets partition the horizon, including ``bid == price`` ties.
    """

    def test_wins_and_evictions_partition_every_slot(self):
        rng = np.random.default_rng(23)
        prices = rng.uniform(0.02, LAMBDA, 200)
        prices[:10] = 0.06  # force exact ties against the bid below
        wins = prices <= 0.06
        evictions = eviction_mask(prices, 0.06)
        assert (wins ^ evictions).all()

    @pytest.mark.parametrize("bid", [0.03, 0.06, 0.0601, LAMBDA])
    def test_simulator_agrees_with_exact_accounting(self, bid):
        """simulate_policy and fixed_bid_outcome must agree bit for bit."""
        rng = np.random.default_rng(37)
        prices = np.round(rng.uniform(0.02, LAMBDA, 40), 3)
        prices[5] = bid  # a tie — must be charged as a win
        demand = np.round(rng.uniform(0.0, 2.0, 40), 2)
        case = BidDominanceCase(
            prices=prices, demand=demand, on_demand_price=LAMBDA,
            bid_lo=min(bid, 0.01), bid_hi=max(bid, 0.02), work_loss=0.5,
        )
        analytic = fixed_bid_outcome(case, bid)
        sim = simulate_policy(
            NoPlanPolicy(FixedBids(value=bid)), prices, demand,
            VMClass(name="single-charge", on_demand_price=LAMBDA),
            rates=CostRates(), interruption_loss=0.5,
        )
        assert float(analytic.cost) == sim.total_cost
        assert analytic.interruptions == sim.out_of_bid_events
        assert float(analytic.lost_gb) == pytest.approx(sim.lost_gb)
        # the per-slot eviction marker matches the shared predicate on
        # exactly the rented (positive-demand) slots
        rented = demand > 1e-12
        np.testing.assert_array_equal(
            sim.out_of_bid, rented & eviction_mask(prices, bid)
        )


# ---------------------------------------------------------------------------
# Hypothesis property: bid monotonicity
# ---------------------------------------------------------------------------

#: Where failing property examples are persisted (mirrors `repro fuzz
#: --out-dir`): the JSON left behind is the *shrunk* counterexample,
#: because Hypothesis re-runs the test on the minimal failing input last.
ARTIFACT_DIR = Path(os.environ.get("REPRO_FUZZ_DIR", "fuzz-reproducers"))


def _persist_counterexample(case: BidDominanceCase, lo, hi) -> Path:
    from repro.verify.oracle import serialize_witness

    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / "property_bid_monotonicity.json"
    path.write_text(json.dumps({
        "property": "bid-monotonicity",
        "witness": serialize_witness(case),
        "cost_lo": str(lo.cost),
        "cost_hi": str(hi.cost),
        "interruptions_lo": lo.interruptions,
        "interruptions_hi": hi.interruptions,
    }, indent=2) + "\n")
    return path


if HAVE_HYPOTHESIS:

    @st.composite
    def bid_cases(draw):
        T = draw(st.integers(min_value=1, max_value=12))
        prices = np.array(draw(st.lists(
            st.floats(0.001, LAMBDA), min_size=T, max_size=T,
        )))
        demand = np.array(draw(st.lists(
            st.floats(0.0, 2.0), min_size=T, max_size=T,
        )))
        # half the time bid exactly at a realized price: ties must stay wins
        if draw(st.booleans()) and prices.size:
            bid_lo = float(prices[draw(st.integers(0, T - 1))])
        else:
            bid_lo = draw(st.floats(0.001, 1.1 * LAMBDA))
        delta = draw(st.floats(0.001, 0.1))
        work_loss = draw(st.sampled_from([0.0, 0.25, 0.5, 0.9]))
        return BidDominanceCase(
            prices=prices, demand=demand, on_demand_price=LAMBDA,
            bid_lo=bid_lo, bid_hi=bid_lo + delta, work_loss=work_loss,
        )

    class TestBidMonotonicity:
        @settings(max_examples=150, deadline=None, database=None)
        @given(case=bid_cases())
        def test_raising_the_bid_never_hurts(self, case):
            """With spot capped at λ, a higher bid weakly reduces both the
            realized cost and the interruption count (ties allowed)."""
            lo = fixed_bid_outcome(case, case.bid_lo)
            hi = fixed_bid_outcome(case, case.bid_hi)
            try:
                assert hi.interruptions <= lo.interruptions
                assert hi.cost <= lo.cost
            except AssertionError:
                path = _persist_counterexample(case, lo, hi)
                raise AssertionError(
                    f"bid monotonicity violated; reproducer at {path}"
                )
