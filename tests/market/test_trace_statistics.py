"""Deeper statistical checks of the synthetic trace generator — the
calibration contract documented in docs/data.md."""

import numpy as np
import pytest

from repro.market import (
    TraceParams,
    ec2_catalog,
    generate_spot_trace,
    hourly_series,
    paper_window,
    reference_dataset,
)
from repro.stats import EmpiricalDistribution
from repro.timeseries import acf, adf_test, dominant_period


@pytest.fixture(scope="module")
def medium_trace():
    return reference_dataset()["c1.medium"]


class TestCalibrationContract:
    def test_hourly_series_stationary(self, medium_trace):
        prices = paper_window(medium_trace).estimation
        assert adf_test(prices).rejects_unit_root()

    def test_weak_but_positive_lag1_autocorrelation(self, medium_trace):
        prices = paper_window(medium_trace).estimation
        r1 = acf(prices, 1)[1]
        assert 0.05 < r1 < 0.9  # memory exists, far from a unit root

    def test_daily_cycle_detectable(self, medium_trace):
        # the cycle is mild (by design: Fig. 6 calls it weak), so instead of
        # demanding the global spectral peak, require the 24 h line to carry
        # at least median power among nearby candidate periods
        from repro.timeseries import periodogram

        prices = paper_window(medium_trace).estimation
        pg = periodogram(prices)
        candidates = np.arange(12, 37)
        powers = np.array([pg.power_at_period(float(p)) for p in candidates])
        assert pg.power_at_period(24.0) >= np.median(powers)

    def test_discount_vs_on_demand_everywhere(self):
        cat = ec2_catalog()
        ds = reference_dataset()
        for name, trace in ds.items():
            ratio = trace.prices.mean() / cat[name].on_demand_price
            assert 0.2 < ratio < 0.45  # deep-discount regime

    def test_base_distribution_support_compact(self, medium_trace):
        prices = paper_window(medium_trace).estimation
        d = EmpiricalDistribution(prices, decimals=3)
        # prices quantize to $0.001: the support is small and finite
        assert d.support_size < 100
        assert d.values.min() >= 0.0

    def test_independent_classes_uncorrelated(self):
        ds = reference_dataset()
        a = hourly_series(ds["c1.medium"], 0, 24 * 200)
        b = hourly_series(ds["m1.large"], 0, 24 * 200)
        corr = np.corrcoef(a, b)[0, 1]
        assert abs(corr) < 0.15  # separate RNG streams

    def test_trace_params_scale_duration(self):
        vm = ec2_catalog()["c1.medium"]
        short = generate_spot_trace(vm, 0, TraceParams(duration_days=30.0))
        long = generate_spot_trace(vm, 0, TraceParams(duration_days=120.0))
        assert long.n_updates > short.n_updates * 2

    def test_update_rate_parameter_respected(self):
        vm = ec2_catalog()["c1.medium"]
        slow = generate_spot_trace(
            vm, 1, TraceParams(duration_days=120.0, mean_updates_per_day=2.0)
        )
        fast = generate_spot_trace(
            vm, 1, TraceParams(duration_days=120.0, mean_updates_per_day=16.0)
        )
        assert fast.n_updates > 3 * slow.n_updates

    def test_spike_cap_never_exceeded(self):
        cat = ec2_catalog()
        for name, trace in reference_dataset().items():
            assert trace.prices.max() <= cat[name].on_demand_price * 1.05 + 1e-9

    def test_seasonal_amplitude_parameter(self):
        vm = ec2_catalog()["c1.medium"]
        flat = generate_spot_trace(
            vm, 2, TraceParams(duration_days=90.0, seasonal_relative_amplitude=0.0)
        )
        wavy = generate_spot_trace(
            vm, 2, TraceParams(duration_days=90.0, seasonal_relative_amplitude=0.15)
        )
        from repro.timeseries import decompose_additive

        f = decompose_additive(hourly_series(flat, 0, 24 * 60), 24)
        w = decompose_additive(hourly_series(wavy, 0, 24 * 60), 24)
        assert w.seasonal_amplitude > 2 * f.seasonal_amplitude
