"""Trace CSV round-trips and the availability analysis."""

import numpy as np
import pytest

from repro.market import (
    SpotPriceTrace,
    availability_curve,
    availability_of_bid,
    bid_for_availability,
    ec2_catalog,
    expected_cost_of_bid,
    generate_spot_trace,
    read_trace_csv,
    traces_from_csv_dir,
    traces_to_csv_dir,
    write_trace_csv,
)


class TestTraceCSV:
    def test_roundtrip(self, tmp_path):
        vm = ec2_catalog()["c1.medium"]
        from repro.market import TraceParams

        trace = generate_spot_trace(vm, 5, TraceParams(duration_days=20.0))
        path = tmp_path / "c1.csv"
        write_trace_csv(trace, path)
        back = read_trace_csv(path)
        assert back.vm_class == "c1.medium"
        assert np.allclose(back.times, trace.times, atol=1e-6)
        assert np.allclose(back.prices, trace.prices, atol=1e-6)

    def test_directory_roundtrip(self, tmp_path):
        vm = ec2_catalog()
        from repro.market import TraceParams

        params = TraceParams(duration_days=10.0)
        ds = {
            name: generate_spot_trace(vm[name], i, params)
            for i, name in enumerate(("c1.medium", "m1.large"))
        }
        paths = traces_to_csv_dir(ds, tmp_path / "traces")
        assert len(paths) == 2
        back = traces_from_csv_dir(tmp_path / "traces")
        assert set(back) == set(ds)

    def test_stem_fallback_class_name(self, tmp_path):
        p = tmp_path / "custom-vm.csv"
        p.write_text("hours,price\n0.5,0.05\n1.5,0.06\n")
        trace = read_trace_csv(p)
        assert trace.vm_class == "custom-vm"
        assert trace.n_updates == 2

    def test_malformed_rows_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("hours,price\n1.0,2.0,3.0\n")
        with pytest.raises(ValueError):
            read_trace_csv(p)

    def test_empty_file_rejected(self, tmp_path):
        p = tmp_path / "empty.csv"
        p.write_text("hours,price\n")
        with pytest.raises(ValueError):
            read_trace_csv(p)

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            traces_from_csv_dir(tmp_path)


class TestAvailability:
    PRICES = np.array([0.05, 0.06, 0.06, 0.07, 0.10])

    def test_availability_of_bid(self):
        assert availability_of_bid(self.PRICES, 0.06) == pytest.approx(0.6)
        assert availability_of_bid(self.PRICES, 0.04) == 0.0
        assert availability_of_bid(self.PRICES, 1.0) == 1.0

    def test_bid_for_availability_is_quantile(self):
        assert bid_for_availability(self.PRICES, 0.6) == pytest.approx(0.06)
        assert bid_for_availability(self.PRICES, 1.0) == pytest.approx(0.10)

    def test_bid_for_availability_achieves_target(self):
        rng = np.random.default_rng(0)
        prices = rng.lognormal(-2.8, 0.2, 5000)
        for target in (0.5, 0.9, 0.99):
            bid = bid_for_availability(prices, target)
            assert availability_of_bid(prices, bid) >= target

    def test_target_validation(self):
        with pytest.raises(ValueError):
            bid_for_availability(self.PRICES, 0.0)
        with pytest.raises(ValueError):
            bid_for_availability(self.PRICES, 1.5)

    def test_expected_cost_blends_spot_and_lambda(self):
        # bid 0.06: wins {.05,.06,.06} pays them; loses {.07,.10} pays 0.2
        expected = (0.05 + 0.06 + 0.06 + 0.2 + 0.2) / 5
        assert expected_cost_of_bid(self.PRICES, 0.06, 0.2) == pytest.approx(expected)

    def test_curve_monotone_availability(self):
        rng = np.random.default_rng(1)
        prices = rng.normal(0.06, 0.01, 2000).clip(0.03, 0.12)
        curve = availability_curve(prices, on_demand_price=0.2, num=30)
        assert np.all(np.diff(curve.availability) >= -1e-12)
        assert curve.availability[-1] == 1.0
        rows = curve.as_rows()
        assert len(rows) == 30

    def test_curve_cost_has_interior_minimum_or_decreases(self):
        # expected effective price at bid=max is the spot mean; at bid=min it
        # is ~lambda; the curve should end well below where it starts
        rng = np.random.default_rng(2)
        prices = rng.normal(0.06, 0.01, 2000).clip(0.03, 0.12)
        curve = availability_curve(prices, on_demand_price=0.2, num=30)
        assert curve.expected_price[-1] < curve.expected_price[0]

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            availability_of_bid(np.array([]), 0.05)
