"""Market substrate tests: catalog, trace generation, resampling, auction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.market import (
    ANALYSIS_CLASSES,
    PLANNING_CLASSES,
    CostRates,
    FixedBids,
    ForecastBids,
    MeanBids,
    PerturbedActualBids,
    SpotPriceTrace,
    TraceParams,
    daily_update_counts,
    ec2_catalog,
    effective_hourly_price,
    generate_spot_trace,
    hourly_series,
    is_out_of_bid,
    update_interval_stats,
)


class TestCatalog:
    def test_planning_prices_match_paper(self):
        cat = ec2_catalog()
        assert cat["c1.medium"].on_demand_price == 0.20
        assert cat["m1.large"].on_demand_price == 0.40
        assert cat["m1.xlarge"].on_demand_price == 0.80

    def test_outlier_rates_increase_with_power(self):
        cat = ec2_catalog()
        ordered = sorted(cat.values(), key=lambda v: v.power_rank)
        rates = [v.outlier_rate for v in ordered]
        assert rates == sorted(rates)
        assert all(r < 0.03 for r in rates)

    def test_mean_spot_is_deep_discount(self):
        vm = ec2_catalog()["c1.medium"]
        assert vm.mean_spot_price == pytest.approx(0.06)

    def test_class_sets(self):
        cat = ec2_catalog()
        assert set(PLANNING_CLASSES) <= set(cat)
        assert set(ANALYSIS_CLASSES) == set(cat)

    def test_cost_rates_paper_values(self):
        r = CostRates()
        assert r.io_per_gb == 0.20
        assert r.transfer_in_per_gb == 0.10
        assert r.transfer_out_per_gb == 0.17
        assert r.input_output_ratio == 0.5
        assert r.storage_per_gb_hour == pytest.approx(0.10 / 730.0)


class TestTraceGeneration:
    def test_deterministic_per_seed(self):
        vm = ec2_catalog()["c1.medium"]
        a = generate_spot_trace(vm, 42)
        b = generate_spot_trace(vm, 42)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.prices, b.prices)

    def test_different_seeds_differ(self):
        vm = ec2_catalog()["c1.medium"]
        a = generate_spot_trace(vm, 1)
        b = generate_spot_trace(vm, 2)
        assert not np.array_equal(a.prices[:100], b.prices[:100])

    def test_strictly_increasing_times(self):
        vm = ec2_catalog()["m1.large"]
        tr = generate_spot_trace(vm, 0)
        assert np.all(np.diff(tr.times) > 0)

    def test_mean_price_near_calibrated_level(self):
        vm = ec2_catalog()["c1.medium"]
        tr = generate_spot_trace(vm, 3)
        assert tr.prices.mean() == pytest.approx(vm.mean_spot_price, rel=0.15)

    def test_prices_quantized(self):
        vm = ec2_catalog()["c1.medium"]
        tr = generate_spot_trace(vm, 4)
        assert np.allclose(tr.prices, np.round(tr.prices, 3))

    def test_prices_bounded(self):
        vm = ec2_catalog()["m1.xlarge"]
        tr = generate_spot_trace(vm, 5)
        assert tr.prices.max() <= vm.on_demand_price * 1.05 + 1e-9
        assert tr.prices.min() > 0

    def test_short_trace_params(self):
        vm = ec2_catalog()["c1.medium"]
        tr = generate_spot_trace(vm, 6, TraceParams(duration_days=10.0))
        assert tr.duration_hours < 240.0

    def test_price_at_lookup(self):
        tr = SpotPriceTrace("x", np.array([1.0, 5.0, 9.0]), np.array([0.1, 0.2, 0.3]))
        assert tr.price_at(0.0) == 0.1  # before first update: first price
        assert tr.price_at(1.0) == 0.1
        assert tr.price_at(6.0) == 0.2
        assert tr.price_at(100.0) == 0.3

    def test_window_rebases(self):
        tr = SpotPriceTrace("x", np.array([1.0, 5.0, 9.0]), np.array([0.1, 0.2, 0.3]))
        w = tr.window(4.0, 10.0)
        assert np.allclose(w.times, [1.0, 5.0])
        assert np.allclose(w.prices, [0.2, 0.3])

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            SpotPriceTrace("x", np.array([2.0, 1.0]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            SpotPriceTrace("x", np.array([1.0]), np.array([0.1, 0.2]))


class TestResampling:
    def test_hourly_locf_rule(self):
        # updates at 0.5h (price .1) and 2.7h (price .2)
        tr = SpotPriceTrace("x", np.array([0.5, 2.7]), np.array([0.1, 0.2]))
        s = hourly_series(tr, 0.0, 5.0)
        assert np.allclose(s, [0.1, 0.1, 0.1, 0.2, 0.2])

    def test_no_update_carries_price(self):
        tr = SpotPriceTrace("x", np.array([0.1]), np.array([0.5]))
        s = hourly_series(tr, 0.0, 48.0)
        assert np.all(s == 0.5)
        assert s.size == 48

    def test_bad_window(self):
        tr = SpotPriceTrace("x", np.array([0.1]), np.array([0.5]))
        with pytest.raises(ValueError):
            hourly_series(tr, 5.0, 5.0)

    def test_daily_update_counts(self):
        times = np.array([1.0, 2.0, 25.0, 49.0, 49.5, 49.9])
        tr = SpotPriceTrace("x", times, np.full(6, 0.1))
        counts = daily_update_counts(tr)
        assert counts[0] == 2 and counts[1] == 1 and counts[2] == 3

    def test_update_counts_vary(self):
        vm = ec2_catalog()["c1.medium"]
        tr = generate_spot_trace(vm, 7)
        counts = daily_update_counts(tr)
        assert counts.std() > 1.0  # Figure 4: visible variation

    def test_interval_stats(self):
        vm = ec2_catalog()["c1.medium"]
        tr = generate_spot_trace(vm, 8)
        s = update_interval_stats(tr)
        assert s["min_hours"] > 0
        assert s["coefficient_of_variation"] > 0.3  # irregular sampling


class TestAuction:
    def test_out_of_bid_rule(self):
        assert is_out_of_bid(bid=0.05, spot_price=0.06)
        assert not is_out_of_bid(bid=0.06, spot_price=0.06)

    def test_effective_price_winner_pays_spot(self):
        assert effective_hourly_price(0.10, 0.06, 0.20) == 0.06

    def test_effective_price_loser_pays_on_demand(self):
        assert effective_hourly_price(0.05, 0.06, 0.20) == 0.20

    @given(st.floats(0.01, 0.3), st.floats(0.01, 0.3))
    @settings(max_examples=50, deadline=None)
    def test_effective_price_never_exceeds_max(self, bid, spot):
        lam = 0.2
        price = effective_hourly_price(bid, spot, lam)
        assert price <= max(spot, lam) + 1e-12

    def test_fixed_bids(self):
        assert np.all(FixedBids(value=0.07).bids(np.zeros(5), 4) == 0.07)

    def test_mean_bids(self):
        b = MeanBids().bids(np.array([0.1, 0.2, 0.3]), 3)
        assert np.allclose(b, 0.2)

    def test_forecast_bids_requires_forecaster(self):
        with pytest.raises(ValueError):
            ForecastBids().bids(np.zeros(5), 2)

    def test_forecast_bids_shape_checked(self):
        strategy = ForecastBids(forecaster=lambda h, n: np.zeros(n + 1))
        with pytest.raises(ValueError):
            strategy.bids(np.zeros(5), 2)

    def test_forecast_bids_delegates(self):
        strategy = ForecastBids(forecaster=lambda h, n: np.full(n, h[-1]))
        assert np.all(strategy.bids(np.array([0.1, 0.4]), 3) == 0.4)

    def test_perturbed_actual_bids(self):
        actual = np.array([0.10, 0.20])
        b = PerturbedActualBids(actual=actual, deviation=0.10).bids(np.zeros(1), 2)
        assert np.allclose(b, [0.11, 0.22])
        with pytest.raises(ValueError):
            PerturbedActualBids(actual=actual, deviation=0.1).bids(np.zeros(1), 5)
