"""Adversarial SRRPPlan.validate and non-anticipativity checking.

Satellite contract: tampered non-anticipativity (two scenarios sharing a
vertex with different first-stage alpha) and a violated forcing bound are
both rejected with informative errors.
"""

import numpy as np
import pytest

from repro.core.srrp import solve_srrp, validate_nonanticipativity
from repro.verify.generators import planted_srrp


@pytest.fixture
def solved():
    case = planted_srrp(np.random.default_rng(17))
    plan = solve_srrp(case.instance, backend="auto")
    return case.instance, plan


class TestValidateAdversarial:
    def test_clean_plan_validates(self, solved):
        instance, plan = solved
        plan.validate(instance)

    def test_forcing_violation_rejected_with_vertex(self, solved):
        instance, plan = solved
        # drop the rental marker at a generating leaf: balance and binarity
        # are untouched, but alpha > 0 now exceeds forcing_bound * chi = 0
        leaf = next(
            n for n in instance.tree.leaves() if plan.alpha[n.index] > 0.5
        )
        plan.chi = plan.chi.copy()
        plan.chi[leaf.index] = 0.0
        with pytest.raises(AssertionError, match=rf"forcing violated at vertex {leaf.index}"):
            plan.validate(instance)

    def test_balance_violation_rejected_with_residual(self, solved):
        instance, plan = solved
        plan.alpha = plan.alpha.copy()
        plan.alpha[0] += 2.0
        with pytest.raises(AssertionError, match="balance violated at vertex 0"):
            plan.validate(instance)

    def test_negative_quantity_rejected(self, solved):
        instance, plan = solved
        plan.beta = plan.beta.copy()
        plan.beta[1] = -0.5
        with pytest.raises(AssertionError, match="negative quantity"):
            plan.validate(instance)

    def test_fractional_chi_rejected(self, solved):
        instance, plan = solved
        plan.chi = plan.chi.copy()
        plan.chi[0] = 0.4
        with pytest.raises(AssertionError, match="not binary"):
            plan.validate(instance)

    def test_wrong_shape_rejected(self, solved):
        instance, plan = solved
        plan.alpha = plan.alpha[:-1]
        with pytest.raises(AssertionError, match="vertex-indexed"):
            plan.validate(instance)


class TestNonAnticipativity:
    def test_vertex_indexed_policy_passes(self, solved):
        instance, plan = solved
        decisions = {
            leaf.index: plan.decisions_for_scenario(leaf.index)
            for leaf in instance.tree.leaves()
        }
        validate_nonanticipativity(instance.tree, decisions)

    def test_divergent_first_stage_alpha_rejected(self, solved):
        instance, plan = solved
        leaves = instance.tree.leaves()
        assert len(leaves) >= 2
        decisions = {
            leaf.index: plan.decisions_for_scenario(leaf.index)
            for leaf in leaves
        }
        # two scenarios share the root but prescribe different here-and-now
        # generation: exactly the tampering the checker must catch
        tampered = decisions[leaves[1].index]
        tampered["alpha"] = tampered["alpha"].copy()
        tampered["alpha"][0] += 1.0
        with pytest.raises(AssertionError, match="non-anticipativity violated at vertex 0"):
            validate_nonanticipativity(instance.tree, decisions)

    def test_divergence_below_shared_prefix_is_allowed(self, solved):
        instance, plan = solved
        leaves = instance.tree.leaves()
        decisions = {
            leaf.index: plan.decisions_for_scenario(leaf.index)
            for leaf in leaves
        }
        # changing a *leaf* decision touches no shared vertex
        tampered = decisions[leaves[0].index]
        tampered["alpha"] = tampered["alpha"].copy()
        tampered["alpha"][-1] += 1.0
        validate_nonanticipativity(instance.tree, decisions)
