"""Scenario sampling, forward-selection reduction, fan trees, and the
reduced-tree rolling policy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ReducedScenarioPolicy,
    fan_tree_from_paths,
    forward_selection,
    sample_price_paths,
    simulate_policy,
)
from repro.core.rolling import OraclePolicy
from repro.market import MeanBids, ec2_catalog
from repro.stats import EmpiricalDistribution


def base_dist(seed=0, n=2000):
    rng = np.random.default_rng(seed)
    return EmpiricalDistribution(rng.normal(0.06, 0.005, n).clip(0.03, 0.12), decimals=3)


class TestSamplePaths:
    def test_shape_and_support(self):
        d = base_dist()
        paths = sample_price_paths(d, np.full(5, 0.06), 0.2, n_paths=50, rng=1)
        assert paths.shape == (50, 5)
        # every value is either a kept support point (<= bid) or lambda
        assert np.all((paths <= 0.06 + 1e-12) | np.isclose(paths, 0.2))

    def test_low_bid_all_lambda(self):
        d = base_dist()
        paths = sample_price_paths(d, np.full(3, 0.0), 0.2, n_paths=10, rng=2)
        assert np.allclose(paths, 0.2)

    def test_deterministic_per_seed(self):
        d = base_dist()
        a = sample_price_paths(d, np.full(4, 0.06), 0.2, 20, rng=7)
        b = sample_price_paths(d, np.full(4, 0.06), 0.2, 20, rng=7)
        assert np.array_equal(a, b)


class TestForwardSelection:
    def test_keep_all_is_identity(self):
        rng = np.random.default_rng(0)
        paths = rng.normal(size=(6, 4))
        sel, probs = forward_selection(paths, 6)
        assert sorted(sel.tolist()) == list(range(6))
        assert np.allclose(probs, 1 / 6)

    def test_probabilities_sum_to_one(self):
        rng = np.random.default_rng(1)
        paths = rng.normal(size=(40, 5))
        for k in (1, 3, 10):
            sel, probs = forward_selection(paths, k)
            assert sel.shape == probs.shape == (k,)
            assert probs.sum() == pytest.approx(1.0)

    def test_duplicated_scenarios_collapse(self):
        base = np.array([[1.0, 1.0], [1.0, 1.0], [5.0, 5.0]])
        sel, probs = forward_selection(base, 2)
        chosen = {tuple(base[i]) for i in sel}
        assert (5.0, 5.0) in chosen and (1.0, 1.0) in chosen
        # the duplicated cheap scenario carries 2/3 of the mass
        mass = dict(zip([tuple(base[i]) for i in sel], probs))
        assert mass[(1.0, 1.0)] == pytest.approx(2 / 3)

    def test_selection_prefers_central_scenario_for_k1(self):
        paths = np.array([[0.0], [1.0], [2.0]])
        sel, probs = forward_selection(paths, 1)
        assert paths[sel[0], 0] == 1.0  # the L1 median
        assert probs[0] == pytest.approx(1.0)

    def test_validation(self):
        paths = np.zeros((3, 2))
        with pytest.raises(ValueError):
            forward_selection(paths, 0)
        with pytest.raises(ValueError):
            forward_selection(paths, 4)
        with pytest.raises(ValueError):
            forward_selection(paths, 2, probs=np.array([0.5, 0.4, 0.2]))

    @given(st.integers(0, 5000), st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 30))
        paths = rng.normal(size=(n, 3))
        sel, probs = forward_selection(paths, min(k, n))
        assert probs.sum() == pytest.approx(1.0)
        assert np.all(probs >= 0)


class TestFanTree:
    def test_structure(self):
        paths = np.array([[0.05, 0.06], [0.07, 0.08]])
        tree = fan_tree_from_paths(0.06, paths, np.array([0.4, 0.6]))
        assert tree.horizon == 3
        assert tree.num_scenarios == 2
        assert tree.stage_probabilities_sum_to_one()
        prices, probs = tree.scenario_prices()
        assert np.allclose(sorted(probs), [0.4, 0.6])

    def test_bad_probs_rejected(self):
        with pytest.raises(ValueError):
            fan_tree_from_paths(0.06, np.zeros((2, 2)), np.array([0.5, 0.6]))

    def test_single_scenario_chain(self):
        tree = fan_tree_from_paths(0.06, np.array([[0.05, 0.05, 0.05]]), np.array([1.0]))
        assert tree.num_nodes == 4
        assert tree.num_scenarios == 1


class TestReducedScenarioPolicy:
    def test_runs_and_is_dearer_than_oracle(self):
        rng = np.random.default_rng(3)
        vm = ec2_catalog()["c1.medium"]
        history = rng.normal(0.06, 0.004, 500).clip(0.04, 0.09)
        realized = rng.normal(0.06, 0.004, 8).clip(0.04, 0.09)
        demand = rng.uniform(0.2, 0.5, 8)
        base = EmpiricalDistribution(history)
        policy = ReducedScenarioPolicy(MeanBids(), lookahead=4, n_samples=24, n_keep=4)
        res = simulate_policy(
            policy, realized, demand, vm,
            base_distribution=base, price_history=history,
        )
        oracle = simulate_policy(
            OraclePolicy(realized), realized, demand, vm,
            base_distribution=base, price_history=history,
        )
        assert res.total_cost >= oracle.total_cost - 1e-9
        assert res.forced_topups == 0

    def test_requires_distribution(self):
        rng = np.random.default_rng(4)
        vm = ec2_catalog()["c1.medium"]
        realized = np.full(4, 0.06)
        demand = np.full(4, 0.4)
        policy = ReducedScenarioPolicy(MeanBids(), lookahead=3)
        with pytest.raises(ValueError):
            simulate_policy(policy, realized, demand, vm, price_history=realized)
