"""Facility-location reformulation: exact agreement with the natural DRRP
formulation and the Wagner-Whitin DP, plus integrality of its relaxation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp, solve_wagner_whitin
from repro.core.costs import CostSchedule
from repro.core.reformulation import build_facility_location_model, solve_drrp_facility_location
from repro.market import ec2_catalog
from repro.solver import SolverStatus
from repro.solver.scipy_backend import solve_lp_scipy


def make_instance(seed=0, horizon=12, vm="m1.large", eps=0.0):
    vmobj = ec2_catalog()[vm]
    return DRRPInstance(
        demand=NormalDemand().sample(horizon, seed),
        costs=on_demand_schedule(vmobj, horizon),
        initial_storage=eps,
        vm_name=vm,
    )


class TestAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_natural_formulation(self, seed):
        inst = make_instance(seed)
        fl = solve_drrp_facility_location(inst)
        nat = solve_drrp(inst)
        assert fl.total_cost == pytest.approx(nat.total_cost, abs=1e-6)

    def test_matches_with_initial_storage(self):
        inst = make_instance(4, eps=1.5)
        fl = solve_drrp_facility_location(inst)
        dp = solve_wagner_whitin(inst)
        assert fl.total_cost == pytest.approx(dp.total_cost, abs=1e-6)

    def test_plan_is_feasible(self):
        inst = make_instance(5)
        plan = solve_drrp_facility_location(inst)
        plan.validate(inst)

    def test_decomposition_sums(self):
        inst = make_instance(6)
        plan = solve_drrp_facility_location(inst)
        parts = (
            plan.compute_cost + plan.inventory_cost
            + plan.transfer_in_cost + plan.transfer_out_cost
        )
        assert parts == pytest.approx(plan.objective, abs=1e-6)

    def test_rejects_capacitated(self):
        vm = ec2_catalog()["c1.medium"]
        inst = DRRPInstance(
            demand=np.ones(4),
            costs=on_demand_schedule(vm, 4),
            bottleneck_rate=1.0,
            bottleneck_capacity=np.ones(4),
        )
        with pytest.raises(ValueError):
            solve_drrp_facility_location(inst)

    def test_zero_demand(self):
        vm = ec2_catalog()["c1.medium"]
        inst = DRRPInstance(demand=np.zeros(4), costs=on_demand_schedule(vm, 4))
        plan = solve_drrp_facility_location(inst)
        assert plan.total_cost == pytest.approx(0.0)


class TestIntegralRelaxation:
    """The Krarup-Bilde reformulation's LP relaxation is integral for
    uncapacitated lot-sizing: solving the *LP* already yields binary chi."""

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_lp_relaxation_is_integral(self, seed):
        rng = np.random.default_rng(seed)
        T = int(rng.integers(3, 10))
        costs = CostSchedule(
            compute=rng.uniform(0.05, 1.0, T),
            storage=np.zeros(T),
            io=rng.uniform(0.01, 0.4, T),
            transfer_in=rng.uniform(0.0, 0.2, T),
            transfer_out=np.full(T, 0.17),
        )
        inst = DRRPInstance(demand=rng.uniform(0.0, 2.0, T), costs=costs)
        model, x, chi = build_facility_location_model(inst)
        compiled = model.compile()
        relaxed = solve_lp_scipy(compiled)
        assert relaxed.status is SolverStatus.OPTIMAL
        chi_vals = np.array([relaxed.x[v.index] for v in chi])
        # only count chi columns that matter (appear in some forcing row)
        frac = np.abs(chi_vals - np.round(chi_vals))
        assert np.all(frac < 1e-6)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_reformulation_matches_dp(self, seed):
        rng = np.random.default_rng(seed)
        T = int(rng.integers(2, 10))
        costs = CostSchedule(
            compute=rng.uniform(0.05, 1.0, T),
            storage=np.zeros(T),
            io=rng.uniform(0.01, 0.4, T),
            transfer_in=rng.uniform(0.0, 0.2, T),
            transfer_out=np.full(T, 0.17),
        )
        inst = DRRPInstance(
            demand=rng.uniform(0.0, 2.0, T),
            costs=costs,
            initial_storage=float(rng.choice([0.0, 0.7])),
        )
        fl = solve_drrp_facility_location(inst)
        dp = solve_wagner_whitin(inst)
        assert fl.total_cost == pytest.approx(dp.total_cost, abs=1e-6)


class TestPureSimplexViability:
    def test_simplex_backend_solves_24h_at_root(self):
        """The reformulation makes 24 h instances tractable for the pure
        backend — the point of the ablation in DESIGN.md."""
        inst = make_instance(7, horizon=24)
        plan = solve_drrp_facility_location(inst, backend="simplex")
        ref = solve_drrp(inst, backend="scipy")
        assert plan.total_cost == pytest.approx(ref.total_cost, abs=1e-5)
        # integral relaxation => essentially no branching
        assert plan.extra["nodes"] <= 3
