"""Rolling-horizon simulator and policy tests."""

import numpy as np
import pytest

from repro.core import (
    DeterministicPolicy,
    NoPlanPolicy,
    OnDemandPolicy,
    OraclePolicy,
    Planner,
    StochasticPolicy,
    simulate_policy,
)
from repro.market import FixedBids, MeanBids, ec2_catalog
from repro.stats import EmpiricalDistribution


VM = ec2_catalog()["c1.medium"]


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(0)
    history = rng.normal(0.06, 0.004, 1000).clip(0.04, 0.09)
    realized = rng.normal(0.06, 0.004, 12).clip(0.04, 0.09)
    demand = rng.uniform(0.2, 0.6, 12)
    return history, realized, demand


class TestSimulatorInvariants:
    def test_demand_always_satisfied(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            NoPlanPolicy(), realized, demand, VM, price_history=history
        )
        # inventory never negative, no forced top-ups needed for no-plan
        assert np.all(res.inventory >= -1e-9)
        assert res.forced_topups == 0

    def test_cost_decomposition_sums(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            NoPlanPolicy(), realized, demand, VM, price_history=history
        )
        total = (
            res.compute_cost
            + res.inventory_cost
            + res.transfer_in_cost
            + res.transfer_out_cost
        )
        assert total == pytest.approx(res.total_cost)

    def test_transfer_out_is_demand_based(self, setting):
        history, realized, demand = setting
        res = simulate_policy(NoPlanPolicy(), realized, demand, VM, price_history=history)
        assert res.transfer_out_cost == pytest.approx(0.17 * demand.sum())

    def test_missing_prices_rejected(self, setting):
        history, realized, demand = setting
        with pytest.raises(ValueError):
            simulate_policy(NoPlanPolicy(), realized[:5], demand, VM)


class TestNoPlanPolicy:
    def test_on_demand_fallback_without_strategy(self, setting):
        history, realized, demand = setting
        res = simulate_policy(NoPlanPolicy(), realized, demand, VM, price_history=history)
        # pays lambda every slot with demand
        assert res.compute_cost == pytest.approx(VM.on_demand_price * res.rentals)

    def test_spot_bidding_variant(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            NoPlanPolicy(FixedBids(value=1.0)), realized, demand, VM, price_history=history
        )
        # high bid always wins: pays spot prices
        assert res.compute_cost == pytest.approx(realized.sum(), rel=1e-9)
        assert res.out_of_bid_events == 0


class TestOraclePolicy:
    def test_oracle_never_out_of_bid(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            OraclePolicy(realized), realized, demand, VM, price_history=history
        )
        assert res.out_of_bid_events == 0
        assert res.forced_topups == 0

    def test_oracle_is_cheapest(self, setting):
        history, realized, demand = setting
        base = EmpiricalDistribution(history)
        oracle = simulate_policy(
            OraclePolicy(realized), realized, demand, VM,
            base_distribution=base, price_history=history,
        )
        for policy in (
            NoPlanPolicy(),
            OnDemandPolicy(lookahead=6),
            DeterministicPolicy(MeanBids(), lookahead=6),
            StochasticPolicy(MeanBids(), lookahead=4, max_branching=2),
        ):
            res = simulate_policy(
                policy, realized, demand, VM,
                base_distribution=base, price_history=history,
            )
            assert res.total_cost >= oracle.total_cost - 1e-6, policy.name

    def test_oracle_needs_full_coverage(self, setting):
        history, realized, demand = setting
        with pytest.raises(ValueError):
            simulate_policy(
                OraclePolicy(realized[:5]), realized, demand, VM, price_history=history
            )


class TestPolicies:
    def test_deterministic_policy_out_of_bid_pays_lambda(self):
        history = np.full(200, 0.06)
        realized = np.full(6, 0.10)  # spot always above the mean bid
        demand = np.full(6, 0.5)
        res = simulate_policy(
            DeterministicPolicy(MeanBids(), lookahead=3),
            realized, demand, VM, price_history=history,
        )
        assert res.out_of_bid_events == res.rentals > 0
        assert res.paid_prices[res.paid_prices > 0].max() == VM.on_demand_price

    def test_stochastic_policy_requires_distribution(self, setting):
        history, realized, demand = setting
        with pytest.raises(ValueError):
            simulate_policy(
                StochasticPolicy(MeanBids(), lookahead=3),
                realized, demand, VM, price_history=history,
            )

    def test_policies_have_names(self):
        assert DeterministicPolicy(MeanBids()).name == "det-exp-mean"
        assert StochasticPolicy(MeanBids()).name == "sto-exp-mean"
        assert OraclePolicy(np.zeros(1)).name == "oracle"


class TestPlannerFacade:
    def test_plan_deterministic_pair(self):
        pl = Planner("m1.large")
        drrp, noplan = pl.plan_deterministic(horizon=12, seed=1)
        assert drrp.total_cost <= noplan.total_cost

    def test_plan_stochastic_runs(self, setting):
        history, _, _ = setting
        pl = Planner("c1.medium")
        plan = pl.plan_stochastic(history, bids=np.full(4, history.mean()), seed=2)
        assert plan.expected_cost > 0
        assert plan.tree.horizon == 4

    def test_evaluate_policies_overpay_ordering(self, setting):
        history, realized, demand = setting
        pl = Planner("c1.medium")
        cmp = pl.evaluate_policies(realized, demand, history, lookahead=4)
        over = cmp.overpay_percentages()
        assert over["oracle"] == pytest.approx(0.0)
        assert all(v >= -1e-9 for v in over.values())
        # paper's qualitative finding: stochastic beats deterministic
        assert over["sto-exp-mean"] <= over["det-exp-mean"] + 1e-9

    def test_unknown_vm_rejected(self):
        with pytest.raises(KeyError):
            Planner("t2.micro")
