"""Rolling-horizon simulator and policy tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DeterministicPolicy,
    NoPlanPolicy,
    OnDemandPolicy,
    OraclePolicy,
    Planner,
    StochasticPolicy,
    simulate_policy,
)
from repro.core.rolling import SimulationContext
from repro.market import BidStrategy, CostRates, FixedBids, MeanBids, ec2_catalog
from repro.stats import EmpiricalDistribution


VM = ec2_catalog()["c1.medium"]


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(0)
    history = rng.normal(0.06, 0.004, 1000).clip(0.04, 0.09)
    realized = rng.normal(0.06, 0.004, 12).clip(0.04, 0.09)
    demand = rng.uniform(0.2, 0.6, 12)
    return history, realized, demand


class TestSimulatorInvariants:
    def test_demand_always_satisfied(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            NoPlanPolicy(), realized, demand, VM, price_history=history
        )
        # inventory never negative, no forced top-ups needed for no-plan
        assert np.all(res.inventory >= -1e-9)
        assert res.forced_topups == 0

    def test_cost_decomposition_sums(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            NoPlanPolicy(), realized, demand, VM, price_history=history
        )
        total = (
            res.compute_cost
            + res.inventory_cost
            + res.transfer_in_cost
            + res.transfer_out_cost
        )
        assert total == pytest.approx(res.total_cost)

    def test_transfer_out_is_demand_based(self, setting):
        history, realized, demand = setting
        res = simulate_policy(NoPlanPolicy(), realized, demand, VM, price_history=history)
        assert res.transfer_out_cost == pytest.approx(0.17 * demand.sum())

    def test_missing_prices_rejected(self, setting):
        history, realized, demand = setting
        with pytest.raises(ValueError):
            simulate_policy(NoPlanPolicy(), realized[:5], demand, VM)


class TestNoPlanPolicy:
    def test_on_demand_fallback_without_strategy(self, setting):
        history, realized, demand = setting
        res = simulate_policy(NoPlanPolicy(), realized, demand, VM, price_history=history)
        # pays lambda every slot with demand
        assert res.compute_cost == pytest.approx(VM.on_demand_price * res.rentals)

    def test_spot_bidding_variant(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            NoPlanPolicy(FixedBids(value=1.0)), realized, demand, VM, price_history=history
        )
        # high bid always wins: pays spot prices
        assert res.compute_cost == pytest.approx(realized.sum(), rel=1e-9)
        assert res.out_of_bid_events == 0


class TestOraclePolicy:
    def test_oracle_never_out_of_bid(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            OraclePolicy(realized), realized, demand, VM, price_history=history
        )
        assert res.out_of_bid_events == 0
        assert res.forced_topups == 0

    def test_oracle_is_cheapest(self, setting):
        history, realized, demand = setting
        base = EmpiricalDistribution(history)
        oracle = simulate_policy(
            OraclePolicy(realized), realized, demand, VM,
            base_distribution=base, price_history=history,
        )
        for policy in (
            NoPlanPolicy(),
            OnDemandPolicy(lookahead=6),
            DeterministicPolicy(MeanBids(), lookahead=6),
            StochasticPolicy(MeanBids(), lookahead=4, max_branching=2),
        ):
            res = simulate_policy(
                policy, realized, demand, VM,
                base_distribution=base, price_history=history,
            )
            assert res.total_cost >= oracle.total_cost - 1e-6, policy.name

    def test_oracle_needs_full_coverage(self, setting):
        history, realized, demand = setting
        with pytest.raises(ValueError):
            simulate_policy(
                OraclePolicy(realized[:5]), realized, demand, VM, price_history=history
            )


class TestPolicies:
    def test_deterministic_policy_out_of_bid_pays_lambda(self):
        history = np.full(200, 0.06)
        realized = np.full(6, 0.10)  # spot always above the mean bid
        demand = np.full(6, 0.5)
        res = simulate_policy(
            DeterministicPolicy(MeanBids(), lookahead=3),
            realized, demand, VM, price_history=history,
        )
        assert res.out_of_bid_events == res.rentals > 0
        assert res.paid_prices[res.paid_prices > 0].max() == VM.on_demand_price

    def test_stochastic_policy_requires_distribution(self, setting):
        history, realized, demand = setting
        with pytest.raises(ValueError):
            simulate_policy(
                StochasticPolicy(MeanBids(), lookahead=3),
                realized, demand, VM, price_history=history,
            )

    def test_policies_have_names(self):
        assert DeterministicPolicy(MeanBids()).name == "det-exp-mean"
        assert StochasticPolicy(MeanBids()).name == "sto-exp-mean"
        assert OraclePolicy(np.zeros(1)).name == "oracle"


class _RecordingBids(BidStrategy):
    """Constant bids that record every price history they were shown."""

    name = "recording"

    def __init__(self):
        self.seen = []

    def bids(self, history, length, t=0):
        self.seen.append((t, np.array(history, copy=True)))
        return np.full(length, 10.0)


class TestContextVisibility:
    def _ctx(self):
        return SimulationContext(
            vm=VM, rates=CostRates(), demand=np.ones(3), base_distribution=None
        )

    def test_current_spot_on_empty_history_raises(self):
        # Regression: used to IndexError on spot_history[-1] inside reset().
        ctx = self._ctx()
        with pytest.raises(ValueError, match="no spot price"):
            ctx.current_spot

    def test_price_view_on_empty_history_raises(self):
        with pytest.raises(ValueError, match="no spot price"):
            self._ctx().price_view()

    def test_price_view_is_full_history(self):
        ctx = self._ctx()
        ctx.spot_history = np.array([0.05, 0.06, 0.07])
        np.testing.assert_array_equal(ctx.price_view(), ctx.spot_history)
        assert ctx.current_spot == 0.07

    @given(
        h=st.integers(1, 8),
        prefix_len=st.integers(0, 16),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_policies_see_exactly_published_prices(self, h, prefix_len, seed):
        """Property: every bids() call sees prefix + realized[: t+1], never
        a slot beyond the current one and never a truncated view."""
        rng = np.random.default_rng(seed)
        prefix = rng.uniform(0.04, 0.09, prefix_len)
        realized = rng.uniform(0.04, 0.09, h)
        demand = rng.uniform(0.1, 0.5, h)
        strat = _RecordingBids()
        simulate_policy(
            NoPlanPolicy(strat), realized, demand, VM, price_history=prefix
        )
        assert [t for t, _ in strat.seen] == list(range(h))
        for t, seen in strat.seen:
            assert seen.shape[0] == prefix_len + t + 1
            np.testing.assert_array_equal(seen[:prefix_len], prefix)
            np.testing.assert_array_equal(seen[prefix_len:], realized[: t + 1])


class TestOracleReconciliation:
    def test_decide_restores_planned_inventory(self, setting):
        history, realized, demand = setting
        ctx = SimulationContext(
            vm=VM, rates=CostRates(), demand=demand, base_distribution=None
        )
        pol = OraclePolicy(realized)
        pol.reset(ctx)
        plan = pol._plan
        ctx.t = 1
        ctx.spot_history = np.concatenate([history, realized[:2]])
        planned_entry = float(pol._entry_inventory[1])
        # Simulate divergence: the realized inventory fell below the plan's.
        ctx.inventory = max(planned_entry - 0.05, 0.0)
        d = pol.decide(ctx)
        deficit = planned_entry - ctx.inventory
        assert d.generate == pytest.approx(max(float(plan.alpha[1]) + deficit, 0.0))
        # End-of-slot inventory lands back on the planned beta[1].
        assert ctx.inventory + d.generate - float(demand[1]) == pytest.approx(
            float(plan.beta[1]), abs=1e-9
        )

    def test_oracle_survives_interruption_losses(self, setting):
        history, realized, demand = setting
        res = simulate_policy(
            OraclePolicy(realized), realized, demand, VM,
            price_history=history, interruption_loss=0.5,
        )
        assert res.forced_topups == 0
        assert np.all(res.inventory >= -1e-9)


class TestPlannerFacade:
    def test_plan_deterministic_pair(self):
        pl = Planner("m1.large")
        drrp, noplan = pl.plan_deterministic(horizon=12, seed=1)
        assert drrp.total_cost <= noplan.total_cost

    def test_plan_stochastic_runs(self, setting):
        history, _, _ = setting
        pl = Planner("c1.medium")
        plan = pl.plan_stochastic(history, bids=np.full(4, history.mean()), seed=2)
        assert plan.expected_cost > 0
        assert plan.tree.horizon == 4

    def test_evaluate_policies_overpay_ordering(self, setting):
        history, realized, demand = setting
        pl = Planner("c1.medium")
        cmp = pl.evaluate_policies(realized, demand, history, lookahead=4)
        over = cmp.overpay_percentages()
        assert over["oracle"] == pytest.approx(0.0)
        assert all(v >= -1e-9 for v in over.values())
        # paper's qualitative finding: stochastic beats deterministic
        assert over["sto-exp-mean"] <= over["det-exp-mean"] + 1e-9

    def test_unknown_vm_rejected(self):
        with pytest.raises(KeyError):
            Planner("t2.micro")
