"""SRRP tests: degenerate-tree equivalence with DRRP, non-anticipativity,
recourse behaviour, and expected-cost consistency."""

import numpy as np
import pytest

from repro.core import (
    DRRPInstance,
    SRRPInstance,
    build_tree,
    on_demand_schedule,
    solve_drrp,
    solve_srrp,
    spot_schedule,
)
from repro.market import ec2_catalog


VM = ec2_catalog()["c1.medium"]


def chain_tree(prices):
    """Degenerate tree: one scenario with the given price path."""
    dists = [(np.array([p]), np.array([1.0])) for p in prices[1:]]
    return build_tree(prices[0], dists)


def branched_tree(root, low, high, p_low, depth):
    dists = [(np.array([low, high]), np.array([p_low, 1 - p_low]))] * depth
    return build_tree(root, dists)


class TestDegenerateEquivalence:
    """SRRP on a single-scenario tree == DRRP with that price path."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_drrp(self, seed):
        rng = np.random.default_rng(seed)
        T = 6
        demand = rng.uniform(0.1, 0.8, T)
        prices = rng.uniform(0.04, 0.08, T)
        srrp_inst = SRRPInstance(
            demand=demand,
            costs=on_demand_schedule(VM, T),
            tree=chain_tree(prices),
        )
        drrp_inst = DRRPInstance(demand=demand, costs=spot_schedule(VM, prices))
        s = solve_srrp(srrp_inst)
        d = solve_drrp(drrp_inst)
        assert s.expected_cost == pytest.approx(d.total_cost, abs=1e-6)
        assert np.allclose(s.chi, d.chi)


class TestInstanceValidation:
    def test_demand_must_span_horizon(self):
        tree = chain_tree([0.06, 0.06])
        with pytest.raises(ValueError):
            SRRPInstance(demand=np.ones(5), costs=on_demand_schedule(VM, 5), tree=tree)

    def test_negative_demand_rejected(self):
        tree = chain_tree([0.06, 0.06])
        with pytest.raises(ValueError):
            SRRPInstance(
                demand=np.array([1.0, -1.0]),
                costs=on_demand_schedule(VM, 2),
                tree=tree,
            )


class TestRecourseStructure:
    def test_plan_satisfies_tree_constraints(self):
        tree = branched_tree(0.06, 0.05, 0.2, 0.7, 4)
        inst = SRRPInstance(
            demand=np.full(5, 0.4), costs=on_demand_schedule(VM, 5), tree=tree
        )
        plan = solve_srrp(inst)
        plan.validate(inst)

    def test_nonanticipativity_by_construction(self):
        """Scenarios sharing a prefix share the decisions on that prefix."""
        tree = branched_tree(0.06, 0.05, 0.2, 0.5, 3)
        inst = SRRPInstance(
            demand=np.full(4, 0.4), costs=on_demand_schedule(VM, 4), tree=tree
        )
        plan = solve_srrp(inst)
        leaves = tree.leaves()
        # group scenario decision paths by their depth-1 ancestor
        by_branch = {}
        for leaf in leaves:
            path = tree.path(leaf.index)
            by_branch.setdefault(path[1].index, []).append(
                plan.decisions_for_scenario(leaf.index)
            )
        for branch, decisions in by_branch.items():
            firsts = {(round(d["alpha"][0], 9), round(d["alpha"][1], 9)) for d in decisions}
            assert len(firsts) == 1  # identical through the shared prefix

    def test_recourse_differs_across_branches(self):
        """With a huge price gap, cheap and expensive branches plan differently."""
        tree = branched_tree(0.06, 0.05, 0.2, 0.5, 3)
        inst = SRRPInstance(
            demand=np.full(4, 0.4), costs=on_demand_schedule(VM, 4), tree=tree
        )
        plan = solve_srrp(inst)
        depth1 = [n for n in tree.nodes if n.depth == 1]
        rentals = {n.price: plan.chi[n.index] for n in depth1}
        # the cheap state should rent at least as often as the expensive one
        assert rentals[0.05] >= rentals[0.2]

    def test_expected_cost_matches_scenario_average(self):
        tree = branched_tree(0.06, 0.05, 0.1, 0.6, 3)
        demand = np.array([0.4, 0.3, 0.5, 0.2])
        inst = SRRPInstance(demand=demand, costs=on_demand_schedule(VM, 4), tree=tree)
        plan = solve_srrp(inst)
        # recompute (13) by walking scenarios
        total = 0.0
        c = inst.costs
        for leaf in tree.leaves():
            d = plan.decisions_for_scenario(leaf.index)
            path = tree.path(leaf.index)
            cost = 0.0
            for k, node in enumerate(path):
                t = node.depth
                cost += (
                    c.transfer_in[t] * inst.phi * d["alpha"][k]
                    + c.holding[t] * d["beta"][k]
                    + c.transfer_out[t] * demand[t]
                    + node.price * d["chi"][k]
                )
            total += leaf.abs_prob * cost
        assert total == pytest.approx(plan.expected_cost, abs=1e-6)


class TestStochasticValue:
    def test_srrp_hedges_against_price_spike_risk(self):
        """When tomorrow may be expensive, SRRP pre-builds more at the root
        than deterministic planning at the mean price would."""
        demand = np.full(4, 0.5)
        lam = VM.on_demand_price
        p_spike = 0.5
        tree = branched_tree(0.06, 0.06, lam, 1 - p_spike, 3)
        srrp = solve_srrp(
            SRRPInstance(demand=demand, costs=on_demand_schedule(VM, 4), tree=tree)
        )
        mean_price = (1 - p_spike) * 0.06 + p_spike * lam
        det = solve_drrp(
            DRRPInstance(
                demand=demand,
                costs=spot_schedule(VM, np.array([0.06] + [mean_price] * 3)),
            )
        )
        assert srrp.first_alpha >= det.alpha[0] - 1e-9

    def test_expected_cost_below_worst_case(self):
        tree = branched_tree(0.06, 0.05, 0.2, 0.7, 3)
        demand = np.full(4, 0.4)
        inst = SRRPInstance(demand=demand, costs=on_demand_schedule(VM, 4), tree=tree)
        plan = solve_srrp(inst)
        worst = solve_drrp(
            DRRPInstance(demand=demand, costs=spot_schedule(VM, np.array([0.06, 0.2, 0.2, 0.2])))
        )
        best = solve_drrp(
            DRRPInstance(demand=demand, costs=spot_schedule(VM, np.array([0.06, 0.05, 0.05, 0.05])))
        )
        assert best.total_cost - 1e-9 <= plan.expected_cost <= worst.total_cost + 1e-9

    def test_backends_agree_on_small_tree(self):
        tree = branched_tree(0.06, 0.05, 0.2, 0.5, 2)
        inst = SRRPInstance(
            demand=np.full(3, 0.4), costs=on_demand_schedule(VM, 3), tree=tree
        )
        a = solve_srrp(inst, backend="scipy")
        b = solve_srrp(inst, backend="bb-scipy")
        c = solve_srrp(inst, backend="simplex")
        assert a.expected_cost == pytest.approx(b.expected_cost, abs=1e-5)
        assert a.expected_cost == pytest.approx(c.expected_cost, abs=1e-5)
