"""Multi-class joint planning, mean-CVaR SRRP, and shadow-price analysis."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    DRRPInstance,
    MultiClassInstance,
    NormalDemand,
    SRRPInstance,
    build_tree,
    demand_shadow_prices,
    on_demand_schedule,
    solve_drrp,
    solve_multiclass,
    solve_srrp,
    solve_srrp_cvar,
)
from repro.market import PLANNING_CLASSES, ec2_catalog


def class_instances(horizon=12, seed=0):
    catalog = ec2_catalog()
    return tuple(
        DRRPInstance(
            demand=NormalDemand().sample(horizon, seed + i),
            costs=on_demand_schedule(catalog[name], horizon),
            vm_name=name,
        )
        for i, name in enumerate(PLANNING_CLASSES)
    )


class TestMultiClass:
    def test_separable_equals_per_class_sum(self):
        insts = class_instances()
        joint = solve_multiclass(MultiClassInstance(insts))
        per = sum(solve_drrp(i).total_cost for i in insts)
        assert joint.total_cost == pytest.approx(per, abs=1e-6)
        assert joint.extra["path"] == "separable"

    def test_uncoupled_joint_model_agrees_too(self):
        # force the joint MILP path with a non-binding budget
        insts = class_instances(horizon=8)
        loose = solve_multiclass(MultiClassInstance(insts, storage_budget=1e6))
        per = sum(solve_drrp(i).total_cost for i in insts)
        assert loose.extra["path"] == "joint"
        assert loose.total_cost == pytest.approx(per, abs=1e-5)

    def test_storage_budget_binds_and_costs(self):
        insts = class_instances(horizon=10)
        free = solve_multiclass(MultiClassInstance(insts))
        tight = solve_multiclass(MultiClassInstance(insts, storage_budget=0.5))
        assert tight.total_cost >= free.total_cost - 1e-9
        assert tight.peak_total_storage() <= 0.5 + 1e-6

    def test_zero_storage_budget_forces_noplan_like(self):
        insts = class_instances(horizon=6)
        plan = solve_multiclass(MultiClassInstance(insts, storage_budget=0.0))
        for p in plan.plans.values():
            assert np.allclose(p.beta, 0.0, atol=1e-6)

    def test_rental_budget_limits_concurrent_rentals(self):
        # heavy demand keeps c1.medium renting every slot while m1.xlarge
        # rents in bursts; uncapped they co-rent ($1.0/slot), and a $0.9 cap
        # forces the planner to desynchronize them
        catalog = ec2_catalog()
        heavy_c1 = np.full(8, 1.5)
        heavy_xl = np.full(8, 1.5)
        heavy_xl[0] = 0.0  # xlarge idles at t=0 so the cap stays feasible
        insts = (
            DRRPInstance(
                demand=heavy_c1, costs=on_demand_schedule(catalog["c1.medium"], 8),
                vm_name="c1.medium",
            ),
            DRRPInstance(
                demand=heavy_xl, costs=on_demand_schedule(catalog["m1.xlarge"], 8),
                vm_name="m1.xlarge",
            ),
        )
        free = solve_multiclass(MultiClassInstance(insts))
        free_spend = [
            sum(i.costs.compute[t] * free.plans[i.vm_name].chi[t] for i in insts)
            for t in range(8)
        ]
        assert max(free_spend) > 0.9  # the cap will bind somewhere
        capped = solve_multiclass(MultiClassInstance(insts, rental_budget=0.9))
        for t in range(8):
            spend = sum(
                inst.costs.compute[t] * capped.plans[inst.vm_name].chi[t]
                for inst in insts
            )
            assert spend <= 0.9 + 1e-6
        assert capped.total_cost >= free.total_cost - 1e-9

    def test_unsatisfiable_rental_budget_is_infeasible(self):
        insts = class_instances(horizon=4)
        # below m1.xlarge's hourly price: its demand can never be generated
        with pytest.raises(RuntimeError, match="infeasible"):
            solve_multiclass(MultiClassInstance(insts, rental_budget=0.7))

    def test_validation(self):
        insts = class_instances()
        with pytest.raises(ValueError):
            MultiClassInstance(())
        with pytest.raises(ValueError):
            MultiClassInstance(insts, storage_budget=-1.0)
        with pytest.raises(ValueError):
            MultiClassInstance(insts, rental_budget=0.0)
        short = class_instances(horizon=6)
        with pytest.raises(ValueError):
            MultiClassInstance(insts + short[:1])


def cvar_instance(io=0.1, spike=0.5, p_spike=0.2, depth=3):
    vm = ec2_catalog()["c1.medium"]
    costs = replace(on_demand_schedule(vm, depth + 1), io=np.full(depth + 1, io))
    dists = [(np.array([0.05, spike]), np.array([1 - p_spike, p_spike]))] * depth
    tree = build_tree(0.06, dists)
    return SRRPInstance(demand=np.full(depth + 1, 0.4), costs=costs, tree=tree)


class TestCVaR:
    def test_risk_neutral_recovers_srrp(self):
        inst = cvar_instance()
        neutral = solve_srrp_cvar(inst, risk_weight=0.0)
        base = solve_srrp(inst)
        assert neutral.expected_cost == pytest.approx(base.expected_cost, abs=1e-6)

    def test_averse_trades_mean_for_tail(self):
        inst = cvar_instance()
        neutral = solve_srrp_cvar(inst, risk_weight=0.0, confidence=0.8)
        averse = solve_srrp_cvar(inst, risk_weight=1.0, confidence=0.8)
        assert averse.cvar <= neutral.cvar + 1e-6
        assert averse.expected_cost >= neutral.expected_cost - 1e-6
        assert averse.cost_std() <= neutral.cost_std() + 1e-9

    def test_cvar_at_least_expected(self):
        inst = cvar_instance()
        plan = solve_srrp_cvar(inst, risk_weight=0.5, confidence=0.9)
        assert plan.cvar >= plan.expected_cost - 1e-6

    def test_scenario_costs_consistent(self):
        inst = cvar_instance()
        plan = solve_srrp_cvar(inst, risk_weight=0.3)
        assert plan.scenario_probs.sum() == pytest.approx(1.0)
        assert float(plan.scenario_probs @ plan.scenario_costs) == pytest.approx(
            plan.expected_cost, abs=1e-9
        )

    def test_parameter_validation(self):
        inst = cvar_instance()
        with pytest.raises(ValueError):
            solve_srrp_cvar(inst, risk_weight=1.5)
        with pytest.raises(ValueError):
            solve_srrp_cvar(inst, confidence=1.0)

    def test_risk_weight_sweep_monotone_cvar(self):
        inst = cvar_instance(io=0.15, p_spike=0.15)
        cvars = [
            solve_srrp_cvar(inst, risk_weight=lam, confidence=0.8).cvar
            for lam in (0.0, 0.5, 1.0)
        ]
        assert cvars[2] <= cvars[1] + 1e-6 <= cvars[0] + 2e-6


class TestShadowPrices:
    def test_generation_slots_price_at_local_cost(self):
        vm = ec2_catalog()["m1.large"]
        inst = DRRPInstance(
            demand=np.full(6, 0.5), costs=on_demand_schedule(vm, 6), vm_name=vm.name
        )
        report = demand_shadow_prices(inst)
        plan = report.plan
        # in a slot that generates fresh data, the marginal GB costs
        # transfer-out + transfer-in*phi (no extra rental: chi already paid)
        gen_slots = [t for t in range(6) if plan.alpha[t] > 1e-6]
        t0 = gen_slots[0]
        expected = 0.17 + 0.1 * 0.5
        assert report.marginal_cost[t0] == pytest.approx(expected, abs=1e-6)

    def test_two_slot_instance_exact_duals(self):
        # expensive compute: both GB generated in slot 0, slot 1 served from
        # inventory.  Duals are then unique: D(0) marginal = tin*phi + tout,
        # D(1) marginal adds one slot of holding.
        vm = ec2_catalog()["m1.xlarge"]
        inst = DRRPInstance(
            demand=np.array([1.0, 1.0]), costs=on_demand_schedule(vm, 2), vm_name=vm.name
        )
        report = demand_shadow_prices(inst)
        assert np.allclose(report.plan.chi, [1.0, 0.0])
        holding = float(inst.costs.holding[0])
        assert report.marginal_cost[0] == pytest.approx(0.17 + 0.05, abs=1e-6)
        assert report.marginal_cost[1] == pytest.approx(0.17 + 0.05 + holding, abs=1e-6)

    def test_marginals_bounded_below_by_direct_cost(self):
        # any valid dual prices a marginal GB at >= transfer-out + gen cost
        inst = DRRPInstance.example(horizon=12)
        report = demand_shadow_prices(inst)
        assert np.all(report.marginal_cost >= 0.17 + 0.05 - 1e-6)

    def test_reuses_given_plan(self):
        inst = DRRPInstance.example(horizon=8)
        plan = solve_drrp(inst)
        report = demand_shadow_prices(inst, plan=plan)
        assert report.plan is plan
        assert report.marginal_cost.shape == (8,)

    def test_most_expensive_slot_index(self):
        inst = DRRPInstance.example(horizon=8)
        report = demand_shadow_prices(inst)
        t = report.most_expensive_slot()
        assert report.marginal_cost[t] == report.marginal_cost.max()
