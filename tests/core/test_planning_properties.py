"""Cross-cutting planning invariants, property-based.

These are economics-level laws any correct planner must satisfy — they
hold regardless of solver backend, demand pattern, or cost schedule, so
hypothesis hammers them with random instances:

* monotonicity in demand: serving more never costs less;
* monotonicity in prices: raising any cost coefficient never lowers cost;
* positive homogeneity: scaling all costs scales the optimum;
* baseline sandwich: DRRP <= no-plan, and WW == DRRP;
* SRRP bounded by its best/worst deterministic scenario;
* interruption losses never reduce realized cost.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DRRPInstance,
    NoPlanPolicy,
    SRRPInstance,
    build_tree,
    on_demand_schedule,
    simulate_policy,
    solve_drrp,
    solve_noplan,
    solve_srrp,
    solve_wagner_whitin,
    spot_schedule,
)
from repro.core.costs import CostSchedule
from repro.market import FixedBids, ec2_catalog


@st.composite
def random_instance(draw):
    seed = draw(st.integers(0, 100_000))
    rng = np.random.default_rng(seed)
    T = int(rng.integers(2, 14))
    costs = CostSchedule(
        compute=rng.uniform(0.05, 1.0, T),
        storage=rng.uniform(0.0, 0.01, T),
        io=rng.uniform(0.01, 0.4, T),
        transfer_in=rng.uniform(0.0, 0.2, T),
        transfer_out=rng.uniform(0.0, 0.3, T),
    )
    demand = rng.uniform(0.0, 2.0, T)
    return DRRPInstance(demand=demand, costs=costs), rng


class TestDeterministicLaws:
    @given(random_instance())
    @settings(max_examples=25, deadline=None)
    def test_more_demand_never_cheaper(self, data):
        inst, rng = data
        base = solve_wagner_whitin(inst).total_cost
        t = int(rng.integers(0, inst.horizon))
        bumped_demand = inst.demand.copy()
        bumped_demand[t] += 0.5
        bumped = DRRPInstance(demand=bumped_demand, costs=inst.costs)
        assert solve_wagner_whitin(bumped).total_cost >= base - 1e-9

    @given(random_instance())
    @settings(max_examples=25, deadline=None)
    def test_higher_prices_never_cheaper(self, data):
        inst, rng = data
        base = solve_wagner_whitin(inst).total_cost
        field = ["compute", "io", "transfer_in", "transfer_out"][int(rng.integers(0, 4))]
        costs = replace(inst.costs, **{field: getattr(inst.costs, field) + 0.1})
        bumped = DRRPInstance(demand=inst.demand, costs=costs)
        assert solve_wagner_whitin(bumped).total_cost >= base - 1e-9

    @given(random_instance(), st.floats(0.1, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_positive_homogeneity(self, data, k):
        inst, _ = data
        base = solve_wagner_whitin(inst).total_cost
        costs = CostSchedule(
            compute=inst.costs.compute * k,
            storage=inst.costs.storage * k,
            io=inst.costs.io * k,
            transfer_in=inst.costs.transfer_in * k,
            transfer_out=inst.costs.transfer_out * k,
        )
        scaled = DRRPInstance(demand=inst.demand, costs=costs)
        assert solve_wagner_whitin(scaled).total_cost == pytest.approx(k * base, rel=1e-9)

    @given(random_instance())
    @settings(max_examples=20, deadline=None)
    def test_baseline_sandwich(self, data):
        inst, _ = data
        drrp = solve_drrp(inst, backend="scipy").total_cost
        ww = solve_wagner_whitin(inst).total_cost
        noplan = solve_noplan(inst).total_cost
        assert ww == pytest.approx(drrp, abs=1e-6)
        assert drrp <= noplan + 1e-9

    @given(random_instance())
    @settings(max_examples=20, deadline=None)
    def test_free_initial_storage_never_hurts(self, data):
        # Only storage that can be consumed immediately is unambiguously
        # free: the balance equation has no disposal, so a seed exceeding
        # first-slot demand forces held inventory (and holding cost) — the
        # MILP optimum genuinely increases in that case.
        inst, _ = data
        base = solve_wagner_whitin(inst).total_cost
        eps = min(0.8, float(inst.demand[0]))
        seeded = DRRPInstance(
            demand=inst.demand, costs=inst.costs, initial_storage=eps
        )
        assert solve_wagner_whitin(seeded).total_cost <= base + 1e-9


@st.composite
def random_tree_instance(draw):
    seed = draw(st.integers(0, 100_000))
    rng = np.random.default_rng(seed)
    depth = int(rng.integers(1, 4))
    low = float(rng.uniform(0.03, 0.08))
    high = float(rng.uniform(0.1, 0.4))
    p_low = float(rng.uniform(0.1, 0.9))
    dists = [(np.array([low, high]), np.array([p_low, 1 - p_low]))] * depth
    tree = build_tree(float(rng.uniform(0.04, 0.1)), dists)
    demand = rng.uniform(0.05, 1.0, depth + 1)
    vm = ec2_catalog()["c1.medium"]
    inst = SRRPInstance(demand=demand, costs=on_demand_schedule(vm, depth + 1), tree=tree)
    return inst, low, high


class TestStochasticLaws:
    @given(random_tree_instance())
    @settings(max_examples=15, deadline=None)
    def test_srrp_between_extreme_scenarios(self, data):
        inst, low, high = data
        plan = solve_srrp(inst, backend="scipy")
        root = inst.tree.root.price
        T = inst.horizon
        cheap = solve_drrp(
            DRRPInstance(
                demand=inst.demand,
                costs=spot_schedule(ec2_catalog()["c1.medium"], np.array([root] + [low] * (T - 1))),
            ),
            backend="scipy",
        ).total_cost
        dear = solve_drrp(
            DRRPInstance(
                demand=inst.demand,
                costs=spot_schedule(ec2_catalog()["c1.medium"], np.array([root] + [high] * (T - 1))),
            ),
            backend="scipy",
        ).total_cost
        assert cheap - 1e-6 <= plan.expected_cost <= dear + 1e-6


class TestInterruptionLoss:
    def _setting(self):
        rng = np.random.default_rng(0)
        vm = ec2_catalog()["c1.medium"]
        history = rng.normal(0.06, 0.004, 300).clip(0.04, 0.09)
        realized = np.full(8, 0.07)  # above the 0.06 bid: every slot is oob
        demand = np.full(8, 0.5)
        return vm, history, realized, demand

    def test_zero_loss_is_paper_model(self):
        vm, history, realized, demand = self._setting()
        policy = NoPlanPolicy(FixedBids(value=0.06))
        a = simulate_policy(policy, realized, demand, vm, price_history=history)
        b = simulate_policy(
            policy, realized, demand, vm, price_history=history, interruption_loss=0.0
        )
        assert a.total_cost == pytest.approx(b.total_cost)
        assert b.lost_gb == 0.0

    def test_loss_increases_cost_and_is_tracked(self):
        vm, history, realized, demand = self._setting()
        policy = NoPlanPolicy(FixedBids(value=0.06))
        clean = simulate_policy(policy, realized, demand, vm, price_history=history)
        lossy = simulate_policy(
            policy, realized, demand, vm, price_history=history, interruption_loss=0.3
        )
        assert lossy.out_of_bid_events == 8
        assert lossy.lost_gb == pytest.approx(0.3 * demand.sum())
        assert lossy.total_cost > clean.total_cost

    def test_no_loss_when_never_out_of_bid(self):
        vm, history, realized, demand = self._setting()
        policy = NoPlanPolicy(FixedBids(value=1.0))  # always wins
        lossy = simulate_policy(
            policy, realized, demand, vm, price_history=history, interruption_loss=0.5
        )
        assert lossy.lost_gb == 0.0

    def test_validation(self):
        vm, history, realized, demand = self._setting()
        with pytest.raises(ValueError):
            simulate_policy(
                NoPlanPolicy(), realized, demand, vm,
                price_history=history, interruption_loss=1.0,
            )
