"""EVPI/VSS metrics: the WS <= SP <= EEV chain on random trees."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    SRRPInstance,
    StochasticValueReport,
    build_tree,
    evaluate_stochastic_value,
    on_demand_schedule,
)
from repro.market import ec2_catalog

VM = ec2_catalog()["c1.medium"]


def make_instance(p_spike=0.4, depth=3, spike=0.2, low=0.05, demand_seed=0, io_scale=1.0):
    from dataclasses import replace

    rng = np.random.default_rng(demand_seed)
    dists = [(np.array([low, spike]), np.array([1 - p_spike, p_spike]))] * depth
    tree = build_tree(0.06, dists)
    demand = rng.uniform(0.2, 0.6, depth + 1)
    costs = on_demand_schedule(VM, depth + 1)
    if io_scale != 1.0:
        costs = replace(costs, io=costs.io * io_scale)
    return SRRPInstance(demand=demand, costs=costs, tree=tree)


class TestValueChain:
    def test_invariants_hold(self):
        report = evaluate_stochastic_value(make_instance())
        report.check_invariants()
        assert report.evpi >= -1e-9
        assert report.vss >= -1e-9

    def test_vss_positive_under_real_risk(self):
        # moderate holding cost + half-probability spikes: the stochastic
        # plan hedges per-vertex where the mean-price plan cannot
        report = evaluate_stochastic_value(
            make_instance(p_spike=0.5, demand_seed=1, io_scale=0.5)
        )
        assert report.vss > 0

    def test_evpi_positive_under_risk(self):
        report = evaluate_stochastic_value(make_instance(p_spike=0.3, demand_seed=1))
        assert report.evpi > 0

    def test_no_uncertainty_collapses_everything(self):
        # degenerate "uncertainty": both branches identical
        report = evaluate_stochastic_value(
            make_instance(p_spike=0.5, spike=0.05, low=0.05)
        )
        assert report.evpi == pytest.approx(0.0, abs=1e-6)
        assert report.vss == pytest.approx(0.0, abs=1e-6)

    @given(
        st.floats(0.05, 0.95),
        st.integers(1, 3),
        st.integers(0, 100),
    )
    @settings(max_examples=12, deadline=None)
    def test_chain_on_random_instances(self, p_spike, depth, seed):
        report = evaluate_stochastic_value(
            make_instance(p_spike=p_spike, depth=depth, demand_seed=seed)
        )
        report.check_invariants()

    def test_report_dataclass(self):
        r = StochasticValueReport(1.0, 1.5, 2.5)
        assert r.evpi == pytest.approx(0.5)
        assert r.vss == pytest.approx(1.0)
        with pytest.raises(AssertionError):
            StochasticValueReport(2.0, 1.0, 0.5).check_invariants()
