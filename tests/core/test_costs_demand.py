"""Cost schedules and demand models."""

import numpy as np
import pytest

from repro.core import (
    BurstyDemand,
    ConstantDemand,
    CostSchedule,
    DiurnalDemand,
    NormalDemand,
    on_demand_schedule,
    spot_schedule,
)
from repro.market import CostRates, ec2_catalog


class TestCostSchedule:
    def test_on_demand_builder(self):
        vm = ec2_catalog()["m1.large"]
        c = on_demand_schedule(vm, 24)
        assert c.horizon == 24
        assert np.all(c.compute == 0.40)
        assert np.all(c.io == 0.20)
        assert c.holding[0] == pytest.approx(0.20 + 0.10 / 730.0)

    def test_spot_builder_overrides_compute(self):
        vm = ec2_catalog()["c1.medium"]
        prices = np.linspace(0.05, 0.07, 6)
        c = spot_schedule(vm, prices)
        assert np.allclose(c.compute, prices)
        assert np.all(c.transfer_out == 0.17)

    def test_length_mismatch_rejected(self):
        vm = ec2_catalog()["c1.medium"]
        c = on_demand_schedule(vm, 5)
        with pytest.raises(ValueError):
            c.with_compute(np.zeros(4))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostSchedule(
                compute=np.array([-1.0]),
                storage=np.zeros(1),
                io=np.zeros(1),
                transfer_in=np.zeros(1),
                transfer_out=np.zeros(1),
            )

    def test_slice(self):
        vm = ec2_catalog()["c1.medium"]
        c = on_demand_schedule(vm, 10)
        s = c.slice(2, 6)
        assert s.horizon == 4
        with pytest.raises(ValueError):
            c.slice(6, 2)

    def test_bad_horizon(self):
        vm = ec2_catalog()["c1.medium"]
        with pytest.raises(ValueError):
            on_demand_schedule(vm, 0)


class TestDemandModels:
    def test_normal_demand_positive_and_reproducible(self):
        d1 = NormalDemand().sample(100, 42)
        d2 = NormalDemand().sample(100, 42)
        assert np.array_equal(d1, d2)
        assert np.all(d1 > 0)

    def test_normal_demand_paper_mean(self):
        d = NormalDemand().sample(100_000, 0)
        assert 0.40 < d.mean() < 0.45  # truncation lifts the mean slightly

    def test_constant_demand(self):
        assert np.all(ConstantDemand(0.7).sample(5) == 0.7)
        with pytest.raises(ValueError):
            ConstantDemand(-1.0).sample(5)

    def test_diurnal_demand_cycles(self):
        d = DiurnalDemand(noise_std=0.0).sample(48, 0)
        assert np.allclose(d[:24], d[24:48])
        assert np.all(d >= 0)

    def test_bursty_demand_levels(self):
        d = BurstyDemand().sample(2000, 1)
        assert d.max() > 1.0 and d.min() < 0.2
