"""Scenario tree construction, probabilities, bid-dependent sampling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import bid_adjusted_stage_distributions, build_tree
from repro.core.scenario import ScenarioNode, ScenarioTree
from repro.stats import EmpiricalDistribution


def two_stage_dist():
    return (np.array([0.05, 0.07]), np.array([0.6, 0.4]))


class TestBuildTree:
    def test_sizes(self):
        tree = build_tree(0.06, [two_stage_dist(), two_stage_dist()])
        # 1 + 2 + 4 nodes, depth 0..2
        assert tree.num_nodes == 7
        assert tree.horizon == 3
        assert tree.num_scenarios == 4

    def test_root(self):
        tree = build_tree(0.06, [two_stage_dist()])
        assert tree.root.price == 0.06
        assert tree.root.abs_prob == 1.0
        assert tree.root.parent == -1

    def test_stage_probabilities_sum_to_one(self):
        tree = build_tree(0.06, [two_stage_dist()] * 4)
        assert tree.stage_probabilities_sum_to_one()

    def test_leaf_probs_are_products(self):
        tree = build_tree(0.06, [two_stage_dist(), two_stage_dist()])
        _, probs = tree.scenario_prices()
        assert probs.sum() == pytest.approx(1.0)
        assert sorted(np.round(probs, 6)) == sorted(
            np.round([0.36, 0.24, 0.24, 0.16], 6)
        )

    def test_scenario_price_rows(self):
        tree = build_tree(0.06, [(np.array([0.05]), np.array([1.0]))])
        prices, probs = tree.scenario_prices()
        assert prices.shape == (1, 2)
        assert np.allclose(prices[0], [0.06, 0.05])

    def test_path_extraction(self):
        tree = build_tree(0.06, [two_stage_dist(), two_stage_dist()])
        leaf = tree.leaves()[0]
        path = tree.path(leaf.index)
        assert len(path) == 3
        assert path[0].index == 0
        assert [n.depth for n in path] == [0, 1, 2]

    def test_horizon_mismatch_rejected(self):
        with pytest.raises(ValueError):
            build_tree(0.06, [two_stage_dist()], horizon=5)

    def test_bad_stage_probs_rejected(self):
        with pytest.raises(ValueError):
            build_tree(0.06, [(np.array([1.0, 2.0]), np.array([0.5, 0.4]))])

    def test_degenerate_tree_is_a_chain(self):
        dists = [(np.array([0.05]), np.array([1.0]))] * 5
        tree = build_tree(0.06, dists)
        assert tree.num_nodes == 6
        assert tree.num_scenarios == 1

    @given(st.integers(1, 3), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_node_count_formula(self, branching, depth):
        vals = np.linspace(0.05, 0.08, branching)
        probs = np.full(branching, 1.0 / branching)
        tree = build_tree(0.06, [(vals, probs)] * depth)
        expected = sum(branching**k for k in range(depth + 1))
        assert tree.num_nodes == expected
        assert tree.stage_probabilities_sum_to_one()


class TestTreeValidation:
    def test_validate_catches_bad_parent_depth(self):
        root = ScenarioNode(0, -1, 0, 0.06, 1.0, 1.0, children=[1])
        bad = ScenarioNode(1, 0, 2, 0.05, 1.0, 1.0)  # depth jumps by 2
        with pytest.raises(ValueError):
            ScenarioTree(nodes=[root, bad], horizon=3).validate()

    def test_validate_catches_bad_probabilities(self):
        root = ScenarioNode(0, -1, 0, 0.06, 1.0, 1.0, children=[1])
        child = ScenarioNode(1, 0, 1, 0.05, 0.5, 0.5)  # stage mass 0.5
        with pytest.raises(ValueError):
            ScenarioTree(nodes=[root, child], horizon=2).validate()


class TestBidAdjustedStageDistributions:
    def _base(self):
        rng = np.random.default_rng(0)
        return EmpiricalDistribution(rng.normal(0.06, 0.004, 2000), decimals=3)

    def test_one_distribution_per_bid(self):
        dists = bid_adjusted_stage_distributions(self._base(), np.full(5, 0.06), 0.2)
        assert len(dists) == 5
        for vals, probs in dists:
            assert probs.sum() == pytest.approx(1.0)
            assert vals.size <= 3

    def test_low_bid_concentrates_on_lambda(self):
        dists = bid_adjusted_stage_distributions(self._base(), np.array([0.01]), 0.2, 4)
        vals, probs = dists[0]
        assert vals.size == 1 and vals[0] == 0.2

    def test_high_bid_excludes_lambda(self):
        dists = bid_adjusted_stage_distributions(self._base(), np.array([1.0]), 0.2, 10)
        vals, probs = dists[0]
        assert 0.2 not in vals

    def test_branching_respected(self):
        for k in (1, 2, 3, 5):
            dists = bid_adjusted_stage_distributions(self._base(), np.full(3, 0.06), 0.2, k)
            assert all(v.size <= k for v, _ in dists)
