"""Joint price+demand uncertainty (the paper's future-work model)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SRRPInstance, build_tree, on_demand_schedule, solve_srrp
from repro.core.demand_uncertainty import (
    JointSRRPInstance,
    build_joint_tree,
    solve_srrp_joint,
)
from repro.market import ec2_catalog

VM = ec2_catalog()["c1.medium"]


def price_dist(low=0.05, high=0.2, p_low=0.7):
    return (np.array([low, high]), np.array([p_low, 1 - p_low]))


def demand_dist(low=0.2, high=0.8, p_low=0.5):
    return (np.array([low, high]), np.array([p_low, 1 - p_low]))


def degenerate(value):
    return (np.array([value]), np.array([1.0]))


class TestBuildJointTree:
    def test_product_branching(self):
        tree, nd = build_joint_tree(0.06, 0.4, [price_dist()] * 2, [demand_dist()] * 2)
        # branching = 2 prices x 2 demands = 4; nodes = 1 + 4 + 16
        assert tree.num_nodes == 21
        assert nd.shape == (21,)
        assert tree.stage_probabilities_sum_to_one()

    def test_degenerate_demand_matches_plain_tree(self):
        tree_j, nd = build_joint_tree(
            0.06, 0.4, [price_dist()] * 3, [degenerate(0.4)] * 3
        )
        tree_p = build_tree(0.06, [price_dist()] * 3)
        assert tree_j.num_nodes == tree_p.num_nodes
        assert np.allclose(nd, 0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_joint_tree(0.06, 0.4, [price_dist()], [])
        with pytest.raises(ValueError):
            build_joint_tree(
                0.06, 0.4, [price_dist()], [(np.array([0.5]), np.array([0.9]))]
            )
        with pytest.raises(ValueError):
            build_joint_tree(
                0.06, 0.4, [price_dist()], [(np.array([-1.0]), np.array([1.0]))]
            )


class TestDegenerateEquivalence:
    """Constant demand per stage collapses the model to the paper's SRRP."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_plain_srrp(self, seed):
        rng = np.random.default_rng(seed)
        depth = 3
        demand = rng.uniform(0.2, 0.8, depth + 1)
        tree_j, nd = build_joint_tree(
            0.06, float(demand[0]),
            [price_dist()] * depth,
            [degenerate(float(demand[t + 1])) for t in range(depth)],
        )
        joint = solve_srrp_joint(
            JointSRRPInstance(
                costs=on_demand_schedule(VM, depth + 1), tree=tree_j, node_demand=nd
            )
        )
        plain = solve_srrp(
            SRRPInstance(
                demand=demand,
                costs=on_demand_schedule(VM, depth + 1),
                tree=build_tree(0.06, [price_dist()] * depth),
            )
        )
        assert joint.expected_cost == pytest.approx(plain.expected_cost, abs=1e-6)


class TestJointBehaviour:
    def _instance(self, demand_spread=0.0, depth=3):
        d_low, d_high = 0.5 - demand_spread, 0.5 + demand_spread
        tree, nd = build_joint_tree(
            0.06, 0.5,
            [price_dist()] * depth,
            [demand_dist(low=d_low, high=d_high)] * depth,
        )
        return JointSRRPInstance(
            costs=on_demand_schedule(VM, depth + 1), tree=tree, node_demand=nd
        )

    def test_plan_is_feasible(self):
        plan = solve_srrp_joint(self._instance(demand_spread=0.3))
        plan.validate(self._instance(demand_spread=0.3))

    def test_recourse_exploits_demand_information(self):
        # Jensen, in the direction fixed costs dictate: the per-scenario
        # value function is concave in demand (a low-demand state can skip
        # a whole rental), and decisions observe the current stage's
        # demand, so a mean-preserving spread is (weakly) CHEAPER in
        # expectation than the flat profile.
        flat = solve_srrp_joint(self._instance(demand_spread=0.0)).expected_cost
        spread = solve_srrp_joint(self._instance(demand_spread=0.3)).expected_cost
        assert spread <= flat + 1e-6

    def test_recourse_adapts_to_demand_state(self):
        # with a big demand spread, generation differs across same-price
        # siblings that differ only in demand
        tree, nd = build_joint_tree(
            0.06, 0.5,
            [degenerate(0.06)] * 2,       # price certain
            [demand_dist(low=0.1, high=1.5)] * 2,
        )
        inst = JointSRRPInstance(costs=on_demand_schedule(VM, 3), tree=tree, node_demand=nd)
        plan = solve_srrp_joint(inst)
        depth1 = [n.index for n in tree.nodes if n.depth == 1]
        alphas = {round(float(plan.alpha[i]), 6) for i in depth1}
        assert len(alphas) > 1  # different demand states -> different recourse

    def test_expected_cost_scales_with_demand_mean(self):
        low = solve_srrp_joint(self._instance(demand_spread=0.0)).expected_cost
        tree, nd = build_joint_tree(
            0.06, 1.0, [price_dist()] * 3, [degenerate(1.0)] * 3
        )
        heavy = solve_srrp_joint(
            JointSRRPInstance(costs=on_demand_schedule(VM, 4), tree=tree, node_demand=nd)
        ).expected_cost
        assert heavy > low

    def test_node_demand_shape_validated(self):
        tree, nd = build_joint_tree(0.06, 0.5, [price_dist()], [demand_dist()])
        with pytest.raises(ValueError):
            JointSRRPInstance(
                costs=on_demand_schedule(VM, 2), tree=tree, node_demand=nd[:-1]
            )

    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_random_instances_solve_and_validate(self, seed):
        rng = np.random.default_rng(seed)
        depth = int(rng.integers(1, 3))
        tree, nd = build_joint_tree(
            float(rng.uniform(0.04, 0.1)),
            float(rng.uniform(0.1, 1.0)),
            [price_dist(p_low=float(rng.uniform(0.2, 0.8)))] * depth,
            [demand_dist(low=float(rng.uniform(0.05, 0.4)), high=float(rng.uniform(0.5, 1.5)))] * depth,
        )
        inst = JointSRRPInstance(
            costs=on_demand_schedule(VM, depth + 1), tree=tree, node_demand=nd
        )
        plan = solve_srrp_joint(inst)
        plan.validate(inst)
        assert plan.expected_cost > 0
