"""Lagrangian relaxation: valid bounds, the LP-bound equality, ascent."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp
from repro.core.costs import CostSchedule
from repro.core.lagrangian import lagrangian_bound
from repro.market import ec2_catalog
from repro.solver.scipy_backend import solve_lp_scipy
from repro.core.drrp import build_drrp_model


def make_instance(seed=0, horizon=12, vm="m1.large", eps=0.0):
    return DRRPInstance(
        demand=NormalDemand().sample(horizon, seed),
        costs=on_demand_schedule(ec2_catalog()[vm], horizon),
        initial_storage=eps,
        vm_name=vm,
    )


class TestBoundValidity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bound_below_optimum(self, seed):
        inst = make_instance(seed)
        opt = solve_drrp(inst).total_cost
        lag = lagrangian_bound(inst)
        assert lag.best_bound <= opt + 1e-6
        assert lag.heuristic_cost >= opt - 1e-6

    def test_ascent_approaches_its_ceiling(self):
        # the best possible Lagrangian bound equals the natural LP bound;
        # the ascent should get within a few percent of it
        inst = make_instance(7, horizon=24)
        model, _ = build_drrp_model(inst)
        compiled = model.compile()
        compiled.integrality[:] = 0
        lp = solve_lp_scipy(compiled).objective
        lag = lagrangian_bound(inst, iterations=400)
        assert lag.best_bound <= lp + 1e-5
        assert lag.best_bound >= 0.95 * lp

    def test_heuristic_is_feasible_cost(self):
        inst = make_instance(3)
        lag = lagrangian_bound(inst)
        assert np.isfinite(lag.heuristic_cost)
        assert lag.gap >= -1e-9

    def test_with_initial_storage(self):
        inst = make_instance(5, eps=1.0)
        opt = solve_drrp(inst).total_cost
        lag = lagrangian_bound(inst)
        assert lag.best_bound <= opt + 1e-6

    def test_zero_demand(self):
        vm = ec2_catalog()["c1.medium"]
        inst = DRRPInstance(demand=np.zeros(5), costs=on_demand_schedule(vm, 5))
        lag = lagrangian_bound(inst, iterations=5)
        assert lag.best_bound == pytest.approx(0.0, abs=1e-9)

    def test_capacitated_rejected(self):
        vm = ec2_catalog()["c1.medium"]
        inst = DRRPInstance(
            demand=np.ones(3),
            costs=on_demand_schedule(vm, 3),
            bottleneck_rate=1.0,
            bottleneck_capacity=np.ones(3),
        )
        with pytest.raises(ValueError):
            lagrangian_bound(inst)

    def test_bad_seed_multipliers(self):
        inst = make_instance(0, horizon=4)
        with pytest.raises(ValueError):
            lagrangian_bound(inst, seed_multipliers=np.zeros(3))


class TestTheoryRelations:
    """max_mu L(mu) == LP relaxation of the natural formulation
    (both Lagrangian subproblems have the integrality property)."""

    def _natural_lp_bound(self, inst):
        model, _ = build_drrp_model(inst)
        compiled = model.compile()
        compiled.integrality[:] = 0
        res = solve_lp_scipy(compiled)
        return res.objective

    @pytest.mark.parametrize("seed", [0, 2, 9])
    def test_matches_natural_lp_bound(self, seed):
        inst = make_instance(seed, horizon=10)
        lp = self._natural_lp_bound(inst)
        lag = lagrangian_bound(inst, iterations=800)
        # ascent approaches the LP bound from below
        assert lag.best_bound <= lp + 1e-5
        assert lag.best_bound >= lp - 0.05 * max(lp, 1.0)

    def test_weaker_than_facility_location(self):
        from repro.core.reformulation import build_facility_location_model

        inst = make_instance(1, horizon=10)
        lag = lagrangian_bound(inst, iterations=400)
        model, _x, _chi = build_facility_location_model(inst)
        compiled = model.compile()
        compiled.integrality[:] = 0
        fl_lp = solve_lp_scipy(compiled).objective
        opt = solve_drrp(inst).total_cost
        assert fl_lp == pytest.approx(opt, abs=1e-5)  # FL relaxation integral
        assert lag.best_bound <= fl_lp + 1e-6


@st.composite
def random_uncapacitated(draw):
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    T = int(rng.integers(2, 14))
    costs = CostSchedule(
        compute=rng.uniform(0.05, 1.0, T),
        storage=np.zeros(T),
        io=rng.uniform(0.01, 0.4, T),
        transfer_in=rng.uniform(0.0, 0.2, T),
        transfer_out=np.full(T, 0.17),
    )
    return DRRPInstance(
        demand=rng.uniform(0.0, 2.0, T),
        costs=costs,
        initial_storage=float(rng.choice([0.0, 0.6])),
    )


class TestPropertyBased:
    @given(random_uncapacitated())
    @settings(max_examples=30, deadline=None)
    def test_sandwich(self, inst):
        opt = solve_drrp(inst, backend="scipy").total_cost
        lag = lagrangian_bound(inst, iterations=120)
        assert lag.best_bound <= opt + 1e-5
        assert lag.heuristic_cost >= opt - 1e-5

    @given(random_uncapacitated())
    @settings(max_examples=15, deadline=None)
    def test_trace_contains_best(self, inst):
        lag = lagrangian_bound(inst, iterations=60)
        assert lag.best_bound == pytest.approx(max(lag.trace), abs=1e-12)
