"""DRRP model tests: constraint satisfaction, economics, baseline comparison,
and the Wagner-Whitin cross-check (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ConstantDemand,
    DRRPInstance,
    NormalDemand,
    on_demand_schedule,
    solve_drrp,
    solve_noplan,
    solve_wagner_whitin,
)
from repro.core.costs import CostSchedule
from repro.market import ec2_catalog


def make_instance(demand, vm="m1.large", **kwargs):
    demand = np.asarray(demand, dtype=float)
    vmobj = ec2_catalog()[vm]
    return DRRPInstance(
        demand=demand,
        costs=on_demand_schedule(vmobj, demand.shape[0]),
        vm_name=vm,
        **kwargs,
    )


class TestInstanceValidation:
    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            make_instance([-1.0, 2.0])

    def test_length_mismatch_rejected(self):
        vm = ec2_catalog()["m1.large"]
        with pytest.raises(ValueError):
            DRRPInstance(demand=np.ones(5), costs=on_demand_schedule(vm, 4))

    def test_bottleneck_requires_both(self):
        with pytest.raises(ValueError):
            make_instance([1.0], bottleneck_rate=1.0)

    def test_example_constructor(self):
        inst = DRRPInstance.example()
        assert inst.horizon == 24 and inst.vm_name == "m1.large"


class TestDRRPSolutions:
    def test_plan_satisfies_all_constraints(self):
        inst = make_instance(NormalDemand().sample(24, 0))
        plan = solve_drrp(inst)
        plan.validate(inst)  # raises on violation

    def test_consolidation_under_high_rental_cost(self):
        inst = make_instance(ConstantDemand(0.4).sample(24), vm="m1.xlarge")
        plan = solve_drrp(inst)
        assert plan.rental_frequency < 1.0  # fewer rentals than slots

    def test_cheap_rental_runs_every_slot(self):
        # make compute nearly free: renting every slot avoids all holding
        vm = ec2_catalog()["c1.medium"]
        c = on_demand_schedule(vm, 12).with_compute(np.full(12, 1e-6))
        inst = DRRPInstance(demand=np.full(12, 0.5), costs=c)
        plan = solve_drrp(inst)
        assert plan.rental_frequency == 1.0
        assert np.allclose(plan.beta, 0.0, atol=1e-6)

    def test_initial_storage_reduces_cost(self):
        d = ConstantDemand(0.4).sample(12)
        plain = solve_drrp(make_instance(d))
        seeded = solve_drrp(make_instance(d, initial_storage=2.0))
        assert seeded.total_cost < plain.total_cost

    def test_zero_demand_costs_only_transfer_out(self):
        inst = make_instance(np.zeros(6))
        plan = solve_drrp(inst)
        assert plan.total_cost == pytest.approx(0.0)
        assert plan.rental_frequency == 0.0

    def test_bottleneck_limits_generation(self):
        d = np.array([1.0, 1.0, 1.0, 1.0])
        # capacity allows at most 1.2 GB of output per slot
        inst = make_instance(
            d, bottleneck_rate=1.0, bottleneck_capacity=np.full(4, 1.2)
        )
        plan = solve_drrp(inst)
        assert np.all(plan.alpha <= 1.2 + 1e-6)
        # consolidation becomes impossible; must rent nearly every slot
        assert plan.rental_frequency >= 0.75

    def test_bottleneck_forces_prebuild_for_spike(self):
        d = np.array([0.0, 0.0, 3.0])
        inst = make_instance(
            d, bottleneck_rate=1.0, bottleneck_capacity=np.full(3, 1.5)
        )
        plan = solve_drrp(inst)
        plan.validate(inst)
        assert plan.alpha[:2].sum() >= 1.5 - 1e-6  # had to start early

    def test_cost_decomposition_sums_to_objective(self):
        inst = make_instance(NormalDemand().sample(24, 3))
        plan = solve_drrp(inst)
        parts = (
            plan.compute_cost
            + plan.inventory_cost
            + plan.transfer_in_cost
            + plan.transfer_out_cost
        )
        assert parts == pytest.approx(plan.objective, abs=1e-6)

    def test_cost_shares_sum_to_one(self):
        inst = make_instance(NormalDemand().sample(24, 4))
        plan = solve_drrp(inst)
        assert sum(plan.cost_shares().values()) == pytest.approx(1.0)

    def test_backends_agree(self):
        inst = make_instance(NormalDemand().sample(10, 5))
        a = solve_drrp(inst, backend="scipy")
        b = solve_drrp(inst, backend="bb-scipy")
        c = solve_drrp(inst, backend="simplex")
        assert a.total_cost == pytest.approx(b.total_cost, abs=1e-5)
        assert a.total_cost == pytest.approx(c.total_cost, abs=1e-5)


class TestNoPlanBaseline:
    def test_noplan_never_cheaper_than_drrp(self):
        for seed in range(5):
            inst = make_instance(NormalDemand().sample(24, seed))
            assert solve_noplan(inst).total_cost >= solve_drrp(inst).total_cost - 1e-6

    def test_noplan_holds_no_new_inventory(self):
        inst = make_instance(NormalDemand().sample(24, 0))
        plan = solve_noplan(inst)
        assert np.allclose(plan.beta, 0.0)

    def test_noplan_uses_initial_storage_first(self):
        inst = make_instance(np.array([1.0, 1.0, 1.0]), initial_storage=1.5)
        plan = solve_noplan(inst)
        assert plan.chi[0] == 0.0  # first slot fully covered by epsilon
        assert plan.alpha[1] == pytest.approx(0.5)

    def test_saving_grows_with_class_power(self):
        d = NormalDemand().sample(24, 42)
        reductions = []
        for vm in ("c1.medium", "m1.large", "m1.xlarge"):
            inst = make_instance(d, vm=vm)
            drrp = solve_drrp(inst).total_cost
            noplan = solve_noplan(inst).total_cost
            reductions.append(1 - drrp / noplan)
        assert reductions[0] < reductions[1] < reductions[2]  # Figure 10


@st.composite
def random_lot_sizing(draw):
    T = draw(st.integers(2, 16))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    demand = np.round(rng.uniform(0.0, 2.0, T), 3)
    setup = np.round(rng.uniform(0.05, 1.0, T), 3)
    holding = np.round(rng.uniform(0.01, 0.4, T), 3)
    tin = np.round(rng.uniform(0.0, 0.2, T), 3)
    eps = float(draw(st.sampled_from([0.0, 0.0, 0.5, 1.0])))
    return demand, setup, holding, tin, eps


class TestWagnerWhitinCrossCheck:
    """The DP and the MILP must agree on every uncapacitated instance."""

    def _instance(self, demand, setup, holding, tin, eps):
        T = demand.shape[0]
        costs = CostSchedule(
            compute=setup,
            storage=np.zeros(T),
            io=holding,
            transfer_in=tin,
            transfer_out=np.full(T, 0.17),
        )
        return DRRPInstance(demand=demand, costs=costs, phi=0.5, initial_storage=eps)

    @given(random_lot_sizing())
    @settings(max_examples=60, deadline=None)
    def test_dp_matches_milp(self, data):
        inst = self._instance(*data)
        dp = solve_wagner_whitin(inst)
        milp = solve_drrp(inst, backend="scipy")
        assert dp.total_cost == pytest.approx(milp.total_cost, abs=1e-6)

    @given(random_lot_sizing())
    @settings(max_examples=30, deadline=None)
    def test_dp_plan_is_feasible(self, data):
        inst = self._instance(*data)
        plan = solve_wagner_whitin(inst)
        plan.validate(inst)

    def test_dp_rejects_capacitated(self):
        inst = DRRPInstance(
            demand=np.ones(3),
            costs=on_demand_schedule(ec2_catalog()["c1.medium"], 3),
            bottleneck_rate=1.0,
            bottleneck_capacity=np.ones(3),
        )
        with pytest.raises(ValueError):
            solve_wagner_whitin(inst)

    def test_dp_on_paper_scale_instance(self):
        inst = DRRPInstance.example(horizon=48, seed=9)
        dp = solve_wagner_whitin(inst)
        milp = solve_drrp(inst, backend="scipy")
        assert dp.total_cost == pytest.approx(milp.total_cost, abs=1e-6)
