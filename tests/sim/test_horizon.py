"""Window geometry and multi-resolution aggregation tests."""

import numpy as np
import pytest

from repro.market import CostRates
from repro.sim import AggregatedWindow, HorizonConfig, aggregate_window, build_blocks


class TestHorizonConfig:
    def test_defaults(self):
        cfg = HorizonConfig()
        assert cfg.prediction == 48 and cfg.control == 24
        assert cfg.fine_slots == cfg.control  # fine defaults to control
        assert cfg.overlap == 24

    def test_explicit_fine_region(self):
        cfg = HorizonConfig(prediction=48, control=12, fine=24)
        assert cfg.fine_slots == 24
        assert cfg.overlap == 36

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"control": 0},
            {"prediction": 10, "control": 12},
            {"coarse_block": 0},
            {"prediction": 48, "control": 24, "fine": 12},   # fine < control
            {"prediction": 48, "control": 24, "fine": 60},   # fine > prediction
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HorizonConfig(**kwargs)


class TestBuildBlocks:
    def test_blocks_cover_window_exactly(self):
        cfg = HorizonConfig(prediction=48, control=24, coarse_block=5)
        for window in (1, 7, 24, 25, 29, 48):
            blocks = build_blocks(window, cfg)
            # contiguous, ordered, exact coverage
            pos = 0
            for start, length in blocks:
                assert start == pos and length >= 1
                pos += length
            assert pos == window

    def test_fine_prefix_then_coarse_tiles(self):
        cfg = HorizonConfig(prediction=48, control=24, coarse_block=4)
        blocks = build_blocks(48, cfg)
        assert blocks[:24] == [(i, 1) for i in range(24)]
        assert all(length == 4 for _, length in blocks[24:])

    def test_short_window_is_all_fine(self):
        cfg = HorizonConfig(prediction=48, control=24, coarse_block=4)
        blocks = build_blocks(10, cfg)
        assert blocks == [(i, 1) for i in range(10)]

    def test_ragged_tail_block(self):
        cfg = HorizonConfig(prediction=48, control=4, coarse_block=4)
        blocks = build_blocks(11, cfg)
        assert blocks == [(0, 1), (1, 1), (2, 1), (3, 1), (4, 4), (8, 3)]

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            build_blocks(0, HorizonConfig())


class TestAggregateWindow:
    def setup_method(self):
        rng = np.random.default_rng(7)
        self.demand = rng.uniform(0.1, 0.8, 20)
        self.prices = rng.uniform(0.04, 0.09, 20)
        self.rates = CostRates()

    def test_totals_preserved(self):
        cfg = HorizonConfig(prediction=20, control=6, coarse_block=4)
        agg = aggregate_window(
            self.demand, self.prices, build_blocks(20, cfg), self.rates
        )
        assert agg.demand.sum() == pytest.approx(self.demand.sum())
        assert agg.compute.sum() == pytest.approx(self.prices.sum())

    def test_holding_rates_scale_with_block_length(self):
        cfg = HorizonConfig(prediction=20, control=6, coarse_block=4)
        blocks = build_blocks(20, cfg)
        agg = aggregate_window(self.demand, self.prices, blocks, self.rates)
        for b, (_, length) in enumerate(blocks):
            assert agg.storage[b] == pytest.approx(
                self.rates.storage_per_gb_hour * length
            )
            assert agg.io[b] == pytest.approx(self.rates.io_per_gb * length)
            # per-GB transfer rates are resolution-independent
            assert agg.transfer_in[b] == self.rates.transfer_in_per_gb
            assert agg.transfer_out[b] == self.rates.transfer_out_per_gb

    def test_unit_blocks_are_identity(self):
        cfg = HorizonConfig(prediction=20, control=20, coarse_block=1)
        agg = aggregate_window(
            self.demand, self.prices, build_blocks(20, cfg), self.rates
        )
        assert agg.n_fine == 20
        np.testing.assert_allclose(agg.demand, self.demand)
        np.testing.assert_allclose(agg.compute, self.prices)
        np.testing.assert_allclose(
            agg.storage, np.full(20, self.rates.storage_per_gb_hour)
        )

    def test_n_fine_counts_unit_prefix(self):
        cfg = HorizonConfig(prediction=20, control=6, coarse_block=4)
        agg = aggregate_window(
            self.demand, self.prices, build_blocks(20, cfg), self.rates
        )
        assert agg.n_fine == 6

    def test_shape_mismatches_rejected(self):
        cfg = HorizonConfig(prediction=20, control=6, coarse_block=4)
        blocks = build_blocks(20, cfg)
        with pytest.raises(ValueError):
            aggregate_window(self.demand, self.prices[:-1], blocks, self.rates)
        with pytest.raises(ValueError):
            aggregate_window(self.demand[:15], self.prices[:15], blocks, self.rates)

    def test_cost_schedule_and_payload_agree(self):
        cfg = HorizonConfig(prediction=20, control=6, coarse_block=4)
        agg = aggregate_window(
            self.demand, self.prices, build_blocks(20, cfg), self.rates
        )
        assert isinstance(agg, AggregatedWindow)
        sched = agg.cost_schedule()
        payload = agg.payload_costs()
        np.testing.assert_allclose(sched.compute, payload["compute"])
        np.testing.assert_allclose(sched.storage, payload["storage"])
        np.testing.assert_allclose(sched.transfer_in, payload["transfer_in"])
