"""Campaign engine tests: scoring, reproducibility, exact accounting."""

import numpy as np
import pytest

from repro.core import simulate_policy
from repro.market import MeanBids
from repro.sim import (
    CampaignConfig,
    HorizonConfig,
    RollingDRRPPolicy,
    build_inputs,
    make_policy,
    run_campaign,
)
from repro.verify import frac, frac_sum

CONFIG = CampaignConfig(
    slots=48,
    estimation_slots=240,
    horizon=HorizonConfig(prediction=24, control=12, coarse_block=4),
)


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(CONFIG)


class TestRunCampaign:
    def test_roster_and_ratios(self, campaign):
        assert set(campaign.outcomes) == set(CONFIG.policies)
        assert campaign.ratios["oracle"] == pytest.approx(1.0)
        # nothing beats the clairvoyant, and planning beats not planning
        for name, ratio in campaign.ratios.items():
            assert ratio >= 1.0 - 1e-9, name
        assert campaign.ratios["no-plan"] > campaign.ratios["rolling-drrp"]

    def test_replan_telemetry_recorded(self, campaign):
        rolling = campaign.outcomes["rolling-drrp"]
        assert rolling.replans == 4  # 48 slots / control 12
        assert len(rolling.replan_latencies) == 4
        assert rolling.latency_quantile(0.5) > 0
        snap = campaign.registry.snapshot()
        assert snap["sim_replans_total"]["value"] == 4
        assert snap["sim_replan_s"]["count"] == 4

    def test_manifest_replays_bit_for_bit(self, campaign):
        again = run_campaign(CONFIG)
        assert campaign.manifest.result_digest == again.manifest.result_digest
        assert campaign.manifest.replays(again.manifest)

    def test_summary_lines_render(self, campaign):
        lines = campaign.summary_lines()
        assert len(lines) == 1 + len(CONFIG.policies)
        assert "oracle" in lines[0]

    def test_interruption_loss_charges_more(self):
        lossy = run_campaign(
            CampaignConfig(
                slots=24, estimation_slots=240, interruption_loss=0.5,
                horizon=HorizonConfig(prediction=12, control=6, coarse_block=3),
                policies=("oracle", "rolling-drrp"),
            )
        )
        assert lossy.outcomes["rolling-drrp"].result.lost_gb >= 0.0


class TestBidPolicyRoster:
    def test_make_policy_builds_interrupted_planners(self):
        from repro.sim import InterruptedRollingDRRPPolicy

        inputs = build_inputs(CONFIG)
        config = CampaignConfig(
            slots=48, estimation_slots=240, interruption_loss=0.25,
            bid_value=0.8,
            horizon=HorizonConfig(prediction=24, control=12, coarse_block=4),
        )
        policy = make_policy("bid-od-index", inputs, config)
        assert isinstance(policy, InterruptedRollingDRRPPolicy)
        assert policy.name == "bid-od-index"
        assert policy.bid_policy.fraction == 0.8
        # the event model mirrors the simulator's loss fraction
        assert policy.model.work_loss == pytest.approx(0.25)
        with pytest.raises(ValueError):
            make_policy("bid-martingale", inputs, config)

    def test_campaign_records_interruptions(self):
        result = run_campaign(
            CampaignConfig(
                slots=24, estimation_slots=240, interruption_loss=0.5,
                horizon=HorizonConfig(prediction=12, control=6, coarse_block=3),
                policies=("oracle", "bid-fixed"),
            )
        )
        out = result.outcomes["bid-fixed"]
        # the policy's settled event count can trail the simulator's marker
        # by at most the final, never-settled slot
        assert 0 <= out.result.out_of_bid_events - out.interruptions <= 1
        payload = result.result_payload()
        assert payload["policies"]["bid-fixed"]["interruptions"] == out.interruptions
        assert result.config.jsonable()["bid_value"] is None


class TestValidation:
    def test_unknown_vm_rejected(self):
        with pytest.raises(ValueError):
            build_inputs(CampaignConfig(vm="t2.micro"))

    def test_unknown_policy_rejected(self):
        inputs = build_inputs(CONFIG)
        with pytest.raises(ValueError):
            make_policy("does-not-exist", inputs, CONFIG)

    def test_service_policy_needs_url(self):
        inputs = build_inputs(CONFIG)
        with pytest.raises(ValueError):
            make_policy("rolling-drrp-service", inputs, CONFIG, service_url=None)

    def test_empty_roster_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(policies=())


class TestExactAccounting:
    def test_cost_identity_holds_exactly(self, campaign):
        """Totals re-derive from the per-slot arrays with ZERO tolerance."""
        inputs = build_inputs(CONFIG)
        # transfer-out, recomputed the way the simulator defines it
        tout = frac(inputs.rates.transfer_out_per_gb) * frac_sum(inputs.demand)
        for name, out in campaign.outcomes.items():
            res = out.result
            total = (
                frac_sum(res.paid_prices)
                + frac_sum(res.holding_costs)
                + frac_sum(res.transfer_in_costs)
                + tout
            )
            assert float(total) == res.total_cost, name
            assert float(tout) == res.transfer_out_cost, name
            assert float(frac_sum(res.paid_prices)) == res.compute_cost, name
            assert float(frac_sum(res.holding_costs)) == res.inventory_cost, name
            assert float(frac_sum(res.transfer_in_costs)) == res.transfer_in_cost, name


class TestNonanticipativity:
    def test_future_prices_cannot_change_past_decisions(self):
        """Perturbing realized prices from slot k on leaves decisions < k
        untouched — the closed loop never conditions on the future."""
        inputs = build_inputs(CONFIG)
        k = 13  # strictly after the second replan boundary (slot 12)
        perturbed = inputs.realized.copy()
        perturbed[k:] *= 1.7

        def run(realized):
            policy = RollingDRRPPolicy(MeanBids(), horizon=CONFIG.horizon)
            return simulate_policy(
                policy, realized, inputs.demand, inputs.vm,
                rates=inputs.rates, price_history=inputs.history,
            )

        base, shifted = run(inputs.realized), run(perturbed)
        np.testing.assert_array_equal(base.generated[:k], shifted.generated[:k])
        np.testing.assert_array_equal(base.inventory[:k], shifted.inventory[:k])
        np.testing.assert_array_equal(base.paid_prices[:k], shifted.paid_prices[:k])
