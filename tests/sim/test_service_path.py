"""Campaigns routed through a live planning server.

Exercises the service leg the bench gates: bit-for-bit agreement with the
in-process planner, plan-cache hits on replay, and the two backpressure
modes (inline degraded plans / reject-retry-fallback) against a server
that can never drain its queue.
"""

import numpy as np
import pytest

from repro.market import MeanBids
from repro.service import ServiceClient, ServiceConfig, drrp_payload, serve
from repro.sim import (
    CampaignConfig,
    HorizonConfig,
    ServiceDRRPPolicy,
    run_campaign,
)

CONFIG = CampaignConfig(
    slots=24,
    estimation_slots=120,
    horizon=HorizonConfig(prediction=12, control=6, coarse_block=3),
    policies=("oracle", "rolling-drrp", "rolling-drrp-service"),
)


@pytest.fixture(scope="module")
def live_server():
    service, httpd = serve(port=0, config=ServiceConfig(workers=2), block=False)
    yield httpd.url
    httpd.shutdown()
    httpd.server_close()
    service.close()


@pytest.fixture(scope="module")
def routed(live_server):
    first = run_campaign(CONFIG, service_url=live_server)
    replay = run_campaign(
        CampaignConfig(
            slots=CONFIG.slots,
            estimation_slots=CONFIG.estimation_slots,
            horizon=CONFIG.horizon,
            policies=("rolling-drrp-service",),
        ),
        service_url=live_server,
    )
    return first, replay


class TestServiceConsistency:
    def test_routed_cost_matches_in_process_bit_for_bit(self, routed):
        first, _ = routed
        inproc = first.outcomes["rolling-drrp"].result
        svc = first.outcomes["rolling-drrp-service"].result
        assert svc.total_cost == inproc.total_cost  # exact, no approx
        np.testing.assert_array_equal(svc.generated, inproc.generated)
        np.testing.assert_array_equal(svc.inventory, inproc.inventory)
        np.testing.assert_array_equal(svc.paid_prices, inproc.paid_prices)

    def test_replay_runs_from_the_plan_cache(self, routed):
        first, replay = routed
        out = replay.outcomes["rolling-drrp-service"]
        assert out.service_requests == 4  # 24 slots / control 6
        assert out.cache_hits == out.service_requests  # content-addressed
        # ...and cached plans still reproduce the same realized cost
        assert (
            replay.outcomes["rolling-drrp-service"].result.total_cost
            == first.outcomes["rolling-drrp-service"].result.total_cost
        )

    def test_healthy_server_never_degrades(self, routed):
        first, _ = routed
        out = first.outcomes["rolling-drrp-service"]
        assert out.degraded_plans == 0
        assert out.local_fallbacks == 0


class TestBackpressure:
    @pytest.fixture(scope="class")
    def saturated(self):
        """A choked server + the two client strategies run against it."""
        choked = ServiceConfig(workers=0, queue_size=1, default_time_limit=5.0)
        service, httpd = serve(port=0, config=choked, block=False)
        try:
            client = ServiceClient(httpd.url, timeout=10.0)
            # Occupy the only queue slot; no worker will ever drain it.
            client.submit(drrp_payload([1.0], [0.1]))
            bp_config = CampaignConfig(
                slots=12,
                estimation_slots=120,
                horizon=CONFIG.horizon,
                policies=("oracle",),
            )
            degrade = ServiceDRRPPolicy(
                MeanBids(), client, horizon=CONFIG.horizon,
                on_overload="degrade", name="svc-degrade", wait_s=1.0,
            )
            reject = ServiceDRRPPolicy(
                MeanBids(), client, horizon=CONFIG.horizon,
                name="svc-reject", max_retries=1, retry_cap_s=0.01, wait_s=1.0,
            )
            yield run_campaign(
                bp_config,
                extra_policies={"svc-degrade": degrade, "svc-reject": reject},
            )
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()

    def test_degrade_mode_answers_inline(self, saturated):
        out = saturated.outcomes["svc-degrade"]
        assert out.replans == 2  # 12 slots / control 6
        assert out.degraded_plans == out.replans
        assert out.local_fallbacks == 0
        assert out.result.forced_topups == 0  # demand still met

    def test_reject_mode_falls_back_locally(self, saturated):
        out = saturated.outcomes["svc-reject"]
        assert out.replans == 2
        assert out.local_fallbacks == out.replans
        assert out.degraded_plans == 0
        assert out.result.forced_topups == 0

    def test_degraded_plan_costs_at_least_the_oracle(self, saturated):
        for name in ("svc-degrade", "svc-reject"):
            assert (
                saturated.outcomes[name].result.total_cost
                >= saturated.oracle_cost - 1e-9
            )
