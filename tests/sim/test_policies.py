"""Rolling MPC policy tests: cadence, reconciliation, price visibility."""

import numpy as np
import pytest

from repro.core import simulate_policy
from repro.market import BidStrategy, FixedBids, MeanBids, ec2_catalog
from repro.market.interruptions import InterruptionModel
from repro.market.policy import FixedBidPolicy, RebidPolicy
from repro.sim import HorizonConfig, InterruptedRollingDRRPPolicy, RollingDRRPPolicy

VM = ec2_catalog()["c1.medium"]
HORIZON = HorizonConfig(prediction=12, control=6, coarse_block=3)


class RecordingBids(BidStrategy):
    """MeanBids that also records every price history it was shown."""

    name = "recording"

    def __init__(self):
        self.inner = MeanBids()
        self.seen = []

    def bids(self, history, length, t=0):
        self.seen.append((t, np.array(history, copy=True)))
        return self.inner.bids(history, length, t=t)


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(3)
    history = rng.normal(0.06, 0.004, 300).clip(0.04, 0.09)
    realized = rng.normal(0.06, 0.006, 24).clip(0.04, 0.09)
    demand = rng.uniform(0.2, 0.6, 24)
    return history, realized, demand


class TestReplanCadence:
    def test_replans_every_control_interval(self, setting):
        history, realized, demand = setting
        policy = RollingDRRPPolicy(MeanBids(), horizon=HORIZON)
        simulate_policy(policy, realized, demand, VM, price_history=history)
        assert policy.replans == 4  # 24 slots / control 6
        assert len(policy.replan_latencies) == 4

    def test_ragged_tail_window(self, setting):
        history, realized, demand = setting
        policy = RollingDRRPPolicy(MeanBids(), horizon=HORIZON)
        simulate_policy(policy, realized[:20], demand[:20], VM, price_history=history)
        assert policy.replans == 4  # 6 + 6 + 6 + 2

    def test_reset_clears_state(self, setting):
        history, realized, demand = setting
        policy = RollingDRRPPolicy(MeanBids(), horizon=HORIZON)
        first = simulate_policy(policy, realized, demand, VM, price_history=history)
        second = simulate_policy(policy, realized, demand, VM, price_history=history)
        assert policy.replans == 4  # not 8: reset() wiped the first run
        assert first.total_cost == second.total_cost
        np.testing.assert_array_equal(first.generated, second.generated)


class TestFeasibilityInvariants:
    def test_demand_met_without_forced_topups(self, setting):
        history, realized, demand = setting
        policy = RollingDRRPPolicy(MeanBids(), horizon=HORIZON)
        res = simulate_policy(policy, realized, demand, VM, price_history=history)
        assert res.forced_topups == 0
        assert np.all(res.inventory >= -1e-9)
        # cumulative generation always covers cumulative demand
        assert np.all(np.cumsum(res.generated) >= np.cumsum(demand) - 1e-9)

    def test_reconciliation_absorbs_interruptions(self, setting):
        history, realized, demand = setting
        # A deliberately losing bid: frequent out-of-bid events with real
        # work lost — the plan/realized inventories diverge every window.
        policy = RollingDRRPPolicy(FixedBids(value=0.055), horizon=HORIZON)
        res = simulate_policy(
            policy, realized, demand, VM,
            price_history=history, interruption_loss=0.5,
        )
        assert res.out_of_bid_events > 0
        assert res.forced_topups == 0  # reconciliation kept the plan feasible
        assert np.all(res.inventory >= -1e-9)

    def test_fine_resolution_matches_coarse_totals(self, setting):
        """coarse_block=1 must behave like a fully fine-grained replan."""
        history, realized, demand = setting
        fine = RollingDRRPPolicy(
            MeanBids(), horizon=HorizonConfig(prediction=12, control=6, coarse_block=1)
        )
        res = simulate_policy(fine, realized, demand, VM, price_history=history)
        assert res.forced_topups == 0
        assert res.generated.sum() == pytest.approx(demand.sum(), rel=1e-6)


class TestPriceVisibility:
    def test_replans_see_exactly_published_prices(self, setting):
        """Every replan's history ends at the current slot's price.

        The regression behind ``SimulationContext.price_view``: a stale
        ``spot_history[:-1]`` slice hid the published current price, and a
        longer slice would leak the future.
        """
        history, realized, demand = setting
        strat = RecordingBids()
        policy = RollingDRRPPolicy(strat, horizon=HORIZON)
        simulate_policy(policy, realized, demand, VM, price_history=history)
        assert [t for t, _ in strat.seen] == [0, 6, 12, 18]
        for t, seen in strat.seen:
            assert seen.shape[0] == history.shape[0] + t + 1
            np.testing.assert_array_equal(seen[: history.shape[0]], history)
            np.testing.assert_array_equal(seen[history.shape[0]:], realized[: t + 1])

    def test_policy_name_defaults(self):
        assert RollingDRRPPolicy(MeanBids()).name == "rolling-drrp"
        assert RollingDRRPPolicy(MeanBids(), name="x").name == "x"
        from repro.sim import RollingHorizonPolicy

        assert RollingHorizonPolicy(MeanBids()).name == "rolling-exp-mean"


class TestInterruptedRolling:
    """The bid-reactive planner: typed events, rebids, forced replans."""

    def _spiky(self):
        """A quiet market with two hard spikes the low bid must lose."""
        rng = np.random.default_rng(9)
        history = rng.normal(0.06, 0.003, 300).clip(0.05, 0.07)
        realized = rng.normal(0.06, 0.003, 24).clip(0.05, 0.07)
        realized[7] = realized[15] = 0.19  # above any sane bid, below λ
        demand = rng.uniform(0.2, 0.6, 24)
        return history, realized, demand

    def test_evictions_become_events_and_forced_replans(self):
        history, realized, demand = self._spiky()
        policy = InterruptedRollingDRRPPolicy(
            FixedBidPolicy(0.1), model=InterruptionModel(checkpoint_fraction=0.5),
            horizon=HORIZON,
        )
        res = simulate_policy(
            policy, realized, demand, VM,
            price_history=history, interruption_loss=0.5,
        )
        assert policy.name == "bid-fixed"
        # the plan batches production, so only *rented* spike slots evict;
        # the policy's event stream must mirror the simulator's marker
        # exactly (the final slot is never settled — no next decide call)
        evicted = np.flatnonzero(res.out_of_bid)
        assert [e.slot for e in policy.events] == [s for s in evicted if s < 23]
        assert policy.interruptions == res.out_of_bid_events >= 1
        for e in policy.events:
            assert e.spot_price == pytest.approx(0.19)
            assert e.lost_gb == pytest.approx(e.salvaged_gb)  # 50% checkpoint
        # cadence alone would replan 4 windows; each eviction forces one more
        assert policy.replans == 4 + policy.interruptions
        assert res.forced_topups == 0

    def test_eviction_triggers_a_rebid(self):
        history, realized, demand = self._spiky()
        bid_policy = RebidPolicy(availability=0.5, escalation=1.5)
        policy = InterruptedRollingDRRPPolicy(bid_policy, horizon=HORIZON)
        res = simulate_policy(
            policy, realized, demand, VM,
            price_history=history, interruption_loss=0.5,
        )
        assert policy.interruptions >= 1
        # the escalated bid after the eviction is strictly above the one
        # that lost the auction
        assert policy.events[0].bid < bid_policy.bid(history)
        assert res.out_of_bid_events == policy.interruptions

    def test_nonanticipativity_of_decisions_and_events(self):
        """Perturbing prices after slot k leaves everything through k
        bit-identical: decisions, paid prices, and emitted events."""
        history, realized, demand = self._spiky()

        def run(prices):
            policy = InterruptedRollingDRRPPolicy(
                RebidPolicy(availability=0.5, escalation=1.5),
                model=InterruptionModel(checkpoint_fraction=0.5),
                horizon=HORIZON,
            )
            res = simulate_policy(
                policy, prices, demand, VM,
                price_history=history, interruption_loss=0.5,
            )
            return policy, res

        k = 12  # between the two engineered price spikes
        perturbed = realized.copy()
        perturbed[k:] = (perturbed[k:] * 1.7).clip(None, 0.19)
        base_policy, base_res = run(realized)
        pert_policy, pert_res = run(perturbed)

        np.testing.assert_array_equal(base_res.generated[:k], pert_res.generated[:k])
        np.testing.assert_array_equal(base_res.paid_prices[:k], pert_res.paid_prices[:k])
        np.testing.assert_array_equal(base_res.out_of_bid[:k], pert_res.out_of_bid[:k])
        # events settle one slot late: everything decided at or before k-1
        # (settled by slot k, whose *decision* sees only prices <= k) match
        base_events = [e for e in base_policy.events if e.slot < k]
        pert_events = [e for e in pert_policy.events if e.slot < k]
        assert base_events == pert_events
        # and the futures genuinely diverged, so the prefix check is real
        assert pert_res.out_of_bid[k:].sum() > base_res.out_of_bid[k:].sum()
