"""Rolling MPC policy tests: cadence, reconciliation, price visibility."""

import numpy as np
import pytest

from repro.core import simulate_policy
from repro.market import BidStrategy, FixedBids, MeanBids, ec2_catalog
from repro.sim import HorizonConfig, RollingDRRPPolicy

VM = ec2_catalog()["c1.medium"]
HORIZON = HorizonConfig(prediction=12, control=6, coarse_block=3)


class RecordingBids(BidStrategy):
    """MeanBids that also records every price history it was shown."""

    name = "recording"

    def __init__(self):
        self.inner = MeanBids()
        self.seen = []

    def bids(self, history, length, t=0):
        self.seen.append((t, np.array(history, copy=True)))
        return self.inner.bids(history, length, t=t)


@pytest.fixture(scope="module")
def setting():
    rng = np.random.default_rng(3)
    history = rng.normal(0.06, 0.004, 300).clip(0.04, 0.09)
    realized = rng.normal(0.06, 0.006, 24).clip(0.04, 0.09)
    demand = rng.uniform(0.2, 0.6, 24)
    return history, realized, demand


class TestReplanCadence:
    def test_replans_every_control_interval(self, setting):
        history, realized, demand = setting
        policy = RollingDRRPPolicy(MeanBids(), horizon=HORIZON)
        simulate_policy(policy, realized, demand, VM, price_history=history)
        assert policy.replans == 4  # 24 slots / control 6
        assert len(policy.replan_latencies) == 4

    def test_ragged_tail_window(self, setting):
        history, realized, demand = setting
        policy = RollingDRRPPolicy(MeanBids(), horizon=HORIZON)
        simulate_policy(policy, realized[:20], demand[:20], VM, price_history=history)
        assert policy.replans == 4  # 6 + 6 + 6 + 2

    def test_reset_clears_state(self, setting):
        history, realized, demand = setting
        policy = RollingDRRPPolicy(MeanBids(), horizon=HORIZON)
        first = simulate_policy(policy, realized, demand, VM, price_history=history)
        second = simulate_policy(policy, realized, demand, VM, price_history=history)
        assert policy.replans == 4  # not 8: reset() wiped the first run
        assert first.total_cost == second.total_cost
        np.testing.assert_array_equal(first.generated, second.generated)


class TestFeasibilityInvariants:
    def test_demand_met_without_forced_topups(self, setting):
        history, realized, demand = setting
        policy = RollingDRRPPolicy(MeanBids(), horizon=HORIZON)
        res = simulate_policy(policy, realized, demand, VM, price_history=history)
        assert res.forced_topups == 0
        assert np.all(res.inventory >= -1e-9)
        # cumulative generation always covers cumulative demand
        assert np.all(np.cumsum(res.generated) >= np.cumsum(demand) - 1e-9)

    def test_reconciliation_absorbs_interruptions(self, setting):
        history, realized, demand = setting
        # A deliberately losing bid: frequent out-of-bid events with real
        # work lost — the plan/realized inventories diverge every window.
        policy = RollingDRRPPolicy(FixedBids(value=0.055), horizon=HORIZON)
        res = simulate_policy(
            policy, realized, demand, VM,
            price_history=history, interruption_loss=0.5,
        )
        assert res.out_of_bid_events > 0
        assert res.forced_topups == 0  # reconciliation kept the plan feasible
        assert np.all(res.inventory >= -1e-9)

    def test_fine_resolution_matches_coarse_totals(self, setting):
        """coarse_block=1 must behave like a fully fine-grained replan."""
        history, realized, demand = setting
        fine = RollingDRRPPolicy(
            MeanBids(), horizon=HorizonConfig(prediction=12, control=6, coarse_block=1)
        )
        res = simulate_policy(fine, realized, demand, VM, price_history=history)
        assert res.forced_topups == 0
        assert res.generated.sum() == pytest.approx(demand.sum(), rel=1e-6)


class TestPriceVisibility:
    def test_replans_see_exactly_published_prices(self, setting):
        """Every replan's history ends at the current slot's price.

        The regression behind ``SimulationContext.price_view``: a stale
        ``spot_history[:-1]`` slice hid the published current price, and a
        longer slice would leak the future.
        """
        history, realized, demand = setting
        strat = RecordingBids()
        policy = RollingDRRPPolicy(strat, horizon=HORIZON)
        simulate_policy(policy, realized, demand, VM, price_history=history)
        assert [t for t, _ in strat.seen] == [0, 6, 12, 18]
        for t, seen in strat.seen:
            assert seen.shape[0] == history.shape[0] + t + 1
            np.testing.assert_array_equal(seen[: history.shape[0]], history)
            np.testing.assert_array_equal(seen[history.shape[0]:], realized[: t + 1])

    def test_policy_name_defaults(self):
        assert RollingDRRPPolicy(MeanBids()).name == "rolling-drrp"
        assert RollingDRRPPolicy(MeanBids(), name="x").name == "x"
        from repro.sim import RollingHorizonPolicy

        assert RollingHorizonPolicy(MeanBids()).name == "rolling-exp-mean"
