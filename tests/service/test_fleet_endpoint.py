"""The /v1/fleet batch endpoint: encoding, execution, degrade, caching."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.encoding import BadRequest, normalize_request, request_digest
from repro.service.executor import degraded_request, execute_request
from repro.service.server import PlanningService, ServiceConfig, serve


@pytest.fixture(scope="module")
def live():
    """One HTTP server shared by the endpoint tests in this module."""
    service, httpd = serve(port=0, config=ServiceConfig(workers=1), block=False)
    yield service, httpd
    httpd.shutdown()
    httpd.server_close()
    service.close()


def _post(url, payload, timeout=120):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestFleetEncoding:
    def test_shorthand_normalizes_with_defaults(self):
        req = normalize_request({"kind": "fleet"})
        assert req["kind"] == "fleet"
        assert req["fleet"] == {
            "tenants": 16, "seed": 0, "horizon": 24, "utilization": 0.6,
        }
        assert "instance" not in req

    def test_digest_covers_the_spec(self):
        a = request_digest(normalize_request({"kind": "fleet", "tenants": 8}))
        b = request_digest(normalize_request({"kind": "fleet", "tenants": 8}))
        c = request_digest(normalize_request({"kind": "fleet", "tenants": 9}))
        assert a == b and a != c

    def test_digest_distinct_from_drrp(self):
        fleet = request_digest(normalize_request({"kind": "fleet"}))
        drrp = request_digest(normalize_request({"vm": "m1.large"}))
        assert fleet != drrp

    @pytest.mark.parametrize("payload", [
        {"kind": "fleet", "tenants": 0},
        {"kind": "fleet", "tenants": "many"},
        {"kind": "fleet", "horizon": 1},
        {"kind": "fleet", "utilization": 0.0},
        {"kind": "fleet", "utilization": 1.5},
        {"kind": "fleet", "seed": "x"},
    ])
    def test_bad_specs_rejected(self, payload):
        with pytest.raises(BadRequest):
            normalize_request(payload)


class TestFleetExecution:
    def test_execute_returns_feasible_summary(self):
        req = normalize_request({"kind": "fleet", "tenants": 8, "horizon": 10})
        payload = execute_request(req)
        assert payload["kind"] == "fleet"
        assert payload["tenants"] == 8
        assert payload["feasible"] is True
        assert payload["status"] == "optimal"
        assert sum(payload["methods"].values()) == 8
        assert len(payload["tenant_plans"]) == 8

    def test_degraded_is_heuristic_only(self):
        req = normalize_request({"kind": "fleet", "tenants": 8, "horizon": 10})
        payload = degraded_request(req)
        assert payload["degraded"] == "heuristic-only"
        assert payload["feasible"] is True
        assert all(p["escalated"] is False or p["method"] == "milp"
                   for p in payload["tenant_plans"])
        # No gap-triggered escalations: only infeasible-fallback MILPs.
        full = execute_request(req)
        assert payload["escalated"] <= full["escalated"]


class TestFleetEndpoint:
    def test_post_fleet_solves_and_caches(self, live):
        service, httpd = live
        body = {"tenants": 6, "seed": 11, "horizon": 8}
        status, out = _post(httpd.url + "/v1/fleet", body)
        assert status == 200
        assert out["plan"]["kind"] == "fleet"
        assert out["plan"]["feasible"] is True
        status2, out2 = _post(httpd.url + "/v1/fleet", body)
        assert status2 == 200
        assert out2["job"]["cached"] is True
        assert out2["plan"]["total_cost"] == out["plan"]["total_cost"]

    def test_kind_is_forced_by_the_route(self, live):
        service, httpd = live
        status, out = _post(
            httpd.url + "/v1/fleet",
            {"kind": "drrp", "tenants": 4, "seed": 1, "horizon": 8},
        )
        assert status == 200
        assert out["plan"]["kind"] == "fleet"

    def test_fleet_also_accepted_via_jobs(self, live):
        service, httpd = live
        status, out = _post(
            httpd.url + "/v1/jobs", {"kind": "fleet", "tenants": 4, "horizon": 8},
        )
        assert status in (200, 202)

    def test_bad_fleet_spec_is_400(self, live):
        service, httpd = live
        status, out = _post(httpd.url + "/v1/fleet", {"tenants": -2})
        assert status == 400
        assert "tenants" in out["error"]


class TestFleetOverload:
    def test_degrade_inline_when_saturated(self):
        service = PlanningService(ServiceConfig(workers=0, queue_size=1)).start()
        try:
            # Fill the queue, then force the degrade path.
            service.submit({"kind": "fleet", "tenants": 4, "horizon": 8})
            status, body = service.submit(
                {"kind": "fleet", "tenants": 4, "horizon": 8, "seed": 9,
                 "on_overload": "degrade"}
            )
            assert status == 200
            assert body["plan"]["degraded"] == "heuristic-only"
            assert body["plan"]["feasible"] is True
        finally:
            service.close()
