"""Plan cache (LRU + accounting) and job store tests."""

import threading

import pytest

from repro.service.cache import PlanCache
from repro.service.jobs import Job, JobState, JobStore


class TestPlanCache:
    def test_miss_then_hit(self):
        cache = PlanCache(4)
        assert cache.get("a") is None
        cache.put("a", {"plan": 1})
        assert cache.get("a") == {"plan": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = PlanCache(2)
        cache.put("a", {})
        cache.put("b", {})
        cache.get("a")          # refresh a; b is now oldest
        cache.put("c", {})
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_zero_maxsize_disables(self):
        cache = PlanCache(0)
        cache.put("a", {})
        assert len(cache) == 0 and cache.get("a") is None

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(-1)

    def test_stats_shape(self):
        cache = PlanCache(4)
        cache.put("a", {})
        cache.get("a")
        cache.get("x")
        stats = cache.stats()
        assert stats["size"] == 1 and stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_thread_safety_smoke(self):
        cache = PlanCache(16)

        def worker(base):
            for i in range(200):
                cache.put(f"k{(base + i) % 32}", {"i": i})
                cache.get(f"k{i % 32}")

        threads = [threading.Thread(target=worker, args=(j,)) for j in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 16


class TestJobStore:
    def test_create_assigns_sequential_ids(self):
        store = JobStore()
        a = store.create("sha256:" + "0" * 64, {"kind": "drrp"})
        b = store.create("sha256:" + "1" * 64, {"kind": "drrp"})
        assert a.id != b.id and store.get(a.id) is a and store.get(b.id) is b

    def test_finish_sets_event_and_state(self):
        store = JobStore()
        job = store.create("sha256:" + "0" * 64, {})
        assert not job.done_event.is_set()
        job.finish(plan={"status": "optimal"})
        assert job.state is JobState.DONE and job.done_event.is_set()
        assert job.latency is not None and job.latency >= 0

    def test_failure_path(self):
        job = Job(id="j1", digest="d", request={})
        job.finish(error="boom")
        assert job.state is JobState.FAILED
        assert job.to_dict()["error"] == "boom"

    def test_retention_evicts_only_finished(self):
        store = JobStore(retain=2)
        done1 = store.create("sha256:" + "0" * 64, {})
        done1.finish(plan={})
        pending = store.create("sha256:" + "1" * 64, {})
        done2 = store.create("sha256:" + "2" * 64, {})
        done2.finish(plan={})
        done3 = store.create("sha256:" + "3" * 64, {})
        done3.finish(plan={})
        # oldest finished jobs age out; the pending job survives
        assert store.get(done1.id) is None
        assert store.get(pending.id) is pending
        assert len(store) == 2

    def test_counts_by_state(self):
        store = JobStore()
        store.create("sha256:" + "0" * 64, {})
        done = store.create("sha256:" + "1" * 64, {})
        done.finish(plan={})
        counts = store.counts()
        assert counts["queued"] == 1 and counts["done"] == 1
