"""Wire-encoding tests: normalization, digests, payloads."""

import pytest

from repro.service.encoding import (
    BadRequest,
    build_instance,
    normalize_request,
    plan_payload,
    request_digest,
)


def explicit_drrp(T=4, compute=0.4, vm_name="x"):
    return {
        "kind": "drrp",
        "instance": {
            "demand": [0.3] * T,
            "costs": {
                "compute": [compute] * T,
                "storage": [0.0001] * T,
                "io": [0.2] * T,
                "transfer_in": [0.1] * T,
                "transfer_out": [0.17] * T,
            },
            "phi": 0.5,
            "vm_name": vm_name,
        },
    }


def explicit_srrp(T=3):
    payload = explicit_drrp(T)
    payload["kind"] = "srrp"
    payload["instance"]["tree"] = {
        "root_price": 0.1,
        "stages": [{"values": [0.1, 0.4], "probs": [0.5, 0.5]} for _ in range(T - 1)],
    }
    return payload


class TestNormalize:
    def test_explicit_roundtrip(self):
        req = normalize_request(explicit_drrp())
        assert req["kind"] == "drrp"
        assert req["backend"] == "auto"
        assert req["time_limit"] is None
        assert req["on_overload"] == "reject"
        assert req["instance"]["demand"] == [0.3] * 4

    def test_shorthand_expands_to_explicit(self):
        req = normalize_request({"vm": "m1.large", "horizon": 6, "seed": 1,
                                 "demand_mean": 0.4, "demand_std": 0.1})
        assert len(req["instance"]["demand"]) == 6
        assert req["instance"]["vm_name"] == "m1.large"
        assert all(len(v) == 6 for v in req["instance"]["costs"].values())

    def test_shorthand_deterministic(self):
        short = {"vm": "c1.medium", "horizon": 5, "seed": 3}
        assert normalize_request(short) == normalize_request(dict(short))

    @pytest.mark.parametrize("payload,match", [
        ({"kind": "nope"}, "kind"),
        ({"vm": "t2.bogus", "horizon": 4}, "VM class"),
        ({"backend": "magic", "vm": "m1.large", "horizon": 4}, "backend"),
        ({"vm": "m1.large", "horizon": 0}, "horizon"),
        ({"kind": "srrp", "vm": "m1.large", "horizon": 4}, "instance"),
        ({"time_limit": -1, "vm": "m1.large", "horizon": 4}, "time_limit"),
        ({"on_overload": "panic", "vm": "m1.large", "horizon": 4}, "on_overload"),
        ("not a dict", "JSON object"),
    ])
    def test_bad_requests_rejected(self, payload, match):
        with pytest.raises(BadRequest, match=match):
            normalize_request(payload)

    def test_srrp_probs_must_sum_to_one(self):
        bad = explicit_srrp()
        bad["instance"]["tree"]["stages"][0]["probs"] = [0.9, 0.9]
        with pytest.raises(BadRequest, match="probs"):
            normalize_request(bad)

    def test_srrp_stage_count_must_match_horizon(self):
        bad = explicit_srrp()
        bad["instance"]["tree"]["stages"].append(
            {"values": [0.1, 0.4], "probs": [0.5, 0.5]})
        with pytest.raises(BadRequest, match="stages"):
            normalize_request(bad)


class TestDigest:
    def test_key_order_and_float_width_invariant(self):
        a = normalize_request(explicit_drrp(compute=0.4))
        b_payload = explicit_drrp(compute=0.4 + 1e-15)
        # reversed key insertion order
        b_payload["instance"] = dict(reversed(list(b_payload["instance"].items())))
        b = normalize_request(b_payload)
        assert request_digest(a) == request_digest(b)

    def test_vm_name_label_excluded(self):
        a = normalize_request(explicit_drrp(vm_name="alpha"))
        b = normalize_request(explicit_drrp(vm_name="beta"))
        assert request_digest(a) == request_digest(b)

    def test_content_changes_digest(self):
        a = normalize_request(explicit_drrp(compute=0.4))
        b = normalize_request(explicit_drrp(compute=0.5))
        assert request_digest(a) != request_digest(b)

    def test_backend_is_cache_key_material(self):
        a = normalize_request({**explicit_drrp(), "backend": "auto"})
        b = normalize_request({**explicit_drrp(), "backend": "simplex"})
        assert request_digest(a) != request_digest(b)

    def test_budgets_are_not_cache_key_material(self):
        a = normalize_request({**explicit_drrp(), "time_limit": 1.0})
        b = normalize_request({**explicit_drrp(), "time_limit": 30.0,
                               "on_overload": "degrade"})
        assert request_digest(a) == request_digest(b)

    def test_shorthand_and_explicit_expansion_share_digest(self):
        short = normalize_request({"vm": "m1.large", "horizon": 5, "seed": 2})
        # resubmitting the server's own expansion must hit the same key
        explicit = normalize_request({"kind": "drrp", "instance": short["instance"]})
        assert request_digest(short) == request_digest(explicit)


class TestBuildAndPayload:
    def test_drrp_instance_and_payload(self):
        req = normalize_request(explicit_drrp())
        inst = build_instance(req)
        from repro.core import solve_drrp

        plan = solve_drrp(inst)
        payload = plan_payload("drrp", plan)
        assert payload["status"] == "optimal"
        assert len(payload["alpha"]) == 4
        assert isinstance(payload["total_cost"], float)
        assert set(payload["costs"]) >= {"compute", "inventory"}

    def test_srrp_instance_and_payload(self):
        req = normalize_request(explicit_srrp())
        inst = build_instance(req)
        from repro.core import solve_srrp

        plan = solve_srrp(inst)
        payload = plan_payload("srrp", plan)
        assert payload["status"] == "optimal"
        assert "expected_cost" in payload and "first_chi" in payload
