"""End-to-end trace propagation through the planning service.

Covers the satellite acceptance points: a garbled ``traceparent`` is
never an HTTP error (the server mints a fresh root), a valid header's
trace id survives bit-for-bit into the job's capture manifest and event
file, child sampling follows the caller, and ``/metrics`` serves
parsable Prometheus text while jobs are in flight.
"""

import json
import threading
import urllib.request
from pathlib import Path

import pytest

from repro.obs.manifest import RunManifest
from repro.obs.propagate import (
    TRACEPARENT_HEADER,
    TraceContext,
    activate,
    read_process_events,
)
from repro.service import (
    PlanningService,
    ServiceClient,
    ServiceConfig,
    serve,
)

DRRP = {"kind": "drrp", "vm": "c1.medium", "horizon": 5, "seed": 1,
        "demand_mean": 0.4, "demand_std": 0.1}


def req(seed):
    return {**DRRP, "seed": seed}


@pytest.fixture()
def captured(tmp_path):
    cfg = ServiceConfig(workers=2, capture_dir=str(tmp_path / "cap"))
    with PlanningService(cfg) as svc:
        yield svc, Path(cfg.capture_dir)


@pytest.fixture(scope="module")
def live():
    service, httpd = serve(port=0, config=ServiceConfig(workers=2), block=False)
    yield service, httpd
    httpd.shutdown()
    httpd.server_close()
    service.close()


def wait_done(service, job_id, timeout=30.0):
    job = service.wait(job_id, timeout=timeout)
    assert job is not None and job.state.finished, job
    return job


def post(url, payload, headers=None):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json", **(headers or {})})
    with urllib.request.urlopen(request, timeout=30.0) as resp:
        return resp.status, json.loads(resp.read())


class TestSubmitTraceWiring:
    def test_job_trace_is_child_of_caller(self, captured):
        svc, _ = captured
        caller = TraceContext.new_root()
        _, body = svc.submit(req(31), trace=caller)
        job = wait_done(svc, body["job"]["id"])
        assert job.trace.trace_id == caller.trace_id
        assert job.trace.span_id != caller.span_id
        assert job.trace_parent == caller.span_id

    def test_no_trace_mints_fresh_root(self, captured):
        svc, _ = captured
        _, body = svc.submit(req(32))
        job = wait_done(svc, body["job"]["id"])
        assert job.trace is not None and job.trace_parent is None
        assert len(job.trace.trace_id) == 32

    def test_child_sampling_follows_caller(self, captured):
        svc, _ = captured
        root = TraceContext.new_root()
        unsampled = TraceContext(root.trace_id, root.span_id, sampled=False)
        _, body = svc.submit(req(33), trace=unsampled)
        job = wait_done(svc, body["job"]["id"])
        assert job.trace.sampled is False

    def test_trace_id_round_trips_into_capture(self, tmp_path):
        cap = tmp_path / "cap"
        caller = TraceContext.new_root()
        # Close the service before reading: capture files are written by
        # the worker thread just after the job result is published.
        with PlanningService(ServiceConfig(workers=2, capture_dir=str(cap))) as svc:
            _, body = svc.submit(req(34), trace=caller)
            job = wait_done(svc, body["job"]["id"])

        manifest = RunManifest.load(cap / job.id / "manifest.json")
        trace = manifest.extra["trace"]
        assert trace["trace_id"] == caller.trace_id           # bit-for-bit
        assert trace["parent_span_id"] == caller.span_id

        meta, events = read_process_events(cap / job.id / "events.jsonl")
        assert meta["trace"]["trace_id"] == caller.trace_id
        assert meta["trace"]["parent_span_id"] == caller.span_id
        assert meta["label"] == f"service:{job.id}"
        assert meta["wall_t0"] == job.wall_t0
        # The synthetic queue-wait phase is in the captured stream.
        waits = [e for e in events
                 if e.kind == "phase_end" and e.data.get("phase") == "service_queue_wait"]
        assert len(waits) == 1 and waits[0].data["job"] == job.id


class TestHTTPTraceHeader:
    def test_valid_header_propagates(self, live):
        service, httpd = live
        ctx = TraceContext.new_root()
        status, body = post(httpd.url + "/v1/jobs", req(41),
                            {TRACEPARENT_HEADER: ctx.to_traceparent()})
        assert status in (200, 202)
        job = wait_done(service, body["job"]["id"])
        assert job.trace.trace_id == ctx.trace_id

    @pytest.mark.parametrize("header", [
        "garbage",
        "00-zzzz-11-01",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",
        "ff-" + "1" * 32 + "-" + "2" * 16 + "-01",
    ])
    def test_garbled_header_is_never_an_error(self, live, header):
        service, httpd = live
        status, body = post(httpd.url + "/v1/jobs", req(42),
                            {TRACEPARENT_HEADER: header})
        assert status in (200, 202)        # fresh root, not a 4xx/5xx
        job = wait_done(service, body["job"]["id"])
        assert job.trace is not None and job.trace_parent is None

    def test_client_sends_ambient_trace(self, live):
        service, httpd = live
        client = ServiceClient(httpd.url, timeout=30.0)
        ctx = TraceContext.new_root()
        with activate(ctx):
            result = client.submit(req(43))
        job = wait_done(service, result.job_id)
        assert job.trace.trace_id == ctx.trace_id
        assert job.trace_parent == ctx.span_id
        assert job.to_dict()["trace_id"] == ctx.trace_id

    def test_explicit_client_trace_beats_ambient(self, live):
        service, httpd = live
        explicit = TraceContext.new_root()
        client = ServiceClient(httpd.url, timeout=30.0, trace=explicit)
        with activate(TraceContext.new_root()):
            result = client.submit(req(44))
        job = wait_done(service, result.job_id)
        assert job.trace.trace_id == explicit.trace_id


def _parse_prometheus(text):
    """Minimal 0.0.4 parser: returns {metric_name: [(labels, value), ...]}."""
    samples = {}
    for line in text.strip().splitlines():
        if line.startswith("#"):
            parts = line.split()
            assert parts[1] in ("TYPE", "HELP")
            continue
        name_part, value = line.rsplit(" ", 1)
        if "{" in name_part:
            name, labels = name_part.split("{", 1)
            assert labels.endswith("}")
        else:
            name, labels = name_part, ""
        float(value.replace("+Inf", "inf").replace("NaN", "nan"))
        samples.setdefault(name, []).append((labels, value))
    return samples


class TestMetricsExposition:
    def test_json_is_default(self, live):
        _, httpd = live
        with urllib.request.urlopen(httpd.url + "/metrics", timeout=10.0) as resp:
            assert resp.headers["Content-Type"].startswith("application/json")
            json.loads(resp.read())

    @pytest.mark.parametrize("how", ["query", "accept"])
    def test_prometheus_negotiation(self, live, how):
        _, httpd = live
        url = httpd.url + "/metrics"
        headers = {}
        if how == "query":
            url += "?format=prom"
        else:
            headers["Accept"] = "text/plain"
        request = urllib.request.Request(url, headers=headers)
        with urllib.request.urlopen(request, timeout=10.0) as resp:
            ctype = resp.headers["Content-Type"]
            assert ctype.startswith("text/plain") and "version=0.0.4" in ctype
            _parse_prometheus(resp.read().decode())

    def test_prometheus_parses_under_load(self, live):
        service, httpd = live
        stop = threading.Event()
        errors = []

        def scrape():
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(
                            httpd.url + "/metrics?format=prom", timeout=10.0) as resp:
                        _parse_prometheus(resp.read().decode())
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    return

        scraper = threading.Thread(target=scrape)
        scraper.start()
        try:
            ids = [post(httpd.url + "/v1/jobs", req(50 + i))[1]["job"]["id"]
                   for i in range(4)]
            for job_id in ids:
                wait_done(service, job_id)
        finally:
            stop.set()
            scraper.join()
        assert not errors, errors

        # After real solves the scrape carries solver metrics.
        with urllib.request.urlopen(
                httpd.url + "/metrics?format=prom", timeout=10.0) as resp:
            samples = _parse_prometheus(resp.read().decode())
        assert any(name.startswith("repro_") for name in samples)
        assert "repro_service_submissions" in samples
        assert "repro_solves" in samples
