"""Load-generator benchmark tests, including the acceptance workload."""

import json

import pytest

from repro.service.loadgen import (
    LoadgenConfig,
    build_workload,
    run_loadgen,
    summary_line,
)


class TestWorkload:
    def test_deterministic_given_seed(self):
        a, na = build_workload(LoadgenConfig(requests=50, seed=7, out=None))
        b, nb = build_workload(LoadgenConfig(requests=50, seed=7, out=None))
        assert a == b and na == nb

    def test_duplicate_share_respected(self):
        payloads, n_unique = build_workload(
            LoadgenConfig(requests=100, duplicate_share=0.3, out=None)
        )
        assert len(payloads) == 100
        assert n_unique == 70
        # duplicates are literal repeats of earlier unique payloads
        seen = []
        dups = 0
        for p in payloads:
            if p in seen:
                dups += 1
            else:
                seen.append(p)
        assert dups == 30

    def test_mixed_kinds(self):
        payloads, _ = build_workload(LoadgenConfig(requests=60, out=None))
        kinds = {p["kind"] for p in payloads}
        assert kinds == {"drrp", "srrp"}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LoadgenConfig(requests=0)
        with pytest.raises(ValueError):
            LoadgenConfig(duplicate_share=1.0)


class TestAcceptanceRun:
    def test_200_mixed_requests(self, tmp_path, monkeypatch):
        """The PR's acceptance workload: 200 requests, >=30% duplicates."""
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
        record = run_loadgen(LoadgenConfig(requests=200, duplicate_share=0.3))

        assert record["dropped"] == 0, "no submission may be dropped"
        assert record["duplicate_share"] >= 0.3
        assert record["cache"]["hit_rate"] >= record["duplicate_share"], (
            "every duplicate must be answered by the cache or coalescing"
        )
        assert record["cached_latency"]["n"] > 0
        assert record["cached_latency"]["p50_ms"] < 50.0, (
            f"cached p50 {record['cached_latency']['p50_ms']:.1f}ms over budget"
        )
        # saturation answers with 429, never a hang
        assert record["saturation"]["rejected"] > 0
        assert record["saturation"]["retry_after_s"] > 0

        # the bench record landed where REPRO_BENCH_DIR pointed
        on_disk = json.loads((tmp_path / "BENCH_service.json").read_text())
        assert on_disk["requests"] == 200
        assert on_disk["jobs"]["failed"] == 0
        assert "service bench:" in summary_line(record)
