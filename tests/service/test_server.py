"""Planning service core + HTTP endpoint tests."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service import (
    PlanningService,
    ReplanPolicy,
    Saturated,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    serve,
)

DRRP = {"kind": "drrp", "vm": "c1.medium", "horizon": 5, "seed": 1,
        "demand_mean": 0.4, "demand_std": 0.1}


def other(seed):
    return {**DRRP, "seed": seed}


@pytest.fixture()
def service():
    with PlanningService(ServiceConfig(workers=2, default_time_limit=30.0)) as svc:
        yield svc


@pytest.fixture(scope="module")
def live():
    """One HTTP server shared by the endpoint tests in this module."""
    service, httpd = serve(port=0, config=ServiceConfig(workers=2), block=False)
    client = ServiceClient(httpd.url, timeout=30.0)
    yield service, httpd, client
    httpd.shutdown()
    httpd.server_close()
    service.close()


def wait_done(service, job_id, timeout=30.0):
    job = service.wait(job_id, timeout=timeout)
    assert job is not None and job.state.finished, job
    return job


class TestServiceCore:
    def test_solve_then_cache_hit(self, service):
        status, body = service.submit(DRRP)
        assert status == 202
        job = wait_done(service, body["job"]["id"])
        assert job.plan["status"] == "optimal"

        status, body = service.submit(dict(DRRP))
        assert status == 200
        assert body["job"]["cached"] is True
        assert body["plan"] == job.plan
        assert service.cache.hits == 1

    def test_distinct_requests_do_not_share(self, service):
        _, a = service.submit(other(11))
        _, b = service.submit(other(12))
        ja = wait_done(service, a["job"]["id"])
        jb = wait_done(service, b["job"]["id"])
        assert ja.digest != jb.digest
        assert ja.plan["total_cost"] != jb.plan["total_cost"]

    def test_inflight_coalescing(self):
        # workers=0: the job stays queued, so an identical submission
        # must coalesce onto it rather than enqueue a duplicate.
        with PlanningService(ServiceConfig(workers=0)) as svc:
            s1, b1 = svc.submit(other(21))
            s2, b2 = svc.submit(other(21))
            assert (s1, s2) == (202, 202)
            assert b2["job"]["id"] == b1["job"]["id"]
            assert b2["job"]["coalesced"] == 1
            assert svc.registry.counter("service_coalesced").value == 1

    def test_backpressure_reject_with_retry_after(self):
        with PlanningService(ServiceConfig(workers=0, queue_size=1)) as svc:
            assert svc.submit(other(31))[0] == 202
            status, body = svc.submit(other(32))
            assert status == 429
            assert body["retry_after"] > 0

    def test_backpressure_degrade_inline(self):
        with PlanningService(ServiceConfig(workers=0, queue_size=1)) as svc:
            svc.submit(other(41))
            status, body = svc.submit({**other(42), "on_overload": "degrade"})
            assert status == 200
            assert body["job"]["degraded"] == "wagner-whitin"
            assert body["plan"]["degraded"] == "wagner-whitin"
            assert body["plan"]["status"] == "optimal"  # WW is exact here
            # degraded plans must not poison the cache
            assert len(svc.cache) == 0

    def test_degraded_plans_never_cached(self):
        with PlanningService(ServiceConfig(workers=0, queue_size=1)) as svc:
            svc.submit(other(51))
            svc.submit({**other(52), "on_overload": "degrade"})
            status, _ = svc.submit({**other(52), "on_overload": "degrade"})
            assert status == 200
            assert svc.cache.hits == 0

    def test_expired_deadline_still_yields_a_plan(self, service):
        # A budget that expires in the queue still answers with a usable
        # plan (warm-start incumbent or degradation), marked time_limit.
        status, body = service.submit({**other(61), "time_limit": 1e-9})
        assert status == 202
        job = wait_done(service, body["job"]["id"])
        assert job.state.value == "done"
        assert job.plan["status"] == "time_limit"
        assert job.plan["alpha"]  # a real schedule, not an error
        # and it must not be cached as an optimum
        assert len(service.cache) == 0

    def test_bad_request_is_400(self, service):
        status, body = service.submit({"kind": "bogus"})
        assert status == 400 and "kind" in body["error"]

    def test_closed_service_is_503(self):
        svc = PlanningService(ServiceConfig(workers=1)).start()
        svc.close()
        status, body = svc.submit(DRRP)
        assert status == 503 and "retry_after" in body

    def test_close_fails_queued_jobs(self):
        svc = PlanningService(ServiceConfig(workers=0)).start()
        _, body = svc.submit(other(71))
        svc.close()
        job = svc.jobs.get(body["job"]["id"])
        assert job.state.value == "failed" and "shutting down" in job.error

    def test_health_and_metrics_shapes(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["queue_capacity"] == 64
        snap = service.metrics_snapshot()
        assert "service_cache" in snap
        json.dumps(snap, allow_nan=False)  # strictly JSON-serializable

    def test_capture_writes_manifest_and_events(self, tmp_path):
        config = ServiceConfig(workers=1, capture_dir=str(tmp_path))
        with PlanningService(config) as svc:
            _, body = svc.submit(other(81))
            job = wait_done(svc, body["job"]["id"])
        out = tmp_path / job.id
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["kind"] == "service"
        assert manifest["result_digest"].startswith("sha256:")
        events = (out / "events.jsonl").read_text().splitlines()
        assert events and all(json.loads(line)["kind"] for line in events)


class TestHTTPEndpoints:
    def test_healthz(self, live):
        _, _, client = live
        health = client.healthz()
        assert health["status"] == "ok" and health["workers"] == 2

    def test_sync_plan_roundtrip_and_cache(self, live):
        _, _, client = live
        first = client.solve(other(91), wait_s=30)
        assert first.plan["status"] == "optimal" and not first.hit
        again = client.solve(other(91), wait_s=30)
        assert again.cached and again.plan == first.plan

    def test_async_submit_poll_fetch(self, live):
        _, _, client = live
        sub = client.submit(other(92))
        job = client.wait(sub.job_id, timeout=30)
        assert job["state"] == "done"
        plan = client.plan(sub.job_id)
        assert plan["status"] == "optimal"

    def test_unknown_job_404(self, live):
        _, _, client = live
        with pytest.raises(ServiceError) as exc:
            client.status("j999999-deadbeef")
        assert exc.value.status == 404

    def test_pending_plan_409(self):
        service, httpd = serve(port=0, config=ServiceConfig(workers=0), block=False)
        try:
            client = ServiceClient(httpd.url, timeout=10.0)
            sub = client.submit(other(93))
            with pytest.raises(ServiceError) as exc:
                client.plan(sub.job_id)
            assert exc.value.status == 409
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()

    def test_saturation_429_sets_retry_after_header(self):
        service, httpd = serve(
            port=0, config=ServiceConfig(workers=0, queue_size=1), block=False
        )
        try:
            client = ServiceClient(httpd.url, timeout=10.0)
            client.submit(other(94))
            with pytest.raises(Saturated) as exc:
                client.submit(other(95))
            assert exc.value.status == 429 and exc.value.retry_after > 0
            # the header is the transport for the hint
            req = urllib.request.Request(
                httpd.url + "/v1/jobs", data=json.dumps(other(96)).encode(),
                headers={"Content-Type": "application/json"}, method="POST",
            )
            try:
                urllib.request.urlopen(req, timeout=10)
            except urllib.error.HTTPError as err:
                assert err.code == 429
                assert float(err.headers["Retry-After"]) > 0
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()

    def test_malformed_body_400(self, live):
        _, httpd, _ = live
        req = urllib.request.Request(
            httpd.url + "/v1/jobs", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_unknown_route_404(self, live):
        _, httpd, _ = live
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(httpd.url + "/nope", timeout=10)
        assert exc.value.code == 404

    def test_metrics_endpoint_is_json(self, live):
        _, _, client = live
        snap = client.metrics()
        assert "service_submissions" in snap

    def test_srrp_over_http(self, live):
        _, _, client = live
        T = 3
        payload = {"kind": "srrp", "instance": {
            "demand": [0.3] * T,
            "costs": {"compute": [0.4] * T, "storage": [0.0001] * T,
                      "io": [0.2] * T, "transfer_in": [0.1] * T,
                      "transfer_out": [0.17] * T},
            "phi": 0.5, "vm_name": "s",
            "tree": {"root_price": 0.1,
                     "stages": [{"values": [0.1, 0.4], "probs": [0.5, 0.5]}
                                for _ in range(T - 1)]}}}
        result = client.solve(payload, wait_s=30)
        assert result.plan["status"] == "optimal"
        assert "expected_cost" in result.plan


class TestReplanPolicy:
    def test_rolling_sessions_hit_cache_on_replay(self, live):
        _, _, client = live
        demand = [0.42, 0.3, 0.55, 0.2, 0.61, 0.38]
        prices = [0.2, 0.45, 0.15, 0.3, 0.25, 0.4]

        first = ReplanPolicy(client=client, demand=demand, compute_prices=prices,
                             lookahead=3, vm_name="sess-a")
        first.run(wait_s=30)
        assert len(first.results) == len(demand)

        # Same window replayed: every suffix instance digest repeats, so
        # the whole second session runs out of the plan cache — the
        # vm_name label differing must not matter.
        second = ReplanPolicy(client=client, demand=demand, compute_prices=prices,
                              lookahead=3, vm_name="sess-b")
        second.run(wait_s=30)
        assert second.cache_hits == len(demand)
        # and both sessions made identical decisions
        for a, b in zip(first.results, second.results):
            assert a.plan["alpha"] == b.plan["alpha"]

    def test_unchanged_retick_is_cache_hit(self, live):
        _, _, client = live
        policy = ReplanPolicy(client=client, demand=[0.5, 0.4, 0.3],
                              compute_prices=[0.3, 0.2, 0.4], lookahead=2,
                              vm_name="sess-c")
        policy.plan_slot(wait_s=30)
        retick = policy.plan_slot(wait_s=30)  # nothing advanced, nothing changed
        assert retick.hit
