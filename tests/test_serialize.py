"""repro.serialize: canonical JSON, digests, instance identity, re-exports."""

import subprocess
import sys
from fractions import Fraction

import numpy as np
import pytest

from repro.core import DRRPInstance, SRRPInstance, build_tree, on_demand_schedule
from repro.market import ec2_catalog
from repro.serialize import (
    canonical_json,
    instance_digest,
    instance_payload,
    jsonable,
    result_digest,
)


def drrp(vm="m1.large", T=5, demand=0.4):
    catalog = ec2_catalog()
    return DRRPInstance(
        demand=np.full(T, demand),
        costs=on_demand_schedule(catalog[vm], T),
        vm_name=vm,
    )


def srrp(T=3):
    catalog = ec2_catalog()
    tree = build_tree(0.1, [(np.array([0.1, 0.4]), np.array([0.5, 0.5]))] * (T - 1))
    return SRRPInstance(
        demand=np.full(T, 0.3),
        costs=on_demand_schedule(catalog["m1.large"], T),
        tree=tree,
        vm_name="m1.large",
    )


class TestJsonable:
    def test_fraction_and_nonfinite(self):
        assert jsonable(Fraction(1, 3)) == "1/3"
        assert jsonable(float("inf")) == "Infinity"
        assert jsonable(float("-inf")) == "-Infinity"
        assert jsonable(float("nan")) == "NaN"

    def test_numpy_values(self):
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.arange(3)) == [0, 1, 2]

    def test_telemetry_reexport_is_same_object(self):
        from repro.solver.telemetry import jsonable as via_telemetry

        assert via_telemetry is jsonable


class TestCompatReexports:
    def test_manifest_still_exports_canonical_names(self):
        from repro.obs.manifest import canonical_json as via_manifest_json
        from repro.obs.manifest import result_digest as via_manifest_digest

        assert via_manifest_json is canonical_json
        assert via_manifest_digest is result_digest

    def test_obs_package_reexport(self):
        import repro.obs as obs

        assert obs.result_digest is result_digest


class TestInstanceIdentity:
    def test_drrp_payload_shape(self):
        payload = instance_payload(drrp())
        assert payload["kind"] == "drrp"
        assert len(payload["demand"]) == 5
        assert set(payload["costs"]) == {
            "compute", "storage", "io", "transfer_in", "transfer_out"
        }

    def test_srrp_payload_includes_tree(self):
        payload = instance_payload(srrp())
        assert payload["kind"] == "srrp"
        assert payload["tree"]["nodes"][0]["depth"] == 0

    def test_digest_stable_across_reconstruction(self):
        assert instance_digest(drrp()) == instance_digest(drrp())

    def test_digest_ignores_label_but_not_content(self):
        a = drrp(vm="m1.large")
        b = DRRPInstance(demand=a.demand, costs=a.costs, vm_name="renamed")
        assert instance_digest(a) == instance_digest(b)
        assert instance_digest(a) != instance_digest(drrp(demand=0.5))

    def test_sub_ulp_noise_shares_digest(self):
        a = drrp()
        noisy = DRRPInstance(
            demand=a.demand * (1.0 + 1e-14), costs=a.costs, vm_name=a.vm_name
        )
        assert instance_digest(a) == instance_digest(noisy)

    def test_canonical_json_rejects_nan_payloads(self):
        # nonfinite floats become strings, so strict dumping never fails
        text = canonical_json({"bound": float("inf")})
        assert "Infinity" in text


class TestStdlibOnlyImport:
    @pytest.mark.parametrize("module", ["repro.serialize", "repro.service", "repro.obs"])
    def test_import_does_not_load_numpy(self, module):
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).parent.parent)
        code = (
            f"import sys, {module}; "
            "banned = [m for m in ('numpy', 'scipy') if m in sys.modules]; "
            "assert not banned, banned"
        )
        env = {**os.environ, "PYTHONPATH": src}
        subprocess.run([sys.executable, "-c", code], check=True, env=env)
