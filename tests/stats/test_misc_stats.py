"""KDE, normality tests, descriptive summaries, RNG plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    GaussianKDE,
    SeriesSummary,
    ensure_rng,
    histogram,
    jarque_bera,
    mape,
    mspe,
    normal_fit,
    normal_pdf,
    relative_change,
    shapiro_wilk,
    silverman_bandwidth,
    spawn_rngs,
    summarize,
    truncated_normal,
)


class TestKDE:
    def test_density_integrates_to_one(self):
        rng = np.random.default_rng(0)
        kde = GaussianKDE(rng.normal(size=400))
        xs, ys = kde.grid(num=2001, pad=6.0)
        integral = np.trapezoid(ys, xs)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_density_peaks_near_mode(self):
        rng = np.random.default_rng(1)
        kde = GaussianKDE(rng.normal(5.0, 0.5, size=800))
        xs, ys = kde.grid()
        assert abs(xs[np.argmax(ys)] - 5.0) < 0.3

    def test_bimodal_detected(self):
        rng = np.random.default_rng(2)
        x = np.concatenate([rng.normal(0, 0.3, 500), rng.normal(4, 0.3, 500)])
        kde = GaussianKDE(x, bandwidth=0.3)
        dens = kde(np.array([0.0, 2.0, 4.0]))
        assert dens[0] > dens[1] and dens[2] > dens[1]

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE(np.array([1.0, 2.0]), bandwidth=0.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            GaussianKDE(np.array([1.0]))

    def test_silverman_scale_invariance(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=300)
        assert silverman_bandwidth(10 * x) == pytest.approx(10 * silverman_bandwidth(x), rel=1e-9)

    def test_histogram_counts_total(self):
        x = np.arange(100, dtype=float)
        counts, edges = histogram(x, bins=10)
        assert counts.sum() == 100
        assert edges.size == 11


class TestNormality:
    def test_normal_sample_not_rejected(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=800)
        assert not jarque_bera(x).rejects_normality()
        assert not shapiro_wilk(x).rejects_normality()

    def test_exponential_rejected(self):
        rng = np.random.default_rng(1)
        x = rng.exponential(size=800)
        assert jarque_bera(x).rejects_normality()
        assert shapiro_wilk(x).rejects_normality()

    def test_jarque_bera_needs_enough_data(self):
        with pytest.raises(ValueError):
            jarque_bera(np.arange(5, dtype=float))

    def test_constant_series_degenerate(self):
        res = jarque_bera(np.full(50, 3.0))
        assert res.p_value == 0.0

    def test_shapiro_long_series_subsampled(self):
        rng = np.random.default_rng(2)
        res = shapiro_wilk(rng.normal(size=9000))
        assert 0.0 <= res.p_value <= 1.0

    def test_normal_fit_and_pdf(self):
        rng = np.random.default_rng(3)
        x = rng.normal(2.0, 0.5, size=5000)
        mu, sd = normal_fit(x)
        assert mu == pytest.approx(2.0, abs=0.05)
        assert sd == pytest.approx(0.5, abs=0.05)
        peak = normal_pdf(np.array([mu]), mu, sd)[0]
        assert peak == pytest.approx(1 / (sd * np.sqrt(2 * np.pi)))


class TestDescriptive:
    def test_summary_fields(self):
        s = summarize(np.arange(1, 11, dtype=float))
        assert isinstance(s, SeriesSummary)
        assert s.n == 10 and s.mean == pytest.approx(5.5)
        assert s.as_row()["median"] == pytest.approx(5.5)

    def test_mspe_zero_for_perfect(self):
        x = np.array([1.0, 2.0])
        assert mspe(x, x) == 0.0

    def test_mspe_shape_mismatch(self):
        with pytest.raises(ValueError):
            mspe(np.zeros(3), np.zeros(4))

    def test_mape_and_zero_guard(self):
        assert mape(np.array([2.0]), np.array([1.0])) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            mape(np.array([0.0]), np.array([1.0]))

    def test_relative_change(self):
        assert relative_change(150.0, 100.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            relative_change(1.0, 0.0)


class TestRNG:
    def test_ensure_rng_accepts_all_forms(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g
        assert isinstance(ensure_rng(5), np.random.Generator)
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seeded_reproducibility(self):
        a = ensure_rng(7).normal(size=5)
        b = ensure_rng(7).normal(size=5)
        assert np.array_equal(a, b)

    def test_spawn_independent_streams(self):
        r1, r2 = spawn_rngs(0, 2)
        assert not np.array_equal(r1.normal(size=10), r2.normal(size=10))

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    @given(st.floats(0.1, 2.0), st.floats(0.05, 1.0), st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_truncated_normal_positive(self, mean, std, size):
        rng = np.random.default_rng(11)
        x = truncated_normal(rng, mean, std, size)
        assert x.shape == (size,)
        assert np.all(x > 0)

    def test_truncated_normal_matches_paper_mean(self):
        rng = np.random.default_rng(0)
        x = truncated_normal(rng, 0.4, 0.2, 50_000)
        # truncation at 0 lifts the mean slightly above 0.4
        assert 0.4 < x.mean() < 0.45

    def test_truncated_degenerate_cases(self):
        rng = np.random.default_rng(0)
        assert np.all(truncated_normal(rng, 1.0, 0.0, 3) == 1.0)
        with pytest.raises(ValueError):
            truncated_normal(rng, -1.0, 0.0, 3)
        with pytest.raises(ValueError):
            truncated_normal(rng, -10.0, 0.1, 3)
