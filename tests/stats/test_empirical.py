"""Empirical distribution, quantiles, and outlier analysis tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import EmpiricalDistribution, five_number_summary, iqr_outliers


class TestFiveNumberSummary:
    def test_known_values(self):
        mn, q1, med, q3, mx = five_number_summary(np.arange(1, 101, dtype=float))
        assert (mn, mx) == (1.0, 100.0)
        assert med == pytest.approx(50.5)
        assert q1 == pytest.approx(25.75)
        assert q3 == pytest.approx(75.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            five_number_summary(np.array([]))


class TestIQROutliers:
    def test_no_outliers_in_uniform(self):
        rng = np.random.default_rng(0)
        mask, stats = iqr_outliers(rng.uniform(0, 1, 1000))
        assert stats.outlier_fraction == 0.0
        assert not mask.any()

    def test_planted_outliers_found(self):
        x = np.concatenate([np.full(100, 1.0) + np.linspace(-0.1, 0.1, 100), [10.0, -8.0]])
        mask, stats = iqr_outliers(x)
        assert mask[-2] and mask[-1]
        assert stats.n_outliers == 2

    def test_fences_follow_k(self):
        x = np.linspace(0, 1, 101)
        _, s1 = iqr_outliers(x, k=1.5)
        _, s3 = iqr_outliers(x, k=3.0)
        assert s3.upper_fence > s1.upper_fence
        assert s3.lower_fence < s1.lower_fence

    def test_summary_consistency(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=500)
        _, s = iqr_outliers(x)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
        assert s.iqr == pytest.approx(s.q3 - s.q1)


class TestEmpiricalDistribution:
    def test_probabilities_sum_to_one(self):
        d = EmpiricalDistribution(np.array([1.0, 1.0, 2.0, 3.0]))
        assert d.probabilities.sum() == pytest.approx(1.0)
        assert d.support_size == 3

    def test_mean_and_std(self):
        d = EmpiricalDistribution(np.array([1.0, 3.0]))
        assert d.mean() == pytest.approx(2.0)
        assert d.std() == pytest.approx(1.0)

    def test_cdf_and_quantile(self):
        d = EmpiricalDistribution(np.array([1.0, 2.0, 3.0, 4.0]))
        assert d.cdf(2.0) == pytest.approx(0.5)
        assert d.cdf(0.5) == 0.0
        assert d.cdf(9.0) == 1.0
        assert d.quantile(0.5) == 2.0
        assert d.quantile(1.0) == 4.0

    def test_quantile_domain(self):
        d = EmpiricalDistribution(np.array([1.0]))
        with pytest.raises(ValueError):
            d.quantile(1.5)

    def test_rounding_merges_near_ties(self):
        d = EmpiricalDistribution(np.array([0.05001, 0.05002]), decimals=3)
        assert d.support_size == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution(np.array([]))

    def test_sampling_stays_on_support(self):
        d = EmpiricalDistribution(np.array([1.0, 5.0, 9.0]))
        rng = np.random.default_rng(3)
        s = d.sample(rng, 100)
        assert set(np.unique(s)) <= {1.0, 5.0, 9.0}


class TestTruncateAtBid:
    """Eq. (10): bid-dependent dynamic sampling."""

    def _dist(self):
        # prices 1..5 with equal probability
        return EmpiricalDistribution(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))

    def test_high_bid_keeps_everything(self):
        d = self._dist().truncate_at_bid(bid=10.0, overflow_value=20.0)
        assert d.support_size == 5
        assert d.probabilities.sum() == pytest.approx(1.0)

    def test_mass_above_bid_moves_to_on_demand(self):
        d = self._dist().truncate_at_bid(bid=3.0, overflow_value=20.0)
        # values 1,2,3 kept (0.6), 0.4 at lambda=20
        assert 20.0 in d.values
        idx = np.nonzero(d.values == 20.0)[0][0]
        assert d.probabilities[idx] == pytest.approx(0.4)
        assert d.probabilities.sum() == pytest.approx(1.0)

    def test_out_of_bid_probability_matches_prob_above(self):
        base = self._dist()
        d = base.truncate_at_bid(bid=2.0, overflow_value=9.0)
        idx = np.nonzero(d.values == 9.0)[0][0]
        assert d.probabilities[idx] == pytest.approx(base.prob_above(2.0))

    def test_bid_below_support_all_on_demand(self):
        d = self._dist().truncate_at_bid(bid=0.5, overflow_value=7.0)
        assert d.support_size == 1
        assert d.values[0] == 7.0
        assert d.probabilities[0] == pytest.approx(1.0)

    @given(
        st.floats(0.0, 6.0),
        st.floats(6.5, 30.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_truncation_preserves_total_mass(self, bid, lam):
        d = self._dist().truncate_at_bid(bid, lam)
        assert d.probabilities.sum() == pytest.approx(1.0)
        assert np.all(np.diff(d.values) > 0)  # sorted, unique


class TestCoarsen:
    def test_noop_when_small(self):
        d = EmpiricalDistribution(np.array([1.0, 2.0]))
        assert d.coarsen(5) is d

    def test_support_reduced(self):
        rng = np.random.default_rng(0)
        d = EmpiricalDistribution(rng.normal(size=2000), decimals=4)
        c = d.coarsen(3)
        assert c.support_size <= 3
        assert c.probabilities.sum() == pytest.approx(1.0)

    def test_mean_approximately_preserved(self):
        rng = np.random.default_rng(1)
        d = EmpiricalDistribution(rng.uniform(0, 1, 5000), decimals=5)
        c = d.coarsen(4)
        assert c.mean() == pytest.approx(d.mean(), abs=0.02)

    def test_invalid_support_rejected(self):
        d = EmpiricalDistribution(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            d.coarsen(0)

    @given(st.integers(1, 10))
    @settings(max_examples=25, deadline=None)
    def test_mass_conserved_for_any_target(self, k):
        rng = np.random.default_rng(42)
        d = EmpiricalDistribution(rng.exponential(size=500), decimals=4)
        c = d.coarsen(k)
        assert c.support_size <= k
        assert c.probabilities.sum() == pytest.approx(1.0)
