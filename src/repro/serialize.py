"""Canonical serialization and content digests, shared across layers.

Home of the canonical-JSON encoding that backs every content-addressed
artifact in the library: run-manifest result digests (:mod:`repro.obs`),
plan-cache keys (:mod:`repro.service`), and fuzz reproducer identity.
Extracted from ``repro.obs.manifest`` so cache keys do not depend on the
observability package; the old names are still re-exported there.

The canonical form is deliberate about the two things that break naive
``json.dumps`` hashing:

* floats are rounded to 12 significant digits, so bit-identical reruns
  and cross-platform reruns with sub-ulp noise map to the same digest;
* mappings are sorted recursively and encoded with a fixed separator
  set, so key order never matters.

:func:`instance_payload` / :func:`instance_digest` give DRRP and SRRP
instances a stable content identity — the same instance submitted twice
(whatever the float widths or dict ordering of the submission) digests
identically, which is exactly the property the planning service's cache
and in-flight coalescing rely on.

This module is stdlib-only (``jsonable`` handles numpy values without
importing numpy), so the service client can import it anywhere.
"""

from __future__ import annotations

import hashlib
import json
import math
from fractions import Fraction

__all__ = [
    "canonical_json",
    "canonicalize",
    "jsonable",
    "result_digest",
    "instance_payload",
    "instance_digest",
]


def jsonable(obj):
    """Coerce an arbitrary payload into strictly valid JSON types.

    Payloads are free-form: certification events carry exact
    :class:`fractions.Fraction` values, backends attach numpy scalars and
    arrays, and bounds are routinely ``inf``/``nan``.  ``json.dumps``
    either raises ``TypeError`` on those or (for non-finite floats) emits
    ``Infinity`` literals that no strict JSON parser accepts.  This walk
    maps them to faithful, portable encodings:

    * ``Fraction`` -> its exact ``"p/q"`` string (lossless);
    * numpy scalars -> the matching Python scalar, arrays -> nested lists;
    * ``inf`` / ``-inf`` / ``nan`` -> the strings ``"Infinity"`` /
      ``"-Infinity"`` / ``"NaN"`` (the JSON-Schema convention);
    * anything else unserializable -> ``repr(obj)`` as a last resort.

    Lives here (not in :mod:`repro.solver.telemetry`, which re-exports
    it) because importing any ``repro.solver`` submodule loads the whole
    numpy-backed solver stack, and this walk is needed by stdlib-only
    consumers like the service client.
    """
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            return "NaN"
        if math.isinf(obj):
            return "Infinity" if obj > 0 else "-Infinity"
        return obj
    if isinstance(obj, Fraction):
        return f"{obj.numerator}/{obj.denominator}"
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in obj]
    # numpy scalars/arrays without importing numpy (this module must stay
    # importable in the scipy/numpy-free degradation environment).
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return jsonable(tolist())
    item = getattr(obj, "item", None)
    if callable(item):
        return jsonable(item())
    try:
        json.dumps(obj)
        return obj
    except TypeError:
        return repr(obj)


def canonicalize(obj):
    """Round floats to 12 significant digits and sort mappings, recursively."""
    obj = jsonable(obj)
    if isinstance(obj, float):
        return float(f"{obj:.12g}")
    if isinstance(obj, dict):
        return {k: canonicalize(obj[k]) for k in sorted(obj)}
    if isinstance(obj, list):
        return [canonicalize(v) for v in obj]
    return obj


def canonical_json(obj) -> str:
    """Deterministic JSON encoding used for digesting results."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"), allow_nan=False)


def result_digest(obj) -> str:
    """``sha256:<hex>`` over the canonical JSON form of ``obj``."""
    return "sha256:" + hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def _tree_payload(tree) -> dict:
    """Replay-stable view of a :class:`~repro.core.scenario.ScenarioTree`."""
    return {
        "horizon": int(tree.horizon),
        "nodes": [
            {
                "parent": int(n.parent),
                "depth": int(n.depth),
                "price": float(n.price),
                "cond_prob": float(n.cond_prob),
            }
            for n in tree.nodes
        ],
    }


def instance_payload(instance) -> dict:
    """The content-defining fields of a DRRP or SRRP instance, as JSON types.

    Dispatches on shape, not class, so it works on anything that quacks
    like :class:`~repro.core.drrp.DRRPInstance` or
    :class:`~repro.core.srrp.SRRPInstance` (and keeps this module free of
    numpy-importing dependencies).  Volatile labels (``vm_name``) are
    included — two instances that differ only in their label are planning
    the same problem, but callers diffing payloads want to see the label.
    """
    c = instance.costs
    payload = {
        "demand": [float(x) for x in instance.demand],
        "costs": {
            "compute": [float(x) for x in c.compute],
            "storage": [float(x) for x in c.storage],
            "io": [float(x) for x in c.io],
            "transfer_in": [float(x) for x in c.transfer_in],
            "transfer_out": [float(x) for x in c.transfer_out],
        },
        "phi": float(instance.phi),
        "initial_storage": float(instance.initial_storage),
        "vm_name": str(instance.vm_name),
    }
    tree = getattr(instance, "tree", None)
    if tree is not None:
        payload["kind"] = "srrp"
        payload["tree"] = _tree_payload(tree)
    else:
        payload["kind"] = "drrp"
        rate = getattr(instance, "bottleneck_rate", None)
        if rate is not None:
            payload["bottleneck_rate"] = float(rate)
            payload["bottleneck_capacity"] = [
                float(x) for x in instance.bottleneck_capacity
            ]
    return payload


def instance_digest(instance) -> str:
    """Content digest of a DRRP/SRRP instance (cache-key material).

    The label (``vm_name``) is excluded: a cache keyed by this digest
    should share plans between identical problems however they are named.
    """
    payload = instance_payload(instance)
    payload.pop("vm_name", None)
    return result_digest(payload)
