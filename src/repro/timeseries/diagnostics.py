"""Model and series diagnostics: Ljung–Box, stationarity heuristics, and
forecast-accuracy comparisons (the MSPE analysis behind Figure 8)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scistats

from .acf import acf
from .arima import mean_forecast
from repro.stats.descriptive import mspe

__all__ = [
    "LjungBoxResult",
    "ljung_box",
    "is_weakly_stationary",
    "ForecastComparison",
    "compare_to_mean_forecast",
]


@dataclass(frozen=True)
class LjungBoxResult:
    """Ljung–Box portmanteau test for residual autocorrelation."""

    statistic: float
    p_value: float
    lags: int

    def residuals_look_white(self, alpha: float = 0.05) -> bool:
        return self.p_value >= alpha


def ljung_box(residuals: np.ndarray, lags: int = 10, fitted_params: int = 0) -> LjungBoxResult:
    """Q = n(n+2) Σ r_k²/(n-k) ~ chi²(lags - fitted_params) under whiteness."""
    r = np.asarray(residuals, dtype=float).ravel()
    n = r.size
    if lags >= n:
        raise ValueError("lags must be < series length")
    rho = acf(r, lags)[1:]
    k = np.arange(1, lags + 1)
    q = n * (n + 2) * float(np.sum(rho**2 / (n - k)))
    dof = max(lags - fitted_params, 1)
    p = float(scistats.chi2.sf(q, df=dof))
    return LjungBoxResult(statistic=q, p_value=p, lags=lags)


def is_weakly_stationary(x: np.ndarray, n_splits: int = 4, tol: float = 0.5) -> bool:
    """Cheap stationarity screen: split the series into segments and compare
    segment means/variances against the overall spread.

    This mirrors the paper's informal check ("statistical properties such as
    mean and variance are constant over time") rather than a full ADF test;
    the SARIMA study only needs a go/no-go on further differencing.
    """
    x = np.asarray(x, dtype=float).ravel()
    if x.size < 4 * n_splits:
        raise ValueError("series too short for the stationarity screen")
    segments = np.array_split(x, n_splits)
    means = np.array([s.mean() for s in segments])
    stds = np.array([s.std() for s in segments])
    overall_std = x.std()
    if overall_std == 0:
        return True
    mean_drift = (means.max() - means.min()) / overall_std
    std_ratio = (stds.max() - stds.min()) / overall_std
    return bool(mean_drift <= 2 * tol and std_ratio <= 2 * tol)


@dataclass(frozen=True)
class ForecastComparison:
    """MSPE of a model forecast against the expected-mean benchmark.

    ``improvement`` is the fractional MSPE reduction; the paper's punchline
    is that the best SARIMA achieves only a *slight* improvement, hence
    prediction-driven DRRP is inadequate and SRRP is needed.
    """

    model_mspe: float
    mean_mspe: float

    @property
    def improvement(self) -> float:
        if self.mean_mspe == 0:
            return 0.0
        return 1.0 - self.model_mspe / self.mean_mspe

    @property
    def model_beats_mean(self) -> bool:
        return self.model_mspe < self.mean_mspe


def compare_to_mean_forecast(
    history: np.ndarray, actual: np.ndarray, predicted: np.ndarray
) -> ForecastComparison:
    """Score ``predicted`` against the historical-mean predictor on ``actual``."""
    actual = np.asarray(actual, dtype=float)
    baseline = mean_forecast(history, actual.size)
    return ForecastComparison(
        model_mspe=mspe(actual, predicted),
        mean_mspe=mspe(actual, baseline),
    )
