"""Ordinary and seasonal differencing with exact inversion.

SARIMA estimation works on the differenced series; forecasting needs to
integrate differenced-scale predictions back to the original scale.  The
:class:`DifferencingTransform` records the initial values consumed by each
pass so that inversion is exact (round-trip property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["difference", "seasonal_difference", "DifferencingTransform"]


def difference(x: np.ndarray, order: int = 1) -> np.ndarray:
    """Apply ``order`` passes of first differencing."""
    x = np.asarray(x, dtype=float)
    for _ in range(order):
        x = np.diff(x)
    return x


def seasonal_difference(x: np.ndarray, period: int, order: int = 1) -> np.ndarray:
    """Apply ``order`` passes of lag-``period`` differencing."""
    x = np.asarray(x, dtype=float)
    for _ in range(order):
        if x.size <= period:
            raise ValueError("series shorter than seasonal period")
        x = x[period:] - x[:-period]
    return x


@dataclass
class DifferencingTransform:
    """Invertible (d, D, s) differencing pipeline.

    Seasonal differencing is applied first, then ordinary differencing —
    matching the Box–Jenkins convention ``(1-L)^d (1-L^s)^D x_t``.  The
    operators commute algebraically; fixing an order makes the recorded
    initial values unambiguous.
    """

    d: int = 0
    D: int = 0
    period: int = 0
    _seasonal_heads: list[np.ndarray] = field(default_factory=list, repr=False)
    _ordinary_heads: list[float] = field(default_factory=list, repr=False)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Difference ``x``, recording what inversion will need."""
        x = np.asarray(x, dtype=float)
        if self.D and self.period <= 0:
            raise ValueError("seasonal differencing requires a positive period")
        self._seasonal_heads.clear()
        self._ordinary_heads.clear()
        for _ in range(self.D):
            if x.size <= self.period:
                raise ValueError("series shorter than seasonal period")
            self._seasonal_heads.append(x[: self.period].copy())
            x = x[self.period :] - x[: -self.period]
        for _ in range(self.d):
            if x.size < 2:
                raise ValueError("series too short to difference")
            self._ordinary_heads.append(float(x[0]))
            x = np.diff(x)
        return x

    def invert(self, w: np.ndarray) -> np.ndarray:
        """Exact inverse of :meth:`apply` (returns the original series)."""
        x = np.asarray(w, dtype=float)
        for head in reversed(self._ordinary_heads):
            x = np.concatenate([[head], head + np.cumsum(x)])
        for head in reversed(self._seasonal_heads):
            n = x.size + self.period
            out = np.empty(n)
            out[: self.period] = head
            for t in range(self.period, n):
                out[t] = x[t - self.period] + out[t - self.period]
            x = out
        return x

    def extend_forecast(self, history: np.ndarray, w_forecast: np.ndarray) -> np.ndarray:
        """Integrate differenced-scale forecasts to the original scale.

        ``history`` is the original (undifferenced) series the model was fit
        on; ``w_forecast`` the h-step predictions on the differenced scale.
        """
        history = np.asarray(history, dtype=float)
        h = w_forecast.size
        # Rebuild the partially differenced histories (seasonal first).
        levels = [history]
        x = history
        for _ in range(self.D):
            x = x[self.period :] - x[: -self.period]
            levels.append(x)
        for _ in range(self.d):
            x = np.diff(x)
            levels.append(x)
        # Integrate forecasts back up through the stack.
        fc = np.asarray(w_forecast, dtype=float)
        for k in range(self.d):
            base = levels[self.D + self.d - 1 - k]
            fc = base[-1] + np.cumsum(fc)
        for k in range(self.D):
            base = levels[self.D - 1 - k]
            out = np.empty(h)
            for i in range(h):
                prev = base[i - self.period] if i < self.period else out[i - self.period]
                out[i] = fc[i] + prev
            fc = out
        return fc
