"""Seasonal ARIMA estimation and forecasting, from scratch.

Implements the Box–Jenkins model family the paper uses for its spot-price
predictability study (§IV-A): ``SARIMA(p, d, q) × (P, D, Q)_s`` with

* conditional-sum-of-squares (CSS) estimation — residuals come from one
  :func:`scipy.signal.lfilter` pass (the ARMA recursion *is* an IIR filter,
  so the hot loop is compiled C, not Python — the HPC-guide idiom of mapping
  algorithms onto vectorized primitives);
* multiplicative seasonal polynomials expanded into single lag polynomials;
* stationarity/invertibility enforced via a root-modulus barrier inside the
  (derivative-free) optimizer;
* h-step forecasting on the differenced scale, integrated back with
  :class:`~repro.timeseries.differencing.DifferencingTransform`;
* AIC/BIC for the order search in :mod:`repro.timeseries.auto`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize as sciopt
from scipy import signal as scisignal

from .differencing import DifferencingTransform

__all__ = ["ARIMAOrder", "ARIMAResult", "fit_arima", "mean_forecast", "naive_forecast"]

_PENALTY = 1e12


@dataclass(frozen=True)
class ARIMAOrder:
    """Model order ``(p, d, q) × (P, D, Q)_s``; s = 0 disables seasonality."""

    p: int
    d: int
    q: int
    P: int = 0
    D: int = 0
    Q: int = 0
    s: int = 0

    def __post_init__(self) -> None:
        if min(self.p, self.d, self.q, self.P, self.D, self.Q, self.s) < 0:
            raise ValueError("orders must be nonnegative")
        if (self.P or self.D or self.Q) and self.s < 2:
            raise ValueError("seasonal terms require a seasonal period s >= 2")

    @property
    def num_params(self) -> int:
        return self.p + self.q + self.P + self.Q

    @property
    def label(self) -> str:
        base = f"ARIMA({self.p},{self.d},{self.q})"
        if self.s:
            base = f"S{base}x({self.P},{self.D},{self.Q})_{self.s}"
        return base


def _expand_poly(base: np.ndarray, seasonal: np.ndarray, s: int) -> np.ndarray:
    """Multiply a lag polynomial by a seasonal lag polynomial.

    ``base`` holds coefficients on L^0..L^k; ``seasonal`` on L^0, L^s, L^2s,…
    """
    if seasonal.size == 1:
        return base
    out = np.zeros(base.size + (seasonal.size - 1) * s)
    for j, coef in enumerate(seasonal):
        if coef != 0.0:
            out[j * s : j * s + base.size] += coef * base
    return out


def _polys(order: ARIMAOrder, params: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Combined AR and MA lag polynomials (index = power of L, [0] == 1)."""
    p, q, P, Q, s = order.p, order.q, order.P, order.Q, order.s
    phi = params[:p]
    theta = params[p : p + q]
    Phi = params[p + q : p + q + P]
    Theta = params[p + q + P : p + q + P + Q]
    ar = np.concatenate([[1.0], -phi])
    ma = np.concatenate([[1.0], theta])
    sar = np.concatenate([[1.0], -Phi])
    sma = np.concatenate([[1.0], Theta])
    return _expand_poly(ar, sar, s), _expand_poly(ma, sma, s)


def _min_root_modulus(poly: np.ndarray) -> float:
    """Smallest |root| of a lag polynomial (inf for degree-0)."""
    trimmed = np.trim_zeros(poly, "b")
    if trimmed.size <= 1:
        return math.inf
    roots = np.roots(trimmed[::-1])
    return float(np.abs(roots).min()) if roots.size else math.inf


def _css(params: np.ndarray, order: ARIMAOrder, w: np.ndarray, estimate_mean: bool) -> float:
    """Conditional sum of squares with a stationarity/invertibility barrier."""
    mu = params[-1] if estimate_mean else 0.0
    core = params[:-1] if estimate_mean else params
    ar_poly, ma_poly = _polys(order, core)
    if _min_root_modulus(ar_poly) < 1.001 or _min_root_modulus(ma_poly) < 1.001:
        return _PENALTY
    resid = scisignal.lfilter(ar_poly, ma_poly, w - mu)
    return float(resid @ resid)


@dataclass
class ARIMAResult:
    """Fitted SARIMA model.

    Attributes
    ----------
    order / params / mean:
        Model specification; ``params`` is the flat CSS-optimal vector
        ``[phi..., theta..., Phi..., Theta...]``.
    sigma2:
        Residual variance (CSS / n).
    aic / bic:
        Gaussian-CSS information criteria used for model selection.
    residuals:
        In-sample one-step CSS residuals on the differenced scale.
    history:
        The original series the model was fit on (needed to forecast).
    """

    order: ARIMAOrder
    params: np.ndarray
    mean: float
    sigma2: float
    aic: float
    bic: float
    residuals: np.ndarray
    history: np.ndarray
    _transform: DifferencingTransform = field(repr=False, default=None)
    _w: np.ndarray = field(repr=False, default=None)

    def forecast(self, steps: int) -> np.ndarray:
        """h-step-ahead point forecasts on the original scale."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        ar_poly, ma_poly = _polys(self.order, self.params)
        w = self._w - self.mean
        resid = self.residuals
        n = w.size
        la, lm = ar_poly.size - 1, ma_poly.size - 1
        wext = np.concatenate([w, np.zeros(steps)])
        rext = np.concatenate([resid, np.zeros(steps)])
        for k in range(steps):
            t = n + k
            acc = 0.0
            for i in range(1, la + 1):
                if t - i >= 0:
                    acc -= ar_poly[i] * wext[t - i]
            for j in range(1, lm + 1):
                if 0 <= t - j < n:  # future shocks are zero
                    acc += ma_poly[j] * rext[t - j]
            wext[t] = acc
        w_fc = wext[n:] + self.mean
        if self._transform is None or (self.order.d == 0 and self.order.D == 0):
            return w_fc
        return self._transform.extend_forecast(self.history, w_fc)

    def forecast_interval(self, steps: int, level: float = 0.95) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Point forecasts with approximate Gaussian prediction intervals.

        Variance grows with the psi-weights of the ARMA representation
        (exact for d = D = 0; a standard approximation otherwise).
        """
        from scipy.stats import norm

        point = self.forecast(steps)
        ar_poly, ma_poly = _polys(self.order, self.params)
        # psi weights: impulse response of the filter ma/ar
        impulse = np.zeros(steps)
        impulse[0] = 1.0
        psi = scisignal.lfilter(ma_poly, ar_poly, impulse)
        var = self.sigma2 * np.cumsum(psi**2)
        z = norm.ppf(0.5 + level / 2)
        half = z * np.sqrt(var)
        return point, point - half, point + half

    @property
    def fitted_values(self) -> np.ndarray:
        """One-step-ahead in-sample fits on the differenced scale."""
        return self._w - self.residuals


def _initial_params(order: ARIMAOrder, w: np.ndarray, estimate_mean: bool) -> np.ndarray:
    """Yule-Walker-flavored starting point: OLS for the AR part, zeros elsewhere."""
    p = order.p
    phi0 = np.zeros(p)
    if p and w.size > 2 * p + 1:
        Y = w[p:]
        X = np.column_stack([w[p - i - 1 : -i - 1 or None] for i in range(p)])
        try:
            phi0, *_ = np.linalg.lstsq(X, Y, rcond=None)
            phi0 = np.clip(phi0, -0.9, 0.9)
        except np.linalg.LinAlgError:
            phi0 = np.zeros(p)
    parts = [phi0, np.zeros(order.q), np.zeros(order.P), np.zeros(order.Q)]
    if estimate_mean:
        parts.append([float(w.mean())])
    return np.concatenate(parts) if parts else np.zeros(0)


def fit_arima(x: np.ndarray, order: ARIMAOrder, maxiter: int | None = None) -> ARIMAResult:
    """Fit a SARIMA model by CSS.

    Parameters
    ----------
    x:
        Original (undifferenced) series.
    order:
        Model order.
    maxiter:
        Nelder–Mead iteration cap (default scales with parameter count).
    """
    x = np.asarray(x, dtype=float).ravel()
    transform = DifferencingTransform(d=order.d, D=order.D, period=order.s)
    w = transform.apply(x) if (order.d or order.D) else x.copy()
    min_len = order.p + order.q + order.P * max(order.s, 1) + order.Q * max(order.s, 1) + 8
    if w.size < min_len:
        raise ValueError(f"series too short ({w.size}) for {order.label}")

    estimate_mean = order.d == 0 and order.D == 0
    theta0 = _initial_params(order, w, estimate_mean)

    if theta0.size == 0:
        params = np.zeros(0)
        mu = 0.0
    elif theta0.size == 1 and estimate_mean and order.num_params == 0:
        params = np.zeros(0)
        mu = float(w.mean())
    else:
        res = sciopt.minimize(
            _css, theta0, args=(order, w, estimate_mean), method="Nelder-Mead",
            options={
                "maxiter": maxiter or 400 * max(1, theta0.size),
                "xatol": 1e-6, "fatol": 1e-9,
            },
        )
        best = res.x
        if _css(best, order, w, estimate_mean) >= _PENALTY:
            best = theta0  # optimizer wandered into the barrier; fall back
        if estimate_mean:
            params, mu = best[:-1], float(best[-1])
        else:
            params, mu = best, 0.0

    ar_poly, ma_poly = _polys(order, params)
    residuals = scisignal.lfilter(ar_poly, ma_poly, w - mu)
    n = residuals.size
    css = float(residuals @ residuals)
    sigma2 = max(css / n, 1e-300)
    k = order.num_params + (1 if estimate_mean else 0) + 1  # + sigma2
    loglik_proxy = -0.5 * n * (math.log(2 * math.pi * sigma2) + 1.0)
    aic = -2 * loglik_proxy + 2 * k
    bic = -2 * loglik_proxy + k * math.log(n)

    return ARIMAResult(
        order=order, params=params, mean=mu, sigma2=sigma2, aic=aic, bic=bic,
        residuals=residuals, history=x, _transform=transform, _w=w,
    )


def mean_forecast(x: np.ndarray, steps: int) -> np.ndarray:
    """The paper's benchmark predictor: the expected mean of the history."""
    return np.full(steps, float(np.asarray(x, dtype=float).mean()))


def naive_forecast(x: np.ndarray, steps: int) -> np.ndarray:
    """Last-value-carried-forward predictor (secondary baseline)."""
    return np.full(steps, float(np.asarray(x, dtype=float)[-1]))
