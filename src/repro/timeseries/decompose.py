"""Classical seasonal decomposition (Figure 6).

Splits a series into trend + seasonal + remainder the way R's
``decompose()`` (additive) does — the paper's Figure 6 shows exactly this
three-panel decomposition of the hourly resampled price series with a
24-hour season:

* trend: centered moving average of window = period (with the usual
  half-weight endpoints for even periods);
* seasonal: per-season means of the detrended series, centered to sum to 0;
* remainder: series - trend - seasonal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeasonalDecomposition", "decompose_additive"]


@dataclass(frozen=True)
class SeasonalDecomposition:
    """Additive decomposition ``observed = trend + seasonal + remainder``.

    ``trend`` and ``remainder`` carry NaN at the edges the moving average
    cannot cover (period//2 points each side), like R's ``decompose``.
    """

    observed: np.ndarray
    trend: np.ndarray
    seasonal: np.ndarray
    remainder: np.ndarray
    period: int

    @property
    def seasonal_amplitude(self) -> float:
        """Peak-to-trough height of one seasonal cycle."""
        cycle = self.seasonal[: self.period]
        return float(cycle.max() - cycle.min())

    def trend_range(self) -> float:
        """Spread of the trend component (NaN-aware)."""
        t = self.trend[~np.isnan(self.trend)]
        return float(t.max() - t.min()) if t.size else 0.0

    def seasonal_strength(self) -> float:
        """1 - Var(remainder)/Var(seasonal+remainder), clipped to [0, 1].

        The standard 'strength of seasonality' measure (Hyndman); ~0 means
        no seasonality, ~1 means the seasonal component dominates.
        """
        mask = ~np.isnan(self.remainder)
        rem = self.remainder[mask]
        com = rem + self.seasonal[mask]
        var_com = float(np.var(com))
        if var_com == 0:
            return 0.0
        return float(np.clip(1.0 - np.var(rem) / var_com, 0.0, 1.0))


def _centered_moving_average(x: np.ndarray, period: int) -> np.ndarray:
    """Centered MA with half-weights at both ends for even periods."""
    n = x.size
    if period % 2 == 1:
        kernel = np.full(period, 1.0 / period)
        half = period // 2
    else:
        kernel = np.full(period + 1, 1.0 / period)
        kernel[0] = kernel[-1] = 0.5 / period
        half = period // 2
    smoothed = np.convolve(x, kernel, mode="valid")
    out = np.full(n, np.nan)
    out[half : half + smoothed.size] = smoothed
    return out


def decompose_additive(x: np.ndarray, period: int) -> SeasonalDecomposition:
    """Classical additive decomposition with the given seasonal period."""
    x = np.asarray(x, dtype=float).ravel()
    if period < 2:
        raise ValueError("period must be >= 2")
    if x.size < 2 * period:
        raise ValueError("need at least two full seasonal cycles")
    trend = _centered_moving_average(x, period)
    detrended = x - trend
    seasonal_means = np.zeros(period)
    for s in range(period):
        vals = detrended[s::period]
        vals = vals[~np.isnan(vals)]
        seasonal_means[s] = vals.mean() if vals.size else 0.0
    seasonal_means -= seasonal_means.mean()  # center to zero net effect
    seasonal = np.tile(seasonal_means, x.size // period + 1)[: x.size]
    remainder = x - trend - seasonal
    return SeasonalDecomposition(
        observed=x, trend=trend, seasonal=seasonal, remainder=remainder, period=period
    )
