"""Holt–Winters (triple exponential smoothing) forecaster.

A second forecasting family alongside SARIMA, used as an extra baseline in
the prediction study: if *neither* model family extracts day-ahead skill
from spot prices, the paper's "prediction is insufficient" conclusion is
robust to model choice, not an ARIMA artifact.

Additive formulation with optional damped trend:

    level_t    = a (x_t - seas_{t-s}) + (1-a)(level_{t-1} + b_t-1)
    trend_t    = b (level_t - level_{t-1}) + (1-b) trend_{t-1}
    seas_t     = g (x_t - level_t) + (1-g) seas_{t-s}
    forecast   = level + h*trend + seas[(n+h) mod s]

Smoothing weights are fit by SSE minimization (L-BFGS-B within (0,1)
boxes), initialized from the first seasonal cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize as sciopt

__all__ = ["HoltWintersResult", "fit_holt_winters"]


@dataclass
class HoltWintersResult:
    """Fitted smoothing state ready to forecast."""

    alpha: float
    beta: float
    gamma: float
    level: float
    trend: float
    seasonal: np.ndarray  # length s (or length 1 when non-seasonal)
    period: int
    sse: float
    n_obs: int
    fitted: np.ndarray

    def forecast(self, steps: int) -> np.ndarray:
        """h-step-ahead forecasts from the final state."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        h = np.arange(1, steps + 1)
        out = self.level + h * self.trend
        if self.period > 1:
            idx = (self.n_obs + h - 1) % self.period
            out = out + self.seasonal[idx]
        return out


def _run_filter(x: np.ndarray, period: int, alpha: float, beta: float, gamma: float):
    """One smoothing pass; returns (sse, level, trend, seasonal, fitted)."""
    n = x.size
    s = period
    if s > 1:
        seasonal = x[:s] - x[:s].mean()
        level = float(x[:s].mean())
    else:
        seasonal = np.zeros(1)
        level = float(x[0])
    trend = float((x[min(s, n - 1)] - x[0]) / max(min(s, n - 1), 1))
    fitted = np.zeros(n)
    sse = 0.0
    seas = seasonal.copy()
    for t in range(n):
        si = t % s if s > 1 else 0
        pred = level + trend + (seas[si] if s > 1 else 0.0)
        fitted[t] = pred
        err = x[t] - pred
        sse += err * err
        new_level = alpha * (x[t] - (seas[si] if s > 1 else 0.0)) + (1 - alpha) * (level + trend)
        trend = beta * (new_level - level) + (1 - beta) * trend
        if s > 1:
            seas[si] = gamma * (x[t] - new_level) + (1 - gamma) * seas[si]
        level = new_level
    return sse, level, trend, seas, fitted


def fit_holt_winters(
    x: np.ndarray,
    period: int = 0,
    initial_params: tuple[float, float, float] = (0.3, 0.05, 0.1),
) -> HoltWintersResult:
    """Fit additive Holt–Winters by SSE.

    ``period = 0`` or ``1`` disables the seasonal component (Holt's linear
    trend method).
    """
    x = np.asarray(x, dtype=float).ravel()
    s = int(period) if period and period > 1 else 1
    if x.size < max(2 * s, 6):
        raise ValueError("series too short for Holt-Winters")

    def objective(params):
        a, b, g = params
        if not (0 < a < 1 and 0 <= b < 1 and 0 <= g < 1):
            return 1e18
        return _run_filter(x, s, a, b, g)[0]

    res = sciopt.minimize(
        objective,
        np.asarray(initial_params),
        method="L-BFGS-B",
        bounds=[(1e-4, 1 - 1e-4), (0.0, 1 - 1e-4), (0.0, 1 - 1e-4)],
    )
    a, b, g = res.x
    sse, level, trend, seasonal, fitted = _run_filter(x, s, a, b, g)
    return HoltWintersResult(
        alpha=float(a), beta=float(b), gamma=float(g),
        level=level, trend=trend, seasonal=seasonal,
        period=s, sse=float(sse), n_obs=x.size, fitted=fitted,
    )
