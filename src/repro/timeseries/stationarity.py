"""Augmented Dickey–Fuller unit-root test.

The paper "verifies that our test series is statistically stationary ...
and does not require further differencing" before fitting SARIMA; the ADF
test is the standard instrument for that claim.  Implemented from scratch:

    Δx_t = c + ρ·x_{t-1} + Σ_{i=1..p} φ_i Δx_{t-i} + ε_t

is fit by least squares; the t-statistic of ρ is compared against
MacKinnon's critical values for the constant-only case.  Lag order is
chosen by AIC over 0..max_lag (the usual default ``12·(n/100)^0.25`` caps
the search).

Critical values use MacKinnon (2010)'s response-surface coefficients for
the "c" (constant, no trend) variant, so they adapt to the sample size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ADFResult", "adf_test"]

# MacKinnon (2010) response surface: tau_c(N) ~ b0 + b1/N + b2/N^2
_MACKINNON_C = {
    0.01: (-3.43035, -6.5393, -16.786),
    0.05: (-2.86154, -2.8903, -4.234),
    0.10: (-2.56677, -1.5384, -2.809),
}


@dataclass(frozen=True)
class ADFResult:
    """Outcome of the ADF regression."""

    statistic: float
    lags: int
    n_obs: int
    critical_values: dict

    def rejects_unit_root(self, alpha: float = 0.05) -> bool:
        """True -> the series looks stationary (no unit root) at ``alpha``."""
        if alpha not in self.critical_values:
            raise ValueError(f"no critical value tabulated for alpha={alpha}")
        return self.statistic < self.critical_values[alpha]


def _ols(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Least squares with coefficient standard errors."""
    coef, _res, rank, _sv = np.linalg.lstsq(X, y, rcond=None)
    resid = y - X @ coef
    dof = max(y.size - rank, 1)
    sigma2 = float(resid @ resid) / dof
    XtX_inv = np.linalg.pinv(X.T @ X)
    se = np.sqrt(np.maximum(np.diag(XtX_inv) * sigma2, 1e-300))
    return coef, se


def adf_test(x: np.ndarray, max_lag: int | None = None) -> ADFResult:
    """Run the ADF test (constant, no trend) with AIC lag selection."""
    x = np.asarray(x, dtype=float).ravel()
    n = x.size
    if n < 15:
        raise ValueError("series too short for the ADF test")
    if np.std(x) == 0:
        raise ValueError("constant series has no unit-root question to ask")
    if max_lag is None:
        max_lag = min(int(np.ceil(12.0 * (n / 100.0) ** 0.25)), n // 2 - 2)
    dx = np.diff(x)

    def regress(p: int):
        # rows t = p .. len(dx)-1 ; regressors: 1, x_{t-1}, dx_{t-1..t-p}
        y = dx[p:]
        m = y.size
        cols = [np.ones(m), x[p:-1]]
        for i in range(1, p + 1):
            cols.append(dx[p - i : len(dx) - i])
        X = np.column_stack(cols)
        coef, se = _ols(X, y)
        resid = y - X @ coef
        sse = float(resid @ resid)
        k = X.shape[1]
        aic = m * np.log(max(sse / m, 1e-300)) + 2 * k
        t_rho = coef[1] / se[1]
        return aic, float(t_rho), m

    best = None
    for p in range(0, max_lag + 1):
        aic, t_rho, m = regress(p)
        if best is None or aic < best[0]:
            best = (aic, t_rho, p, m)
    _, statistic, lags, m = best

    critical = {
        alpha: b0 + b1 / m + b2 / (m * m)
        for alpha, (b0, b1, b2) in _MACKINNON_C.items()
    }
    return ADFResult(statistic=statistic, lags=lags, n_obs=m, critical_values=critical)
