"""Time-series substrate: differencing, ACF/PACF, classical decomposition,
SARIMA estimation/forecasting, automatic order search, and diagnostics —
the toolkit behind the paper's spot-price predictability study (§IV-A)."""

from .differencing import DifferencingTransform, difference, seasonal_difference
from .acf import Correlogram, acf, correlogram, pacf
from .decompose import SeasonalDecomposition, decompose_additive
from .arima import ARIMAOrder, ARIMAResult, fit_arima, mean_forecast, naive_forecast
from .auto import AutoARIMASpec, auto_arima, candidate_orders
from .bootstrap import default_block_length, moving_block_bootstrap
from .spectral import Periodogram, dominant_period, periodogram
from .holtwinters import HoltWintersResult, fit_holt_winters
from .stationarity import ADFResult, adf_test
from .diagnostics import (
    ForecastComparison,
    LjungBoxResult,
    compare_to_mean_forecast,
    is_weakly_stationary,
    ljung_box,
)

__all__ = [
    "DifferencingTransform",
    "difference",
    "seasonal_difference",
    "Correlogram",
    "acf",
    "correlogram",
    "pacf",
    "SeasonalDecomposition",
    "decompose_additive",
    "ARIMAOrder",
    "ARIMAResult",
    "fit_arima",
    "mean_forecast",
    "naive_forecast",
    "AutoARIMASpec",
    "auto_arima",
    "candidate_orders",
    "ForecastComparison",
    "LjungBoxResult",
    "compare_to_mean_forecast",
    "is_weakly_stationary",
    "ljung_box",
    "HoltWintersResult",
    "fit_holt_winters",
    "ADFResult",
    "adf_test",
    "default_block_length",
    "moving_block_bootstrap",
    "Periodogram",
    "dominant_period",
    "periodogram",
]
