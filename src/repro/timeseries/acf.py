"""Autocorrelation and partial autocorrelation functions (Figure 7).

ACF uses the standard biased estimator (divide by ``n`` and ``c0``), PACF
uses the Durbin–Levinson recursion on the ACF.  Both return the 95 %
white-noise confidence limit ``1.96/sqrt(n)`` the paper's correlograms draw,
so the experiment module can count "significant but weak" lags exactly the
way §IV-A2 discusses them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["acf", "pacf", "Correlogram", "correlogram"]


def acf(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelations r_0..r_max_lag (r_0 == 1).

    Computed as one vectorized correlation per lag on the demeaned series;
    the biased normalization keeps the sequence positive semidefinite (which
    Durbin–Levinson requires).
    """
    x = np.asarray(x, dtype=float).ravel()
    n = x.size
    if n < 2:
        raise ValueError("series too short for autocorrelation")
    if max_lag >= n:
        raise ValueError(f"max_lag {max_lag} must be < series length {n}")
    xc = x - x.mean()
    denom = float(xc @ xc)
    if denom == 0.0:
        raise ValueError("constant series has undefined autocorrelation")
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    for k in range(1, max_lag + 1):
        out[k] = float(xc[k:] @ xc[:-k]) / denom
    return out


def pacf(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Partial autocorrelations φ_11..φ_kk via Durbin–Levinson (index 0 is 1)."""
    r = acf(x, max_lag)
    out = np.empty(max_lag + 1)
    out[0] = 1.0
    if max_lag == 0:
        return out
    phi_prev = np.zeros(max_lag + 1)
    phi_prev[1] = r[1]
    out[1] = r[1]
    for k in range(2, max_lag + 1):
        num = r[k] - float(phi_prev[1:k] @ r[1:k][::-1])
        den = 1.0 - float(phi_prev[1:k] @ r[1:k])
        phi_kk = num / den if abs(den) > 1e-12 else 0.0
        phi = phi_prev.copy()
        phi[k] = phi_kk
        phi[1:k] = phi_prev[1:k] - phi_kk * phi_prev[1:k][::-1]
        out[k] = phi_kk
        phi_prev = phi
    return out


@dataclass(frozen=True)
class Correlogram:
    """ACF/PACF values plus the white-noise confidence band."""

    lags: np.ndarray
    acf_values: np.ndarray
    pacf_values: np.ndarray
    confidence_limit: float

    def significant_acf_lags(self) -> np.ndarray:
        """Lags (>=1) whose ACF exceeds the 95 % band — the paper's
        "certain degree of correlation with its past at certain lag value"."""
        mask = np.abs(self.acf_values[1:]) > self.confidence_limit
        return self.lags[1:][mask]

    def max_abs_acf(self) -> float:
        """Largest |ACF| beyond lag 0 — the paper's 'greatly deviated from 1'."""
        return float(np.abs(self.acf_values[1:]).max())


def correlogram(x: np.ndarray, max_lag: int) -> Correlogram:
    """Compute ACF and PACF together with the 1.96/sqrt(n) band."""
    x = np.asarray(x, dtype=float).ravel()
    return Correlogram(
        lags=np.arange(max_lag + 1),
        acf_values=acf(x, max_lag),
        pacf_values=pacf(x, max_lag),
        confidence_limit=1.96 / np.sqrt(x.size),
    )
