"""Automatic SARIMA order selection (the paper's ``auto.arima`` step).

Greedy-free exhaustive grid over the order box, ranked by AIC or BIC —
matching how the paper describes the R forecast package's search ("conducts
a search over possible models within the order constraints provided").  The
paper reports most windows selecting ``SARIMA(2,0,1 or 2)x(2,0,0)_24``.

The candidate fits are independent, so the search optionally fans out over
a process pool (:mod:`repro.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .arima import ARIMAOrder, ARIMAResult, fit_arima

__all__ = ["AutoARIMASpec", "auto_arima", "candidate_orders"]


@dataclass(frozen=True)
class AutoARIMASpec:
    """Order-search box: every combination within the caps is tried."""

    max_p: int = 2
    max_q: int = 2
    max_P: int = 2
    max_Q: int = 1
    d: int = 0
    D: int = 0
    s: int = 24
    criterion: str = "aic"  # or "bic"
    include_seasonal: bool = True

    def __post_init__(self) -> None:
        if self.criterion not in ("aic", "bic"):
            raise ValueError("criterion must be 'aic' or 'bic'")


def candidate_orders(spec: AutoARIMASpec) -> list[ARIMAOrder]:
    """Enumerate the order grid (the trivial (0,d,0) model included)."""
    orders = []
    seasonal_P = range(spec.max_P + 1) if spec.include_seasonal and spec.s else (0,)
    seasonal_Q = range(spec.max_Q + 1) if spec.include_seasonal and spec.s else (0,)
    for p in range(spec.max_p + 1):
        for q in range(spec.max_q + 1):
            for P in seasonal_P:
                for Q in seasonal_Q:
                    s = spec.s if (P or Q or spec.D) else 0
                    orders.append(ARIMAOrder(p=p, d=spec.d, q=q, P=P, D=spec.D, Q=Q, s=s))
    # dedupe (s collapses for nonseasonal combos)
    unique = {}
    for o in orders:
        unique[(o.p, o.d, o.q, o.P, o.D, o.Q, o.s)] = o
    return list(unique.values())


def _fit_one(args: tuple[np.ndarray, ARIMAOrder]) -> tuple[ARIMAOrder, float, float] | None:
    """Worker: fit a single candidate; None on failure."""
    x, order = args
    try:
        res = fit_arima(x, order)
        return order, res.aic, res.bic
    except (ValueError, np.linalg.LinAlgError):
        return None


def auto_arima(
    x: np.ndarray,
    spec: AutoARIMASpec | None = None,
    n_workers: int = 1,
) -> ARIMAResult:
    """Select and return the best SARIMA fit within the search box.

    Parameters
    ----------
    x:
        Series to model.
    spec:
        Search box; defaults to the paper's setup (nonseasonal orders up to
        2, seasonal AR up to 2, daily season for hourly data).
    n_workers:
        >1 fans candidate fits out over a process pool.
    """
    spec = spec or AutoARIMASpec()
    x = np.asarray(x, dtype=float).ravel()
    orders = candidate_orders(spec)
    tasks = [(x, o) for o in orders]

    if n_workers > 1:
        from repro.parallel import parallel_map

        rows = parallel_map(_fit_one, tasks, n_workers=n_workers)
    else:
        rows = [_fit_one(t) for t in tasks]

    scored = []
    for row in rows:
        if row is None:
            continue
        order, aic, bic = row
        scored.append((aic if spec.criterion == "aic" else bic, order))
    if not scored:
        raise RuntimeError("no candidate SARIMA model could be fitted")
    scored.sort(key=lambda t: t[0])
    best_order = scored[0][1]
    # Refit in-process so the returned result owns its history/transform.
    return fit_arima(x, best_order)
