"""Moving-block bootstrap for dependent series.

The SRRP samplers in :mod:`repro.core.reduction` draw *iid* stage prices
from the empirical distribution, which discards the (weak but significant)
autocorrelation Figure 7 documents.  The moving-block bootstrap resamples
contiguous blocks of the history, so sampled paths inherit the short-range
dependence without assuming any parametric model — the standard
nonparametric alternative.

Block length defaults to the ``n^{1/3}`` rule of thumb.
"""

from __future__ import annotations

import numpy as np

from repro.stats.rng import ensure_rng

__all__ = ["default_block_length", "moving_block_bootstrap"]


def default_block_length(n: int) -> int:
    """The common ``ceil(n^{1/3})`` heuristic (>= 2 for any usable n)."""
    if n < 4:
        raise ValueError("series too short to bootstrap")
    return max(2, int(np.ceil(n ** (1.0 / 3.0))))


def moving_block_bootstrap(
    series: np.ndarray,
    n_paths: int,
    horizon: int,
    block_length: int | None = None,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Sample ``(n_paths, horizon)`` paths of overlapping history blocks.

    Each path concatenates uniformly chosen length-``block_length`` windows
    of ``series`` until ``horizon`` values are collected (the last block is
    truncated).  Values are drawn from the observed marginal by
    construction, and within-block transitions are real transitions.
    """
    series = np.asarray(series, dtype=float).ravel()
    n = series.size
    if horizon < 1 or n_paths < 1:
        raise ValueError("n_paths and horizon must be positive")
    L = block_length if block_length is not None else default_block_length(n)
    if not 1 <= L <= n:
        raise ValueError(f"block_length must be in [1, {n}]")
    rng = ensure_rng(rng)
    n_blocks = int(np.ceil(horizon / L))
    starts = rng.integers(0, n - L + 1, size=(n_paths, n_blocks))
    # gather blocks: shape (n_paths, n_blocks, L) via fancy indexing
    offsets = np.arange(L)
    idx = starts[:, :, None] + offsets[None, None, :]
    paths = series[idx].reshape(n_paths, n_blocks * L)
    return paths[:, :horizon]
