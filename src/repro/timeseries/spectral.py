"""Periodogram-based seasonality detection.

A frequency-domain companion to the classical decomposition: Figure 6's
"certain cyclic pattern" shows up as a periodogram peak near the daily
frequency.  Used by tests and the analysis example to *detect* the season
length rather than assume 24.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Periodogram", "periodogram", "dominant_period"]


@dataclass(frozen=True)
class Periodogram:
    """One-sided periodogram of a demeaned series."""

    frequencies: np.ndarray   # cycles per sample, (0, 0.5]
    power: np.ndarray

    def peak_frequency(self) -> float:
        return float(self.frequencies[int(np.argmax(self.power))])

    def peak_period(self) -> float:
        """Samples per cycle at the strongest frequency."""
        return 1.0 / self.peak_frequency()

    def power_at_period(self, period: float) -> float:
        """Interpolated power at a given period (samples/cycle)."""
        f = 1.0 / period
        return float(np.interp(f, self.frequencies, self.power))


def periodogram(x: np.ndarray) -> Periodogram:
    """Classical periodogram ``|FFT|^2 / n`` at the positive Fourier
    frequencies (DC excluded — the series is demeaned first)."""
    x = np.asarray(x, dtype=float).ravel()
    n = x.size
    if n < 8:
        raise ValueError("series too short for a periodogram")
    xc = x - x.mean()
    spec = np.fft.rfft(xc)
    power = (np.abs(spec) ** 2) / n
    freqs = np.fft.rfftfreq(n, d=1.0)
    return Periodogram(frequencies=freqs[1:], power=power[1:])


def dominant_period(
    x: np.ndarray,
    min_period: int = 2,
    max_period: int | None = None,
) -> int:
    """The integer period with the strongest spectral peak in a range.

    ``max_period`` defaults to ``n // 3`` (need at least three full cycles
    to call something a season).
    """
    x = np.asarray(x, dtype=float).ravel()
    n = x.size
    if max_period is None:
        max_period = max(n // 3, min_period)
    if not 2 <= min_period <= max_period:
        raise ValueError("need 2 <= min_period <= max_period")
    pg = periodogram(x)
    candidates = np.arange(min_period, max_period + 1)
    powers = np.array([pg.power_at_period(float(p)) for p in candidates])
    return int(candidates[int(np.argmax(powers))])
