"""Closed-loop simulation benchmark: cost-of-planning curves + service legs.

Four seeded legs, all deterministic given the config:

* **campaign** — the full rolling-horizon campaign (oracle, no-plan,
  rolling DRRP) over the default 720-slot evaluation window.  The gated
  numbers are the *realized-cost / oracle-cost ratios* — pure arithmetic
  on solver outputs, so they transfer between machines (wall-clock replan
  latencies are recorded for humans but never compared across hosts).
* **service** — the same rolling planner routed through a live
  ``repro.service`` server: (1) its realized cost must equal the
  in-process planner's **bit for bit** (the JSON round trip is
  float-exact and both routes solve identical aggregated instances — any
  difference is a cache-correctness bug), and (2) an immediate replay of
  the same campaign against the same server must run (almost) entirely
  out of the plan cache.
* **backpressure** — a deliberately saturated server (``workers=0``,
  queue of one).  With ``on_overload="degrade"`` every replan must come
  back as an inline degraded plan; with the default reject mode the
  client must absorb the 429s and complete on its local fallback.  Either
  way the campaign finishes with demand met — the loop never stalls on a
  sick server.
* **bid-sweep** — the four bid-reactive planners (``bid-fixed``,
  ``bid-od-index``, ``bid-percentile``, ``bid-rebid``) under nonzero
  interruption loss.  Gated (machine-independent again): no policy beats
  the oracle, and at least one non-trivial bidding strategy must beat the
  naive fixed mean bid — the paper's point that bidding *policy* matters
  once out-of-bid interruptions carry a work-loss cost.

The record lands in ``BENCH_sim.json`` (``REPRO_BENCH_DIR`` honored);
:func:`check_sim_regression` is the CI gate.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass, replace

import numpy as np

from .engine import CampaignConfig, run_campaign
from .horizon import HorizonConfig

__all__ = [
    "SimBenchConfig",
    "run_sim_bench",
    "check_sim_regression",
    "summary_lines",
]

#: Gate: a policy's cost/oracle ratio may drift at most this (relative)
#: from the committed baseline before CI fails.  Ratios are deterministic
#: modulo solver tie-breaking and numpy version skew, so the band is tight.
RATIO_TOLERANCE = 0.05


@dataclass(frozen=True)
class SimBenchConfig:
    """One benchmark run (defaults match the committed baseline)."""

    seed: int = 2012
    vm: str = "c1.medium"
    slots: int = 720
    estimation_slots: int = 1440
    prediction: int = 48
    control: int = 24
    coarse_block: int = 4
    backend: str = "auto"
    service_slots: int = 96       # service + backpressure legs (shorter loop)
    bid_slots: int = 120          # bid-sweep leg
    bid_interruption_loss: float = 0.5
    out: str | None = "BENCH_sim.json"

    def __post_init__(self) -> None:
        if self.slots < self.control:
            raise ValueError("campaign must cover at least one control window")
        if self.service_slots < self.control:
            raise ValueError("service leg must cover at least one control window")
        if self.bid_slots < self.control:
            raise ValueError("bid-sweep leg must cover at least one control window")

    def campaign_config(self, slots: int | None = None,
                        policies: tuple[str, ...] | None = None) -> CampaignConfig:
        return CampaignConfig(
            vm=self.vm,
            slots=self.slots if slots is None else slots,
            estimation_slots=self.estimation_slots,
            seed=self.seed,
            horizon=HorizonConfig(
                prediction=self.prediction,
                control=self.control,
                coarse_block=self.coarse_block,
            ),
            backend=self.backend,
            policies=policies or ("oracle", "no-plan", "rolling-drrp"),
        )


def _latency_summary(latencies: list[float]) -> dict:
    if not latencies:
        return {"count": 0}
    arr = np.asarray(latencies, dtype=float)
    return {
        "count": int(arr.size),
        "p50_s": float(np.quantile(arr, 0.50)),
        "p90_s": float(np.quantile(arr, 0.90)),
        "p99_s": float(np.quantile(arr, 0.99)),
        "max_s": float(arr.max()),
        "mean_s": float(arr.mean()),
    }


def _service_legs(cfg: SimBenchConfig) -> dict:
    """Consistency, cache-replay, and backpressure checks (see module doc)."""
    from repro.service import ServiceConfig, serve

    config = cfg.campaign_config(
        slots=cfg.service_slots,
        policies=("oracle", "rolling-drrp", "rolling-drrp-service"),
    )
    service, httpd = serve(port=0, config=ServiceConfig(workers=2), block=False)
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        first = run_campaign(config, service_url=url)
        # Replay: identical payloads against the same server — every replan
        # after the first campaign's solves should hit the plan cache.
        replay = run_campaign(
            replace(config, policies=("rolling-drrp-service",)), service_url=url
        )
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()

    inproc = first.outcomes["rolling-drrp"]
    routed = first.outcomes["rolling-drrp-service"]
    replayed = replay.outcomes["rolling-drrp-service"]
    consistent = (
        inproc.result.total_cost == routed.result.total_cost
        and np.array_equal(inproc.result.generated, routed.result.generated)
        and np.array_equal(inproc.result.inventory, routed.result.inventory)
    )
    service_record = {
        "slots": cfg.service_slots,
        "consistent_with_in_process": bool(consistent),
        "in_process_cost": float(inproc.result.total_cost),
        "routed_cost": float(routed.result.total_cost),
        "requests": routed.service_requests,
        "first_pass_cache_hits": routed.cache_hits,
        "replay_requests": replayed.service_requests,
        "replay_cache_hits": replayed.cache_hits,
        "replay_cache_hit_rate": (
            replayed.cache_hits / replayed.service_requests
            if replayed.service_requests else 0.0
        ),
        "degraded_plans": routed.degraded_plans,
        "local_fallbacks": routed.local_fallbacks,
    }

    # Backpressure: a server that can never drain its queue.  Degrade mode
    # must answer every replan inline; reject mode must push the client to
    # its local fallback.  Both campaigns must still meet all demand.
    choked = ServiceConfig(workers=0, queue_size=1, default_time_limit=5.0)
    service, httpd = serve(port=0, config=choked, block=False)
    url = f"http://127.0.0.1:{httpd.server_address[1]}"
    bp_slots = min(cfg.service_slots, 2 * cfg.control)
    bp_config = replace(cfg.campaign_config(slots=bp_slots), policies=("oracle",))
    try:
        from repro.market.auction import MeanBids
        from repro.service.client import ServiceClient, drrp_payload
        from repro.sim.policies import ServiceDRRPPolicy

        client = ServiceClient(url, timeout=10.0)
        # Occupy the one queue slot (no workers will ever drain it) so
        # every replan below hits a saturated server, not an idle one.
        client.submit(drrp_payload([1.0], [0.1]))
        degrade_policy = ServiceDRRPPolicy(
            MeanBids(), client, horizon=bp_config.horizon,
            backend=cfg.backend, on_overload="degrade", name="svc-degrade",
            wait_s=1.0,
        )
        reject_policy = ServiceDRRPPolicy(
            MeanBids(), client, horizon=bp_config.horizon,
            backend=cfg.backend, name="svc-reject",
            max_retries=1, retry_cap_s=0.01, wait_s=1.0,
        )
        bp = run_campaign(
            bp_config,
            extra_policies={"svc-degrade": degrade_policy,
                            "svc-reject": reject_policy},
        )
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()

    degrade_out = bp.outcomes["svc-degrade"]
    reject_out = bp.outcomes["svc-reject"]
    backpressure_record = {
        "slots": bp_slots,
        "degrade": {
            "replans": degrade_out.replans,
            "degraded_plans": degrade_out.degraded_plans,
            "forced_topups": int(degrade_out.result.forced_topups),
            "cost_over_oracle": float(
                degrade_out.result.total_cost / bp.oracle_cost
            ),
        },
        "reject": {
            "replans": reject_out.replans,
            "local_fallbacks": reject_out.local_fallbacks,
            "forced_topups": int(reject_out.result.forced_topups),
            "cost_over_oracle": float(
                reject_out.result.total_cost / bp.oracle_cost
            ),
        },
    }
    return {"service": service_record, "backpressure": backpressure_record}


def _bid_sweep_leg(cfg: SimBenchConfig) -> dict:
    """Score the bid-reactive planners against each other under eviction risk."""
    config = replace(
        cfg.campaign_config(
            slots=cfg.bid_slots,
            policies=("oracle", "bid-fixed", "bid-od-index",
                      "bid-percentile", "bid-rebid"),
        ),
        interruption_loss=cfg.bid_interruption_loss,
    )
    campaign = run_campaign(config)
    policies = {}
    for name, out in sorted(campaign.outcomes.items()):
        if not name.startswith("bid-"):
            continue
        policies[name] = {
            "ratio": float(campaign.ratios[name]),
            "interruptions": int(out.interruptions),
            "out_of_bid": int(out.result.out_of_bid_events),
            "replans": int(out.replans),
        }
    return {
        "slots": cfg.bid_slots,
        "interruption_loss": cfg.bid_interruption_loss,
        "oracle_cost": float(campaign.oracle_cost),
        "policies": policies,
    }


def run_sim_bench(cfg: SimBenchConfig | None = None) -> dict:
    """Run all three legs and return (and optionally write) the record."""
    cfg = cfg or SimBenchConfig()
    campaign = run_campaign(cfg.campaign_config())
    legs = _service_legs(cfg)
    legs["bid_sweep"] = _bid_sweep_leg(cfg)

    rolling = campaign.outcomes["rolling-drrp"]
    record = {
        "benchmark": "sim",
        "seed": cfg.seed,
        "config": {
            "vm": cfg.vm,
            "slots": cfg.slots,
            "estimation_slots": cfg.estimation_slots,
            "prediction": cfg.prediction,
            "control": cfg.control,
            "coarse_block": cfg.coarse_block,
            "backend": cfg.backend,
            "service_slots": cfg.service_slots,
            "bid_slots": cfg.bid_slots,
            "bid_interruption_loss": cfg.bid_interruption_loss,
        },
        "cpu_count": os.cpu_count() or 1,
        "oracle_cost": float(campaign.oracle_cost),
        # The machine-independent gate: realized cost / oracle cost.
        "ratios": {k: float(v) for k, v in sorted(campaign.ratios.items())},
        "out_of_bid_events": {
            name: int(out.result.out_of_bid_events)
            for name, out in sorted(campaign.outcomes.items())
        },
        "replans": rolling.replans,
        "replan_latency": _latency_summary(rolling.replan_latencies),
        "manifest_digest": campaign.manifest.result_digest,
        "elapsed_s": campaign.elapsed,
        "created": time.time(),
        **legs,
    }
    if cfg.out:
        from repro.bench.solver import write_bench_record

        record["path"] = str(write_bench_record(record, cfg.out))
    return record


def check_sim_regression(
    record: dict, baseline: dict, tolerance: float = RATIO_TOLERANCE
) -> list[str]:
    """Compare a fresh record against the committed baseline.

    Returns human-readable failure strings (empty = pass).  Gated:

    * the paper's ordering — no-plan strictly worse than rolling DRRP —
      must hold in the fresh record;
    * no policy beats the oracle (ratio >= 1 up to float noise);
    * when the fresh record ran the same campaign config as the baseline,
      each policy's cost/oracle ratio must sit within ``tolerance``
      (relative) of the baseline's;
    * the service route must agree with the in-process planner bit for
      bit, the cache replay must actually hit, and the backpressure legs
      must have exercised degraded plans / local fallbacks with zero
      forced top-ups (demand always met);
    * in the bid sweep, no bidding policy beats its oracle, at least one
      non-trivial strategy strictly beats the naive fixed mean bid, and
      (when configs match) each ratio stays within ``tolerance`` of the
      baseline's.
    """
    failures: list[str] = []
    ratios = record.get("ratios", {})
    if "no-plan" in ratios and "rolling-drrp" in ratios:
        if not ratios["no-plan"] > ratios["rolling-drrp"]:
            failures.append(
                f"no-plan ({ratios['no-plan']:.4f}x) not strictly worse than "
                f"rolling-drrp ({ratios['rolling-drrp']:.4f}x)"
            )
    for name, ratio in ratios.items():
        if ratio < 1.0 - 1e-9:
            failures.append(
                f"{name} beats the clairvoyant oracle ({ratio:.6f}x < 1) — "
                "accounting bug"
            )
    if record.get("config") == baseline.get("config"):
        for name, base_ratio in baseline.get("ratios", {}).items():
            cur = ratios.get(name)
            if cur is None:
                failures.append(f"policy {name} missing from the fresh record")
            elif not math.isclose(cur, base_ratio, rel_tol=tolerance):
                failures.append(
                    f"{name} cost/oracle ratio drifted: {cur:.4f}x vs "
                    f"baseline {base_ratio:.4f}x (tolerance {tolerance:.0%})"
                )
    svc = record.get("service", {})
    if not svc.get("consistent_with_in_process"):
        failures.append(
            "service-routed campaign diverged from the in-process planner "
            f"(${svc.get('routed_cost')} vs ${svc.get('in_process_cost')})"
        )
    if svc.get("replay_cache_hit_rate", 0.0) < 0.9:
        failures.append(
            f"cache replay hit rate {svc.get('replay_cache_hit_rate', 0.0):.0%} "
            "below 90% — plan cache not serving repeated campaigns"
        )
    bp = record.get("backpressure", {})
    degrade = bp.get("degrade", {})
    reject = bp.get("reject", {})
    if degrade and degrade.get("degraded_plans", 0) < 1:
        failures.append("degrade leg saw no degraded plans under saturation")
    if reject and reject.get("local_fallbacks", 0) < 1:
        failures.append("reject leg never fell back locally under saturation")
    for leg_name, leg in (("degrade", degrade), ("reject", reject)):
        if leg and leg.get("forced_topups", 0) > 0:
            failures.append(
                f"backpressure {leg_name} leg needed "
                f"{leg['forced_topups']} forced top-ups — demand not met by "
                "the policy itself"
            )
    sweep = record.get("bid_sweep", {})
    bid_policies = sweep.get("policies", {})
    if bid_policies:
        for name, entry in bid_policies.items():
            if entry["ratio"] < 1.0 - 1e-9:
                failures.append(
                    f"bid sweep: {name} beats the clairvoyant oracle "
                    f"({entry['ratio']:.6f}x < 1) — accounting bug"
                )
        fixed = bid_policies.get("bid-fixed")
        others = {n: e for n, e in bid_policies.items() if n != "bid-fixed"}
        if fixed and others and not any(
            e["ratio"] < fixed["ratio"] for e in others.values()
        ):
            failures.append(
                "bid sweep: no bidding strategy beats the naive fixed mean "
                f"bid ({fixed['ratio']:.4f}x) — the interruption layer is "
                "not rewarding smarter bids"
            )
        base_sweep = baseline.get("bid_sweep", {})
        same_sweep = (
            base_sweep.get("slots") == sweep.get("slots")
            and base_sweep.get("interruption_loss") == sweep.get("interruption_loss")
        )
        if same_sweep:
            for name, base_entry in base_sweep.get("policies", {}).items():
                entry = bid_policies.get(name)
                if entry is None:
                    failures.append(
                        f"bid sweep: policy {name} missing from the fresh record"
                    )
                elif not math.isclose(
                    entry["ratio"], base_entry["ratio"], rel_tol=tolerance
                ):
                    failures.append(
                        f"bid sweep: {name} cost/oracle ratio drifted: "
                        f"{entry['ratio']:.4f}x vs baseline "
                        f"{base_entry['ratio']:.4f}x (tolerance {tolerance:.0%})"
                    )
    return failures


def summary_lines(record: dict) -> list[str]:
    ratios = record.get("ratios", {})
    lat = record.get("replan_latency", {})
    svc = record.get("service", {})
    bp = record.get("backpressure", {})
    ratio_text = ", ".join(f"{k} {v:.4f}x" for k, v in sorted(ratios.items()))
    lines = [
        f"campaign: {record['config']['slots']} slots on {record['config']['vm']}, "
        f"oracle ${record['oracle_cost']:.3f}; cost/oracle — {ratio_text}",
    ]
    if lat.get("count"):
        lines.append(
            f"replans: {record['replans']} windows, latency p50 "
            f"{lat['p50_s'] * 1e3:.0f} ms / p99 {lat['p99_s'] * 1e3:.0f} ms / "
            f"max {lat['max_s'] * 1e3:.0f} ms"
        )
    if svc:
        lines.append(
            f"service: {'consistent' if svc.get('consistent_with_in_process') else 'DIVERGED'} "
            f"over {svc.get('slots')} slots, replay cache hits "
            f"{svc.get('replay_cache_hits')}/{svc.get('replay_requests')}"
        )
    if bp:
        lines.append(
            f"backpressure: degrade {bp['degrade']['degraded_plans']}/"
            f"{bp['degrade']['replans']} degraded, reject "
            f"{bp['reject']['local_fallbacks']}/{bp['reject']['replans']} "
            "local fallbacks, all demand met"
        )
    sweep = record.get("bid_sweep", {})
    if sweep.get("policies"):
        bid_text = ", ".join(
            f"{name} {entry['ratio']:.4f}x ({entry['interruptions']} evictions)"
            for name, entry in sorted(sweep["policies"].items())
        )
        lines.append(
            f"bid sweep: {sweep['slots']} slots at loss "
            f"{sweep['interruption_loss']:.0%} — {bid_text}"
        )
    return lines
