"""Rolling-window policies for the closed-loop engine.

:class:`RollingHorizonPolicy` grows the per-slot policies of
:mod:`repro.core.rolling` into real MPC: it replans only at control
boundaries (every :attr:`HorizonConfig.control` slots), holds the solved
window plan in between, and reconciles the plan against *realized*
inventory each slot exactly the way :class:`~repro.core.rolling.OraclePolicy`
does — so an out-of-bid interruption or a forced top-up perturbs one slot,
not the rest of the window.

Two concrete planners share that skeleton:

* :class:`RollingDRRPPolicy` — solves the aggregated window DRRP
  in process (:func:`repro.core.solve_drrp`);
* :class:`ServiceDRRPPolicy` — routes every replan through a live
  planning server (:mod:`repro.service`), with explicit handling for
  backpressure: bounded retries on 429/503 ``Saturated`` responses, a
  local Wagner-Whitin-grade fallback when the server stays saturated, and
  accounting for degraded plans returned under ``on_overload: "degrade"``.
  Because submissions are content-addressed, replaying the same campaign
  against the same server is a pure plan-cache workout.

Both planners see the exact same aggregated instances, and the JSON round
trip through the service is float-exact — a service-routed campaign's
realized cost must equal the in-process one bit for bit, which the bench
asserts as its cache-correctness check.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.drrp import DRRPInstance, solve_drrp
from repro.core.rolling import Policy, SimulationContext, SlotDecision
from repro.market.auction import BidStrategy, is_out_of_bid
from repro.market.interruptions import InterruptionEvent, InterruptionModel
from repro.market.policy import BidPolicy, PolicyBids
from repro.obs.propagate import TraceContext, activate, current_trace
from repro.obs.spans import span

from .horizon import HorizonConfig, aggregate_window, build_blocks

__all__ = [
    "RollingHorizonPolicy",
    "RollingDRRPPolicy",
    "ServiceDRRPPolicy",
    "InterruptedRollingDRRPPolicy",
]


class RollingHorizonPolicy(Policy):
    """Replan-at-control-boundary base class (see module docstring).

    Subclasses implement :meth:`_solve_window`, returning the aggregated
    plan's ``(alpha, beta, chi)`` arrays (one entry per block).  Only the
    fine single-slot prefix of the plan is ever executed; the coarse tail
    exists to keep the window-edge inventory decisions non-myopic.
    """

    def __init__(
        self,
        bid_strategy: BidStrategy,
        horizon: HorizonConfig | None = None,
        backend: str = "auto",
        name: str | None = None,
        telemetry=None,
    ) -> None:
        self.bid_strategy = bid_strategy
        self.horizon = horizon or HorizonConfig()
        self.backend = backend
        self.name = name or f"rolling-{bid_strategy.name}"
        self.telemetry = telemetry
        self._clear()

    def _clear(self) -> None:
        self._alpha: np.ndarray | None = None
        self._chi: np.ndarray | None = None
        self._bids: np.ndarray | None = None
        self._entry_inventory: np.ndarray | None = None
        self._offset = 0
        self.replans = 0
        self.replan_latencies: list[float] = []

    # -- Policy interface ---------------------------------------------------

    def reset(self, ctx: SimulationContext) -> None:
        self._clear()

    def decide(self, ctx: SimulationContext) -> SlotDecision:
        if self._alpha is None or self._offset >= self._alpha.shape[0]:
            self._replan(ctx)
        k = self._offset
        # Reconcile planned vs realized inventory (the OraclePolicy rule):
        # restoring the planned end-of-slot inventory keeps the rest of the
        # window plan feasible whatever diverged since the last replan.
        deficit = float(self._entry_inventory[k]) - ctx.inventory
        gen = max(float(self._alpha[k]) + deficit, 0.0)
        rent = gen > 1e-12 or bool(self._chi[k])
        self._offset += 1
        return SlotDecision(generate=gen, rent=rent, bid=float(self._bids[k]))

    # -- replanning ---------------------------------------------------------

    def _replan(self, ctx: SimulationContext) -> None:
        cfg = self.horizon
        window_demand = ctx.remaining_demand(cfg.prediction)
        L = window_demand.shape[0]
        bids = np.asarray(
            self.bid_strategy.bids(ctx.price_view(), L, t=ctx.t), dtype=float
        )
        blocks = build_blocks(L, cfg)
        agg = aggregate_window(window_demand, bids, blocks, ctx.rates)
        t0 = time.perf_counter()
        with span(
            self.telemetry, f"replan[{self.name}]",
            slot=ctx.t, window=L, blocks=len(blocks),
        ):
            alpha, beta, chi = self._solve_window(ctx, agg)
        self.replan_latencies.append(time.perf_counter() - t0)
        self.replans += 1
        # Executable region: the first `control` fine blocks (fewer at the
        # tail of the campaign, when the window is shorter than the cadence).
        n_exec = max(min(cfg.control, agg.n_fine), 1)
        self._alpha = np.asarray(alpha, dtype=float)[:n_exec]
        self._chi = np.asarray(chi, dtype=float)[:n_exec] > 0.5
        self._bids = bids[:n_exec]
        self._entry_inventory = np.concatenate(
            [[ctx.inventory], np.asarray(beta, dtype=float)[: n_exec - 1]]
        )
        self._offset = 0

    def _solve_window(self, ctx: SimulationContext, agg) -> tuple:
        raise NotImplementedError


class RollingDRRPPolicy(RollingHorizonPolicy):
    """Rolling-horizon DRRP solved in process over the aggregated window."""

    def __init__(
        self,
        bid_strategy: BidStrategy,
        horizon: HorizonConfig | None = None,
        backend: str = "auto",
        name: str | None = None,
        telemetry=None,
    ) -> None:
        super().__init__(
            bid_strategy, horizon, backend,
            name or "rolling-drrp", telemetry,
        )

    def _solve_window(self, ctx: SimulationContext, agg) -> tuple:
        inst = DRRPInstance(
            demand=agg.demand,
            costs=agg.cost_schedule(),
            phi=ctx.rates.input_output_ratio,
            initial_storage=ctx.inventory,
            vm_name=ctx.vm.name,
        )
        # Mirror the service executor's solve call exactly (no warm start,
        # no budget) so the two routes return identical plans.
        plan = solve_drrp(inst, backend=self.backend, listener=self.telemetry)
        return plan.alpha, plan.beta, plan.chi


class InterruptedRollingDRRPPolicy(RollingDRRPPolicy):
    """Rolling DRRP driven by a stateful :class:`~repro.market.policy.BidPolicy`,
    reacting to out-of-bid evictions instead of merely paying for them.

    Each slot first *settles* the previous decision against the realized
    spot price: if the bid lost the auction, a typed
    :class:`~repro.market.interruptions.InterruptionEvent` is recorded with
    the checkpointed/lost split from the interruption model, the bid policy
    is notified (so e.g. :class:`~repro.market.policy.RebidPolicy` can
    escalate), and the held window plan is invalidated — the next
    ``decide`` replans from realized inventory under the new bid.  Salvage
    is credited implicitly: the simulator regenerates lost work in-slot,
    so checkpointed gigabytes never leave inventory and only the
    un-checkpointed fraction is re-transferred.

    Settlement uses only prices of *past* slots (``spot_history[-2]`` is
    the realized price of slot ``t-1``), which keeps the policy
    nonanticipative: perturbing prices after slot ``k`` cannot change any
    decision or event emitted at or before ``k``.
    """

    def __init__(
        self,
        bid_policy: BidPolicy,
        model: InterruptionModel | None = None,
        horizon: HorizonConfig | None = None,
        backend: str = "auto",
        name: str | None = None,
        telemetry=None,
    ) -> None:
        self.bid_policy = bid_policy
        self.model = model or InterruptionModel()
        super().__init__(
            PolicyBids(bid_policy), horizon, backend,
            name or f"bid-{bid_policy.name}", telemetry,
        )
        self.events: list[InterruptionEvent] = []
        self._last: tuple[int, float, float, bool] | None = None

    @property
    def interruptions(self) -> int:
        return len(self.events)

    def reset(self, ctx: SimulationContext) -> None:
        super().reset(ctx)
        self.bid_policy.reset(ctx.vm.on_demand_price)
        self.events = []
        self._last = None

    def decide(self, ctx: SimulationContext) -> SlotDecision:
        self._settle_previous(ctx)
        decision = super().decide(ctx)
        self._last = (
            ctx.t, float(decision.bid), float(decision.generate),
            bool(decision.rent),
        )
        return decision

    def _settle_previous(self, ctx: SimulationContext) -> None:
        if self._last is None:
            return
        slot, bid, gen, rented = self._last
        if not rented:
            return
        # ctx.spot_history ends with the price of the *current* slot, so
        # [-2] is the realized price of the slot we just acted in.
        price = float(ctx.spot_history[-2])
        if not is_out_of_bid(bid, price):
            return
        event = InterruptionEvent(
            slot=slot,
            spot_price=price,
            bid=bid,
            lost_gb=self.model.work_loss * gen,
            salvaged_gb=self.model.checkpoint_fraction * gen,
            restart_lag=self.model.restart_lag,
        )
        self.events.append(event)
        self.bid_policy.notify_eviction(event)
        # Invalidate the held window plan: the next decide() replans from
        # realized (post-eviction) inventory under the escalated bid.
        self._alpha = None


class ServiceDRRPPolicy(RollingHorizonPolicy):
    """Rolling-horizon DRRP with every replan routed over a live server.

    Backpressure handling: ``Saturated`` (429/503) submissions are retried
    up to ``max_retries`` times, sleeping ``min(Retry-After, retry_cap_s)``
    between attempts; if the server stays saturated the window is solved
    locally instead (counted in :attr:`local_fallbacks`) so the campaign
    never stalls.  With ``on_overload="degrade"`` the server answers
    saturation with an inline polynomial-time plan instead of a 429; those
    land in :attr:`degraded_plans`.
    """

    def __init__(
        self,
        bid_strategy: BidStrategy,
        client,
        horizon: HorizonConfig | None = None,
        backend: str = "auto",
        name: str | None = None,
        telemetry=None,
        wait_s: float | None = 60.0,
        time_limit: float | None = None,
        on_overload: str | None = None,
        max_retries: int = 3,
        retry_cap_s: float = 0.05,
    ) -> None:
        super().__init__(
            bid_strategy, horizon, backend,
            name or "rolling-drrp-service", telemetry,
        )
        self.client = client
        self.wait_s = wait_s
        self.time_limit = time_limit
        self.on_overload = on_overload
        self.max_retries = max_retries
        self.retry_cap_s = retry_cap_s
        self._clear_service_stats()

    def _clear_service_stats(self) -> None:
        self.requests = 0
        self.cache_hits = 0
        self.degraded_plans = 0
        self.saturated_retries = 0
        self.local_fallbacks = 0

    def reset(self, ctx: SimulationContext) -> None:
        super().reset(ctx)
        self._clear_service_stats()

    def _solve_window(self, ctx: SimulationContext, agg) -> tuple:
        from repro.service.client import Saturated, drrp_payload

        # One child span context per replanned slot, shared across retries
        # (they are one logical request); the client sends it as the
        # traceparent header and the server's job runs as its child, so
        # the merged trace draws a flow arrow from this span to the job.
        parent = current_trace()
        slot_ctx = parent.child() if parent is not None else TraceContext.new_root()
        with activate(slot_ctx), span(
            self.telemetry, "service_request",
            slot=ctx.t, trace_id=slot_ctx.trace_id, span_id=slot_ctx.span_id,
        ):
            return self._solve_window_traced(ctx, agg, Saturated, drrp_payload)

    def _solve_window_traced(self, ctx, agg, Saturated, drrp_payload) -> tuple:
        payload = drrp_payload(
            agg.demand,
            agg.compute,
            phi=ctx.rates.input_output_ratio,
            initial_storage=ctx.inventory,
            vm_name=ctx.vm.name,
            backend=self.backend,
            costs=agg.payload_costs(),
            time_limit=self.time_limit,
            on_overload=self.on_overload,
        )
        for attempt in range(self.max_retries + 1):
            try:
                self.requests += 1
                result = self.client.solve(payload, wait_s=self.wait_s)
            except Saturated as exc:
                if attempt >= self.max_retries:
                    break
                self.saturated_retries += 1
                time.sleep(min(max(exc.retry_after, 0.0), self.retry_cap_s))
                continue
            if result.hit:
                self.cache_hits += 1
            if result.degraded:
                self.degraded_plans += 1
            plan = result.plan
            return (
                np.asarray(plan["alpha"], dtype=float),
                np.asarray(plan["beta"], dtype=float),
                np.asarray(plan["chi"], dtype=float),
            )
        # Server saturated beyond the retry budget: degrade to a local
        # solve of the same aggregated window so the loop keeps control.
        self.local_fallbacks += 1
        inst = DRRPInstance(
            demand=agg.demand,
            costs=agg.cost_schedule(),
            phi=ctx.rates.input_output_ratio,
            initial_storage=ctx.inventory,
            vm_name=ctx.vm.name,
        )
        plan = solve_drrp(inst, backend=self.backend)
        return plan.alpha, plan.beta, plan.chi
