"""Closed-loop rolling-horizon simulation harness (``docs/simulation.md``).

Grows the single-slot policy loop of :mod:`repro.core.rolling` into a
campaign engine: weeks of synthetic spot prices, replanning every control
interval over a multi-resolution prediction window, state carried across
windows, realized cost scored against the clairvoyant oracle — with the
replans optionally routed through a live :mod:`repro.service` server.

* :mod:`repro.sim.horizon` — prediction/control/overlap geometry and the
  fine/coarse window aggregation;
* :mod:`repro.sim.policies` — the rolling MPC policies (in-process and
  service-routed);
* :mod:`repro.sim.engine` — :func:`run_campaign`: trace synthesis,
  policy roster, spans/metrics, and the campaign :class:`RunManifest`;
* :mod:`repro.sim.bench` — the ``repro bench-sim`` benchmark and its CI
  regression gate over machine-independent cost ratios.
"""

from .bench import SimBenchConfig, check_sim_regression, run_sim_bench
from .engine import (
    KNOWN_POLICIES,
    CampaignConfig,
    CampaignInputs,
    CampaignResult,
    PolicyOutcome,
    build_inputs,
    make_policy,
    run_campaign,
)
from .horizon import AggregatedWindow, HorizonConfig, aggregate_window, build_blocks
from .policies import (
    InterruptedRollingDRRPPolicy,
    RollingDRRPPolicy,
    RollingHorizonPolicy,
    ServiceDRRPPolicy,
)

__all__ = [
    "AggregatedWindow",
    "CampaignConfig",
    "CampaignInputs",
    "CampaignResult",
    "HorizonConfig",
    "InterruptedRollingDRRPPolicy",
    "KNOWN_POLICIES",
    "PolicyOutcome",
    "RollingDRRPPolicy",
    "RollingHorizonPolicy",
    "ServiceDRRPPolicy",
    "SimBenchConfig",
    "aggregate_window",
    "build_blocks",
    "build_inputs",
    "check_sim_regression",
    "make_policy",
    "run_campaign",
    "run_sim_bench",
]
