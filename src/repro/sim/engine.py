"""The closed-loop campaign engine: trace → policies → scored outcomes.

One :func:`run_campaign` call is the paper's §V evaluation loop made
end-to-end: synthesize a spot-price market (:func:`repro.market.campaign_series`),
split it into an estimation history and a realized evaluation path, drive
every configured policy through :func:`repro.core.rolling.simulate_policy`
slot by slot, and score realized cost against the clairvoyant
:class:`~repro.core.rolling.OraclePolicy` (the paper's *ideal case cost*).

Every policy run is bracketed in a :func:`repro.obs.span`, per-replan
latencies feed a metrics histogram, and the whole campaign closes with a
:class:`~repro.obs.RunManifest` whose result digest covers the complete
per-slot decision record — two runs of the same config replay bit for bit
(``manifest.replays(other)``), which is the harness's reproducibility
contract.

Policies are named: the built-in roster covers the paper's baselines
(``oracle``, ``no-plan``, ``on-demand``), the rolling MPC planner with
the historical-mean forecaster (``rolling-drrp``), the same planner
routed through a live planning server (``rolling-drrp-service`` — pass
``service_url``), and four bid-reactive planners (``bid-fixed``,
``bid-od-index``, ``bid-percentile``, ``bid-rebid``) that record typed
interruption events and replan after each eviction
(:class:`~repro.sim.policies.InterruptedRollingDRRPPolicy`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.rolling import (
    NoPlanPolicy,
    OnDemandPolicy,
    OraclePolicy,
    Policy,
    SimulationResult,
    simulate_policy,
)
from repro.market.auction import MeanBids
from repro.market.catalog import CostRates, ec2_catalog
from repro.market.traces import campaign_series
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsAggregator, MetricsRegistry
from repro.obs.propagate import TraceContext, activate, current_trace
from repro.obs.spans import span
from repro.stats.empirical import EmpiricalDistribution

from .horizon import HorizonConfig
from .policies import (
    InterruptedRollingDRRPPolicy,
    RollingDRRPPolicy,
    ServiceDRRPPolicy,
)

__all__ = [
    "CampaignConfig",
    "CampaignInputs",
    "PolicyOutcome",
    "CampaignResult",
    "KNOWN_POLICIES",
    "build_inputs",
    "make_policy",
    "run_campaign",
]

#: Replan latency buckets (seconds) — weighted toward the sub-second solves
#: a healthy aggregated window takes.
_REPLAN_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, float("inf"))

KNOWN_POLICIES = (
    "oracle",
    "no-plan",
    "on-demand",
    "rolling-drrp",
    "rolling-drrp-service",
    "bid-fixed",
    "bid-od-index",
    "bid-percentile",
    "bid-rebid",
)


@dataclass(frozen=True)
class CampaignConfig:
    """One seeded end-to-end campaign (defaults = the committed benchmark)."""

    vm: str = "c1.medium"
    slots: int = 720                 # evaluation window (30 days hourly)
    estimation_slots: int = 1440     # price history ahead of it (60 days)
    seed: int = 2012
    demand_mean: float = 0.4
    demand_std: float = 0.2
    horizon: HorizonConfig = field(default_factory=HorizonConfig)
    backend: str = "auto"
    interruption_loss: float = 0.0
    lookahead: int = 24              # window for the per-slot baselines
    policies: tuple[str, ...] = ("oracle", "no-plan", "rolling-drrp")
    bid_value: float | None = None   # parameter for the bid-* policies

    def __post_init__(self) -> None:
        if self.slots < 1:
            raise ValueError("campaign needs at least one evaluation slot")
        if self.estimation_slots < 1:
            raise ValueError("campaign needs a non-empty estimation history")
        if not self.policies:
            raise ValueError("campaign needs at least one policy")

    def jsonable(self) -> dict:
        return {
            "vm": self.vm,
            "slots": self.slots,
            "estimation_slots": self.estimation_slots,
            "seed": self.seed,
            "demand_mean": self.demand_mean,
            "demand_std": self.demand_std,
            "prediction": self.horizon.prediction,
            "control": self.horizon.control,
            "fine": self.horizon.fine_slots,
            "coarse_block": self.horizon.coarse_block,
            "backend": self.backend,
            "interruption_loss": self.interruption_loss,
            "lookahead": self.lookahead,
            "policies": list(self.policies),
            "bid_value": self.bid_value,
        }


@dataclass
class CampaignInputs:
    """The deterministic inputs every policy in a campaign shares."""

    vm: object
    rates: CostRates
    history: np.ndarray        # estimation-window hourly prices
    realized: np.ndarray       # evaluation-window hourly prices
    demand: np.ndarray         # known demand over the evaluation window
    base_distribution: EmpiricalDistribution


def build_inputs(config: CampaignConfig) -> CampaignInputs:
    """Synthesize one campaign's market + demand, all from ``config.seed``."""
    catalog = ec2_catalog()
    if config.vm not in catalog:
        raise ValueError(
            f"unknown VM class {config.vm!r}; choose from {sorted(catalog)}"
        )
    vm = catalog[config.vm]
    history, realized = campaign_series(
        vm, config.estimation_slots, config.slots, config.seed
    )
    from repro.core.demand import NormalDemand

    demand = NormalDemand(mean=config.demand_mean, std=config.demand_std).sample(
        config.slots, config.seed + 1
    )
    return CampaignInputs(
        vm=vm,
        rates=CostRates(),
        history=history,
        realized=realized,
        demand=demand,
        base_distribution=EmpiricalDistribution(history),
    )


def make_policy(
    name: str,
    inputs: CampaignInputs,
    config: CampaignConfig,
    service_url: str | None = None,
    telemetry=None,
) -> Policy:
    """Instantiate one named policy against a campaign's inputs."""
    if name == "oracle":
        return OraclePolicy(inputs.realized, backend=config.backend)
    if name == "no-plan":
        return NoPlanPolicy()
    if name == "on-demand":
        return OnDemandPolicy(lookahead=config.lookahead, backend=config.backend)
    if name == "rolling-drrp":
        return RollingDRRPPolicy(
            MeanBids(), horizon=config.horizon, backend=config.backend,
            telemetry=telemetry,
        )
    if name == "rolling-drrp-service":
        if service_url is None:
            raise ValueError(
                "policy 'rolling-drrp-service' needs a service_url "
                "(a running repro.service server)"
            )
        from repro.service.client import ServiceClient

        return ServiceDRRPPolicy(
            MeanBids(), ServiceClient(service_url),
            horizon=config.horizon, backend=config.backend, telemetry=telemetry,
        )
    if name.startswith("bid-"):
        from repro.market.interruptions import InterruptionModel
        from repro.market.policy import make_bid_policy

        bid_policy = make_bid_policy(name[len("bid-"):], config.bid_value)
        # The policy's interruption model mirrors the simulator's loss
        # fraction, so the events it records carry honest lost/salvaged
        # splits for the work the simulator actually re-transfers.
        model = InterruptionModel(
            checkpoint_fraction=max(1.0 - config.interruption_loss, 1e-9)
        )
        return InterruptedRollingDRRPPolicy(
            bid_policy, model=model, horizon=config.horizon,
            backend=config.backend, telemetry=telemetry,
        )
    raise ValueError(f"unknown policy {name!r}; choose from {KNOWN_POLICIES}")


@dataclass
class PolicyOutcome:
    """One policy's scored run plus its replanning/service telemetry."""

    result: SimulationResult
    replans: int = 0
    replan_latencies: list[float] = field(default_factory=list)
    cache_hits: int = 0
    degraded_plans: int = 0
    local_fallbacks: int = 0
    service_requests: int = 0
    interruptions: int = 0

    def latency_quantile(self, q: float) -> float:
        """Exact empirical quantile of the replan latencies (NaN if none)."""
        if not self.replan_latencies:
            return float("nan")
        return float(np.quantile(np.asarray(self.replan_latencies), q))


@dataclass
class CampaignResult:
    """Everything one campaign produced (see module docstring)."""

    config: CampaignConfig
    outcomes: dict[str, PolicyOutcome]
    oracle_cost: float
    ratios: dict[str, float]          # realized cost / oracle cost per policy
    manifest: RunManifest
    registry: MetricsRegistry
    elapsed: float
    events: list = field(default_factory=list)      # recorded SolveEvents
    trace: TraceContext | None = None               # the campaign's root context
    wall_t0: float | None = None                    # time.time() at hub creation

    def result_payload(self) -> dict:
        """The digest-stable record of the campaign (decisions included).

        Deliberately excludes wall-clock latencies and event streams —
        only replay-stable numbers go under the manifest digest.
        """
        return _result_payload(self.outcomes, self.oracle_cost, self.ratios)

    def summary_lines(self) -> list[str]:
        lines = [
            f"{self.config.vm}: {self.config.slots} slots, "
            f"prediction {self.config.horizon.prediction} / control "
            f"{self.config.horizon.control} / coarse x{self.config.horizon.coarse_block}; "
            f"oracle cost ${self.oracle_cost:.3f}"
        ]
        for name in sorted(self.outcomes, key=lambda n: self.outcomes[n].result.total_cost):
            out = self.outcomes[name]
            res = out.result
            parts = [
                f"  {name:22s} ${res.total_cost:9.3f}  x{self.ratios[name]:.4f} oracle",
                f"out-of-bid {res.out_of_bid_events}",
            ]
            if out.interruptions:
                parts.append(f"interruptions {out.interruptions}")
            if out.replans:
                parts.append(
                    f"replans {out.replans} (p50 {out.latency_quantile(0.5) * 1e3:.0f} ms)"
                )
            if out.service_requests:
                parts.append(
                    f"service {out.service_requests} req / {out.cache_hits} cached"
                    + (f" / {out.degraded_plans} degraded" if out.degraded_plans else "")
                    + (f" / {out.local_fallbacks} local" if out.local_fallbacks else "")
                )
            lines.append("  ".join(parts))
        return lines


def _result_payload(outcomes: dict[str, PolicyOutcome], oracle_cost: float,
                    ratios: dict[str, float]) -> dict:
    per_policy = {}
    for name, out in sorted(outcomes.items()):
        res = out.result
        per_policy[name] = {
            "total_cost": float(res.total_cost),
            "compute_cost": float(res.compute_cost),
            "inventory_cost": float(res.inventory_cost),
            "transfer_in_cost": float(res.transfer_in_cost),
            "transfer_out_cost": float(res.transfer_out_cost),
            "out_of_bid_events": int(res.out_of_bid_events),
            "rentals": int(res.rentals),
            "forced_topups": int(res.forced_topups),
            "lost_gb": float(res.lost_gb),
            "replans": int(out.replans),
            "interruptions": int(out.interruptions),
            "generated": [float(x) for x in res.generated],
            "inventory": [float(x) for x in res.inventory],
            "paid_prices": [float(x) for x in res.paid_prices],
        }
    return {
        "oracle_cost": float(oracle_cost),
        "ratios": {k: float(v) for k, v in sorted(ratios.items())},
        "policies": per_policy,
    }


def run_campaign(
    config: CampaignConfig | None = None,
    service_url: str | None = None,
    extra_policies: dict[str, Policy] | None = None,
    listener=None,
) -> CampaignResult:
    """Run one closed-loop campaign end to end (see module docstring).

    ``extra_policies`` lets callers add pre-built :class:`Policy`
    instances (keyed by display name) beyond the named roster — they are
    simulated and scored like any other policy but are *not* recorded in
    the manifest config.  ``listener`` attaches one extra telemetry
    listener to the campaign hub (the CLI's live narrator, tests).

    The whole campaign runs under one ambient
    :class:`~repro.obs.propagate.TraceContext` — the caller's, when one
    is active, otherwise a fresh root — so service submissions and
    ``parallel_map`` fan-outs all land in the same trace; its id is
    recorded in the manifest (``extra["trace_id"]``) and on the result.
    """
    from repro.solver import EventRecorder, Telemetry

    config = config or CampaignConfig()
    recorder = EventRecorder()
    registry = MetricsRegistry()
    listeners = [recorder, MetricsAggregator(registry)]
    if listener is not None:
        listeners.append(listener)
    wall_t0 = time.time()
    hub = Telemetry(listeners=listeners)
    latency_hist = registry.histogram("sim_replan_s", _REPLAN_BUCKETS)
    window_counter = registry.counter("sim_replans_total")
    ctx = current_trace() or TraceContext.new_root()

    inputs = build_inputs(config)
    t_start = time.perf_counter()

    outcomes: dict[str, PolicyOutcome] = {}
    roster: list[tuple[str, Policy]] = [
        (name, make_policy(name, inputs, config, service_url, telemetry=hub))
        for name in config.policies
    ]
    for name, policy in (extra_policies or {}).items():
        roster.append((name, policy))

    for name, policy in roster:
        with activate(ctx), span(hub, f"policy[{name}]", slots=config.slots) as info:
            result = simulate_policy(
                policy,
                inputs.realized,
                inputs.demand,
                inputs.vm,
                rates=inputs.rates,
                base_distribution=inputs.base_distribution,
                price_history=inputs.history,
                interruption_loss=config.interruption_loss,
            )
            latencies = list(getattr(policy, "replan_latencies", ()))
            info["replans"] = len(latencies)
        for latency in latencies:
            latency_hist.observe(latency)
        window_counter.inc(len(latencies))
        outcomes[name] = PolicyOutcome(
            result=result,
            replans=int(getattr(policy, "replans", 0)),
            replan_latencies=latencies,
            cache_hits=int(getattr(policy, "cache_hits", 0)),
            degraded_plans=int(getattr(policy, "degraded_plans", 0)),
            local_fallbacks=int(getattr(policy, "local_fallbacks", 0)),
            service_requests=int(getattr(policy, "requests", 0)),
            interruptions=int(getattr(policy, "interruptions", 0)),
        )

    elapsed = time.perf_counter() - t_start
    if "oracle" in outcomes:
        oracle_cost = outcomes["oracle"].result.total_cost
    else:  # scored against the best run when no clairvoyant was requested
        oracle_cost = min(o.result.total_cost for o in outcomes.values())
    denom = oracle_cost or 1.0
    ratios = {
        name: out.result.total_cost / denom for name, out in outcomes.items()
    }
    manifest = RunManifest.from_run(
        "simulate",
        f"{config.vm}/{config.slots}",
        result=_result_payload(outcomes, oracle_cost, ratios),
        seed=config.seed,
        config=config.jsonable(),
        recorded_events=recorder.events,
        elapsed=elapsed,
        # The ephemeral port would differ between a run and its replay, so
        # only the *fact* of service routing goes under the manifest.
        extra={"service_routed": service_url is not None,
               "trace_id": ctx.trace_id},
    )
    return CampaignResult(
        config=config,
        outcomes=outcomes,
        oracle_cost=oracle_cost,
        ratios=ratios,
        manifest=manifest,
        registry=registry,
        elapsed=elapsed,
        events=list(recorder.events),
        trace=ctx,
        wall_t0=wall_t0,
    )


def with_horizon(config: CampaignConfig, **horizon_kwargs) -> CampaignConfig:
    """Convenience: a copy of ``config`` with horizon knobs replaced."""
    return replace(config, horizon=replace(config.horizon, **horizon_kwargs))
