"""Rolling-horizon window geometry: prediction/control/overlap + resolution.

The closed-loop engine replans on a fixed cadence, the classic MPC split
the PHOENAIX exemplar uses:

* **prediction horizon** — how far ahead each replan optimizes;
* **control horizon** — how many of the planned slots are *executed*
  before the next replan (the rest is discarded);
* **overlap** — ``prediction - control``, the lookahead beyond the
  executed region that keeps end-of-window decisions from going myopic
  (without it the planner drains all inventory at every window edge).

On top of the cadence sits **multi-resolution blocking**: the near-term
``fine`` region keeps single-slot resolution (those decisions may be
executed), while the far-term remainder is aggregated into coarse blocks
of ``coarse_block`` slots each.  A 168-slot prediction window with a
24-slot fine region and 6-slot coarse blocks becomes a 48-variable DRRP
instance instead of a 168-variable one — the far-term detail only steers
the carry-over inventory, so coarsening it trades negligible plan quality
for a large solve speedup.

Aggregation semantics (exact time-aggregation of the lot-sizing model):
for a block of ``k`` slots, demand is the block sum, the compute price is
the sum over the block's slots (a rented "block instance" runs for all
``k`` hours), and the per-GB holding rates scale by ``k`` (inventory held
across the block is held for ``k`` hours); per-GB transfer rates are
unchanged.  With ``coarse_block=1`` the aggregated instance *is* the
fine instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.market.catalog import CostRates
from repro.core.costs import CostSchedule

__all__ = ["HorizonConfig", "build_blocks", "aggregate_window", "AggregatedWindow"]


@dataclass(frozen=True)
class HorizonConfig:
    """Replanning cadence and window resolution (see module docstring)."""

    prediction: int = 48     # slots each replan looks ahead
    control: int = 24        # slots executed before the next replan
    fine: int | None = None  # single-slot-resolution prefix; default = control
    coarse_block: int = 4    # slots per far-term aggregate block

    def __post_init__(self) -> None:
        if self.control < 1:
            raise ValueError("control horizon must be >= 1")
        if self.prediction < self.control:
            raise ValueError(
                f"prediction horizon ({self.prediction}) must cover the "
                f"control horizon ({self.control})"
            )
        if self.coarse_block < 1:
            raise ValueError("coarse_block must be >= 1")
        if self.fine is not None and not self.control <= self.fine <= self.prediction:
            raise ValueError(
                "fine region must span at least the control horizon and at "
                f"most the prediction horizon, got {self.fine}"
            )

    @property
    def fine_slots(self) -> int:
        """Resolved fine-region length (defaults to the control horizon)."""
        return self.control if self.fine is None else self.fine

    @property
    def overlap(self) -> int:
        """Planned-but-discarded lookahead beyond the executed region."""
        return self.prediction - self.control


def build_blocks(window: int, cfg: HorizonConfig) -> list[tuple[int, int]]:
    """Partition ``[0, window)`` into ``(start, length)`` resolution blocks.

    The first ``min(fine_slots, window)`` slots become single-slot blocks;
    the remainder is tiled with ``coarse_block``-slot aggregates (the last
    one possibly shorter).  Blocks are contiguous, ordered, and cover the
    window exactly.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    fine = min(cfg.fine_slots, window)
    blocks = [(i, 1) for i in range(fine)]
    start = fine
    while start < window:
        length = min(cfg.coarse_block, window - start)
        blocks.append((start, length))
        start += length
    return blocks


@dataclass(frozen=True)
class AggregatedWindow:
    """One replan window coarsened onto its resolution blocks.

    All arrays have one entry per block.  ``blocks`` maps each aggregate
    back to its ``(start, length)`` slot range in the window, so callers
    can tell the executable fine prefix (length-1 blocks) from the
    far-term aggregates.
    """

    blocks: tuple[tuple[int, int], ...]
    demand: np.ndarray        # block demand sums (GB)
    compute: np.ndarray       # block rental prices (sum of slot prices)
    storage: np.ndarray       # per-GB holding across the block
    io: np.ndarray
    transfer_in: np.ndarray   # per-GB, resolution-independent
    transfer_out: np.ndarray

    @property
    def n_fine(self) -> int:
        """Length of the single-slot prefix (decisions that may execute)."""
        n = 0
        for _, length in self.blocks:
            if length != 1:
                break
            n += 1
        return n

    def cost_schedule(self) -> CostSchedule:
        """The aggregated instance's costs for the in-process planners."""
        return CostSchedule(
            compute=self.compute, storage=self.storage, io=self.io,
            transfer_in=self.transfer_in, transfer_out=self.transfer_out,
        )

    def payload_costs(self) -> dict[str, list[float]]:
        """The same costs as explicit JSON lists for service submissions."""
        return {
            "compute": [float(x) for x in self.compute],
            "storage": [float(x) for x in self.storage],
            "io": [float(x) for x in self.io],
            "transfer_in": [float(x) for x in self.transfer_in],
            "transfer_out": [float(x) for x in self.transfer_out],
        }


def aggregate_window(
    demand: np.ndarray,
    compute_prices: np.ndarray,
    blocks: list[tuple[int, int]],
    rates: CostRates | None = None,
) -> AggregatedWindow:
    """Coarsen one replan window onto ``blocks`` (see module docstring)."""
    demand = np.asarray(demand, dtype=float)
    compute_prices = np.asarray(compute_prices, dtype=float)
    if compute_prices.shape != demand.shape:
        raise ValueError("need one compute price per window slot")
    covered = sum(length for _, length in blocks)
    if covered != demand.shape[0]:
        raise ValueError(
            f"blocks cover {covered} slots but the window has {demand.shape[0]}"
        )
    rates = rates or CostRates()
    n = len(blocks)
    agg_demand = np.empty(n)
    agg_compute = np.empty(n)
    lengths = np.empty(n)
    for b, (start, length) in enumerate(blocks):
        agg_demand[b] = demand[start : start + length].sum()
        agg_compute[b] = compute_prices[start : start + length].sum()
        lengths[b] = length
    return AggregatedWindow(
        blocks=tuple(blocks),
        demand=agg_demand,
        compute=agg_compute,
        storage=rates.storage_per_gb_hour * lengths,
        io=rates.io_per_gb * lengths,
        transfer_in=np.full(n, rates.transfer_in_per_gb),
        transfer_out=np.full(n, rates.transfer_out_per_gb),
    )
