"""Bidding policies: stateful bid selection with eviction feedback.

Where :mod:`repro.market.auction` provides stateless *bid strategies*
(price history → a bid vector), this module provides *bid policies* —
objects that own a bid level across a campaign, observe only the
published price history, and may react when the market evicts them:

* :class:`FixedBidPolicy` — one constant bid (defaulting to the
  historical mean, the paper's "common bid strategy");
* :class:`IndexedBidPolicy` — index tracking (Shastri & Irwin,
  PAPERS.md): bid a fixed fraction of the on-demand price λ, trading
  interruption risk for cost predictability;
* :class:`PercentileBidPolicy` — bid the observed-price quantile that
  historically bought a target availability (Andrzejak et al. style);
* :class:`RebidPolicy` — checkpoint-aware rebid-after-eviction
  (Voorsluys et al.): start from a percentile bid and escalate after
  each eviction, harder when the eviction destroyed un-checkpointed
  work, capped at λ (bidding above λ is never rational).

:class:`PolicyBids` adapts any policy to the
:class:`~repro.market.auction.BidStrategy` call signature so the rolling
planners (:mod:`repro.sim.policies`) can submit its bids; the policy's
state advances only through :meth:`BidPolicy.notify_eviction`, driven by
realized — never future — prices, preserving nonanticipativity.
"""

from __future__ import annotations

import numpy as np

from repro.market.availability import bid_for_availability
from repro.market.interruptions import InterruptionEvent

__all__ = [
    "BidPolicy",
    "FixedBidPolicy",
    "IndexedBidPolicy",
    "PercentileBidPolicy",
    "RebidPolicy",
    "PolicyBids",
    "BID_POLICY_KINDS",
    "make_bid_policy",
]


class BidPolicy:
    """Interface: a stateful bid level over a campaign.

    ``reset(on_demand_price)`` is called once before the first slot;
    ``bid(observed, t)`` maps the price history published through slot
    ``t`` to the bid submitted for upcoming rentals;
    ``notify_eviction(event)`` reports a realized eviction so adaptive
    policies can rebid.  Policies must never look past ``observed``.
    """

    name = "abstract"

    def reset(self, on_demand_price: float) -> None:
        self.on_demand_price = float(on_demand_price)

    def bid(self, observed: np.ndarray, t: int = 0) -> float:
        raise NotImplementedError

    def notify_eviction(self, event: InterruptionEvent) -> None:
        """Default: ignore evictions (static policies)."""


class FixedBidPolicy(BidPolicy):
    """Bid one constant value; ``value=None`` bids the historical mean.

    The mean is the paper's "common bid strategy" — cheap when it wins
    and evicted roughly half the time, which makes this the natural naive
    baseline of the bench's bid sweep.
    """

    name = "fixed"

    def __init__(self, value: float | None = None) -> None:
        if value is not None and value <= 0:
            raise ValueError("a fixed bid must be positive")
        self.value = value

    def bid(self, observed: np.ndarray, t: int = 0) -> float:
        if self.value is not None:
            return float(self.value)
        return float(np.asarray(observed, dtype=float).mean())


class IndexedBidPolicy(BidPolicy):
    """Index tracking: bid ``fraction`` of the on-demand price λ."""

    name = "od-index"

    def __init__(self, fraction: float = 0.9) -> None:
        if not 0.0 < fraction:
            raise ValueError("index fraction must be positive")
        self.fraction = fraction

    def bid(self, observed: np.ndarray, t: int = 0) -> float:
        return self.fraction * self.on_demand_price


class PercentileBidPolicy(BidPolicy):
    """Bid the smallest level that historically bought a target availability.

    Recomputed on every call over the *observed* history (the estimation
    window plus realized prices through the current slot), so the bid
    adapts as the market drifts — using only published prices.
    """

    name = "percentile"

    def __init__(self, availability: float = 0.95) -> None:
        if not 0.0 < availability <= 1.0:
            raise ValueError("target availability must be in (0, 1]")
        self.availability = availability

    def bid(self, observed: np.ndarray, t: int = 0) -> float:
        return bid_for_availability(np.asarray(observed, dtype=float), self.availability)


class RebidPolicy(PercentileBidPolicy):
    """Checkpoint-aware rebid-after-eviction.

    Starts from a (deliberately aggressive) percentile bid and multiplies
    it by ``escalation`` after each eviction; an eviction that destroyed
    un-checkpointed work escalates proportionally harder (up to double
    the step when everything since the last checkpoint was lost).  The
    bid is always capped at λ — at that level every auction is won
    whenever spot stays at or below on-demand, so escalation terminates.
    """

    name = "rebid"

    def __init__(self, availability: float = 0.75, escalation: float = 1.25) -> None:
        super().__init__(availability)
        if escalation <= 1.0:
            raise ValueError("escalation must be above 1 (or evictions never rebid)")
        self.escalation = escalation
        self._factor = 1.0

    def reset(self, on_demand_price: float) -> None:
        super().reset(on_demand_price)
        self._factor = 1.0

    def bid(self, observed: np.ndarray, t: int = 0) -> float:
        base = super().bid(observed, t)
        return min(base * self._factor, self.on_demand_price)

    def notify_eviction(self, event: InterruptionEvent) -> None:
        work = event.lost_gb + event.salvaged_gb
        loss_share = event.lost_gb / work if work > 0 else 0.0
        self._factor *= 1.0 + (self.escalation - 1.0) * (1.0 + loss_share)


class PolicyBids:
    """Adapt a :class:`BidPolicy` to the ``BidStrategy.bids`` signature.

    One bid level per window, held constant across the horizon — the
    policy prices the window, eviction feedback moves the level between
    windows.  Duck-types :class:`~repro.market.auction.BidStrategy`
    (``name`` + ``bids``), deliberately not a frozen dataclass: the
    wrapped policy is stateful.
    """

    def __init__(self, policy: BidPolicy) -> None:
        self.policy = policy
        self.name = f"bid-{policy.name}"

    def bids(self, history: np.ndarray, horizon: int, t: int = 0) -> np.ndarray:
        return np.full(horizon, self.policy.bid(np.asarray(history, dtype=float), t))


#: Roster kinds for ``make_bid_policy`` (the CLI's ``--bid-policy`` values).
BID_POLICY_KINDS = ("fixed", "od-index", "percentile", "rebid")


def make_bid_policy(kind: str, value: float | None = None) -> BidPolicy:
    """Instantiate a named bid policy.

    ``value`` is the kind-specific knob: the bid in $ for ``fixed`` (None
    = historical mean), the λ fraction for ``od-index``, and the target
    availability for ``percentile`` / ``rebid``.
    """
    if kind == "fixed":
        return FixedBidPolicy(value)
    if kind == "od-index":
        return IndexedBidPolicy(0.9 if value is None else value)
    if kind == "percentile":
        return PercentileBidPolicy(0.95 if value is None else value)
    if kind == "rebid":
        return RebidPolicy(0.75 if value is None else value)
    raise ValueError(
        f"unknown bid policy {kind!r}; choose from {BID_POLICY_KINDS}"
    )
