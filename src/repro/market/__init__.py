"""Cloud-market substrate: the EC2 price catalog, synthetic spot traces,
hourly resampling, auction semantics, and the bundled reference dataset."""

from .catalog import (
    ANALYSIS_CLASSES,
    HOURS_PER_MONTH,
    PLANNING_CLASSES,
    CostRates,
    VMClass,
    ec2_catalog,
)
from .traces import SpotPriceTrace, TraceParams, campaign_series, generate_spot_trace
from .resample import daily_update_counts, hourly_series, update_interval_stats
from .auction import (
    BidStrategy,
    FixedBids,
    ForecastBids,
    MeanBids,
    PerturbedActualBids,
    ScheduleBids,
    effective_hourly_price,
    is_out_of_bid,
)
from .io import read_trace_csv, traces_from_csv_dir, traces_to_csv_dir, write_trace_csv
from .availability import (
    AvailabilityCurve,
    availability_curve,
    availability_of_bid,
    bid_for_availability,
    expected_cost_of_bid,
)
from .dataset import (
    TRACE_EPOCH,
    PaperWindow,
    hours_since_epoch,
    paper_window,
    reference_dataset,
)

__all__ = [
    "ANALYSIS_CLASSES",
    "HOURS_PER_MONTH",
    "PLANNING_CLASSES",
    "CostRates",
    "VMClass",
    "ec2_catalog",
    "SpotPriceTrace",
    "TraceParams",
    "campaign_series",
    "generate_spot_trace",
    "daily_update_counts",
    "hourly_series",
    "update_interval_stats",
    "BidStrategy",
    "FixedBids",
    "ForecastBids",
    "MeanBids",
    "PerturbedActualBids",
    "ScheduleBids",
    "effective_hourly_price",
    "is_out_of_bid",
    "TRACE_EPOCH",
    "PaperWindow",
    "hours_since_epoch",
    "paper_window",
    "reference_dataset",
    "read_trace_csv",
    "traces_from_csv_dir",
    "traces_to_csv_dir",
    "write_trace_csv",
    "AvailabilityCurve",
    "availability_curve",
    "availability_of_bid",
    "bid_for_availability",
    "expected_cost_of_bid",
]
