"""Out-of-bid interruptions: typed events, exact accounting, DRRP knock-outs.

The paper assumes instant failover: an out-of-bid slot silently pays the
on-demand price λ and no work is lost.  Real spot markets evict the
instance mid-slot (Voorsluys et al., PAPERS.md), which costs three things
the planning layer must see:

* the **eviction** itself — the slot's rental falls back to λ;
* **lost work** — the un-checkpointed fraction of the slot's generated
  data, regenerated on the fallback instance (re-fetching its input);
* a **restart lag** — slots during which the replacement instance is
  still provisioning and no spot capacity is usable.

This module turns a price trace plus a bid series into typed
:class:`InterruptionEvent` records (:func:`scan_trace`), converts them
into modified DRRP instances whose capacity is knocked out on the evicted
slots (:func:`apply_interruptions` — the "clairvoyant repair plan" input),
and provides the exact-Fraction realized-cost accounting
(:func:`fixed_bid_outcome`) that the verification layer cross-checks
against the simulator.

Single-charge invariant
-----------------------
Eviction detection uses the *same* predicate as the availability layer:
:func:`repro.market.auction.is_out_of_bid` (``bid < spot``), whose
complement is exactly the availability win condition ``spot <= bid``
(:func:`repro.market.availability.availability_of_bid`).  Every slot is
therefore either a win (charged the spot price once) or an eviction
(charged λ once, plus the regeneration transfer-in) — never both, never
neither, including the ``bid == spot`` tie, which is a win.
:func:`eviction_mask` is that shared predicate vectorized; the regression
tests pin ``wins + evictions == slots`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction

import numpy as np

from repro.market.auction import effective_hourly_price, is_out_of_bid
from repro.market.catalog import CostRates

__all__ = [
    "InterruptionEvent",
    "InterruptionModel",
    "eviction_mask",
    "scan_trace",
    "knocked_out_slots",
    "apply_interruptions",
    "BidDominanceCase",
    "FixedBidOutcome",
    "fixed_bid_outcome",
]


@dataclass(frozen=True)
class InterruptionEvent:
    """One eviction: where it hit, what it cost, how long the restart took.

    ``lost_gb`` / ``salvaged_gb`` split the slot's generated data by the
    checkpoint: the salvaged fraction survives as inventory, the lost
    fraction is regenerated on the on-demand fallback (paying transfer-in
    again).  ``restart_lag`` counts *additional* slots after ``slot``
    during which no spot capacity is usable.
    """

    slot: int
    spot_price: float
    bid: float
    lost_gb: float = 0.0
    salvaged_gb: float = 0.0
    restart_lag: int = 0


@dataclass(frozen=True)
class InterruptionModel:
    """How an eviction translates into lost work and downtime.

    ``checkpoint_fraction`` is the share of a slot's in-progress work a
    checkpoint preserves (1.0 = the paper's lossless instant failover);
    its complement :attr:`work_loss` is the ``interruption_loss`` the
    simulator charges.  ``restart_lag`` is the number of follow-on slots
    the replacement instance needs to come up.
    """

    checkpoint_fraction: float = 1.0
    restart_lag: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.checkpoint_fraction <= 1.0:
            raise ValueError("checkpoint_fraction must be in (0, 1]")
        if self.restart_lag < 0:
            raise ValueError("restart_lag must be nonnegative")

    @property
    def work_loss(self) -> float:
        """Fraction of a slot's generated work an eviction destroys."""
        return 1.0 - self.checkpoint_fraction


def eviction_mask(prices: np.ndarray, bids: np.ndarray | float) -> np.ndarray:
    """Boolean mask of slots where the bid loses the auction.

    Vectorized :func:`~repro.market.auction.is_out_of_bid`: exactly the
    complement of the availability layer's win condition ``prices <= bid``,
    so for any slot ``eviction_mask ^ win == True`` — each slot is charged
    exactly once (see the module docstring).
    """
    prices = np.asarray(prices, dtype=float)
    bids = np.broadcast_to(np.asarray(bids, dtype=float), prices.shape)
    return bids < prices


def scan_trace(
    prices: np.ndarray,
    bids: np.ndarray | float,
    model: InterruptionModel | None = None,
    generation: np.ndarray | None = None,
) -> list[InterruptionEvent]:
    """Walk a realized price trace against a bid series; emit evictions.

    Assumes an instance is (re)requested every slot outside restart
    blackouts — pass ``generation`` to restrict to slots that actually
    generate work (``generation[t] > 0``); its value then sizes the
    lost/salvaged split of each event.  Slots inside a previous event's
    ``restart_lag`` window cannot be evicted again (nothing is running)
    and emit no event.
    """
    model = model or InterruptionModel()
    prices = np.asarray(prices, dtype=float)
    bid_arr = np.broadcast_to(np.asarray(bids, dtype=float), prices.shape)
    events: list[InterruptionEvent] = []
    blackout_until = -1
    for t in range(prices.shape[0]):
        if t <= blackout_until:
            continue
        if generation is not None and not generation[t] > 0:
            continue
        if is_out_of_bid(float(bid_arr[t]), float(prices[t])):
            gen = float(generation[t]) if generation is not None else 0.0
            events.append(InterruptionEvent(
                slot=t,
                spot_price=float(prices[t]),
                bid=float(bid_arr[t]),
                lost_gb=model.work_loss * gen,
                salvaged_gb=model.checkpoint_fraction * gen,
                restart_lag=model.restart_lag,
            ))
            blackout_until = t + model.restart_lag
    return events


def knocked_out_slots(events, horizon: int) -> np.ndarray:
    """Boolean mask of slots with no usable spot capacity.

    An event knocks out its own slot plus the ``restart_lag`` slots after
    it (clipped to the horizon).
    """
    mask = np.zeros(horizon, dtype=bool)
    for ev in events:
        lo = ev.slot
        hi = min(ev.slot + ev.restart_lag + 1, horizon)
        if 0 <= lo < horizon:
            mask[lo:hi] = True
    return mask


def apply_interruptions(instance, events):
    """A DRRP instance with the evicted slots' capacity knocked out.

    Uses the model's own bottleneck constraint (eq. 3): ``P·α_t <= Q(t)``
    with ``Q = 0`` on every knocked-out slot forces ``α = 0`` there, so the
    re-solved plan is the clairvoyant *repair plan* — produce around the
    evictions.  Checkpoint salvage is credited to the initial inventory.
    On an instance that already carries a bottleneck, the knocked-out
    slots' capacity is zeroed and the rest kept.

    The result can be infeasible when an eviction pattern starves early
    demand (e.g. slot 0 evicted with no inventory); callers constructing
    repair instances are responsible for a coverable pattern.
    """
    mask = knocked_out_slots(events, instance.horizon)
    salvage = float(sum(ev.salvaged_gb for ev in events))
    if instance.bottleneck_rate is not None:
        rate = instance.bottleneck_rate
        cap = np.where(mask, 0.0, np.asarray(instance.bottleneck_capacity, dtype=float))
    else:
        rate = 1.0
        # loose everywhere else: no slot ever generates more than this
        big = float(instance.demand.sum() + instance.initial_storage + salvage) or 1.0
        cap = np.where(mask, 0.0, big)
    return replace(
        instance,
        bottleneck_rate=rate,
        bottleneck_capacity=cap,
        initial_storage=instance.initial_storage + salvage,
    )


# ---------------------------------------------------------------------------
# Exact realized-cost accounting for fixed-bid runs (the verification side)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BidDominanceCase:
    """One bid-dominance scenario: a trace, a demand schedule, two bids.

    The physical schedule (generate each slot's demand in that slot, the
    reactive no-plan policy) is independent of the bid, so the only effect
    of raising it is auction outcomes.  With every price capped at λ —
    the market-rational regime; bidding above a spot price below λ can
    only swap a λ charge for a cheaper spot charge — the realized cost is
    provably non-increasing and the interruption count non-increasing in
    the bid.  ``bid_hi > bid_lo`` by construction.
    """

    prices: np.ndarray
    demand: np.ndarray
    on_demand_price: float
    bid_lo: float
    bid_hi: float
    work_loss: float = 0.0

    def __post_init__(self) -> None:
        prices = np.asarray(self.prices, dtype=float)
        demand = np.asarray(self.demand, dtype=float)
        object.__setattr__(self, "prices", prices)
        object.__setattr__(self, "demand", demand)
        if prices.shape != demand.shape:
            raise ValueError("prices and demand must share a horizon")
        if float(prices.max(initial=0.0)) > self.on_demand_price:
            raise ValueError(
                "bid dominance requires spot prices capped at the on-demand "
                "price λ (above it, winning can cost more than losing)"
            )
        if not self.bid_hi > self.bid_lo:
            raise ValueError("bid_hi must be strictly above bid_lo")
        if not 0.0 <= self.work_loss < 1.0:
            raise ValueError("work_loss must be in [0, 1)")


@dataclass(frozen=True)
class FixedBidOutcome:
    """Exact cost split of one fixed-bid no-plan run (Fractions throughout)."""

    cost: Fraction
    compute: Fraction
    transfer_in: Fraction
    transfer_out: Fraction
    interruptions: int
    lost_gb: float


def fixed_bid_outcome(
    case: BidDominanceCase, bid: float, rates: CostRates | None = None
) -> FixedBidOutcome:
    """Realized cost of serving ``case.demand`` reactively at a fixed bid.

    This is an *independent* exact re-derivation of what
    :func:`repro.core.rolling.simulate_policy` charges a
    ``NoPlanPolicy(FixedBids(bid))`` run: rent exactly the slots with
    positive demand, pay the effective price (spot on a win, λ on an
    eviction — once, never both), regenerate the lost fraction of an
    evicted slot's work at transfer-in cost.  Per-slot charges are formed
    in float exactly as the simulator forms them, then summed as
    Fractions, so the two totals must agree bit for bit — the
    single-charge regression the fuzz oracle runs on every case.
    """
    rates = rates or CostRates()
    compute = Fraction(0)
    tin = Fraction(0)
    interruptions = 0
    lost_total = 0.0
    for t in range(case.demand.shape[0]):
        gen = float(case.demand[t])
        if gen <= 1e-12:  # the no-plan policy skips the slot entirely
            continue
        spot = float(case.prices[t])
        lost = 0.0
        if is_out_of_bid(bid, spot):
            interruptions += 1
            lost = case.work_loss * gen
        compute += Fraction(effective_hourly_price(bid, spot, case.on_demand_price))
        tin += Fraction(
            float(rates.transfer_in_per_gb * rates.input_output_ratio * (gen + lost))
        )
        lost_total += lost
    tout = Fraction(float(rates.transfer_out_per_gb)) * sum(
        (Fraction(float(x)) for x in case.demand), Fraction(0)
    )
    return FixedBidOutcome(
        cost=compute + tin + tout,
        compute=compute,
        transfer_in=tin,
        transfer_out=tout,
        interruptions=interruptions,
        lost_gb=lost_total,
    )
