"""Spot-auction semantics and bidding strategies.

Amazon's spot market is a uniform-price auction: every winner pays the spot
price (the lowest winning bid) regardless of what it bid.  An ASP whose bid
falls below the current spot price suffers an *out-of-bid event* and — per
the paper's assumption — rents the needed capacity from the on-demand
market at the fixed price λ instead.

:func:`effective_hourly_price` encodes those two rules; the bid strategies
reproduce the policies compared in Figure 12(a):

* ``ForecastBids`` — bid the SARIMA day-ahead predictions (the paper's
  "best approximation values we can get using statistical analysis");
* ``MeanBids`` — bid the expected mean of the historical data (the "common
  bid strategy" also evaluated);
* ``FixedBids`` / ``PerturbedActualBids`` — supporting strategies for the
  Fig. 12(b) approximation-precision study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "is_out_of_bid",
    "effective_hourly_price",
    "BidStrategy",
    "FixedBids",
    "MeanBids",
    "ForecastBids",
    "PerturbedActualBids",
    "ScheduleBids",
]


def is_out_of_bid(bid: float, spot_price: float) -> bool:
    """An out-of-bid event occurs when the ASP's bid is below the spot price."""
    return bid < spot_price


def effective_hourly_price(bid: float, spot_price: float, on_demand_price: float) -> float:
    """Price actually paid for one instance-hour.

    Winners pay the uniform spot price; losers fall back to on-demand at λ.
    """
    if is_out_of_bid(bid, spot_price):
        return on_demand_price
    return spot_price


@dataclass(frozen=True)
class BidStrategy:
    """Interface: map a price history to per-slot bids for a horizon.

    ``t`` is the absolute evaluation-slot index of the first bid — rolling
    policies pass it so schedule-style strategies (precomputed forecasts,
    perturbed actual prices) can align their bid windows.
    """

    name: str = "abstract"

    def bids(self, history: np.ndarray, horizon: int, t: int = 0) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedBids(BidStrategy):
    """Bid a constant value every slot."""

    value: float = 0.0
    name: str = "fixed"

    def bids(self, history: np.ndarray, horizon: int, t: int = 0) -> np.ndarray:
        return np.full(horizon, self.value)


@dataclass(frozen=True)
class MeanBids(BidStrategy):
    """Bid the expected mean of the historical price series every slot."""

    name: str = "exp-mean"

    def bids(self, history: np.ndarray, horizon: int, t: int = 0) -> np.ndarray:
        return np.full(horizon, float(np.asarray(history, dtype=float).mean()))


@dataclass(frozen=True)
class ForecastBids(BidStrategy):
    """Bid the model's h-step-ahead forecasts (SARIMA by default).

    The fitted forecaster is supplied by the caller as a function
    ``history, horizon -> np.ndarray`` so the strategy stays decoupled from
    any particular model class.
    """

    forecaster: object = None  # Callable[[np.ndarray, int], np.ndarray]
    name: str = "predict"

    def bids(self, history: np.ndarray, horizon: int, t: int = 0) -> np.ndarray:
        if self.forecaster is None:
            raise ValueError("ForecastBids requires a forecaster callable")
        out = np.asarray(self.forecaster(np.asarray(history, dtype=float), horizon), dtype=float)
        if out.shape != (horizon,):
            raise ValueError(f"forecaster returned shape {out.shape}, expected ({horizon},)")
        return out


@dataclass(frozen=True)
class PerturbedActualBids(BidStrategy):
    """Bid the *actual* future prices deviated by a fixed relative error.

    Figure 12(b)'s instrument: "we create artificial bid prices that are
    +/-2 % to 10 % deviated from the actual price realizations".  Requires
    the realized prices, so it only makes sense inside a simulation.
    """

    actual: np.ndarray = None
    deviation: float = 0.0  # e.g. +0.04 or -0.10
    name: str = "perturbed-actual"

    def bids(self, history: np.ndarray, horizon: int, t: int = 0) -> np.ndarray:
        actual = np.asarray(self.actual, dtype=float)
        window = actual[t : t + horizon]
        if window.size < horizon:
            raise ValueError("not enough actual prices for the requested horizon")
        return window * (1.0 + self.deviation)


@dataclass(frozen=True)
class ScheduleBids(BidStrategy):
    """Bid a precomputed per-slot schedule (e.g. a day-ahead SARIMA forecast).

    ``values[k]`` is the bid for evaluation slot ``k``; windows beyond the
    schedule carry the final value forward.  This is how the paper uses its
    Figure 8 predictions: computed once on the estimation window, then fed
    to planning as bid prices.
    """

    values: np.ndarray = None
    name: str = "predict"

    def bids(self, history: np.ndarray, horizon: int, t: int = 0) -> np.ndarray:
        values = np.asarray(self.values, dtype=float)
        if values.size == 0:
            raise ValueError("ScheduleBids requires a nonempty schedule")
        idx = np.minimum(np.arange(t, t + horizon), values.size - 1)
        return values[idx]
