"""EC2-style price catalog (the paper's §V-A parameter setting).

All monetary constants the evaluation uses, in one place:

* hourly on-demand instance prices ``{$0.2, $0.4, $0.8}`` for
  ``c1.medium / m1.large / m1.xlarge`` (the three planning classes);
* EBS storage at $0.10 per GB-month, normalized I/O cost of $0.20 per GB
  (from the Berriman et al. Montage cost study the paper cites);
* network transfer in/out at $0.10 / $0.17 per GB;
* the application's average input-output ratio Φ = 0.5.

``c1.xlarge`` is included as a fourth class for the spot-price analysis
figures (Fig. 3 uses four linux classes); it is not part of the planning
experiments, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VMClass", "ec2_catalog", "PLANNING_CLASSES", "ANALYSIS_CLASSES", "HOURS_PER_MONTH"]

HOURS_PER_MONTH = 730.0  # Amazon's billing convention for per-month rates


@dataclass(frozen=True)
class VMClass:
    """One instance class and its market characteristics.

    Attributes
    ----------
    name:
        EC2-style class name.
    on_demand_price:
        Fixed hourly rental cost in the on-demand market ($/h) — the λ of
        §IV-C, charged on an out-of-bid event.
    spot_discount:
        Long-run mean of spot price as a fraction of on-demand (calibrated
        to ≈0.30 from the paper's Figure 5, where c1.medium spot sits at
        $0.056–0.064 against a $0.20 on-demand price).
    spot_volatility:
        Relative dispersion of the spot process around its mean.
    outlier_rate:
        Probability that a price update is a spike; the paper observes more
        outliers for more powerful classes, all below 3 % (Fig. 3).
    power_rank:
        Ordering key used only for presentation (Fig. 3's x-axis order).
    """

    name: str
    on_demand_price: float
    spot_discount: float = 0.30
    spot_volatility: float = 0.02
    outlier_rate: float = 0.01
    power_rank: int = 0

    @property
    def mean_spot_price(self) -> float:
        return self.on_demand_price * self.spot_discount

    def __str__(self) -> str:
        return self.name


def ec2_catalog() -> dict[str, VMClass]:
    """The calibrated instance-class catalog used throughout the library."""
    return {
        "c1.medium": VMClass(
            name="c1.medium", on_demand_price=0.20,
            spot_volatility=0.018, outlier_rate=0.006, power_rank=1,
        ),
        "m1.large": VMClass(
            name="m1.large", on_demand_price=0.40,
            spot_volatility=0.022, outlier_rate=0.012, power_rank=2,
        ),
        "m1.xlarge": VMClass(
            name="m1.xlarge", on_demand_price=0.80,
            spot_volatility=0.028, outlier_rate=0.020, power_rank=3,
        ),
        "c1.xlarge": VMClass(
            name="c1.xlarge", on_demand_price=1.60,
            spot_volatility=0.034, outlier_rate=0.028, power_rank=4,
        ),
    }


#: The three classes the planning experiments use (paper §V-A).
PLANNING_CLASSES = ("c1.medium", "m1.large", "m1.xlarge")

#: The four classes of the spot-price analysis (paper Fig. 3), in Fig. 3's order.
ANALYSIS_CLASSES = ("m1.large", "m1.xlarge", "c1.medium", "c1.xlarge")


@dataclass(frozen=True)
class CostRates:
    """Non-compute cost rates shared by every class (paper §V-A)."""

    storage_per_gb_month: float = 0.10
    io_per_gb: float = 0.20
    transfer_in_per_gb: float = 0.10
    transfer_out_per_gb: float = 0.17
    input_output_ratio: float = 0.50  # Φ

    @property
    def storage_per_gb_hour(self) -> float:
        return self.storage_per_gb_month / HOURS_PER_MONTH


__all__.append("CostRates")
