"""Bid-price vs availability analysis.

The paper's related-work section points at availability-guarantee studies
(Andrzejak et al., Mazzucco & Dumas) as the other response to spot-price
risk: instead of re-planning, pick a bid that keeps the instance alive a
target fraction of the time.  This module provides that analysis over a
price history, both as a consumer sanity-check ("what would bidding the
mean have survived?") and as input to bid selection:

* :func:`availability_of_bid` — fraction of hourly slots a bid wins;
* :func:`bid_for_availability` — smallest bid achieving a target
  availability (a quantile of the price series);
* :func:`availability_curve` — the whole bid→availability map;
* :func:`expected_cost_of_bid` — expected per-rental price under the
  out-of-bid fallback to λ, the quantity DRRP implicitly mis-estimates
  when it treats the bid as the price.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "availability_of_bid",
    "bid_for_availability",
    "availability_curve",
    "expected_cost_of_bid",
    "AvailabilityCurve",
]


def availability_of_bid(prices: np.ndarray, bid: float) -> float:
    """Fraction of slots with ``spot <= bid`` (the bid keeps the instance)."""
    prices = np.asarray(prices, dtype=float)
    if prices.size == 0:
        raise ValueError("empty price history")
    return float(np.mean(prices <= bid))


def bid_for_availability(prices: np.ndarray, target: float) -> float:
    """Smallest bid whose historical availability reaches ``target``."""
    if not 0.0 < target <= 1.0:
        raise ValueError("target availability must be in (0, 1]")
    prices = np.sort(np.asarray(prices, dtype=float))
    idx = int(np.ceil(target * prices.size)) - 1
    return float(prices[max(idx, 0)])


@dataclass(frozen=True)
class AvailabilityCurve:
    """The bid → availability / expected-cost map over a price history."""

    bids: np.ndarray
    availability: np.ndarray
    expected_price: np.ndarray

    def as_rows(self) -> list[dict]:
        return [
            {
                "bid": float(b),
                "availability": float(a),
                "expected_price": float(c),
            }
            for b, a, c in zip(self.bids, self.availability, self.expected_price)
        ]


def expected_cost_of_bid(prices: np.ndarray, bid: float, on_demand_price: float) -> float:
    """Mean effective hourly price of always renting at ``bid``.

    Winning slots pay the spot price, losing slots pay λ — the true
    expectation the SRRP scenario tree encodes and DRRP ignores.
    """
    prices = np.asarray(prices, dtype=float)
    win = prices <= bid
    return float(np.where(win, prices, on_demand_price).mean())


def availability_curve(
    prices: np.ndarray,
    on_demand_price: float,
    num: int = 50,
) -> AvailabilityCurve:
    """Sweep bids across the observed price range (plus λ)."""
    prices = np.asarray(prices, dtype=float)
    if prices.size == 0:
        raise ValueError("empty price history")
    lo, hi = float(prices.min()), float(max(prices.max(), on_demand_price))
    bids = np.linspace(lo, hi, num)
    availability = np.array([availability_of_bid(prices, b) for b in bids])
    expected = np.array([expected_cost_of_bid(prices, b, on_demand_price) for b in bids])
    return AvailabilityCurve(bids=bids, availability=availability, expected_price=expected)
