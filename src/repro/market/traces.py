"""Synthetic spot-price trace generation.

The paper's empirical substrate is a 16-month crawl of Amazon EC2 spot
prices (cloudexchange.org, Feb 1 2010 – Jun 22 2011, us-east-1 linux).
That dataset is no longer published, so this module synthesizes traces with
the statistical properties the paper's analysis pipeline measures:

* **irregular update times** — updates arrive as a Poisson process whose
  daily rate itself wanders, reproducing Figure 4's "inconsistent sampling
  interval" with 0–25 updates/day;
* **mean reversion around a deep discount** — an Ornstein–Uhlenbeck-style
  AR(1) around ≈30 % of on-demand price (Figure 5 shows c1.medium at
  $0.056–0.064 against $0.20 on-demand);
* **mild daily seasonality** — a small 24 h sinusoid, giving the seasonal
  component visible in Figure 6 and the lag-24 structure behind the
  SARIMA×(·)₂₄ models of §IV-A;
* **occasional spikes** — upward outliers whose rate grows with class power
  but stays < 3 % (Figure 3);
* **price quantization** — to $0.001, as in the real market.

The generator is vectorized end-to-end: exponential gaps → cumulative
times, one ``lfilter`` pass for the AR(1) recursion, masked spike overlay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

try:
    from scipy import signal as scisignal
except ImportError:  # pure-numpy fallback below
    scisignal = None

from repro.stats.rng import ensure_rng
from .catalog import VMClass

__all__ = ["SpotPriceTrace", "generate_spot_trace", "TraceParams", "campaign_series"]

HOURS_PER_DAY = 24.0


@dataclass(frozen=True)
class TraceParams:
    """Knobs of the synthetic update/price processes."""

    duration_days: float = 506.0       # Feb 1 2010 .. Jun 22 2011
    mean_updates_per_day: float = 8.0
    rate_wander: float = 0.35          # day-to-day log-wander of the update rate
    mean_reversion: float = 0.12       # AR(1) pull toward the target level
    seasonal_relative_amplitude: float = 0.02
    spike_magnitude: tuple[float, float] = (1.4, 3.5)
    quantum: float = 0.001


@dataclass
class SpotPriceTrace:
    """An irregularly sampled spot-price history for one VM class.

    ``times`` are hours since the trace epoch (strictly increasing);
    ``prices`` the spot price set at each update.  Between updates the price
    holds (the market semantics the paper's hourly resampling relies on).
    """

    vm_class: str
    times: np.ndarray
    prices: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.prices = np.asarray(self.prices, dtype=float)
        if self.times.shape != self.prices.shape:
            raise ValueError("times and prices must align")
        if self.times.size and np.any(np.diff(self.times) <= 0):
            raise ValueError("update times must be strictly increasing")

    @property
    def n_updates(self) -> int:
        return self.times.size

    @property
    def duration_hours(self) -> float:
        return float(self.times[-1]) if self.times.size else 0.0

    def price_at(self, hour: float) -> float:
        """Price in force at ``hour`` (last update at or before it)."""
        idx = int(np.searchsorted(self.times, hour, side="right")) - 1
        if idx < 0:
            return float(self.prices[0])
        return float(self.prices[idx])

    def window(self, start_hour: float, end_hour: float) -> "SpotPriceTrace":
        """Sub-trace of updates in ``[start_hour, end_hour)``, rebased to 0."""
        if end_hour <= start_hour:
            raise ValueError("end_hour must exceed start_hour")
        mask = (self.times >= start_hour) & (self.times < end_hour)
        return SpotPriceTrace(
            vm_class=self.vm_class,
            times=self.times[mask] - start_hour,
            prices=self.prices[mask],
        )


def _update_times(params: TraceParams, rng: np.random.Generator) -> np.ndarray:
    """Poisson update arrivals with a slowly wandering daily rate."""
    n_days = int(np.ceil(params.duration_days))
    # geometric random walk of the daily rate, clipped to a sane band
    steps = rng.normal(0.0, params.rate_wander, size=n_days)
    log_rate = np.log(params.mean_updates_per_day) + np.cumsum(steps) - np.cumsum(steps).mean()
    rates = np.clip(np.exp(log_rate), 0.3, 26.0)
    counts = rng.poisson(rates)
    total = int(counts.sum())
    if total == 0:
        counts[0] = 2
        total = 2
    day_index = np.repeat(np.arange(n_days), counts)
    offsets = rng.uniform(0.0, HOURS_PER_DAY, size=total)
    times = day_index * HOURS_PER_DAY + offsets
    times.sort()
    # enforce strict monotonicity after sorting (duplicates are measure-zero
    # but float ties can happen)
    eps = 1e-6
    for _ in range(3):
        dup = np.nonzero(np.diff(times) <= 0)[0]
        if dup.size == 0:
            break
        times[dup + 1] = times[dup] + eps
    keep = times < params.duration_days * HOURS_PER_DAY
    return times[keep]


def generate_spot_trace(
    vm: VMClass,
    seed_or_rng: int | np.random.Generator | None = 0,
    params: TraceParams | None = None,
) -> SpotPriceTrace:
    """Generate one synthetic spot trace calibrated to ``vm``.

    Deterministic for a fixed seed; statistically independent traces come
    from :func:`repro.stats.spawn_rngs`.
    """
    rng = ensure_rng(seed_or_rng)
    params = params or TraceParams()
    times = _update_times(params, rng)
    n = times.size

    base = vm.mean_spot_price
    seasonal = base * params.seasonal_relative_amplitude * np.sin(2 * np.pi * times / HOURS_PER_DAY)
    target = base + seasonal

    # AR(1) toward the seasonal target: x_k = (1-k) x_{k-1} + k mu_k + sigma eps
    kappa = params.mean_reversion
    sigma = vm.spot_volatility * base
    drive = kappa * target + sigma * rng.normal(size=n)
    if scisignal is not None:
        x = scisignal.lfilter(
            [1.0], [1.0, -(1.0 - kappa)], drive, zi=np.array([(1.0 - kappa) * base])
        )[0]
    else:
        x = np.empty(n)
        prev = base
        for k in range(n):
            prev = (1.0 - kappa) * prev + drive[k]
            x[k] = prev

    # spikes: multiplicative upward outliers, one update long
    spikes = rng.random(n) < vm.outlier_rate
    magnitudes = rng.uniform(*params.spike_magnitude, size=n)
    prices = np.where(spikes, x * magnitudes, x)

    # the market never prices spot above on-demand for long; cap spikes there
    prices = np.minimum(prices, vm.on_demand_price * 1.05)
    # floor: spot markets bottom out above zero
    prices = np.maximum(prices, 0.2 * base)
    prices = np.round(prices / params.quantum) * params.quantum

    return SpotPriceTrace(vm_class=vm.name, times=times, prices=prices)


def campaign_series(
    vm: VMClass,
    estimation_slots: int,
    evaluation_slots: int,
    seed_or_rng: int | np.random.Generator | None = 0,
    params: TraceParams | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Hourly ``(history, realized)`` price split for a closed-loop campaign.

    One synthetic trace covers both windows, so the estimation history a
    forecaster conditions on and the realized path the simulator replays
    share one market process — the setup of the paper's §V evaluation
    (two months of history, then the evaluation window).  Deterministic
    for a fixed seed.  ``params`` defaults to a trace just long enough
    for both windows; an explicit one must cover them.
    """
    if estimation_slots < 1 or evaluation_slots < 1:
        raise ValueError("both windows must be at least one slot long")
    total_hours = estimation_slots + evaluation_slots
    if params is None:
        params = TraceParams(duration_days=total_hours / HOURS_PER_DAY + 2.0)
    elif params.duration_days * HOURS_PER_DAY < total_hours:
        raise ValueError(
            f"trace of {params.duration_days} days cannot cover "
            f"{total_hours} campaign hours"
        )
    from .resample import hourly_series  # local: resample imports this module

    trace = generate_spot_trace(vm, seed_or_rng, params)
    series = hourly_series(trace, 0.0, float(total_hours))
    return series[:estimation_slots], series[estimation_slots:]
