"""Trace serialization: CSV import/export for spot-price histories.

Lets users swap the synthetic reference dataset for real price logs (e.g.
a modern `aws ec2 describe-spot-price-history` dump) without touching any
other module: everything downstream consumes :class:`SpotPriceTrace`.

Format: a header line, then one ``hours_since_epoch,price`` row per update
(hours as floats relative to the trace's own epoch).  A leading comment
block carries the class name so round-trips are lossless.
"""

from __future__ import annotations

import io as _io
from pathlib import Path

import numpy as np

from .traces import SpotPriceTrace

__all__ = ["write_trace_csv", "read_trace_csv", "traces_to_csv_dir", "traces_from_csv_dir"]

_HEADER = "hours,price"


def write_trace_csv(trace: SpotPriceTrace, path: str | Path) -> None:
    """Write one trace to ``path`` (creates parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        fh.write(f"# vm_class={trace.vm_class}\n")
        fh.write(_HEADER + "\n")
        for t, p in zip(trace.times, trace.prices):
            fh.write(f"{t:.6f},{p:.6f}\n")


def read_trace_csv(path: str | Path) -> SpotPriceTrace:
    """Read a trace written by :func:`write_trace_csv` (or hand-authored
    in the same two-column format; the class name defaults to the stem)."""
    path = Path(path)
    vm_class = path.stem
    times: list[float] = []
    prices: list[float] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if "vm_class=" in line:
                    vm_class = line.split("vm_class=", 1)[1].strip()
                continue
            if line == _HEADER:
                continue
            parts = line.split(",")
            if len(parts) != 2:
                raise ValueError(f"{path}: malformed row {line!r}")
            times.append(float(parts[0]))
            prices.append(float(parts[1]))
    if not times:
        raise ValueError(f"{path}: no data rows")
    return SpotPriceTrace(
        vm_class=vm_class,
        times=np.asarray(times),
        prices=np.asarray(prices),
    )


def traces_to_csv_dir(traces: dict[str, SpotPriceTrace], directory: str | Path) -> list[Path]:
    """Write a dataset (class -> trace) as one CSV per class; returns paths."""
    directory = Path(directory)
    out = []
    for name, trace in traces.items():
        p = directory / f"{name}.csv"
        write_trace_csv(trace, p)
        out.append(p)
    return out


def traces_from_csv_dir(directory: str | Path) -> dict[str, SpotPriceTrace]:
    """Load every ``*.csv`` in ``directory`` as a trace, keyed by class."""
    directory = Path(directory)
    files = sorted(directory.glob("*.csv"))
    if not files:
        raise ValueError(f"no trace CSVs found in {directory}")
    out = {}
    for f in files:
        trace = read_trace_csv(f)
        out[trace.vm_class] = trace
    return out
