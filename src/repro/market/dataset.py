"""The bundled reference dataset and the paper's analysis windows.

:func:`reference_dataset` deterministically regenerates the stand-in for
the cloudexchange.org crawl: one synthetic trace per linux VM class over
Feb 1 2010 – Jun 22 2011 (506 days).  :func:`paper_window` exposes the
calendar windows §IV-A2 uses — estimation over [Dec 1 2010, Feb 1 2011) and
validation on Feb 1 2011 — as hour offsets from the trace epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import numpy as np

from repro.stats.rng import spawn_rngs
from .catalog import ANALYSIS_CLASSES, VMClass, ec2_catalog
from .resample import hourly_series
from .traces import SpotPriceTrace, TraceParams, generate_spot_trace

__all__ = ["TRACE_EPOCH", "hours_since_epoch", "reference_dataset", "paper_window", "PaperWindow"]

#: Calendar origin of every bundled trace (start of the paper's crawl).
TRACE_EPOCH = date(2010, 2, 1)

#: Last day of the crawl.
TRACE_END = date(2011, 6, 22)

DEFAULT_SEED = 20120521  # IPDPS 2012 conference date; any fixed constant works


def hours_since_epoch(day: date) -> float:
    """Hour offset of midnight on ``day`` from the trace epoch."""
    return (day - TRACE_EPOCH).days * 24.0


def reference_dataset(
    seed: int = DEFAULT_SEED,
    classes: tuple[str, ...] = ANALYSIS_CLASSES,
) -> dict[str, SpotPriceTrace]:
    """Generate the four-class reference dataset (deterministic per seed).

    Each class gets an independent RNG stream spawned from ``seed``, so
    adding/removing classes never perturbs the other traces.
    """
    catalog = ec2_catalog()
    duration = (TRACE_END - TRACE_EPOCH).days
    params = TraceParams(duration_days=float(duration))
    rngs = spawn_rngs(seed, len(classes))
    return {
        name: generate_spot_trace(catalog[name], rng, params)
        for name, rng in zip(classes, rngs)
    }


@dataclass(frozen=True)
class PaperWindow:
    """The §IV-A2 estimation/validation split, as hourly price arrays."""

    estimation: np.ndarray   # hourly prices, [Dec 1 2010, Feb 1 2011)
    validation: np.ndarray   # hourly prices, Feb 1 2011 (24 points)
    estimation_start_hour: float
    validation_start_hour: float

    @property
    def combined(self) -> np.ndarray:
        return np.concatenate([self.estimation, self.validation])


def paper_window(trace: SpotPriceTrace) -> PaperWindow:
    """Extract the representative two-month-plus-one-day analysis window."""
    est_start = hours_since_epoch(date(2010, 12, 1))
    val_start = hours_since_epoch(date(2011, 2, 1))
    val_end = val_start + 24.0
    if trace.duration_hours < val_end:
        raise ValueError("trace too short for the paper's analysis window")
    estimation = hourly_series(trace, est_start, val_start)
    validation = hourly_series(trace, val_start, val_end)
    return PaperWindow(
        estimation=estimation,
        validation=validation,
        estimation_start_hour=est_start,
        validation_start_hour=val_start,
    )
