"""Irregular-trace resampling and update-frequency statistics (§IV-A2).

The paper converts the unequally spaced update log "into equally spaced
time series data with a regular update frequency of 24 times per day.  At
the start of each hour, the spot price is set to be the most recent updated
price in the last hour.  If no update appears in the last hour, the spot
price is considered unchanged."  :func:`hourly_series` implements exactly
that last-observation-carried-forward rule; :func:`daily_update_counts`
produces Figure 4's series.
"""

from __future__ import annotations

import numpy as np

from .traces import SpotPriceTrace

__all__ = ["hourly_series", "daily_update_counts", "update_interval_stats"]


def hourly_series(
    trace: SpotPriceTrace,
    start_hour: float = 0.0,
    end_hour: float | None = None,
) -> np.ndarray:
    """Regular hourly price series by LOCF at each hour boundary.

    ``out[k]`` is the price in force at ``start_hour + k`` hours.  The hour
    grid covers ``[start_hour, end_hour)``.  Hours before the first update
    carry the first observed price backward (the trace has no earlier
    information).

    The whole resample is one ``searchsorted`` — O((n+m) log n) with no
    Python loop over hours.
    """
    if end_hour is None:
        end_hour = float(np.floor(trace.duration_hours))
    if end_hour <= start_hour:
        raise ValueError("end_hour must exceed start_hour")
    hours = np.arange(start_hour, end_hour, 1.0)
    idx = np.searchsorted(trace.times, hours, side="right") - 1
    idx = np.clip(idx, 0, trace.n_updates - 1)
    return trace.prices[idx]


def daily_update_counts(trace: SpotPriceTrace) -> np.ndarray:
    """Number of price updates per day (Figure 4's y-axis)."""
    if trace.n_updates == 0:
        return np.zeros(0, dtype=int)
    n_days = int(np.ceil(trace.duration_hours / 24.0)) or 1
    days = (trace.times // 24.0).astype(int)
    return np.bincount(days, minlength=n_days)


def update_interval_stats(trace: SpotPriceTrace) -> dict[str, float]:
    """Summary of inter-update gaps (hours) — quantifies the irregular
    sampling that blocks standard time-series analysis on the raw log."""
    if trace.n_updates < 2:
        raise ValueError("need at least two updates")
    gaps = np.diff(trace.times)
    return {
        "mean_hours": float(gaps.mean()),
        "std_hours": float(gaps.std()),
        "min_hours": float(gaps.min()),
        "max_hours": float(gaps.max()),
        "coefficient_of_variation": float(gaps.std() / gaps.mean()),
    }
