"""Differential oracle: independent solvers must agree, or one is wrong.

Each ``cross_check_*`` function takes one generated case (see
:mod:`repro.verify.generators`), solves it with every independent method
available for that problem class, certifies each answer with the exact
checker, and compares:

* LP/MILP: pure-Python simplex vs HiGHS (vs our branch-and-bound driver
  over HiGHS relaxations, for MILPs) — plus the planted optimum.
* DRRP: the MILP backends vs the Wagner-Whitin dynamic program, an
  algorithm that shares no code with the LP stack.
* SRRP: the compiled deterministic equivalent across MILP backends vs the
  planted recourse policy's expected cost.
* Two-stage: the extensive form vs Benders decomposition.

A divergence becomes a :class:`Disagreement` carrying the witness
instance; :func:`shrink_disagreement` delta-debugs the witness down to a
minimal reproducer (see :mod:`repro.verify.shrink`) and
:func:`serialize_witness` turns it into a JSON-able dict for persisting.

All solves run with ``use_presolve=False`` so the exported dual/Farkas
certificates refer to the *original* rows — presolve deletes rows and
would misalign the multipliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.drrp import DRRPInstance, build_drrp_model
from repro.core.lotsizing import solve_wagner_whitin
from repro.core.srrp import build_srrp_model
from repro.solver.benders import TwoStageProblem, extensive_form, solve_benders
from repro.solver.interface import solve_compiled
from repro.solver.model import CompiledProblem
from repro.solver.result import SolverStatus
from repro.solver.scipy_backend import scipy_available

from .certify import certify_result
from .generators import GeneratedCase
from .shrink import shrink_drrp, shrink_problem

__all__ = [
    "Disagreement",
    "cross_check_case",
    "shrink_disagreement",
    "serialize_witness",
]


@dataclass
class Disagreement:
    """One oracle divergence.

    ``kind`` is ``"status"`` (solvers disagree on feasibility),
    ``"objective"`` (both solved, different optima), ``"certificate"``
    (a result failed exact certification) or ``"ground-truth"`` (a result
    contradicts the planted optimum).  ``witness`` is the instance that
    triggered it; ``shrunk`` the minimised reproducer once shrinking ran.
    """

    family: str
    kind: str
    detail: dict = field(default_factory=dict)
    witness: object | None = None
    shrunk: object | None = None


def _lp_backends(is_mip: bool) -> list[str]:
    backends = ["simplex"]
    if scipy_available():
        backends.append("scipy")
        if is_mip:
            backends.append("bb-scipy")
    return backends


def _compare_problem(
    problem: CompiledProblem, tol: float, optimum: float | None = None
) -> list[Disagreement]:
    """Solve one compiled problem on every backend; return divergences."""
    is_mip = bool(problem.integrality.any())
    out: list[Disagreement] = []
    results = {}
    for backend in _lp_backends(is_mip):
        res = solve_compiled(problem, backend=backend, use_presolve=False)
        results[backend] = res
        report = certify_result(problem, res, tol=tol)
        if report.rejected:
            out.append(Disagreement(
                family="", kind="certificate",
                detail={
                    "backend": backend,
                    "status": res.status.value,
                    "failures": [f"{c.name}: {c.detail}" for c in report.failures()],
                },
            ))

    statuses = {b: r.status for b, r in results.items()}
    solved = {b: r for b, r in results.items() if r.status.has_solution}
    declared_infeasible = [b for b, s in statuses.items() if s is SolverStatus.INFEASIBLE]
    if solved and declared_infeasible:
        out.append(Disagreement(
            family="", kind="status",
            detail={"statuses": {b: s.value for b, s in statuses.items()}},
        ))
    if len(solved) > 1:
        objs = {b: r.objective for b, r in solved.items()}
        vals = list(objs.values())
        scale = 1.0 + max(abs(v) for v in vals)
        if max(vals) - min(vals) > tol * scale:
            out.append(Disagreement(
                family="", kind="objective", detail={"objectives": objs},
            ))
    if optimum is not None:
        for b, r in solved.items():
            if r.status is SolverStatus.OPTIMAL and abs(r.objective - optimum) > tol * (1 + abs(optimum)):
                out.append(Disagreement(
                    family="", kind="ground-truth",
                    detail={"backend": b, "objective": r.objective, "expected": optimum},
                ))
    return out


def _compare_drrp(instance: DRRPInstance, tol: float, optimum: float | None) -> list[Disagreement]:
    out: list[Disagreement] = []
    problem = build_drrp_model(instance)[0].compile()
    out.extend(_compare_problem(problem, tol, optimum))
    # Wagner-Whitin shares no code with the LP stack: an independent vote.
    if instance.bottleneck_rate is None:
        ww = solve_wagner_whitin(instance)
        res = solve_compiled(problem, backend="auto", use_presolve=False)
        if res.status.has_solution and abs(ww.objective - res.objective) > tol * (1 + abs(ww.objective)):
            out.append(Disagreement(
                family="", kind="objective",
                detail={"objectives": {"wagner-whitin": ww.objective, "milp": res.objective}},
            ))
        if optimum is not None and abs(ww.objective - optimum) > tol * (1 + abs(optimum)):
            out.append(Disagreement(
                family="", kind="ground-truth",
                detail={"backend": "wagner-whitin", "objective": ww.objective, "expected": optimum},
            ))
    return out


def _compare_two_stage(tsp: TwoStageProblem, tol: float) -> list[Disagreement]:
    out: list[Disagreement] = []
    ef_problem = extensive_form(tsp)
    ef = solve_compiled(ef_problem, backend="auto", use_presolve=False)
    bd = solve_benders(tsp)
    if ef.status.has_solution != bd.status.has_solution:
        out.append(Disagreement(
            family="", kind="status",
            detail={"statuses": {"extensive-form": ef.status.value, "benders": bd.status.value}},
        ))
    elif ef.status.has_solution:
        scale = 1.0 + abs(ef.objective)
        if abs(ef.objective - bd.objective) > tol * scale:
            out.append(Disagreement(
                family="", kind="objective",
                detail={"objectives": {"extensive-form": ef.objective, "benders": bd.objective}},
            ))
    return out


def _compare_bid_dominance(case: GeneratedCase) -> list[Disagreement]:
    """Dominance inequality + exact analytic-vs-simulator agreement.

    Two independent accountings of the same fixed-bid run — the
    :func:`repro.market.fixed_bid_outcome` re-derivation and the
    simulator's Fraction totals — must agree *bit for bit* for both bids
    (this is the single-charge invariant: an evicted slot pays λ exactly
    once, a won slot pays spot exactly once).  On top of that, the
    higher bid must weakly dominate: cost and interruption count both
    non-increasing in the bid.
    """
    from repro.core.rolling import NoPlanPolicy, simulate_policy
    from repro.market.auction import FixedBids
    from repro.market.catalog import CostRates, VMClass
    from repro.market.interruptions import fixed_bid_outcome

    inst = case.instance
    out: list[Disagreement] = []
    vm = VMClass(name="bid-dominance", on_demand_price=inst.on_demand_price)
    outcomes = {}
    for label, bid in (("lo", inst.bid_lo), ("hi", inst.bid_hi)):
        analytic = fixed_bid_outcome(inst, bid)
        outcomes[label] = analytic
        sim = simulate_policy(
            NoPlanPolicy(FixedBids(value=bid)),
            inst.prices, inst.demand, vm, rates=CostRates(),
            interruption_loss=inst.work_loss,
        )
        if float(analytic.cost) != sim.total_cost:
            out.append(Disagreement(
                family="", kind="objective",
                detail={"bid": label, "objectives": {
                    "analytic": float(analytic.cost), "simulator": sim.total_cost,
                }},
            ))
        if analytic.interruptions != sim.out_of_bid_events:
            out.append(Disagreement(
                family="", kind="status",
                detail={"bid": label, "interruptions": {
                    "analytic": analytic.interruptions,
                    "simulator": sim.out_of_bid_events,
                }},
            ))
    lo, hi = outcomes["lo"], outcomes["hi"]
    if hi.cost > lo.cost or hi.interruptions > lo.interruptions:
        out.append(Disagreement(
            family="", kind="ground-truth",
            detail={
                "cost_lo": float(lo.cost), "cost_hi": float(hi.cost),
                "interruptions_lo": lo.interruptions,
                "interruptions_hi": hi.interruptions,
            },
        ))
    if case.optimum is not None and float(hi.cost) != case.optimum:
        out.append(Disagreement(
            family="", kind="ground-truth",
            detail={"objective": float(hi.cost), "expected": case.optimum},
        ))
    return out


def _compare_fleet_pool(case: GeneratedCase, tol: float) -> list[Disagreement]:
    """Fleet-pool differential: per-tenant MILP + WW votes on the planted
    per-tenant optima, a MILP vote on the trimmed tenant's eviction cost,
    and ``plan_fleet`` attaining the planted joint optimum feasibly."""
    from repro.fleet import CapacityPool, FleetConfig, Tenant, plan_fleet
    from repro.fleet.planner import _knock

    fc = case.instance
    out: list[Disagreement] = []
    per = case.meta.get("per_tenant_optima")
    for i, inst in enumerate(fc.tenants):
        expected = None if per is None else float(per[i])
        if expected is None:
            continue
        for label, obj in (
            ("milp", solve_compiled(build_drrp_model(inst)[0].compile(), backend="auto").objective),
            ("ww", solve_wagner_whitin(inst).objective),
        ):
            if abs(float(obj) - expected) > tol * max(1.0, abs(expected)):
                out.append(Disagreement(
                    family="", kind="ground-truth",
                    detail={"tenant": i, "solver": label,
                            "objective": float(obj), "expected": expected},
                ))
    trimmed = case.meta.get("trimmed")
    if per is not None and trimmed is not None:
        knocked = _knock(fc.tenants[trimmed], (fc.bind_slot,))
        res = solve_compiled(build_drrp_model(knocked)[0].compile(), backend="auto")
        expected = float(per[trimmed]) + float(fc.deltas[trimmed])
        if abs(float(res.objective) - expected) > tol * max(1.0, abs(expected)):
            out.append(Disagreement(
                family="", kind="ground-truth",
                detail={"tenant": trimmed, "solver": "milp-evicted",
                        "objective": float(res.objective), "expected": expected},
            ))
    tenants = [
        Tenant(tenant_id=i, name=f"fleet-{i}", vm_name=inst.vm_name,
               profile="planted", sla="premium", pool="shared", size=1.0,
               instance=inst)
        for i, inst in enumerate(fc.tenants)
    ]
    pools = {"shared": CapacityPool(name="shared", capacity=fc.capacity)}
    fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
    if fleet.failures:
        out.append(Disagreement(
            family="", kind="certificate",
            detail={"failures": fleet.failures[:5]},
        ))
    if case.optimum is not None and abs(fleet.total_cost - case.optimum) > tol * max(
        1.0, abs(case.optimum)
    ):
        out.append(Disagreement(
            family="", kind="objective",
            detail={"objective": fleet.total_cost, "expected": case.optimum,
                    "escalated": fleet.escalated,
                    "repair_rounds": fleet.repair_rounds},
        ))
    return out


def cross_check_case(case: GeneratedCase, tol: float = 1e-6) -> list[Disagreement]:
    """Run the family-appropriate differential comparison for one case."""
    from repro.market.interruptions import BidDominanceCase

    from .generators import FleetPoolCase

    if isinstance(case.instance, FleetPoolCase):
        found = _compare_fleet_pool(case, tol)
        for d in found:
            d.family = case.family
            if d.witness is None:
                d.witness = case.instance
        return found
    if isinstance(case.instance, BidDominanceCase):
        found = _compare_bid_dominance(case)
        for d in found:
            d.family = case.family
            if d.witness is None:
                d.witness = case.instance
        return found
    if isinstance(case.instance, CompiledProblem):
        expect_feasible = case.feasible
        found = _compare_problem(case.instance, tol, case.optimum)
        if not expect_feasible:
            # every backend must agree on infeasibility
            for backend in _lp_backends(bool(case.instance.integrality.any())):
                res = solve_compiled(case.instance, backend=backend, use_presolve=False)
                if res.status is not SolverStatus.INFEASIBLE:
                    found.append(Disagreement(
                        family="", kind="status",
                        detail={"backend": backend, "status": res.status.value,
                                "expected": "infeasible"},
                    ))
    elif isinstance(case.instance, DRRPInstance):
        found = _compare_drrp(case.instance, tol, case.optimum)
    elif isinstance(case.instance, TwoStageProblem):
        found = _compare_two_stage(case.instance, tol)
    else:  # SRRP: compare backends on the compiled deterministic equivalent
        problem = build_srrp_model(case.instance)[0].compile()
        found = _compare_problem(problem, tol, case.optimum)
    for d in found:
        d.family = case.family
        if d.witness is None:
            d.witness = case.instance
    return found


def _still_disagrees_problem(tol: float, kind: str, optimum: float | None):
    def predicate(candidate: CompiledProblem) -> bool:
        return any(d.kind == kind for d in _compare_problem(candidate, tol, optimum))
    return predicate


def shrink_disagreement(d: Disagreement, tol: float = 1e-6, max_evals: int = 120) -> Disagreement:
    """Minimise ``d.witness`` while the same *kind* of divergence persists.

    The planted optimum is dropped during shrinking (removing a row
    changes the true optimum), so only self-contained divergences —
    cross-backend and certification failures — guide the search.
    """
    if isinstance(d.witness, CompiledProblem):
        pred = _still_disagrees_problem(tol, d.kind, None)
        if pred(d.witness):
            d.shrunk = shrink_problem(d.witness, pred, max_evals=max_evals)
    elif isinstance(d.witness, DRRPInstance):
        def pred(candidate: DRRPInstance) -> bool:
            return any(x.kind == d.kind for x in _compare_drrp(candidate, tol, None))
        if pred(d.witness):
            d.shrunk = shrink_drrp(d.witness, pred, max_evals=max_evals)
    # SRRP / two-stage witnesses are persisted unshrunk.
    return d


def _arr(a) -> list:
    return np.asarray(a, dtype=float).tolist()


def serialize_witness(obj) -> dict:
    """JSON-able dict for a witness instance (reproducer files)."""
    if isinstance(obj, CompiledProblem):
        return {
            "type": "CompiledProblem",
            "c": _arr(obj.c), "c0": float(obj.c0),
            "A_ub": _arr(obj.A_ub), "b_ub": _arr(obj.b_ub),
            "A_eq": _arr(obj.A_eq), "b_eq": _arr(obj.b_eq),
            "lb": _arr(obj.lb), "ub": _arr(obj.ub),
            "integrality": np.asarray(obj.integrality, dtype=int).tolist(),
            "maximize": bool(obj.maximize),
        }
    if isinstance(obj, DRRPInstance):
        return {
            "type": "DRRPInstance",
            "demand": _arr(obj.demand),
            "phi": float(obj.phi),
            "initial_storage": float(obj.initial_storage),
            "bottleneck_rate": (
                None if obj.bottleneck_rate is None else float(obj.bottleneck_rate)
            ),
            "bottleneck_capacity": (
                None if obj.bottleneck_capacity is None else _arr(obj.bottleneck_capacity)
            ),
            "costs": {
                "compute": _arr(obj.costs.compute),
                "storage": _arr(obj.costs.storage),
                "io": _arr(obj.costs.io),
                "transfer_in": _arr(obj.costs.transfer_in),
                "transfer_out": _arr(obj.costs.transfer_out),
            },
        }
    if isinstance(obj, TwoStageProblem):
        return {
            "type": "TwoStageProblem",
            "c": _arr(obj.c), "lb": _arr(obj.lb), "ub": _arr(obj.ub),
            "integrality": np.asarray(obj.integrality, dtype=int).tolist(),
            "scenarios": [
                {"prob": float(s.prob), "q": _arr(s.q), "W": _arr(s.W),
                 "T": _arr(s.T), "h": _arr(s.h),
                 "y_ub": None if s.y_ub is None else _arr(s.y_ub)}
                for s in obj.scenarios
            ],
            "A_ub": None if obj.A_ub is None or not obj.A_ub.size else _arr(obj.A_ub),
            "b_ub": None if obj.b_ub is None or not obj.b_ub.size else _arr(obj.b_ub),
        }
    from repro.market.interruptions import BidDominanceCase

    from .generators import FleetPoolCase

    if isinstance(obj, FleetPoolCase):
        return {
            "type": "FleetPoolCase",
            "capacity": _arr(obj.capacity),
            "bind_slot": int(obj.bind_slot),
            "deltas": [float(d) for d in obj.deltas],
            "tenants": [serialize_witness(t) for t in obj.tenants],
        }
    if isinstance(obj, BidDominanceCase):
        return {
            "type": "BidDominanceCase",
            "prices": _arr(obj.prices),
            "demand": _arr(obj.demand),
            "on_demand_price": float(obj.on_demand_price),
            "bid_lo": float(obj.bid_lo),
            "bid_hi": float(obj.bid_hi),
            "work_loss": float(obj.work_loss),
        }
    # SRRPInstance and anything else: structural summary only
    summary = {"type": type(obj).__name__}
    if hasattr(obj, "demand"):
        summary["demand"] = _arr(obj.demand)
    if hasattr(obj, "tree"):
        summary["tree_nodes"] = [
            {"index": n.index, "parent": n.parent, "depth": n.depth,
             "price": n.price, "cond_prob": n.cond_prob}
            for n in obj.tree.nodes
        ]
    return summary
