"""Budgeted differential fuzzing over the generator families.

:func:`run_fuzz` round-robins the seeded instance generators
(:mod:`repro.verify.generators`), and for every case

1. runs the family's differential cross-check (:mod:`repro.verify.oracle`),
2. certifies one primary solve with the exact checker
   (:mod:`repro.verify.certify`) or its plan/process-level counterparts,
3. on a divergence, shrinks the witness to a minimal reproducer and
   persists it as JSON under ``out_dir``.

The loop is budgeted by a :class:`~repro.solver.telemetry.Deadline` and a
case count — whichever runs out first — and reports through the same
telemetry listener API as the solvers (``fuzz_case`` per instance,
``fuzz_disagreement`` per divergence, one ``fuzz_summary``), so the CLI's
``--telemetry`` plumbing works unchanged.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.drrp import DRRPInstance, solve_drrp
from repro.core.lotsizing import solve_wagner_whitin
from repro.core.srrp import SRRPInstance, solve_srrp
from repro.solver.benders import TwoStageProblem, solve_benders
from repro.solver.interface import solve_compiled
from repro.solver.model import CompiledProblem
from repro.solver.result import SolverStatus
from repro.solver.scipy_backend import scipy_available
from repro.solver.telemetry import Deadline, Telemetry

from .audits import all_passed, audit_benders_cuts
from .certify import certify_drrp_plan, certify_result, certify_srrp_plan
from .generators import FAMILIES, GeneratedCase
from .oracle import Disagreement, cross_check_case, serialize_witness, shrink_disagreement

__all__ = ["FuzzConfig", "FuzzReport", "run_fuzz", "run_fuzz_parallel", "SMOKE_CASES"]

SMOKE_CASES = 240  # 24 per family (10 families); the smoke gate requires >= 200 certified


@dataclass
class FuzzConfig:
    """Knobs for one fuzz run; defaults match the CI smoke configuration."""

    seed: int = 0
    max_cases: int = SMOKE_CASES
    budget: float = math.inf            # wall-clock seconds for the whole run
    families: tuple[str, ...] = tuple(FAMILIES)
    out_dir: str | Path | None = None   # where shrunk reproducers are written
    tol: float = 1e-6
    shrink: bool = True
    max_shrink_evals: int = 120


@dataclass
class FuzzReport:
    """Tally of one fuzz run (see ``to_dict`` for the JSON shape)."""

    cases: int = 0
    certified: int = 0
    gap_violations: int = 0
    disagreements: list[Disagreement] = field(default_factory=list)
    by_family: dict[str, dict] = field(default_factory=dict)
    reproducer_files: list[str] = field(default_factory=list)
    elapsed: float = 0.0
    stopped_by: str = "cases"           # "cases" | "deadline"

    @property
    def ok(self) -> bool:
        return not self.disagreements and self.gap_violations == 0

    def to_dict(self) -> dict:
        return {
            "cases": self.cases,
            "certified": self.certified,
            "gap_violations": self.gap_violations,
            "disagreements": [
                {"family": d.family, "kind": d.kind, "detail": _jsonable(d.detail)}
                for d in self.disagreements
            ],
            "by_family": self.by_family,
            "reproducer_files": self.reproducer_files,
            "elapsed": self.elapsed,
            "stopped_by": self.stopped_by,
        }

    def summary_line(self) -> str:
        return (
            f"fuzz: cases={self.cases} certified={self.certified} "
            f"gap_violations={self.gap_violations} "
            f"disagreements={len(self.disagreements)} "
            f"elapsed={self.elapsed:.1f}s ({self.stopped_by})"
        )

    def digest_dict(self) -> dict:
        """The replay-stable view of a campaign, for run-manifest digests.

        Excludes wall-clock-dependent fields (``elapsed``, ``stopped_by``)
        and host-path-dependent ones (``reproducer_files``): two runs of
        the same seeded configuration digest identically iff they found
        the same verdicts.
        """
        return {
            "cases": self.cases,
            "certified": self.certified,
            "gap_violations": self.gap_violations,
            "by_family": self.by_family,
            "disagreements": [
                {"family": d.family, "kind": d.kind} for d in self.disagreements
            ],
        }


def _jsonable(obj):
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    return obj


def _certify_case(case: GeneratedCase, tol: float) -> tuple[bool, bool]:
    """(certified, gap_violation) for one primary solve of the case.

    Certification here means a *solver-independent* argument that the
    answer is right: an exact dual/Farkas certificate for LPs, the planted
    optimum for MILPs, plan-level exact feasibility plus an independent
    reference (Wagner-Whitin, planted policy) for DRRP/SRRP, and
    extensive-form agreement plus cut audits for two-stage problems.
    """
    inst = case.instance
    if isinstance(inst, CompiledProblem):
        backend = "scipy" if scipy_available() and not inst.integrality.any() else "simplex"
        res = solve_compiled(inst, backend=backend, use_presolve=False)
        report = certify_result(inst, res, tol=tol)
        if (
            backend != "simplex"
            and not report.ok
            and not report.rejected
            and res.status is SolverStatus.INFEASIBLE
        ):
            # HiGHS reports infeasibility without a Farkas ray; the simplex
            # backend exports one, turning "incomplete" into a real proof.
            res = solve_compiled(inst, backend="simplex", use_presolve=False)
            report = certify_result(inst, res, tol=tol)
        gap_bad = any("gap" in c.name for c in report.failures())
        if report.ok:
            return True, gap_bad
        if (
            not report.rejected
            and case.optimum is not None
            and res.status.has_solution
            and abs(res.objective - case.optimum) <= tol * (1 + abs(case.optimum))
        ):
            return True, gap_bad  # feasible + integral + matches the planted optimum
        return False, gap_bad
    if isinstance(inst, DRRPInstance):
        plan = solve_drrp(inst, backend="auto")
        report = certify_drrp_plan(inst, plan, tol=tol)
        reference = case.optimum
        if reference is None and inst.bottleneck_rate is None:
            reference = solve_wagner_whitin(inst).objective
        matches = reference is not None and abs(plan.objective - reference) <= tol * (1 + abs(reference))
        return bool(report.ok and matches), False
    if isinstance(inst, TwoStageProblem):
        bd = solve_benders(inst)
        if not bd.status.has_solution:
            return False, False
        cuts_ok = all_passed(
            audit_benders_cuts(inst, bd.extra.get("cut_records", []), bd.extra.get("penalty", math.inf))
        )
        return cuts_ok, False
    if isinstance(inst, SRRPInstance):
        plan = solve_srrp(inst, backend="auto")
        report = certify_srrp_plan(inst, plan, tol=tol)
        matches = case.optimum is None or abs(plan.expected_cost - case.optimum) <= tol * (1 + abs(case.optimum))
        return bool(report.ok and matches), False
    from .generators import FleetPoolCase

    if isinstance(inst, FleetPoolCase):
        from repro.fleet import CapacityPool, FleetConfig, Tenant, plan_fleet

        tenants = [
            Tenant(tenant_id=i, name=f"fleet-{i}", vm_name=t.vm_name,
                   profile="planted", sla="premium", pool="shared", size=1.0,
                   instance=t)
            for i, t in enumerate(inst.tenants)
        ]
        pools = {"shared": CapacityPool(name="shared", capacity=inst.capacity)}
        fleet = plan_fleet(tenants, pools, FleetConfig(workers=1))
        # Solver-independent: every per-tenant plan re-certified exactly
        # against the instance it was solved for (knocked where trimmed),
        # pool caps re-checked, and the exact total must hit the planted
        # exchange-argument optimum.
        certified = not fleet.failures
        for outcome in fleet.outcomes:
            certified = certified and certify_drrp_plan(
                outcome.instance, outcome.plan, tol=tol
            ).ok
        if case.optimum is not None:
            certified = certified and abs(
                fleet.total_cost - case.optimum
            ) <= tol * (1 + abs(case.optimum))
        return bool(certified), False
    from repro.market.interruptions import BidDominanceCase, fixed_bid_outcome

    if isinstance(inst, BidDominanceCase):
        # Certification is the dominance inequality plus generator
        # consistency, both in exact Fractions (zero tolerance); the
        # analytic-vs-simulator bit-for-bit check runs in the oracle.
        lo = fixed_bid_outcome(inst, inst.bid_lo)
        hi = fixed_bid_outcome(inst, inst.bid_hi)
        certified = (
            hi.cost <= lo.cost
            and hi.interruptions <= lo.interruptions
            and (case.optimum is None or float(hi.cost) == case.optimum)
        )
        return certified, False
    return False, False


def run_fuzz(config: FuzzConfig | None = None, listener=None) -> FuzzReport:
    """Run one budgeted differential-fuzzing campaign."""
    cfg = config or FuzzConfig()
    unknown = set(cfg.families) - set(FAMILIES)
    if unknown:
        raise ValueError(f"unknown fuzz families: {sorted(unknown)}; expected {sorted(FAMILIES)}")
    telemetry = Telemetry.from_listener(listener)
    deadline = Deadline(cfg.budget)
    rng = np.random.default_rng(cfg.seed)
    report = FuzzReport()
    out_dir = Path(cfg.out_dir) if cfg.out_dir is not None else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    for family in cfg.families:
        report.by_family[family] = {"cases": 0, "certified": 0, "disagreements": 0}

    index = 0
    while index < cfg.max_cases:
        if deadline.expired():
            report.stopped_by = "deadline"
            break
        family = cfg.families[index % len(cfg.families)]
        case = FAMILIES[family](rng)
        disagreements = cross_check_case(case, tol=cfg.tol)
        certified, gap_bad = _certify_case(case, tol=cfg.tol)

        report.cases += 1
        fam = report.by_family[family]
        fam["cases"] += 1
        if certified:
            report.certified += 1
            fam["certified"] += 1
        if gap_bad:
            report.gap_violations += 1
        if telemetry:
            telemetry.emit(
                "fuzz_case", index=index, family=family,
                certified=certified, disagreements=len(disagreements),
            )

        for d in disagreements:
            fam["disagreements"] += 1
            if cfg.shrink:
                d = shrink_disagreement(d, tol=cfg.tol, max_evals=cfg.max_shrink_evals)
            path = None
            if out_dir is not None:
                path = out_dir / f"reproducer_{len(report.disagreements):03d}_{family}_{d.kind}.json"
                payload = {
                    "family": d.family,
                    "kind": d.kind,
                    "seed": cfg.seed,
                    "case_index": index,
                    "detail": _jsonable(d.detail),
                    "witness": serialize_witness(d.witness),
                    "shrunk": None if d.shrunk is None else serialize_witness(d.shrunk),
                }
                path.write_text(json.dumps(payload, indent=2))
                report.reproducer_files.append(str(path))
            report.disagreements.append(d)
            if telemetry:
                telemetry.emit(
                    "fuzz_disagreement", family=family, kind=d.kind,
                    reproducer=None if path is None else str(path),
                )
        index += 1

    report.elapsed = deadline.elapsed()
    if telemetry:
        telemetry.emit(
            "fuzz_summary",
            cases=report.cases, certified=report.certified,
            gap_violations=report.gap_violations,
            disagreements=len(report.disagreements),
            stopped_by=report.stopped_by,
        )
    return report


def _fuzz_shard(cfg: FuzzConfig) -> FuzzReport:
    """One worker's slice of a parallel campaign (module-level: picklable).

    Reports into the ambient per-worker hub installed by
    :func:`repro.parallel.parallel_map`, so shard events are forwarded to
    the parent listener tagged with their worker id.
    """
    from repro.parallel import current_telemetry

    return run_fuzz(cfg, listener=current_telemetry())


def merge_reports(reports) -> FuzzReport:
    """Fold shard reports into one campaign tally."""
    merged = FuzzReport()
    for rep in reports:
        merged.cases += rep.cases
        merged.certified += rep.certified
        merged.gap_violations += rep.gap_violations
        merged.disagreements.extend(rep.disagreements)
        merged.reproducer_files.extend(rep.reproducer_files)
        for family, tally in rep.by_family.items():
            into = merged.by_family.setdefault(
                family, {"cases": 0, "certified": 0, "disagreements": 0}
            )
            for key, val in tally.items():
                into[key] = into.get(key, 0) + val
        merged.elapsed = max(merged.elapsed, rep.elapsed)
        if rep.stopped_by == "deadline":
            merged.stopped_by = "deadline"
    return merged


def run_fuzz_parallel(
    config: FuzzConfig | None = None,
    n_workers: int | None = None,
    listener=None,
) -> FuzzReport:
    """Run one campaign sharded over worker processes.

    The case budget is split evenly across shards, each seeded from
    ``config.seed`` plus a distinct offset, so shards draw disjoint
    deterministic instance streams; the wall-clock budget applies to every
    shard (they run concurrently).  Reproducers land in per-shard
    subdirectories of ``config.out_dir``.  Events from every shard are
    forwarded to ``listener`` as one merged, worker-tagged stream.
    """
    from repro.parallel import default_workers, parallel_map

    cfg = config or FuzzConfig()
    if n_workers is None:
        n_workers = default_workers()
    n_shards = max(1, min(n_workers, cfg.max_cases))
    per_shard = cfg.max_cases // n_shards
    shards = []
    for i in range(n_shards):
        cases = per_shard + (1 if i < cfg.max_cases % n_shards else 0)
        if cases == 0:
            continue
        out_dir = None if cfg.out_dir is None else str(Path(cfg.out_dir) / f"shard_{i:02d}")
        shards.append(
            FuzzConfig(
                seed=cfg.seed + 7919 * i,
                max_cases=cases,
                budget=cfg.budget,
                families=cfg.families,
                out_dir=out_dir,
                tol=cfg.tol,
                shrink=cfg.shrink,
                max_shrink_evals=cfg.max_shrink_evals,
            )
        )
    telemetry = Telemetry.from_listener(listener)
    reports = parallel_map(_fuzz_shard, shards, n_workers=n_workers, telemetry=telemetry)
    merged = merge_reports(reports)
    if telemetry:
        telemetry.emit(
            "fuzz_summary",
            cases=merged.cases, certified=merged.certified,
            gap_violations=merged.gap_violations,
            disagreements=len(merged.disagreements),
            stopped_by=merged.stopped_by, shards=len(shards),
        )
    return merged
