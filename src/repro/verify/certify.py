"""Exact-arithmetic certificate checking for solver results.

The hand-rolled simplex/B&B/Benders stack replaces a commercial solver, so
nothing short of an *independent* checker can distinguish "optimal" from
"plausibly cheap".  This module is that checker.  It never calls a solver:
given a :class:`~repro.solver.model.CompiledProblem` and a claimed
:class:`~repro.solver.result.SolverResult`, it re-derives every quantity in
:class:`fractions.Fraction` arithmetic (floats are exact binary rationals,
so the conversion is lossless) and verifies

* **primal feasibility** — bounds, inequality and equality residuals, and
  integrality of the returned point;
* **objective consistency** — the claimed objective against an exact
  re-evaluation of ``c'x + c0`` (catches mutated objectives);
* **dual bounds** — given the ``(y_ub, y_eq)`` multipliers exported by the
  simplex and HiGHS backends, the Lagrangian bound

      g(y) = sum_j min(r_j lb_j, r_j ub_j) - y_ub' b_ub - y_eq' b_eq,
      r = c + A_ub' y_ub + A_eq' y_eq,   y_ub >= 0,

  is a true lower bound on the optimum for *any* nonnegative ``y_ub``
  (negative entries are clamped to zero, which keeps validity), so the
  duality gap ``c'x - g(y)`` certifies optimality without trusting the
  backend;
* **Farkas certificates** — the same bound with ``c = 0``: a positive
  value proves the constraint system empty, certifying ``INFEASIBLE``.

The only concession to floating point is an epsilon on the reduced cost of
*free* directions (``r_j`` must vanish where a bound is infinite); solver
multipliers carry rounding noise there, so ``|r_j| <= rtol`` is treated as
zero and the result is an epsilon-certificate with every tolerance applied
explicitly and reported.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.solver.model import CompiledProblem
from repro.solver.result import SolverResult, SolverStatus

__all__ = [
    "Check",
    "CertificateReport",
    "certify_result",
    "certify_infeasible",
    "exact_dual_bound",
    "certify_drrp_plan",
    "certify_srrp_plan",
    "frac",
    "frac_sum",
]


def _F(x) -> Fraction:
    """Exact rational from a float (floats are binary rationals)."""
    return Fraction(float(x))


def _fvec(a) -> list[Fraction]:
    return [_F(v) for v in np.asarray(a, dtype=float)]


def frac(x) -> Fraction:
    """Exact rational from one float — the public spelling of :func:`_F`.

    Floats are binary rationals, so the conversion is lossless; summing
    ``frac`` values is exact where float accumulation drifts with order.
    """
    return _F(x)


def frac_sum(values) -> Fraction:
    """Exact rational sum of a float iterable (order-independent).

    Used by the rolling-horizon simulator's cost accounting: totals
    reported as ``float(frac_sum(per_slot))`` can be re-derived exactly by
    any checker from the per-slot records, with no accumulation-order
    tolerance.
    """
    total = Fraction(0)
    for v in values:
        total += _F(v)
    return total


@dataclass
class Check:
    """One verified property: name, pass/fail, and the worst violation."""

    name: str
    passed: bool
    violation: float = 0.0
    detail: str = ""


@dataclass
class CertificateReport:
    """Outcome of a certification pass.

    ``verdict`` is ``"certified"`` (every check passed, including a gap or
    Farkas check where one was possible), ``"rejected"`` (at least one
    check failed — the result is *wrong*, not merely unverifiable) or
    ``"incomplete"`` (feasibility holds but no certificate was available
    to pin down optimality/infeasibility).
    """

    verdict: str
    claim: str
    checks: list[Check] = field(default_factory=list)
    duality_gap: float | None = None
    dual_bound: float | None = None

    @property
    def ok(self) -> bool:
        return self.verdict == "certified"

    @property
    def rejected(self) -> bool:
        return self.verdict == "rejected"

    def failures(self) -> list[Check]:
        return [c for c in self.checks if not c.passed]

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"{self.verdict} ({self.claim})"]
        for c in self.checks:
            mark = "ok" if c.passed else f"FAIL {c.violation:.3g} {c.detail}"
            bits.append(f"  {c.name}: {mark}")
        return "\n".join(bits)


def _primal_checks(problem: CompiledProblem, x: np.ndarray, tol: float) -> list[Check]:
    """Exact feasibility of ``x``: bounds, rows, integrality."""
    checks: list[Check] = []
    xf = _fvec(x)
    ftol = _F(tol)

    worst = Fraction(0)
    where = ""
    for j, (xj, lo, hi) in enumerate(zip(xf, problem.lb, problem.ub)):
        if math.isfinite(lo) and _F(lo) - xj > worst:
            worst, where = _F(lo) - xj, f"x[{j}] below lb"
        if math.isfinite(hi) and xj - _F(hi) > worst:
            worst, where = xj - _F(hi), f"x[{j}] above ub"
    checks.append(Check("bounds", worst <= ftol, float(worst), where))

    def row_violations(A, b, equality: bool) -> tuple[Fraction, str]:
        worst = Fraction(0)
        where = ""
        for i in range(A.shape[0]):
            acc = Fraction(0)
            row = A[i]
            for j in np.nonzero(row)[0]:
                acc += _F(row[j]) * xf[j]
            resid = acc - _F(b[i])
            v = abs(resid) if equality else resid
            scale = 1 + abs(_F(b[i]))
            if v / scale > worst:
                worst, where = v / scale, f"row {i}"
        return worst, where

    if problem.A_ub.size:
        v, w = row_violations(problem.A_ub, problem.b_ub, equality=False)
        checks.append(Check("inequalities", v <= ftol, float(v), w))
    if problem.A_eq.size:
        v, w = row_violations(problem.A_eq, problem.b_eq, equality=True)
        checks.append(Check("equalities", v <= ftol, float(v), w))

    mask = problem.integrality.astype(bool)
    if mask.any():
        fracs = np.abs(x[mask] - np.round(x[mask]))
        j = int(np.argmax(fracs))
        checks.append(
            Check("integrality", float(fracs.max()) <= tol, float(fracs.max()),
                  f"integer var #{j} fractional" if fracs.max() > tol else "")
        )
    return checks


def exact_dual_bound(
    problem: CompiledProblem,
    y_ub: np.ndarray,
    y_eq: np.ndarray,
    rtol: float = 1e-7,
    zero_objective: bool = False,
) -> Fraction | None:
    """Exact Lagrangian bound on ``min c'x + c0`` from row multipliers.

    Negative ``y_ub`` entries are clamped to zero (still a valid
    multiplier vector, so the returned value is always a true bound).
    Returns ``None`` when a free direction has a reduced cost beyond
    ``rtol`` — the bound would be ``-inf`` and certifies nothing.  With
    ``zero_objective=True`` the bound is for ``0'x`` (Farkas mode: a
    positive value proves infeasibility).
    """
    n = problem.num_vars
    yu = [max(v, Fraction(0)) for v in _fvec(y_ub)]
    ye = _fvec(y_eq)
    c = [Fraction(0)] * n if zero_objective else _fvec(problem.c)
    eps = _F(rtol)

    r = list(c)
    A_ub, A_eq = problem.A_ub, problem.A_eq
    for i in range(A_ub.shape[0]):
        if yu[i] == 0:
            continue
        row = A_ub[i]
        for j in np.nonzero(row)[0]:
            r[j] += yu[i] * _F(row[j])
    for i in range(A_eq.shape[0]):
        if ye[i] == 0:
            continue
        row = A_eq[i]
        for j in np.nonzero(row)[0]:
            r[j] += ye[i] * _F(row[j])

    total = Fraction(0) if zero_objective else _F(problem.c0)
    for j in range(n):
        lo, hi = problem.lb[j], problem.ub[j]
        if r[j] > eps:
            if not math.isfinite(lo):
                return None
            total += r[j] * _F(lo)
        elif r[j] < -eps:
            if not math.isfinite(hi):
                return None
            total += r[j] * _F(hi)
        # |r_j| <= eps: treated as zero (epsilon-certificate)
    for i in range(A_ub.shape[0]):
        total -= yu[i] * _F(problem.b_ub[i])
    for i in range(A_eq.shape[0]):
        total -= ye[i] * _F(problem.b_eq[i])
    return total


def _internal_objective(problem: CompiledProblem, model_objective: float) -> float:
    """Model-sense objective -> the internal minimize scale of ``c``/``c0``."""
    return -model_objective if problem.maximize else model_objective


def certify_infeasible(
    problem: CompiledProblem, farkas: dict, rtol: float = 1e-7
) -> CertificateReport:
    """Verify a Farkas certificate: the zero-objective dual bound must be
    strictly positive, which proves the constraint system empty."""
    bound = exact_dual_bound(
        problem, farkas.get("y_ub", np.zeros(0)), farkas.get("y_eq", np.zeros(0)),
        rtol=rtol, zero_objective=True,
    )
    if bound is None:
        return CertificateReport(
            "incomplete", "infeasible",
            [Check("farkas_bounded", False, detail="free direction not priced out")],
        )
    ok = bound > 0
    check = Check("farkas_positive", ok, float(max(-bound, 0)),
                  "" if ok else f"certificate value {float(bound):.3g} <= 0")
    return CertificateReport(
        "certified" if ok else "incomplete", "infeasible", [check],
        dual_bound=float(bound),
    )


def certify_result(
    problem: CompiledProblem,
    result: SolverResult,
    tol: float = 1e-6,
) -> CertificateReport:
    """Certify a :class:`SolverResult` against its compiled problem.

    * ``OPTIMAL`` LP results with a ``dual_certificate`` in ``extra`` get
      the full treatment: exact primal feasibility, objective consistency,
      and a duality-gap check; all three passing yields ``"certified"``.
    * ``OPTIMAL`` MILP results are checked for primal feasibility,
      integrality, objective consistency and self-consistency of the
      reported bound (``bound <= objective`` in the minimize sense); the
      bound itself is backend-reported, so the verdict is ``"certified"``
      only in combination with a generator-known optimum (see
      :mod:`repro.verify.generators`) or a cross-backend agreement (see
      :mod:`repro.verify.oracle`) — alone it is ``"incomplete"``.
    * ``INFEASIBLE`` results with a ``farkas_certificate`` are certified
      via the zero-objective bound.

    Any failing check makes the verdict ``"rejected"`` — this is how a
    deliberately corrupted solution (tampered ``x`` or mutated objective)
    is detected.
    """
    status = result.status
    if status is SolverStatus.INFEASIBLE:
        farkas = result.extra.get("farkas_certificate")
        if farkas is None:
            return CertificateReport("incomplete", "infeasible",
                                     [Check("farkas_present", False, detail="no certificate exported")])
        return certify_infeasible(problem, farkas, rtol=tol)

    if not status.has_solution or result.x is None:
        return CertificateReport("incomplete", status.value, [])

    x = np.asarray(result.x, dtype=float)
    checks = _primal_checks(problem, x, tol)

    primal = Fraction(0)
    xf = _fvec(x)
    for j in np.nonzero(problem.c)[0]:
        primal += _F(problem.c[j]) * xf[j]
    primal += _F(problem.c0)

    claimed = _internal_objective(problem, result.objective)
    if math.isfinite(claimed):
        scale = 1 + abs(primal)
        dev = abs(_F(claimed) - primal) / scale
        checks.append(
            Check("objective_consistent", dev <= _F(tol), float(dev),
                  "" if dev <= _F(tol) else
                  f"claimed {claimed:.6g} vs recomputed {float(primal):.6g}")
        )
    else:
        checks.append(Check("objective_consistent", False, detail="claimed objective is not finite"))

    gap: float | None = None
    dual_bound: float | None = None
    is_mip = bool(problem.integrality.any())
    cert = result.extra.get("dual_certificate")
    claim = status.value

    if cert is not None and not is_mip:
        min_y = float(np.min(cert["y_ub"])) if np.asarray(cert["y_ub"]).size else 0.0
        checks.append(Check("dual_sign", min_y >= -tol, max(-min_y, 0.0),
                            "" if min_y >= -tol else "negative inequality multiplier"))
        g = exact_dual_bound(problem, cert["y_ub"], cert["y_eq"], rtol=tol)
        if g is None:
            checks.append(Check("dual_bounded", False, detail="free direction not priced out"))
        else:
            dual_bound = float(g)
            gap_f = primal - g  # >= 0 by weak duality (exact)
            scale = 1 + abs(primal) + abs(g)
            gap = float(gap_f)
            if status is SolverStatus.OPTIMAL:
                ok = abs(gap_f) / scale <= _F(tol)
                checks.append(
                    Check("duality_gap", ok, abs(gap) / float(scale),
                          "" if ok else f"gap {gap:.3g} exceeds tolerance")
                )
    elif is_mip and status is SolverStatus.OPTIMAL and math.isfinite(result.bound):
        b_int = _internal_objective(problem, result.bound)
        scale = 1 + abs(primal)
        slack = (_F(b_int) - primal) / scale  # bound must not exceed objective
        checks.append(
            Check("bound_consistent", slack <= _F(tol), float(max(slack, 0)),
                  "" if slack <= _F(tol) else "reported dual bound above objective")
        )
        gap = float(primal - _F(b_int))

    all_passed = all(c.passed for c in checks)
    if not all_passed:
        verdict = "rejected"
    elif status is SolverStatus.OPTIMAL and gap is not None and (cert is not None and not is_mip):
        verdict = "certified"
    elif status is SolverStatus.OPTIMAL and is_mip:
        # feasible + integral + bound-consistent: optimality itself still
        # needs an external reference (known optimum or oracle agreement).
        verdict = "incomplete"
    elif status is SolverStatus.FEASIBLE:
        verdict = "certified" if claim == "feasible" else "incomplete"
        claim = "feasible"
    else:
        verdict = "incomplete"
    return CertificateReport(verdict, claim, checks, duality_gap=gap, dual_bound=dual_bound)


# -- plan-level certification -------------------------------------------------


def certify_drrp_plan(instance, plan, tol: float = 1e-6) -> CertificateReport:
    """Exact constraint + cost-decomposition check of a DRRP rental plan.

    Independent of any solver: re-walks the inventory balance recursion,
    the forcing constraint, nonnegativity and the binary rental marker in
    exact arithmetic, then re-prices the plan and compares against the
    claimed objective.
    """
    checks: list[Check] = []
    ftol = _F(tol)
    T = instance.horizon
    alpha, beta, chi = _fvec(plan.alpha), _fvec(plan.beta), _fvec(plan.chi)
    demand = _fvec(instance.demand)

    worst = Fraction(0)
    where = ""
    prev = _F(instance.initial_storage)
    for t in range(T):
        resid = abs(prev + alpha[t] - beta[t] - demand[t])
        if resid > worst:
            worst, where = resid, f"balance at t={t}"
        prev = beta[t]
    checks.append(Check("balance", worst <= ftol, float(worst), where))

    B = _F(instance.forcing_bound)
    worst = Fraction(0)
    where = ""
    for t in range(T):
        cap = B if chi[t] > Fraction(1, 2) else Fraction(0)
        if alpha[t] - cap > worst:
            worst, where = alpha[t] - cap, f"forcing at t={t}"
        if -alpha[t] > worst:
            worst, where = -alpha[t], f"alpha[{t}] negative"
        if -beta[t] > worst:
            worst, where = -beta[t], f"beta[{t}] negative"
        if min(abs(chi[t]), abs(chi[t] - 1)) > worst:
            worst, where = min(abs(chi[t]), abs(chi[t] - 1)), f"chi[{t}] not binary"
    checks.append(Check("forcing_and_domains", worst <= ftol, float(worst), where))

    if instance.bottleneck_rate is not None:
        P = _F(instance.bottleneck_rate)
        worst = Fraction(0)
        for t in range(T):
            v = P * alpha[t] - _F(instance.bottleneck_capacity[t])
            worst = max(worst, v)
        checks.append(Check("bottleneck", worst <= ftol, float(worst)))

    c = instance.costs
    total = Fraction(0)
    phi = _F(instance.phi)
    for t in range(T):
        total += _F(c.compute[t]) * chi[t]
        total += (_F(c.storage[t]) + _F(c.io[t])) * beta[t]
        total += _F(c.transfer_in[t]) * phi * alpha[t]
        total += _F(c.transfer_out[t]) * demand[t]
    scale = 1 + abs(total)
    dev = abs(_F(plan.objective) - total) / scale
    checks.append(
        Check("objective_consistent", dev <= ftol, float(dev),
              "" if dev <= ftol else
              f"claimed {plan.objective:.6g} vs repriced {float(total):.6g}")
    )

    ok = all(ch.passed for ch in checks)
    return CertificateReport("certified" if ok else "rejected", "feasible_plan", checks)


def certify_srrp_plan(instance, plan, tol: float = 1e-6) -> CertificateReport:
    """Exact constraint + expected-cost check of an SRRP recourse policy."""
    checks: list[Check] = []
    ftol = _F(tol)
    tree = instance.tree
    alpha, beta, chi = _fvec(plan.alpha), _fvec(plan.beta), _fvec(plan.chi)
    demand = _fvec(instance.demand)
    B = _F(instance.forcing_bound)

    worst = Fraction(0)
    where = ""
    for node in tree.nodes:
        prev = _F(instance.initial_storage) if node.parent < 0 else beta[node.parent]
        resid = abs(prev + alpha[node.index] - beta[node.index] - demand[node.depth])
        if resid > worst:
            worst, where = resid, f"balance at vertex {node.index}"
    checks.append(Check("balance", worst <= ftol, float(worst), where))

    worst = Fraction(0)
    where = ""
    for node in tree.nodes:
        v = node.index
        cap = B if chi[v] > Fraction(1, 2) else Fraction(0)
        if alpha[v] - cap > worst:
            worst, where = alpha[v] - cap, f"forcing at vertex {v}"
        if -alpha[v] > worst:
            worst, where = -alpha[v], f"alpha[{v}] negative"
        if -beta[v] > worst:
            worst, where = -beta[v], f"beta[{v}] negative"
        if min(abs(chi[v]), abs(chi[v] - 1)) > worst:
            worst, where = min(abs(chi[v]), abs(chi[v] - 1)), f"chi[{v}] not binary"
    checks.append(Check("forcing_and_domains", worst <= ftol, float(worst), where))

    c = instance.costs
    phi = _F(instance.phi)
    total = Fraction(0)
    for node in tree.nodes:
        t, v = node.depth, node.index
        p = _F(node.abs_prob)
        total += p * (
            _F(c.transfer_in[t]) * phi * alpha[v]
            + (_F(c.storage[t]) + _F(c.io[t])) * beta[v]
            + _F(node.price) * chi[v]
            + _F(c.transfer_out[t]) * demand[t]
        )
    scale = 1 + abs(total)
    dev = abs(_F(plan.expected_cost) - total) / scale
    checks.append(
        Check("expected_cost_consistent", dev <= ftol, float(dev),
              "" if dev <= ftol else
              f"claimed {plan.expected_cost:.6g} vs repriced {float(total):.6g}")
    )

    ok = all(ch.passed for ch in checks)
    return CertificateReport("certified" if ok else "rejected", "feasible_policy", checks)
