"""Greedy shrinking of disagreement witnesses to minimal reproducers.

When the differential oracle finds two backends disagreeing on an
instance, the raw witness is rarely the best bug report: a 30-variable LP
usually contains a 3-variable core that triggers the same divergence.
These helpers delta-debug an instance against a caller-supplied
``predicate`` ("does the disagreement still reproduce?"), greedily
applying size-reducing transformations and keeping each one that
preserves the predicate.

The predicate is treated as a black box and may be expensive (it re-runs
two solvers), so every shrinker takes a ``max_evals`` budget and stops
when it is exhausted.  Shrinking is best-effort minimisation, not global:
the result is 1-minimal with respect to the transformation set actually
tried, which is what a human debugging the solver needs.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.core.drrp import DRRPInstance
from repro.solver.model import CompiledProblem

__all__ = ["shrink_problem", "shrink_drrp"]


class _Budget:
    def __init__(self, max_evals: int, predicate: Callable) -> None:
        self.left = int(max_evals)
        self.predicate = predicate

    def holds(self, candidate) -> bool:
        if self.left <= 0:
            return False
        self.left -= 1
        try:
            return bool(self.predicate(candidate))
        except Exception:
            # A candidate that crashes the predicate is not a reproducer of
            # the *original* disagreement — discard it.
            return False


def _drop_row(problem: CompiledProblem, kind: str, i: int) -> CompiledProblem:
    if kind == "ub":
        keep = np.arange(problem.A_ub.shape[0]) != i
        return replace(problem, A_ub=problem.A_ub[keep], b_ub=problem.b_ub[keep], variables=[])
    keep = np.arange(problem.A_eq.shape[0]) != i
    return replace(problem, A_eq=problem.A_eq[keep], b_eq=problem.b_eq[keep], variables=[])


def _drop_var(problem: CompiledProblem, j: int) -> CompiledProblem:
    """Fix variable j at its lower bound and eliminate the column."""
    if not np.isfinite(problem.lb[j]):
        raise ValueError("cannot eliminate a variable with no lower bound")
    keep = np.arange(problem.c.shape[0]) != j
    fixed = problem.lb[j]
    return CompiledProblem(
        c=problem.c[keep],
        c0=problem.c0 + float(problem.c[j] * fixed),
        A_ub=problem.A_ub[:, keep],
        b_ub=problem.b_ub - problem.A_ub[:, j] * fixed,
        A_eq=problem.A_eq[:, keep],
        b_eq=problem.b_eq - problem.A_eq[:, j] * fixed,
        lb=problem.lb[keep],
        ub=problem.ub[keep],
        integrality=problem.integrality[keep],
        maximize=problem.maximize,
        variables=[],
    )


def shrink_problem(
    problem: CompiledProblem,
    predicate: Callable[[CompiledProblem], bool],
    max_evals: int = 200,
) -> CompiledProblem:
    """Minimise a :class:`CompiledProblem` witness under ``predicate``.

    Passes, in order of how much each removal simplifies the instance:
    eliminate variables (fixed at their lower bound), drop inequality
    rows, drop equality rows, zero objective coefficients.  Each pass
    repeats until it stops making progress, then the whole cycle repeats.
    """
    budget = _Budget(max_evals, predicate)
    current = problem
    progress = True
    while progress and budget.left > 0:
        progress = False
        # variables (largest reduction first)
        j = current.c.shape[0] - 1
        while j >= 0 and budget.left > 0:
            if current.c.shape[0] > 1 and np.isfinite(current.lb[j]):
                cand = _drop_var(current, j)
                if budget.holds(cand):
                    current = cand
                    progress = True
            j -= 1
        for kind, count in (("ub", current.A_ub.shape[0]), ("eq", current.A_eq.shape[0])):
            i = count - 1
            while i >= 0 and budget.left > 0:
                rows = current.A_ub if kind == "ub" else current.A_eq
                if i < rows.shape[0]:
                    cand = _drop_row(current, kind, i)
                    if budget.holds(cand):
                        current = cand
                        progress = True
                i -= 1
        for j in range(current.c.shape[0]):
            if budget.left <= 0:
                break
            if current.c[j] != 0.0:
                cand = replace(current, c=current.c.copy(), variables=[])
                cand.c[j] = 0.0
                if budget.holds(cand):
                    current = cand
                    progress = True
    return current


def shrink_drrp(
    instance: DRRPInstance,
    predicate: Callable[[DRRPInstance], bool],
    max_evals: int = 100,
) -> DRRPInstance:
    """Minimise a DRRP witness: truncate the horizon from the back, then
    zero out individual demand slots."""
    budget = _Budget(max_evals, predicate)
    current = instance

    def truncated(inst: DRRPInstance, T: int) -> DRRPInstance:
        # keep the (sliced) bottleneck: dropping it would change problem class
        return DRRPInstance(
            demand=inst.demand[:T],
            costs=inst.costs.slice(0, T),
            phi=inst.phi,
            initial_storage=inst.initial_storage,
            bottleneck_rate=inst.bottleneck_rate,
            bottleneck_capacity=(
                None if inst.bottleneck_capacity is None
                else inst.bottleneck_capacity[:T]
            ),
            vm_name=inst.vm_name,
        )

    # binary-search-style truncation: try halving before single-slot steps
    while current.horizon > 1 and budget.left > 0:
        T = current.horizon
        for target in (T // 2, T - 1):
            if 1 <= target < T:
                cand = truncated(current, target)
                if budget.holds(cand):
                    current = cand
                    break
        else:
            break

    for t in range(current.horizon):
        if budget.left <= 0:
            break
        if current.demand[t] != 0.0:
            demand = current.demand.copy()
            demand[t] = 0.0
            cand = replace(current, demand=demand)
            if budget.holds(cand):
                current = cand
    return current
