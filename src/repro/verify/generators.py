"""Seeded random instances with *constructed* known optima.

Fuzzing a solver is only as strong as the oracle that says what the right
answer was.  Rather than trusting any solver, every family here builds the
instance *backwards from its own optimum*:

* **LPs** (:func:`planted_lp`) pick a point ``x*``, an active set, and
  nonnegative multipliers first, then choose ``b`` to make the active rows
  tight and ``c`` to satisfy the KKT conditions exactly — ``x*`` is
  provably optimal by weak duality, with integer data so the optimum is
  exact in floating point.
* **MILPs** (:func:`planted_milp`) reuse the LP construction with ``x*``
  integral on the integer-marked variables: the LP relaxation bound is
  attained by an integral point, so the MILP optimum *value* is known even
  when the solver returns a different optimal vertex.
* **Infeasible LPs** (:func:`infeasible_lp`) contain a contradictory row
  pair, so a Farkas certificate must exist.
* **DRRP** (:func:`planted_drrp`) builds lot-sizing instances backwards
  from a chosen rental schedule via an exchange argument: with holding
  costs high enough that carrying any unit across a slot costs more than
  the dearest setup, the unique optimal policy rents exactly at the slots
  with positive demand ("rent-per-slot" family); with zero holding cost,
  constant transfer-in price and positive demand in slot 0, a single
  setup at slot 0 dominates ("single-setup" family).
* **SRRP** (:func:`planted_srrp`) lifts the rent-per-slot argument to a
  scenario tree: the planted recourse policy rents at every vertex whose
  stage has positive demand, and the known optimum is its expected cost.
* **Two-stage problems** (:func:`random_two_stage`) have no planted
  optimum; they exist to cross-check the extensive form against Benders
  decomposition, which must agree with each other.

All generators take a :class:`numpy.random.Generator` so a fuzz run is
reproducible from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.costs import CostSchedule
from repro.core.drrp import DRRPInstance
from repro.core.scenario import build_tree
from repro.core.srrp import SRRPInstance
from repro.solver.benders import Scenario, TwoStageProblem
from repro.solver.model import CompiledProblem

__all__ = [
    "GeneratedCase",
    "FleetPoolCase",
    "planted_lp",
    "planted_milp",
    "infeasible_lp",
    "planted_drrp",
    "random_drrp",
    "planted_srrp",
    "planted_fleet_pool",
    "random_two_stage",
    "FAMILIES",
]


@dataclass
class GeneratedCase:
    """One generated instance plus its ground truth.

    ``optimum`` is the provably optimal objective value (``None`` when the
    family has no planted optimum and relies on cross-checking only);
    ``x_star`` a known optimal point where the construction yields one;
    ``feasible`` is ``False`` for instances built to be infeasible.
    """

    family: str
    instance: object
    optimum: float | None = None
    x_star: np.ndarray | None = None
    feasible: bool = True
    meta: dict = field(default_factory=dict)


def _planted_lp_parts(rng: np.random.Generator, n: int, m: int, integral_x: bool):
    """Shared KKT-backwards construction for LP/MILP families."""
    ub = rng.integers(2, 8, n).astype(float)
    lb = np.zeros(n)
    # x*: interior, at-lb and at-ub coordinates, integral when requested.
    x_star = np.array([float(rng.integers(0, int(u) + 1)) for u in ub])
    if not integral_x:
        interior = rng.random(n) < 0.5
        x_star = np.where(
            interior, np.round(rng.uniform(0.25, 1.0, n) * ub * 4) / 4, x_star
        )
        x_star = np.minimum(x_star, ub)

    A = rng.integers(-3, 4, (m, n)).astype(float)
    rhs_at_x = A @ x_star
    active = rng.random(m) < 0.6
    if m:
        active[rng.integers(0, m)] = True  # at least one binding row
    slack = rng.integers(1, 6, m).astype(float)
    b = np.where(active, rhs_at_x, rhs_at_x + slack)

    y = np.where(active, rng.integers(0, 4, m).astype(float), 0.0)
    # KKT: c + A'y + z_ub - z_lb = 0 with complementary bound multipliers.
    c = -(A.T @ y)
    at_lb = x_star <= lb
    at_ub = x_star >= ub
    z_lb = np.where(at_lb, rng.integers(0, 3, n).astype(float), 0.0)
    z_ub = np.where(at_ub & ~at_lb, rng.integers(0, 3, n).astype(float), 0.0)
    c = c + z_lb - z_ub
    return c, A, b, lb, ub, x_star, y


def planted_lp(rng: np.random.Generator, n: int = 6, m: int = 5) -> GeneratedCase:
    """LP with a KKT-constructed optimum (integer data, exact value)."""
    c, A, b, lb, ub, x_star, _ = _planted_lp_parts(rng, n, m, integral_x=False)
    problem = CompiledProblem(
        c=c, c0=float(rng.integers(-5, 6)), A_ub=A, b_ub=b,
        A_eq=np.zeros((0, n)), b_eq=np.zeros(0),
        lb=lb, ub=ub, integrality=np.zeros(n, dtype=int), maximize=False,
    )
    return GeneratedCase(
        family="lp", instance=problem,
        optimum=float(c @ x_star) + problem.c0, x_star=x_star,
    )


def planted_milp(rng: np.random.Generator, n: int = 6, m: int = 5) -> GeneratedCase:
    """MILP whose LP relaxation optimum is integral — the value transfers."""
    c, A, b, lb, ub, x_star, _ = _planted_lp_parts(rng, n, m, integral_x=True)
    integrality = (rng.random(n) < 0.6).astype(int)
    if not integrality.any():
        integrality[int(rng.integers(0, n))] = 1
    problem = CompiledProblem(
        c=c, c0=0.0, A_ub=A, b_ub=b,
        A_eq=np.zeros((0, n)), b_eq=np.zeros(0),
        lb=lb, ub=ub, integrality=integrality, maximize=False,
    )
    return GeneratedCase(
        family="milp", instance=problem, optimum=float(c @ x_star), x_star=x_star,
    )


def infeasible_lp(rng: np.random.Generator, n: int = 4, m: int = 3) -> GeneratedCase:
    """LP with a contradictory row pair — must be reported INFEASIBLE."""
    A = rng.integers(-2, 4, (m, n)).astype(float)
    b = rng.integers(3, 12, m).astype(float)
    row = rng.integers(1, 4, n).astype(float)
    cut = float(rng.integers(2, 9))
    A = np.vstack([A, row, -row])
    b = np.concatenate([b, [cut], [-(cut + 1 + float(rng.integers(0, 4)))]])
    problem = CompiledProblem(
        c=rng.integers(-3, 4, n).astype(float), c0=0.0, A_ub=A, b_ub=b,
        A_eq=np.zeros((0, n)), b_eq=np.zeros(0),
        lb=np.zeros(n), ub=np.full(n, 10.0), integrality=np.zeros(n, dtype=int),
        maximize=False,
    )
    return GeneratedCase(family="lp-infeasible", instance=problem, feasible=False)


def _schedule(rng: np.random.Generator, T: int, holding: np.ndarray,
              compute: np.ndarray, tin_const: bool) -> CostSchedule:
    tin = (np.full(T, float(rng.integers(1, 4))) if tin_const
           else rng.integers(1, 4, T).astype(float))
    return CostSchedule(
        compute=compute,
        storage=holding / 2.0,
        io=holding - holding / 2.0,
        transfer_in=tin,
        transfer_out=rng.integers(0, 3, T).astype(float),
    )


def planted_drrp(rng: np.random.Generator, T: int = 8) -> GeneratedCase:
    """DRRP built backwards from a chosen rental schedule.

    Two provable sub-families (exchange arguments in the module docstring):

    * ``rent-per-slot``: holding cost per carried unit exceeds the dearest
      setup, so covering any demand from inventory is dominated by a fresh
      setup at its own slot — optimal χ rents exactly where demand > 0.
    * ``single-setup``: zero holding cost, constant transfer-in price and
      demand in slot 0, so one setup at the cheapest-possible slot (slot
      0, forced by demand[0] > 0 and made cheapest by construction)
      covers everything.
    """
    phi = 0.5
    if rng.random() < 0.5:
        # rent-per-slot: plant the schedule = slots with positive demand
        demand = rng.integers(1, 6, T).astype(float)
        zero_out = rng.random(T) < 0.3
        zero_out[0] = False
        demand[zero_out] = 0.0
        setup = rng.integers(1, 5, T).astype(float)
        # h_min * d_min > K_max  =>  carrying one slot beats nothing
        h = float(setup.max()) + 1.0
        costs = _schedule(rng, T, np.full(T, h), setup, tin_const=False)
        inst = DRRPInstance(demand=demand, costs=costs, phi=phi, vm_name="planted")
        rent = demand > 0
        optimum = float(
            setup[rent].sum()
            + (costs.transfer_in * phi * demand).sum()
            + (costs.transfer_out * demand).sum()
        )
        x_star = np.concatenate([demand, np.zeros(T), rent.astype(float)])
        meta = {"sub_family": "rent-per-slot"}
    else:
        # single-setup: everything produced in slot 0
        demand = rng.integers(0, 5, T).astype(float)
        demand[0] = float(rng.integers(1, 5))
        setup = rng.integers(2, 7, T).astype(float)
        setup[0] = 1.0  # strictly cheapest, and slot 0 is forced anyway
        costs = _schedule(rng, T, np.zeros(T), setup, tin_const=True)
        inst = DRRPInstance(demand=demand, costs=costs, phi=phi, vm_name="planted")
        total = demand.sum()
        optimum = float(
            setup[0]
            + costs.transfer_in[0] * phi * total
            + (costs.transfer_out * demand).sum()
        )
        alpha = np.zeros(T)
        alpha[0] = total
        beta = np.concatenate([np.cumsum(alpha - demand)])
        chi = np.zeros(T)
        chi[0] = 1.0
        x_star = np.concatenate([alpha, beta, chi])
        meta = {"sub_family": "single-setup"}
    return GeneratedCase(family="drrp", instance=inst, optimum=optimum,
                         x_star=x_star, meta=meta)


def random_drrp(rng: np.random.Generator, T: int = 8) -> GeneratedCase:
    """Unstructured DRRP instance (no planted optimum — the Wagner-Whitin
    DP serves as the independent reference in the oracle)."""
    demand = np.round(rng.uniform(0, 4, T), 2)
    demand[rng.random(T) < 0.2] = 0.0
    costs = CostSchedule(
        compute=np.round(rng.uniform(0.5, 4, T), 2),
        storage=np.round(rng.uniform(0.01, 0.5, T), 3),
        io=np.round(rng.uniform(0.01, 0.5, T), 3),
        transfer_in=np.round(rng.uniform(0.05, 1.5, T), 2),
        transfer_out=np.round(rng.uniform(0.0, 1.0, T), 2),
    )
    inst = DRRPInstance(
        demand=demand, costs=costs, phi=float(np.round(rng.uniform(0.1, 1.0), 2)),
        initial_storage=float(np.round(rng.uniform(0, 2), 2)), vm_name="random",
    )
    return GeneratedCase(family="drrp-random", instance=inst)


def planted_srrp(rng: np.random.Generator, depth: int = 3, branching: int = 2) -> GeneratedCase:
    """SRRP built from a chosen recourse policy: rent at every vertex whose
    stage has positive demand.

    Holding cost exceeds the dearest vertex price, so per scenario the
    rent-per-slot exchange argument applies; the tree optimum is the
    expectation of the per-scenario optima, which the planted policy
    attains — hence it is optimal and its expected cost is exact.
    """
    T = depth + 1
    demand = rng.integers(1, 5, T).astype(float)
    if T > 2 and rng.random() < 0.5:
        demand[int(rng.integers(1, T))] = 0.0

    price_cap = 6.0
    stage_dists = []
    for _ in range(depth):
        vals = np.sort(rng.integers(1, int(price_cap) + 1, branching)).astype(float)
        probs = rng.integers(1, 4, branching).astype(float)
        probs /= probs.sum()
        stage_dists.append((vals, probs))
    tree = build_tree(float(rng.integers(1, int(price_cap) + 1)), stage_dists)

    h = price_cap + 1.0  # > any vertex price: carrying a unit never pays
    costs = CostSchedule(
        compute=np.zeros(T),  # per-vertex prices come from the tree
        storage=np.full(T, h / 2),
        io=np.full(T, h / 2),
        transfer_in=rng.integers(1, 3, T).astype(float),
        transfer_out=rng.integers(0, 2, T).astype(float),
    )
    phi = 0.5
    inst = SRRPInstance(demand=demand, costs=costs, tree=tree, phi=phi, vm_name="planted")

    optimum = 0.0
    for node in tree.nodes:
        t = node.depth
        d = demand[t]
        optimum += node.abs_prob * (
            (node.price if d > 0 else 0.0)
            + costs.transfer_in[t] * phi * d
            + costs.transfer_out[t] * d
        )
    n = tree.num_nodes
    alpha = np.array([demand[node.depth] for node in tree.nodes])
    chi = (alpha > 0).astype(float)
    x_star = np.concatenate([alpha, np.zeros(n), chi])
    return GeneratedCase(family="srrp", instance=inst, optimum=float(optimum), x_star=x_star)


def random_two_stage(rng: np.random.Generator, n_x: int = 3, n_y: int = 3,
                     n_scen: int = 3) -> GeneratedCase:
    """Small two-stage stochastic LP/MILP for extensive-form-vs-Benders.

    Bounded by construction (finite boxes both stages).  The extensive form
    carries the scenario rows as hard equalities while Benders makes its
    subproblems elastic, so for the two formulations to be provably
    identical every instance must have *complete recourse*: ``W`` ends in a
    ``[+I | -I]`` slack block with modest positive cost and a box wide
    enough to absorb any residual, which makes the recourse stage feasible
    for every first-stage choice (Benders' elastic penalty then never
    binds).
    """
    integer_first = rng.random() < 0.4
    c = rng.integers(1, 6, n_x).astype(float)
    lb = np.zeros(n_x)
    ub = rng.integers(2, 6, n_x).astype(float)
    integrality = np.full(n_x, int(integer_first))
    probs = rng.integers(1, 4, n_scen).astype(float)
    probs /= probs.sum()
    scenarios = []
    m = 2
    # Residual |h - T x - W y| is bounded by the integer data ranges below;
    # 100 is far beyond it, so the slack box never binds.
    slack_box = 100.0
    for s in range(n_scen):
        W = rng.integers(-2, 4, (m, n_y)).astype(float)
        W = np.hstack([W, np.eye(m), -np.eye(m)])
        T_ = rng.integers(-2, 3, (m, n_x)).astype(float)
        h = rng.integers(-3, 6, m).astype(float)
        q = np.concatenate([
            rng.integers(1, 5, n_y).astype(float),
            rng.integers(2, 6, 2 * m).astype(float),
        ])
        scenarios.append(Scenario(
            prob=float(probs[s]), q=q, W=W, T=T_, h=h,
            y_ub=np.concatenate([np.full(n_y, 8.0), np.full(2 * m, slack_box)]),
        ))
    tsp = TwoStageProblem(
        c=c, lb=lb, ub=ub, integrality=integrality, scenarios=scenarios,
        A_ub=rng.integers(0, 3, (1, n_x)).astype(float),
        b_ub=np.array([float(rng.integers(4, 10))]),
    )
    return GeneratedCase(family="two-stage", instance=tsp,
                         meta={"integer_first": integer_first})


def planted_evicted_drrp(rng: np.random.Generator, T: int = 8) -> GeneratedCase:
    """DRRP with planted evictions and a clairvoyant repair plan.

    Construction: every slot demands an integer ``d_t >= 1``; an eviction
    set ``E`` (non-adjacent slots, never slot 0) has its capacity knocked
    out through :func:`repro.market.apply_interruptions`; the holding
    rate ``h`` strictly exceeds the dearest setup; transfer-in is
    constant.  The unique optimal repair plan follows by exchange:

    * for each ``e in E``, demand ``d_e`` must be produced at an earlier
      available slot, so the inventory entering ``e`` satisfies
      ``beta[e-1] >= d_e`` — at least ``h * d_e`` of holding is forced,
      and producing at ``e-1`` (available, since evictions are
      non-adjacent) attains it exactly;
    * skipping the setup at any available slot ``t`` saves at most
      ``max setup < h`` but forces ``d_t >= 1`` extra carried units
      costing ``>= h`` — dominated, so every available slot rents.

    The optimum is therefore ``sum(setup over available slots)
    + h * sum(d_e over E) + tin * phi * sum(D) + tout @ D``, exact in
    floating point (integer data, phi = 0.5).
    """
    from repro.market.interruptions import InterruptionEvent, apply_interruptions

    phi = 0.5
    demand = rng.integers(1, 6, T).astype(float)
    setup = rng.integers(1, 5, T).astype(float)
    h = float(setup.max()) + 1.0
    # eviction set: non-adjacent, slot 0 excluded so demand stays coverable
    evicted: list[int] = []
    t = 1
    while t < T:
        if rng.random() < 0.4:
            evicted.append(t)
            t += 2
        else:
            t += 1
    if not evicted:
        evicted = [int(rng.integers(1, T))]
    costs = _schedule(rng, T, np.full(T, h), setup, tin_const=True)
    base = DRRPInstance(demand=demand, costs=costs, phi=phi, vm_name="planted-evicted")
    events = [
        InterruptionEvent(slot=e, spot_price=1.0, bid=0.0) for e in evicted
    ]
    inst = apply_interruptions(base, events)

    out = np.zeros(T, dtype=bool)
    out[evicted] = True
    alpha = np.where(out, 0.0, demand)
    beta = np.zeros(T)
    for e in evicted:
        alpha[e - 1] += demand[e]
        beta[e - 1] = demand[e]
    chi = (~out).astype(float)
    optimum = float(
        setup[~out].sum()
        + h * demand[out].sum()
        + (costs.transfer_in * phi * alpha).sum()
        + (costs.transfer_out * demand).sum()
    )
    x_star = np.concatenate([alpha, beta, chi])
    return GeneratedCase(
        family="drrp-evicted", instance=inst, optimum=optimum, x_star=x_star,
        meta={"evicted": evicted, "holding": h},
    )


@dataclass
class FleetPoolCase:
    """A planted multi-tenant fleet sharing one capacity pool.

    ``tenants`` are per-tenant DRRP instances; ``capacity`` the per-slot
    cap on concurrent renters of the shared pool; ``bind_slot`` the one
    slot where the cap binds; ``deltas`` each tenant's exact cost of
    giving that slot up (the exchange-argument regret).
    """

    tenants: tuple[DRRPInstance, ...]
    capacity: np.ndarray
    bind_slot: int
    deltas: tuple[float, ...]


def planted_fleet_pool(
    rng: np.random.Generator, tenants: int = 3, T: int = 6
) -> GeneratedCase:
    """Fleet with a pool cap binding at exactly one slot, optimum by exchange.

    Construction: every tenant is a rent-per-slot instance (integer
    demand ``>= 1`` everywhere, holding ``h_i`` strictly above its
    dearest setup, constant transfer-in), so each tenant's unconstrained
    optimum rents every slot and costs
    ``opt_i = sum(setup_i) + tin_i*phi*sum(d_i) + tout_i @ d_i``.  One
    slot ``t* >= 1`` gets pool capacity ``K - 1`` (capacity ``K``
    elsewhere), forcing at least one tenant off ``t*``.  By the
    drrp-evicted exchange argument, the cheapest plan for a tenant that
    skips ``t*`` still rents every other slot and carries ``d_i(t*)``
    from ``t* - 1``, costing exactly
    ``opt_i + delta_i`` with ``delta_i = h_i * d_i(t*) - setup_i(t*) >= 1``.
    Any feasible fleet therefore costs at least
    ``sum_i opt_i + min_i delta_i``, and trimming an argmin tenant
    attains it — the planted optimum, exact in floating point (integer
    data, phi = 0.5).

    ``x_star`` concatenates each tenant's ``[alpha, beta, chi]`` blocks
    in tenant order, with the first argmin-delta tenant evicted at
    ``t*``.
    """
    phi = 0.5
    K = tenants
    bind = int(rng.integers(1, T))
    insts: list[DRRPInstance] = []
    opts: list[float] = []
    deltas: list[float] = []
    blocks: list[np.ndarray] = []
    for i in range(K):
        demand = rng.integers(1, 5, T).astype(float)
        setup = rng.integers(1, 5, T).astype(float)
        h = float(setup.max()) + 1.0
        costs = _schedule(rng, T, np.full(T, h), setup, tin_const=True)
        insts.append(
            DRRPInstance(demand=demand, costs=costs, phi=phi, vm_name=f"fleet-{i}")
        )
        opts.append(
            float(
                setup.sum()
                + (costs.transfer_in * phi * demand).sum()
                + (costs.transfer_out * demand).sum()
            )
        )
        deltas.append(h * float(demand[bind]) - float(setup[bind]))
    trimmed = int(np.argmin(deltas))
    for i, inst in enumerate(insts):
        demand = inst.demand
        alpha = demand.copy()
        beta = np.zeros(T)
        chi = np.ones(T)
        if i == trimmed:
            alpha[bind] = 0.0
            alpha[bind - 1] += demand[bind]
            beta[bind - 1] = demand[bind]
            chi[bind] = 0.0
        blocks.append(np.concatenate([alpha, beta, chi]))
    capacity = np.full(T, float(K))
    capacity[bind] = float(K - 1)
    optimum = float(sum(opts) + min(deltas))
    case = FleetPoolCase(
        tenants=tuple(insts), capacity=capacity, bind_slot=bind,
        deltas=tuple(deltas),
    )
    return GeneratedCase(
        family="fleet-pool", instance=case, optimum=optimum,
        x_star=np.concatenate(blocks),
        meta={
            "tenants": K, "bind_slot": bind, "trimmed": trimmed,
            "per_tenant_optima": opts, "deltas": list(deltas),
        },
    )


def bid_dominance(rng: np.random.Generator, T: int = 16) -> GeneratedCase:
    """Bid-dominance scenario: a higher bid weakly reduces realized cost.

    With every spot price capped at λ (the market-rational regime) and a
    bid-independent generation schedule (the reactive no-plan policy),
    raising the bid can only turn λ charges plus lost work into spot
    charges at most λ — so both the realized cost and the interruption
    count are non-increasing in the bid.  The planted "optimum" is the
    exact realized cost of the *higher* bid; the oracle additionally
    cross-checks both bids' exact accounting against the simulator and
    the dominance inequality itself.
    """
    from repro.market.interruptions import BidDominanceCase, fixed_bid_outcome

    lam = 0.2
    # prices in (0, λ], quantized like the trace generator ($0.001)
    prices = np.round(rng.uniform(0.1, 1.0, T) * lam, 3)
    prices = np.clip(prices, 0.001, lam)
    demand = np.round(rng.uniform(0.1, 2.0, T), 2)
    demand[rng.random(T) < 0.25] = 0.0
    # bids drawn from the price support half the time (exact tie coverage)
    def draw_bid() -> float:
        if rng.random() < 0.5:
            return float(prices[rng.integers(0, T)])
        return float(np.round(rng.uniform(0.05, 1.1) * lam, 3))

    lo, hi = sorted((draw_bid(), draw_bid()))
    if not hi > lo:
        hi = lo + 0.001
    work_loss = float(rng.choice([0.0, 0.25, 0.5, 0.9]))
    case = BidDominanceCase(
        prices=prices, demand=demand, on_demand_price=lam,
        bid_lo=lo, bid_hi=hi, work_loss=work_loss,
    )
    out_lo = fixed_bid_outcome(case, lo)
    out_hi = fixed_bid_outcome(case, hi)
    return GeneratedCase(
        family="bid-dominance", instance=case, optimum=float(out_hi.cost),
        meta={
            "cost_lo": float(out_lo.cost),
            "interruptions_lo": out_lo.interruptions,
            "interruptions_hi": out_hi.interruptions,
        },
    )


FAMILIES = {
    "lp": planted_lp,
    "milp": planted_milp,
    "lp-infeasible": infeasible_lp,
    "drrp": planted_drrp,
    "drrp-random": random_drrp,
    "drrp-evicted": planted_evicted_drrp,
    "srrp": planted_srrp,
    "two-stage": random_two_stage,
    "bid-dominance": bid_dominance,
    "fleet-pool": planted_fleet_pool,
}
