"""Structural audits of solver *process* evidence.

The certificate checker (:mod:`repro.verify.certify`) validates final
answers; the audits here validate the evidence a solver emits *while
running*:

* :func:`audit_bb_events` replays a branch-and-bound telemetry stream and
  checks the invariants of a correct best-first search — closed-node
  bounds never decrease, prunes are justified by the incumbent at the
  time, and incumbents strictly improve.
* :func:`audit_benders_cuts` checks every optimality cut the L-shaped
  loop added: a cut is valid if and only if its generating multipliers
  are feasible for the elastic recourse dual (``dual'W - mu <= q``,
  ``mu >= 0``, ``|dual| <= penalty``) — an infeasible multiplier vector
  would make the cut slice off true solutions, which is exactly the bug
  class the differential oracle caught in the finite-``y_ub`` case.

Both return a list of :class:`~repro.verify.certify.Check` records so
failures read the same way as certification failures.
"""

from __future__ import annotations

import numpy as np

from repro.solver.benders import TwoStageProblem
from repro.solver.telemetry import SolveEvent

from .certify import Check

__all__ = ["audit_bb_events", "audit_benders_cuts", "all_passed"]


def all_passed(checks: list[Check]) -> bool:
    return all(c.passed for c in checks)


def audit_bb_events(
    events: list[SolveEvent], tol: float = 1e-9, maximize: bool = False
) -> list[Check]:
    """Replay a telemetry stream and check branch-and-bound invariants.

    Bounds in ``node_open`` / ``node_close`` / ``node_prune`` events are in
    the solver's internal minimize sense, as is the ``incumbent`` field of
    a prune event; ``incumbent`` *events* carry the model-sense objective,
    so ``maximize`` tells the audit which direction counts as improvement.
    """
    checks: list[Check] = []

    closes = [e for e in events if e.kind == "node_close"]
    prev = -np.inf
    monotone = True
    worst = 0.0
    for e in closes:
        b = float(e.data["bound"])
        if b < prev - tol:
            monotone = False
            worst = max(worst, prev - b)
        prev = max(prev, b)
    checks.append(Check(
        "bounds_monotone", monotone, worst,
        "best-first node_close bounds must be non-decreasing",
    ))

    prunes = [e for e in events if e.kind == "node_prune" and "incumbent" in e.data]
    bad_prunes = 0
    worst = 0.0
    for e in prunes:
        b, inc = float(e.data["bound"]), float(e.data["incumbent"])
        if not np.isfinite(inc):
            continue  # pruning against +inf incumbent never happens; skip defensively
        # branch-and-bound prunes at a relative gap (see BranchAndBoundOptions
        # .rel_gap); allow the same slack here so tight-but-correct prunes pass
        if b < inc - 1e-6 * max(1.0, abs(inc)) - tol:
            bad_prunes += 1
            worst = max(worst, inc - b)
    checks.append(Check(
        "prunes_justified", bad_prunes == 0, worst,
        f"{bad_prunes} prune(s) discarded a node whose bound beat the incumbent",
    ))

    incumbents = [e for e in events if e.kind == "incumbent"]
    improving = True
    worst = 0.0
    prev_obj = None
    for e in incumbents:
        obj = float(e.data["objective"])
        if prev_obj is not None:
            delta = obj - prev_obj if maximize else prev_obj - obj
            if delta < -tol:
                improving = False
                worst = max(worst, -delta)
        prev_obj = obj
    checks.append(Check(
        "incumbents_improve", improving, worst,
        "each incumbent must be at least as good as the previous one",
    ))
    return checks


def audit_benders_cuts(
    problem: TwoStageProblem,
    cut_records: list[dict],
    penalty: float,
    tol: float = 1e-7,
) -> list[Check]:
    """Check dual feasibility of every recorded L-shaped optimality cut.

    ``cut_records`` and ``penalty`` come from ``result.extra`` of
    :func:`repro.solver.benders.solve_benders`.  The elastic subproblem is
    ``min q'y + penalty(u+v)`` s.t. ``Wy + u - v = h - Tx``, ``0 <= y <=
    y_ub``, so a multiplier pair ``(dual, mu)`` generates a globally valid
    cut iff ``dual'W - mu <= q``, ``mu >= 0`` and ``|dual| <= penalty``
    (the elastic columns' reduced costs).
    """
    checks: list[Check] = []
    for k, rec in enumerate(cut_records):
        s = problem.scenarios[int(rec["scenario"])]
        dual = np.asarray(rec["dual"], dtype=float)
        mu = np.asarray(rec.get("mu", np.zeros(s.q.shape[0])), dtype=float)
        label = f"cut[{k}] (scenario {rec['scenario']}, iteration {rec.get('iteration')})"

        viol = float(np.max(-mu, initial=0.0))
        if viol > tol:
            checks.append(Check(f"{label} mu_nonneg", False, viol,
                                "bound multipliers must be nonnegative"))
            continue
        reduced = dual @ s.W - mu - s.q
        viol = float(np.max(reduced, initial=0.0))
        if viol > tol * (1.0 + float(np.abs(s.q).max(initial=0.0))):
            checks.append(Check(f"{label} dual_feasible", False, viol,
                                "dual'W - mu <= q violated: the cut can cut off optima"))
            continue
        viol = float(np.max(np.abs(dual), initial=0.0)) - penalty
        if viol > tol * (1.0 + penalty):
            checks.append(Check(f"{label} elastic_bound", False, viol,
                                "|dual| exceeds the elastic penalty"))
            continue
        checks.append(Check(f"{label}", True, 0.0, "valid optimality cut"))
    return checks
