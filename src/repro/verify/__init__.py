"""Solver certification and differential fuzzing.

Three layers of independent evidence that the solver stack is right:

* :mod:`repro.verify.certify` — exact-arithmetic certificate checking of
  final answers (primal feasibility, duality gap, Farkas infeasibility
  proofs, plan-level constraint walks).
* :mod:`repro.verify.audits` — invariants of the solve *process*
  (branch-and-bound bound monotonicity and prune justification, Benders
  cut dual-feasibility).
* :mod:`repro.verify.oracle` / :mod:`repro.verify.fuzz` — differential
  testing over seeded generators with planted optima
  (:mod:`repro.verify.generators`), with shrinking of any divergence to a
  minimal reproducer (:mod:`repro.verify.shrink`).

Entry point: ``repro fuzz`` on the CLI, or :func:`run_fuzz` here.
"""

from .audits import all_passed, audit_bb_events, audit_benders_cuts
from .certify import (
    CertificateReport,
    Check,
    certify_drrp_plan,
    certify_infeasible,
    certify_result,
    certify_srrp_plan,
    exact_dual_bound,
    frac,
    frac_sum,
)
from .fuzz import SMOKE_CASES, FuzzConfig, FuzzReport, run_fuzz, run_fuzz_parallel
from .generators import FAMILIES, FleetPoolCase, GeneratedCase, planted_fleet_pool
from .oracle import Disagreement, cross_check_case, serialize_witness, shrink_disagreement
from .shrink import shrink_drrp, shrink_problem

__all__ = [
    "CertificateReport",
    "Check",
    "certify_result",
    "certify_infeasible",
    "certify_drrp_plan",
    "certify_srrp_plan",
    "exact_dual_bound",
    "frac",
    "frac_sum",
    "audit_bb_events",
    "audit_benders_cuts",
    "all_passed",
    "FAMILIES",
    "FleetPoolCase",
    "planted_fleet_pool",
    "GeneratedCase",
    "Disagreement",
    "cross_check_case",
    "shrink_disagreement",
    "serialize_witness",
    "shrink_problem",
    "shrink_drrp",
    "FuzzConfig",
    "FuzzReport",
    "run_fuzz",
    "run_fuzz_parallel",
    "SMOKE_CASES",
]
