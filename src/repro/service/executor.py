"""Job execution: normalized request -> plan payload.

The one place where the service touches the solver stack (numpy and,
optionally, scipy).  Everything here is imported lazily so the service
package itself stays stdlib-only to import.

Two paths:

:func:`execute_request`
    The real solve: builds the instance, maps the job's remaining wall
    budget onto the solver's :class:`~repro.solver.telemetry.Deadline`,
    and returns the JSON plan payload.  DRRP solves run warm-started so
    an expired budget still yields the Wagner-Whitin incumbent (status
    ``time_limit``) instead of an error.

:func:`degraded_request`
    The overload/expiry fallback: polynomial-time heuristics only, no
    queueing and no MILP.  Uncapacitated DRRP gets Wagner-Whitin (exact
    for that subclass); everything else gets the no-plan scheme over a
    deterministic cost view (for SRRP, stage-expected compute prices).
    The returned payload carries ``degraded`` naming the heuristic.
"""

from __future__ import annotations

from .encoding import build_instance, plan_payload

__all__ = ["execute_request", "degraded_request"]


def execute_request(
    request: dict,
    time_limit: float | None = None,
    listener=None,
) -> dict:
    """Solve one normalized request; returns the plan payload.

    ``time_limit`` is the job's *remaining* budget in seconds (the
    service subtracts queue wait before calling); ``None`` means
    unbounded.  Raises ``RuntimeError`` if the solver terminates without
    a usable solution.
    """
    kind = request["kind"]
    if kind == "fleet":
        return _fleet_request(request, listener=listener)
    instance = build_instance(request)
    solve_kwargs: dict = {"backend": request["backend"]}
    if listener is not None:
        solve_kwargs["listener"] = listener
    if time_limit is not None:
        solve_kwargs["time_limit"] = max(float(time_limit), 0.0)
    if kind == "drrp":
        from repro.core import solve_drrp

        # Warm start guarantees an incumbent under any budget (WW seed).
        if solve_kwargs.get("time_limit") is not None and instance.bottleneck_rate is None:
            solve_kwargs["warm_start"] = True
        plan = solve_drrp(instance, **solve_kwargs)
    else:
        from repro.core import solve_srrp

        plan = solve_srrp(instance, **solve_kwargs)
    return plan_payload(kind, plan)


def _fleet_request(request: dict, listener=None, escalate: bool = True) -> dict:
    """Plan one seeded fleet spec; returns the fleet-plan summary payload.

    The fan-out inside :func:`repro.fleet.plan_fleet` respects the
    service workers' :func:`repro.parallel.serial_guard`, so a fleet job
    cannot fork-bomb the host from a worker thread.  ``escalate=False``
    is the degraded path: heuristic tier only, no gap-triggered MILP.
    """
    from repro.fleet import FleetConfig, generate_tenants, plan_fleet, uniform_pools

    spec = request["fleet"]
    tenants = generate_tenants(
        spec["tenants"], seed=spec["seed"], horizon=spec["horizon"]
    )
    pools = uniform_pools(tenants, utilization=spec["utilization"])
    config = FleetConfig(backend=request["backend"], escalate=escalate)
    fleet = plan_fleet(tenants, pools, config, listener=listener)
    payload = fleet.summary(tenants)
    if not fleet.feasible:
        raise RuntimeError(f"fleet plan infeasible: {fleet.failures[:3]}")
    return payload


def _expected_stage_prices(tree_payload: dict) -> list[float]:
    """Per-slot expected compute price of a normalized tree payload."""
    prices = [float(tree_payload["root_price"])]
    for stage in tree_payload["stages"]:
        prices.append(
            sum(v * p for v, p in zip(stage["values"], stage["probs"]))
        )
    return prices


def degraded_request(request: dict) -> dict:
    """Heuristic plan for one normalized request (see module docstring)."""
    import numpy as np

    from repro.core import CostSchedule, DRRPInstance, solve_noplan, solve_wagner_whitin

    if request["kind"] == "fleet":
        payload = _fleet_request(request, escalate=False)
        payload["degraded"] = "heuristic-only"
        return payload

    inst = request["instance"]
    costs = CostSchedule(**{f: np.asarray(v) for f, v in inst["costs"].items()})
    if request["kind"] == "srrp":
        costs = costs.with_compute(np.asarray(_expected_stage_prices(inst["tree"])))
    drrp = DRRPInstance(
        demand=np.asarray(inst["demand"]),
        costs=costs,
        phi=inst["phi"],
        initial_storage=inst["initial_storage"],
        vm_name=inst["vm_name"],
    )
    if request["kind"] == "drrp" and "bottleneck_rate" not in inst:
        plan = solve_wagner_whitin(drrp)
        heuristic = "wagner-whitin"
    else:
        plan = solve_noplan(drrp)
        heuristic = "no-plan"
    payload = plan_payload("drrp", plan)
    payload["kind"] = request["kind"]
    payload["degraded"] = heuristic
    if request["kind"] == "srrp":
        # The heuristic plans against expected prices; report its cost in
        # the same (expected) sense SRRP minimizes.
        payload["expected_cost"] = payload.pop("total_cost")
        payload["first_alpha"] = payload["alpha"][0]
        payload["first_chi"] = bool(payload["chi"][0])
    return payload
