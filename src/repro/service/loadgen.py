"""Deterministic load generator / benchmark for the planning service.

Boots a real server (in-process, ephemeral port), drives a seeded mixed
workload through the real HTTP client from a small thread pool, and
writes a ``BENCH_service.json`` record next to the working directory
(override with ``REPRO_BENCH_DIR``, like the figure benches).

The workload is deterministic given the seed: ``requests`` submissions
over ``round(requests * (1 - duplicate_share))`` distinct instances —
a mix of DRRP shorthand jobs and small explicit SRRP trees — with the
duplicate positions and targets drawn from ``random.Random(seed)``.
Duplicates are what exercise the cache and the in-flight coalescer;
the bench asserts *measured* behaviour, so its record reports:

* throughput and end-to-end latency percentiles (p50/p99),
* cached-response p50 (submissions answered without a new solve),
* the exact server-side cache accounting (hits + coalesced vs misses),
* a saturation probe: a second service with ``workers=0`` and a tiny
  queue is slammed with async submissions and must answer 429 with a
  ``Retry-After`` header — backpressure, never a hang.

Stdlib-only imports; the serving process itself needs the solver stack.
"""

from __future__ import annotations

import json
import os
import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path

from .client import Saturated, ServiceClient
from .server import ServiceConfig, serve

__all__ = ["LoadgenConfig", "run_loadgen", "write_bench_record"]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generator run (defaults match the acceptance workload)."""

    requests: int = 200
    duplicate_share: float = 0.3
    srrp_share: float = 0.2
    seed: int = 0
    horizon: int = 8
    srrp_horizon: int = 4
    backend: str = "auto"
    workers: int = 2
    queue_size: int = 64
    client_threads: int = 8
    wait_s: float = 60.0
    saturation_probes: int = 12
    out: str | None = "BENCH_service.json"

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 0.0 <= self.duplicate_share < 1.0:
            raise ValueError("duplicate_share must be in [0, 1)")


def _drrp_payload(i: int, cfg: LoadgenConfig, rng: random.Random) -> dict:
    vm = rng.choice(["c1.medium", "m1.large", "m1.xlarge"])
    return {
        "kind": "drrp",
        "vm": vm,
        "horizon": cfg.horizon,
        "seed": 10_000 + i,
        "demand_mean": round(rng.uniform(0.2, 0.6), 3),
        "demand_std": round(rng.uniform(0.05, 0.25), 3),
        "backend": cfg.backend,
    }


def _srrp_payload(i: int, cfg: LoadgenConfig, rng: random.Random) -> dict:
    T = cfg.srrp_horizon
    lo = round(rng.uniform(0.05, 0.15), 3)
    hi = round(lo + rng.uniform(0.1, 0.3), 3)
    p = round(rng.uniform(0.3, 0.7), 3)
    return {
        "kind": "srrp",
        "backend": cfg.backend,
        "instance": {
            "demand": [round(rng.uniform(0.1, 0.8), 3) for _ in range(T)],
            "costs": {
                "compute": [hi] * T,
                "storage": [0.0001] * T,
                "io": [0.2] * T,
                "transfer_in": [0.1] * T,
                "transfer_out": [0.17] * T,
            },
            "phi": 0.5,
            "vm_name": f"load-{i}",
            "tree": {
                "root_price": lo,
                "stages": [{"values": [lo, hi], "probs": [p, round(1 - p, 3)]}
                           for _ in range(T - 1)],
            },
        },
    }


def build_workload(cfg: LoadgenConfig) -> tuple[list[dict], int]:
    """The seeded request sequence; returns ``(payloads, n_unique)``.

    The first occurrence of each distinct instance appears before any of
    its duplicates, and duplicate positions are shuffled through the
    tail so cache hits and in-flight coalescing both occur.
    """
    rng = random.Random(cfg.seed)
    n_unique = max(1, round(cfg.requests * (1.0 - cfg.duplicate_share)))
    unique = [
        _srrp_payload(i, cfg, rng) if rng.random() < cfg.srrp_share
        else _drrp_payload(i, cfg, rng)
        for i in range(n_unique)
    ]
    payloads = list(unique)
    while len(payloads) < cfg.requests:
        payloads.append(unique[rng.randrange(n_unique)])
    tail = payloads[1:]
    rng.shuffle(tail)
    return [payloads[0]] + tail, n_unique


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted nonempty list."""
    idx = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def _latency_stats(samples_s: list[float]) -> dict:
    if not samples_s:
        return {"n": 0}
    ordered = sorted(samples_s)
    return {
        "n": len(ordered),
        "p50_ms": _percentile(ordered, 0.50) * 1e3,
        "p99_ms": _percentile(ordered, 0.99) * 1e3,
        "mean_ms": sum(ordered) / len(ordered) * 1e3,
        "max_ms": ordered[-1] * 1e3,
    }


def _saturation_probe(cfg: LoadgenConfig) -> dict:
    """Slam a workerless single-slot service: every overflow must get 429."""
    service, httpd = serve(
        port=0,
        config=ServiceConfig(workers=0, queue_size=1, default_time_limit=5.0),
        block=False,
    )
    client = ServiceClient(httpd.url, timeout=10.0)
    rejected = 0
    retry_after = None
    try:
        for i in range(cfg.saturation_probes):
            try:
                client.submit({"vm": "m1.large", "horizon": cfg.horizon,
                               "seed": 77_000 + i})
            except Saturated as exc:
                rejected += 1
                retry_after = exc.retry_after
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()
    return {
        "probes": cfg.saturation_probes,
        "queue_size": 1,
        "rejected": rejected,
        "retry_after_s": retry_after,
    }


def run_loadgen(cfg: LoadgenConfig | None = None) -> dict:
    """Run the benchmark; returns (and optionally writes) the record."""
    cfg = cfg or LoadgenConfig()
    payloads, n_unique = build_workload(cfg)
    duplicates = cfg.requests - n_unique

    service, httpd = serve(
        port=0,
        config=ServiceConfig(workers=cfg.workers, queue_size=cfg.queue_size,
                             cache_size=max(2 * n_unique, 16)),
        block=False,
    )
    client = ServiceClient(httpd.url, timeout=max(cfg.wait_s, 10.0) + 30.0)
    latencies: list[float | None] = [None] * cfg.requests
    answered: list[bool] = [False] * cfg.requests
    hit_flags: list[bool] = [False] * cfg.requests

    def drive(i: int) -> None:
        t0 = time.perf_counter()
        result = client.solve(payloads[i], wait_s=cfg.wait_s)
        latencies[i] = time.perf_counter() - t0
        answered[i] = result.plan is not None
        hit_flags[i] = result.hit

    t_start = time.perf_counter()
    try:
        with ThreadPoolExecutor(max_workers=cfg.client_threads) as pool:
            list(pool.map(drive, range(cfg.requests)))
        elapsed = time.perf_counter() - t_start
        health = client.healthz()
        metrics = client.metrics()
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()

    dropped = sum(1 for ok in answered if not ok)
    cache_hits = service.cache.hits
    coalesced = int(metrics.get("service_coalesced", {}).get("value", 0))
    shared = cache_hits + coalesced
    done = [lat for lat in latencies if lat is not None]
    hit_latencies = [lat for lat, hit in zip(latencies, hit_flags) if lat is not None and hit]

    record = {
        "name": "service",
        "config": asdict(cfg),
        "requests": cfg.requests,
        "unique_instances": n_unique,
        "duplicates": duplicates,
        "duplicate_share": duplicates / cfg.requests,
        "dropped": dropped,
        "elapsed_s": elapsed,
        "throughput_rps": cfg.requests / elapsed if elapsed > 0 else float("inf"),
        "latency": _latency_stats(done),
        "cached_latency": _latency_stats(hit_latencies),
        "cache": {
            "hits": cache_hits,
            "coalesced": coalesced,
            "misses": service.cache.misses,
            "shared": shared,
            "hit_rate": shared / cfg.requests,
            "size": health["cache"]["size"],
        },
        "jobs": health["jobs"],
        "saturation": _saturation_probe(cfg),
        "created": time.time(),
    }
    if cfg.out:
        record["path"] = str(write_bench_record(record, cfg.out))
    return record


def write_bench_record(record: dict, out: str = "BENCH_service.json") -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / out
    path.write_text(json.dumps(record, indent=2, allow_nan=False) + "\n")
    return path


def summary_line(record: dict) -> str:
    lat, cached, cache = record["latency"], record["cached_latency"], record["cache"]
    cached_p50 = f"{cached['p50_ms']:.1f}ms" if cached.get("n") else "-"
    return (
        f"service bench: {record['requests']} reqs "
        f"({record['duplicates']} dup) in {record['elapsed_s']:.2f}s "
        f"({record['throughput_rps']:.1f} rps) dropped={record['dropped']} "
        f"p50={lat['p50_ms']:.1f}ms p99={lat['p99_ms']:.1f}ms "
        f"cached_p50={cached_p50} "
        f"cache_hit_rate={cache['hit_rate']:.0%} "
        f"saturation_429={record['saturation']['rejected']}/{record['saturation']['probes']}"
    )
