"""The planning server: bounded queue, worker pool, cache, HTTP front end.

Two layers, separable for testing:

:class:`PlanningService`
    The in-process core — admission control, the job queue and worker
    threads, the plan cache with in-flight coalescing, metrics, and
    per-job capture.  Usable directly (no sockets) by tests and by the
    load generator.

:class:`PlanningHTTPServer` / :func:`serve`
    A stdlib ``ThreadingHTTPServer`` front end exposing the JSON API
    (``docs/service.md``):

    ========  =======================  ==========================================
    method    path                     behaviour
    ========  =======================  ==========================================
    POST      ``/v1/jobs``             submit; 202 queued/coalesced, 200 cache
                                       hit or degraded, 400 malformed, 429/503
                                       saturated (``Retry-After`` header)
    POST      ``/v1/plan``             submit and wait; adds 504 on wait timeout
    POST      ``/v1/fleet``            batch multi-tenant planning: forces
                                       ``kind: "fleet"``, then behaves like
                                       ``/v1/plan`` (same queue, cache, and
                                       overload policy; the body is the fleet
                                       spec — ``tenants``/``seed``/``horizon``/
                                       ``utilization``)
    GET       ``/v1/jobs/<id>``        job status
    GET       ``/v1/jobs/<id>/plan``   plan body; 409 while pending
    GET       ``/healthz``             liveness + queue/cache summary
    GET       ``/metrics``             metrics-registry snapshot; JSON by
                                       default, Prometheus text 0.0.4 with
                                       ``?format=prom`` or ``Accept: text/plain``
    ========  =======================  ==========================================

Trace propagation: ``POST`` handlers parse the W3C ``traceparent``
header; an admitted job runs under a *child* span context of the
caller's (a fresh root when the header is absent or malformed — a
garbled header is never an error).  With ``capture_dir`` set, each job's
``events.jsonl`` starts with a ``process_meta`` line carrying that
context, so ``repro trace`` can stitch client- and server-side event
files into one cross-process trace, and the queue wait is recorded as a
synthetic ``service_queue_wait`` phase distinct from solve time.

Admission control: the queue is bounded; when it is full a submission
either gets 429 with a ``Retry-After`` estimate (``on_overload:
"reject"``, the default) or an inline polynomial-time heuristic plan
with ``degraded`` set (``on_overload: "degrade"``) — the server never
blocks a submission behind a solve.  Per-request ``time_limit`` budgets
cover queue wait *and* solve, mapped onto the solver's ``Deadline``.

Everything importable here is stdlib-only; solver work is deferred to
:mod:`repro.service.executor` inside worker threads, which run under
:func:`repro.parallel.serial_guard` so solver-level ``parallel_map``
calls cannot fork-bomb the host.
"""

from __future__ import annotations

import json
import math
import queue
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.metrics import MetricsAggregator, MetricsRegistry, to_prometheus
from repro.obs.propagate import (
    TRACEPARENT_HEADER,
    TraceContext,
    activate,
    parse_traceparent,
)
from repro.serialize import jsonable

from .cache import PlanCache
from .encoding import BadRequest, normalize_request, request_digest
from .jobs import Job, JobState, JobStore

if TYPE_CHECKING:  # solver imports stay lazy so this module is stdlib-only
    from repro.solver.telemetry import EventRecorder

__all__ = ["ServiceConfig", "PlanningService", "PlanningHTTPServer", "serve"]

_SENTINEL = object()

#: Latency buckets in seconds, weighted toward the cached/fast end.
_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, math.inf,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`PlanningService`.

    ``workers=0`` starts no worker threads (submissions queue until the
    queue fills, then backpressure applies) — used by saturation tests
    and the load generator's 429 probe.
    """

    workers: int = 2
    queue_size: int = 64
    cache_size: int = 512
    retain_jobs: int = 4096
    default_time_limit: float | None = 60.0  # per-job budget when unset
    max_wait_s: float = 60.0                 # cap on synchronous /v1/plan waits
    capture_dir: str | None = None           # per-job manifest + event log

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")


class PlanningService:
    """In-process planning service core (see module docstring)."""

    def __init__(self, config: ServiceConfig | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cache = PlanCache(self.config.cache_size)
        self.jobs = JobStore(retain=self.config.retain_jobs)
        self._queue: queue.Queue = queue.Queue(maxsize=self.config.queue_size)
        self._inflight: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._workers: list[threading.Thread] = []
        self._closed = False
        self._started = time.monotonic()
        # Solver events from every worker fold into the shared registry.
        # Concurrent solves make the start/end pairing approximate; the
        # counters themselves stay exact.
        self._aggregator = MetricsAggregator(self.registry)
        self._latency = self.registry.histogram("service_job_latency_s", _LATENCY_BUCKETS)
        self._solve_latency = self.registry.histogram("service_solve_s", _LATENCY_BUCKETS)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "PlanningService":
        for i in range(self.config.workers):
            t = threading.Thread(target=self._worker, name=f"plan-worker-{i}", daemon=True)
            t.start()
            self._workers.append(t)
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop admissions, fail still-queued jobs, join the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not _SENTINEL:
                self._finish_job(job, error="server shutting down")
        for _ in self._workers:
            self._queue.put(_SENTINEL)
        for t in self._workers:
            t.join(timeout=timeout)
        self._workers = [t for t in self._workers if t.is_alive()]

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "PlanningService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- admission ---------------------------------------------------------

    def submit(self, payload, trace: TraceContext | None = None) -> tuple[int, dict]:
        """Admit one submission; returns ``(http_status, body)``.

        Never blocks on solver work: the slow paths are a queue insert, a
        cache lookup, or (``on_overload: "degrade"``) one polynomial-time
        heuristic.

        ``trace`` is the caller's propagated context (parsed from the
        ``traceparent`` header by the HTTP layer); the job runs under a
        child span of it, or a fresh root when absent.
        """
        self.registry.counter("service_submissions").inc()
        job_trace = trace.child() if trace is not None else TraceContext.new_root()
        trace_fields = {"trace": job_trace,
                        "trace_parent": trace.span_id if trace is not None else None}
        try:
            request = normalize_request(payload)
        except BadRequest as exc:
            self.registry.counter("service_bad_requests").inc()
            return 400, {"error": str(exc)}
        digest = request_digest(request)

        with self._lock:
            if self._closed:
                return 503, {"error": "server is shutting down",
                             "retry_after": self.retry_after()}
            cached = self.cache.get(digest)
            if cached is not None:
                self.registry.counter("service_cache_hits").inc()
                job = self.jobs.create(digest, request, state=JobState.DONE,
                                       cached=True, **trace_fields)
                job.finish(plan=cached)
                self._latency.observe(job.latency)
                return 200, {"job": job.to_dict(), "plan": cached}
            inflight = self._inflight.get(digest)
            if inflight is not None:
                inflight.coalesced += 1
                self.registry.counter("service_coalesced").inc()
                return 202, {"job": inflight.to_dict()}
            from repro.solver.telemetry import Deadline

            budget = request["time_limit"]
            if budget is None:
                budget = self.config.default_time_limit
            deadline = Deadline(budget) if budget is not None else Deadline.never()
            job = self.jobs.create(digest, request, deadline=deadline, **trace_fields)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                return self._overload(job, request)
            self._inflight[digest] = job
            self.registry.gauge("service_queue_depth").set(self._queue.qsize())
            return 202, {"job": job.to_dict()}

    def _overload(self, job: Job, request: dict) -> tuple[int, dict]:
        """Queue-full handling: degrade inline or reject with Retry-After."""
        if request["on_overload"] == "degrade":
            from .executor import degraded_request

            payload = degraded_request(request)
            job.degraded = payload["degraded"]
            job.finish(plan=payload)
            self.registry.counter("service_degraded").inc()
            self._latency.observe(job.latency)
            return 200, {"job": job.to_dict(), "plan": payload}
        job.finish(error="queue full")
        self.registry.counter("service_rejected").inc()
        return 429, {"error": "planning queue is full", "retry_after": self.retry_after()}

    def retry_after(self) -> float:
        """Seconds a rejected client should back off before retrying.

        Estimated as the backlog drained at the observed mean solve time;
        1 s when nothing has been measured yet.
        """
        mean = self._solve_latency.mean
        if not self._solve_latency.count or not math.isfinite(mean):
            return 1.0
        workers = max(len(self._workers), 1)
        depth = self._queue.qsize() + 1
        return round(max(0.1, mean * depth / workers), 3)

    # -- workers -----------------------------------------------------------

    def _worker(self) -> None:
        from repro.parallel import serial_guard

        while True:
            job = self._queue.get()
            if job is _SENTINEL:
                return
            self.registry.gauge("service_queue_depth").set(self._queue.qsize())
            with serial_guard():
                self._run_job(job)

    def _run_job(self, job: Job) -> None:
        from repro.solver.telemetry import EventRecorder, Telemetry

        from .executor import degraded_request, execute_request

        job.state = JobState.RUNNING
        job.started = time.monotonic()
        recorder = EventRecorder() if self.config.capture_dir else None
        job.wall_t0 = time.time()
        hub = Telemetry(
            listeners=(self._aggregator,) if recorder is None
            else (recorder, self._aggregator)
        )
        # The queue wait just ended; record it as a synthetic zero-width
        # phase so profilers and the aggregator see it separately from
        # solve time (the hub's clock only starts now, so a real span
        # could not cover the wait retroactively).
        hub.emit("phase_end", phase="service_queue_wait",
                 duration=job.started - job.submitted, job=job.id)
        remaining = job.deadline.remaining() if job.deadline is not None else None
        if remaining is not None and math.isinf(remaining):
            remaining = None
        try:
            # The job's span context becomes ambient for the solve: any
            # parallel_map fan-out inherits it (child spans, sampling).
            with activate(job.trace):
                payload = execute_request(job.request, time_limit=remaining,
                                          listener=hub)
            self._finish_job(job, plan=payload)
        except RuntimeError as exc:
            if job.deadline is not None and job.deadline.expired():
                # Budget gone (possibly entirely to queue wait): answer with
                # the heuristic plan rather than an error, marked honestly.
                payload = degraded_request(job.request)
                payload["status"] = "time_limit"
                job.degraded = payload["degraded"]
                self._finish_job(job, plan=payload)
            else:
                self._finish_job(job, error=str(exc))
        except Exception as exc:  # noqa: BLE001 - a worker must never die
            self._finish_job(job, error=f"{type(exc).__name__}: {exc}")
        if recorder is not None:
            self._capture(job, recorder)

    def _finish_job(self, job: Job, plan: dict | None = None, error: str | None = None) -> None:
        job.finish(plan=plan, error=error)
        with self._lock:
            if self._inflight.get(job.digest) is job:
                del self._inflight[job.digest]
        if error is None:
            self.registry.counter("service_jobs_done").inc()
            if plan.get("status") == "optimal" and job.degraded is None:
                self.cache.put(job.digest, plan)
        else:
            self.registry.counter("service_jobs_failed").inc()
        self._latency.observe(job.latency)
        if job.started is not None:
            self._solve_latency.observe(job.finished - job.started)

    def _capture(self, job: Job, recorder: EventRecorder) -> None:
        """Write per-job provenance under ``capture_dir/<job id>/``."""
        from pathlib import Path

        from repro.obs import RunManifest
        from repro.obs.propagate import write_process_events

        out = Path(self.config.capture_dir) / job.id
        result = job.plan if job.plan is not None else {"error": job.error}
        extra = {}
        if job.trace is not None:
            extra["trace"] = {**job.trace.to_dict(), "parent_span_id": job.trace_parent}
        manifest = RunManifest.from_run(
            "service",
            f"{job.request['kind']}:{job.id}",
            result=result,
            config={"backend": job.request["backend"], "digest": job.digest,
                    "degraded": job.degraded},
            recorded_events=recorder.events,
            deadline_budget=(
                None if job.deadline is None or math.isinf(job.deadline.budget)
                else job.deadline.budget
            ),
            elapsed=job.latency,
            extra=extra,
        )
        manifest.write(out / "manifest.json")
        write_process_events(
            out / "events.jsonl", recorder.events,
            label=f"service:{job.id}", trace=job.trace,
            parent_span_id=job.trace_parent, wall_t0=job.wall_t0,
        )

    # -- read views --------------------------------------------------------

    def wait(self, job_id: str, timeout: float | None = None) -> Job | None:
        job = self.jobs.get(job_id)
        if job is None:
            return None
        job.done_event.wait(timeout)
        return job

    def job_view(self, job_id: str) -> tuple[int, dict]:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, {"job": job.to_dict()}

    def plan_view(self, job_id: str) -> tuple[int, dict]:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if job.state is JobState.FAILED:
            return 500, {"job": job.to_dict(), "error": job.error}
        if not job.state.finished:
            return 409, {"job": job.to_dict(), "error": "plan not ready; poll the job"}
        return 200, {"job": job.to_dict(), "plan": job.plan}

    def health(self) -> dict:
        return {
            "status": "closed" if self._closed else "ok",
            "uptime_s": time.monotonic() - self._started,
            "workers": len(self._workers),
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_size,
            "jobs": self.jobs.counts(),
            "cache": self.cache.stats(),
        }

    def metrics_snapshot(self) -> dict:
        snap = self.registry.snapshot()
        snap["service_cache"] = {"type": "summary", **self.cache.stats()}
        return jsonable(snap)


class PlanningHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`PlanningService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], service: PlanningService,
                 quiet: bool = True) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: PlanningHTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, fmt, *args):  # pragma: no cover - log noise
        if not self.server.quiet:
            super().log_message(fmt, *args)

    def _send(self, status: int, body: dict, retry_after: float | None = None) -> None:
        data = json.dumps(jsonable(body), allow_nan=False).encode()
        self._send_raw(status, data, "application/json", retry_after=retry_after)

    def _send_raw(self, status: int, data: bytes, content_type: str,
                  retry_after: float | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{retry_after:g}")
        self.end_headers()
        self.wfile.write(data)

    def _reply(self, status: int, body: dict) -> None:
        retry_after = body.get("retry_after") if status in (429, 503) else None
        self._send(status, body, retry_after=retry_after)

    def _read_json(self):
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = 0
        if length <= 0:
            return None, "request body required"
        if length > 16 * 1024 * 1024:
            return None, "request body too large"
        raw = self.rfile.read(length)
        try:
            return json.loads(raw), None
        except json.JSONDecodeError as exc:
            return None, f"invalid JSON body: {exc}"

    # -- routes ------------------------------------------------------------

    def _wants_prometheus(self) -> bool:
        """Content negotiation for ``/metrics``: query beats Accept header."""
        from urllib.parse import parse_qs, urlsplit

        query = parse_qs(urlsplit(self.path).query)
        fmt = (query.get("format") or [""])[0].lower()
        if fmt:
            return fmt in ("prom", "prometheus", "text")
        accept = self.headers.get("Accept", "")
        return "text/plain" in accept.lower()

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/healthz":
            health = service.health()
            self._reply(200 if health["status"] == "ok" else 503, health)
        elif path == "/metrics":
            if self._wants_prometheus():
                text = to_prometheus(service.metrics_snapshot())
                self._send_raw(200, text.encode(),
                               "text/plain; version=0.0.4; charset=utf-8")
            else:
                self._reply(200, service.metrics_snapshot())
        elif path.startswith("/v1/jobs/") and path.endswith("/plan"):
            self._reply(*service.plan_view(path[len("/v1/jobs/"):-len("/plan")]))
        elif path.startswith("/v1/jobs/"):
            self._reply(*service.job_view(path[len("/v1/jobs/"):]))
        else:
            self._reply(404, {"error": f"no such endpoint: GET {path}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/")
        if path not in ("/v1/jobs", "/v1/plan", "/v1/fleet"):
            self._reply(404, {"error": f"no such endpoint: POST {path}"})
            return
        payload, err = self._read_json()
        if err is not None:
            self._reply(400, {"error": err})
            return
        if path == "/v1/fleet" and isinstance(payload, dict):
            payload = {**payload, "kind": "fleet"}
        # Missing or garbled traceparent parses to None — the job simply
        # starts a fresh trace root; propagation is never worth a 4xx/5xx.
        trace = parse_traceparent(self.headers.get(TRACEPARENT_HEADER))
        status, body = service.submit(payload, trace=trace)
        if path == "/v1/jobs" or status != 202:
            self._reply(status, body)
            return
        # Synchronous /v1/plan: wait for the admitted (or coalesced) job.
        wait_s = payload.get("wait_s") if isinstance(payload, dict) else None
        try:
            wait_s = min(float(wait_s), service.config.max_wait_s) if wait_s is not None \
                else service.config.max_wait_s
        except (TypeError, ValueError):
            self._reply(400, {"error": "wait_s must be a number"})
            return
        job = service.wait(body["job"]["id"], timeout=wait_s)
        if job is None or not job.state.finished:
            self._reply(504, {"job": body["job"] if job is None else job.to_dict(),
                              "error": "job not finished within wait_s; poll it"})
            return
        self._reply(*service.plan_view(job.id))


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    config: ServiceConfig | None = None,
    block: bool = True,
) -> tuple[PlanningService, PlanningHTTPServer]:
    """Start a planning service and its HTTP front end.

    ``block=True`` (the CLI) runs ``serve_forever`` on the calling thread
    until interrupted, then shuts down cleanly.  ``block=False`` (tests,
    load generator) returns immediately with the server running on a
    daemon thread; callers stop it with ``httpd.shutdown()`` +
    ``service.close()``.
    """
    service = PlanningService(config).start()
    httpd = PlanningHTTPServer((host, port), service)
    if block:  # pragma: no cover - exercised via the CLI, interactively
        try:
            httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.close()
        return service, httpd
    thread = threading.Thread(target=httpd.serve_forever, name="plan-http", daemon=True)
    thread.start()
    return service, httpd
