"""Content-addressed plan cache with LRU eviction and hit accounting.

Keys are :func:`repro.service.encoding.request_digest` values — a plan is
shared by every submission whose *problem* is identical, regardless of
labels, budgets, or JSON spelling.  Only plans whose status is
``optimal`` are stored: a time-limited incumbent solved under one budget
is not a valid answer for a submission with a larger one, while an
optimum is an optimum forever (instances are immutable by construction —
the digest *is* the instance).

Thread-safe; the server calls it from the HTTP handler threads (lookups)
and the worker pool (inserts) concurrently.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU mapping ``digest -> plan payload``."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 0:
            raise ValueError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, digest: str) -> dict | None:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            return entry

    def put(self, digest: str, plan: dict) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            self._entries[digest] = plan
            self._entries.move_to_end(digest)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }
