"""repro.service — planning-as-a-service on top of the solver stack.

A stdlib-only HTTP server plus client for submitting DRRP/SRRP planning
jobs: bounded job queue, solver worker pool, content-addressed plan
cache with in-flight coalescing, admission control with backpressure
(429/503 + ``Retry-After``), graceful degradation to polynomial
heuristics under overload, and ``/healthz`` / ``/metrics`` endpoints
fed by the :mod:`repro.obs` metrics registry.

Importing this package pulls in nothing beyond the standard library;
the solver stack (numpy/scipy) loads lazily on the first solve.  See
``docs/service.md`` for the API and operational semantics.
"""

from .cache import PlanCache
from .client import (
    ReplanPolicy,
    Saturated,
    ServiceClient,
    ServiceError,
    SubmitResult,
    drrp_payload,
)
from .encoding import (
    BadRequest,
    build_instance,
    normalize_request,
    plan_payload,
    request_digest,
)
from .jobs import Job, JobState, JobStore
from .loadgen import LoadgenConfig, run_loadgen
from .server import PlanningHTTPServer, PlanningService, ServiceConfig, serve

__all__ = [
    "BadRequest",
    "Job",
    "JobState",
    "JobStore",
    "LoadgenConfig",
    "PlanCache",
    "PlanningHTTPServer",
    "PlanningService",
    "ReplanPolicy",
    "Saturated",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "SubmitResult",
    "build_instance",
    "drrp_payload",
    "normalize_request",
    "plan_payload",
    "request_digest",
    "run_loadgen",
    "serve",
]
