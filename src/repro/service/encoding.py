"""Wire encoding for planning jobs: request normalization, digests, plans.

The service speaks JSON.  A submission is a dict with:

``kind``
    ``"drrp"`` (default), ``"srrp"``, or ``"fleet"``.
``instance``
    The explicit problem: ``demand`` (list), ``costs`` (five per-slot
    lists: ``compute``/``storage``/``io``/``transfer_in``/``transfer_out``),
    ``phi``, ``initial_storage``, ``vm_name``, and for SRRP a ``tree``
    (``root_price`` plus per-stage ``{"values": [...], "probs": [...]}``).
    DRRP instances may add ``bottleneck_rate``/``bottleneck_capacity``.
shorthand (top level, instead of ``instance``)
    ``vm`` / ``horizon`` / ``seed`` / ``demand_mean`` / ``demand_std``:
    the server expands these into the same explicit instance the
    ``repro plan`` CLI would build, so a stdlib-only client can submit
    without numpy.
fleet shorthand (``kind: "fleet"``, instead of ``instance``)
    ``tenants`` / ``seed`` / ``horizon`` / ``utilization``: the server
    builds the seeded multi-tenant population and shared pools itself
    (:mod:`repro.fleet`) and returns the fleet-plan summary, so batch
    submissions stay a few integers on the wire.
solve options
    ``backend`` (cache-key material — different backends may return
    different-but-equally-optimal vertices), ``time_limit`` (seconds for
    the *whole* job including queue wait; not cache-key material),
    ``on_overload`` (``"reject"`` -> 429 under saturation, ``"degrade"``
    -> inline Wagner-Whitin / no-plan heuristic).

:func:`normalize_request` maps any accepted submission to one canonical
form; :func:`request_digest` is the content address over that form minus
labels and budgets, so identical problems submitted with different key
order, float widths, shorthand-vs-explicit spelling, or deadlines all
share one cache entry.

Import cost: this module is stdlib-only.  numpy-backed construction
(:func:`build_instance`, shorthand expansion) imports :mod:`repro.core`
lazily — the client never calls it.
"""

from __future__ import annotations

from repro.serialize import result_digest

__all__ = [
    "BadRequest",
    "KINDS",
    "BACKENDS",
    "OVERLOAD_MODES",
    "normalize_request",
    "request_digest",
    "build_instance",
    "plan_payload",
]

KINDS = ("drrp", "srrp", "fleet")
BACKENDS = ("auto", "simplex", "simplex+cuts", "scipy", "bb-scipy")
OVERLOAD_MODES = ("reject", "degrade")

_COST_FIELDS = ("compute", "storage", "io", "transfer_in", "transfer_out")


class BadRequest(ValueError):
    """A submission the service cannot interpret (HTTP 400)."""


def _float_list(obj, name: str, *, length: int | None = None, nonneg: bool = True) -> list[float]:
    if not isinstance(obj, (list, tuple)) or not obj:
        raise BadRequest(f"{name} must be a nonempty list of numbers")
    try:
        out = [float(x) for x in obj]
    except (TypeError, ValueError):
        raise BadRequest(f"{name} must contain only numbers") from None
    if length is not None and len(out) != length:
        raise BadRequest(f"{name} must have length {length}, got {len(out)}")
    if nonneg and any(x < 0 for x in out):
        raise BadRequest(f"{name} must be nonnegative")
    if any(x != x or x in (float("inf"), float("-inf")) for x in out):
        raise BadRequest(f"{name} must be finite")
    return out


def _float(obj, name: str, *, default=None, nonneg: bool = True):
    if obj is None:
        return default
    try:
        value = float(obj)
    except (TypeError, ValueError):
        raise BadRequest(f"{name} must be a number") from None
    if value != value or value in (float("inf"), float("-inf")):
        raise BadRequest(f"{name} must be finite")
    if nonneg and value < 0:
        raise BadRequest(f"{name} must be nonnegative")
    return value


def _expand_shorthand(payload: dict) -> dict:
    """``{"vm", "horizon", "seed", ...}`` -> an explicit instance dict.

    Mirrors what ``repro plan`` builds, so a shorthand submission and the
    equivalent explicit submission digest identically.  Needs numpy.
    """
    from repro.core import NormalDemand, on_demand_schedule
    from repro.market import ec2_catalog

    catalog = ec2_catalog()
    vm_name = payload.get("vm", "m1.large")
    if vm_name not in catalog:
        raise BadRequest(f"unknown VM class {vm_name!r}; choose from {sorted(catalog)}")
    vm = catalog[vm_name]
    horizon = payload.get("horizon", 24)
    if not isinstance(horizon, int) or isinstance(horizon, bool) or not 1 <= horizon <= 8760:
        raise BadRequest("horizon must be an integer in [1, 8760]")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise BadRequest("seed must be an integer")
    mean = _float(payload.get("demand_mean"), "demand_mean", default=0.4)
    std = _float(payload.get("demand_std"), "demand_std", default=0.2)
    demand = NormalDemand(mean=mean, std=std).sample(horizon, seed)
    costs = on_demand_schedule(vm, horizon)
    return {
        "demand": [float(x) for x in demand],
        "costs": {f: [float(x) for x in getattr(costs, f)] for f in _COST_FIELDS},
        "phi": _float(payload.get("phi"), "phi", default=0.5),
        "initial_storage": _float(payload.get("initial_storage"), "initial_storage", default=0.0),
        "vm_name": vm.name,
    }


def _normalize_tree(tree, horizon: int) -> dict:
    if not isinstance(tree, dict):
        raise BadRequest("srrp submissions need a tree: {root_price, stages}")
    root_price = _float(tree.get("root_price"), "tree.root_price")
    if root_price is None:
        raise BadRequest("tree.root_price is required")
    stages_in = tree.get("stages")
    if not isinstance(stages_in, list) or len(stages_in) != horizon - 1:
        raise BadRequest(
            f"tree.stages must list {horizon - 1} stage distributions "
            f"(horizon {horizon} minus the known root)"
        )
    stages = []
    for i, stage in enumerate(stages_in):
        if isinstance(stage, dict):
            values, probs = stage.get("values"), stage.get("probs")
        elif isinstance(stage, (list, tuple)) and len(stage) == 2:
            values, probs = stage
        else:
            raise BadRequest(f"tree.stages[{i}] must be {{values, probs}}")
        values = _float_list(values, f"tree.stages[{i}].values")
        probs = _float_list(probs, f"tree.stages[{i}].probs", length=len(values))
        if abs(sum(probs) - 1.0) > 1e-9:
            raise BadRequest(f"tree.stages[{i}].probs must sum to 1")
        stages.append({"values": values, "probs": probs})
    return {"root_price": root_price, "stages": stages}


def _normalize_instance(payload: dict, kind: str) -> dict:
    explicit = payload.get("instance")
    if explicit is None:
        if kind != "drrp":
            raise BadRequest("shorthand submissions are DRRP-only; srrp needs 'instance'")
        inst = _expand_shorthand(payload)
    else:
        if not isinstance(explicit, dict):
            raise BadRequest("instance must be an object")
        demand = _float_list(explicit.get("demand"), "instance.demand")
        costs_in = explicit.get("costs")
        if not isinstance(costs_in, dict):
            raise BadRequest(f"instance.costs must provide {_COST_FIELDS}")
        costs = {}
        for f in _COST_FIELDS:
            costs[f] = _float_list(costs_in.get(f), f"instance.costs.{f}", length=len(demand))
        inst = {
            "demand": demand,
            "costs": costs,
            "phi": _float(explicit.get("phi"), "instance.phi", default=0.5),
            "initial_storage": _float(
                explicit.get("initial_storage"), "instance.initial_storage", default=0.0
            ),
            "vm_name": str(explicit.get("vm_name", "vm")),
        }
        if kind == "drrp":
            rate = _float(explicit.get("bottleneck_rate"), "instance.bottleneck_rate")
            cap = explicit.get("bottleneck_capacity")
            if (rate is None) != (cap is None):
                raise BadRequest("bottleneck rate and capacity must be given together")
            if rate is not None:
                inst["bottleneck_rate"] = rate
                inst["bottleneck_capacity"] = _float_list(
                    cap, "instance.bottleneck_capacity", length=len(demand)
                )
    if kind == "srrp":
        inst["tree"] = _normalize_tree(
            (explicit or {}).get("tree"), horizon=len(inst["demand"])
        )
        tree_width = 1
        for stage in inst["tree"]["stages"]:
            tree_width *= len(stage["values"])
            if tree_width > 100_000:
                raise BadRequest("scenario tree too large (> 1e5 leaves)")
    return inst


def _int(obj, name: str, *, default: int, lo: int, hi: int) -> int:
    if obj is None:
        return default
    if not isinstance(obj, int) or isinstance(obj, bool) or not lo <= obj <= hi:
        raise BadRequest(f"{name} must be an integer in [{lo}, {hi}]")
    return obj


def _normalize_fleet(payload: dict) -> dict:
    """Fleet shorthand -> canonical spec (see module docstring).

    The population is seeded server-side, so the spec *is* the problem:
    two fleet submissions with the same spec digest identically.
    """
    utilization = _float(payload.get("utilization"), "utilization", default=0.6)
    if not 0.0 < utilization <= 1.0:
        raise BadRequest(f"utilization must be in (0, 1], got {utilization}")
    seed = payload.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise BadRequest("seed must be an integer")
    return {
        "tenants": _int(payload.get("tenants"), "tenants", default=16, lo=1, hi=10_000),
        "seed": seed,
        "horizon": _int(payload.get("horizon"), "horizon", default=24, lo=2, hi=8760),
        "utilization": utilization,
    }


def normalize_request(payload) -> dict:
    """Validate and canonicalize one submission (see module docstring).

    Returns ``{"kind", "instance", "backend", "time_limit", "on_overload"}``
    with the instance fully explicit.  Raises :class:`BadRequest` with a
    client-facing message on anything malformed.
    """
    if not isinstance(payload, dict):
        raise BadRequest("submission must be a JSON object")
    kind = payload.get("kind", "drrp")
    if kind not in KINDS:
        raise BadRequest(f"kind must be one of {KINDS}, got {kind!r}")
    backend = payload.get("backend", "auto")
    if backend not in BACKENDS:
        raise BadRequest(f"backend must be one of {BACKENDS}, got {backend!r}")
    on_overload = payload.get("on_overload", "reject")
    if on_overload not in OVERLOAD_MODES:
        raise BadRequest(f"on_overload must be one of {OVERLOAD_MODES}")
    time_limit = _float(payload.get("time_limit"), "time_limit")
    request = {
        "kind": kind,
        "backend": backend,
        "time_limit": time_limit,
        "on_overload": on_overload,
    }
    if kind == "fleet":
        request["fleet"] = _normalize_fleet(payload)
    else:
        request["instance"] = _normalize_instance(payload, kind)
    return request


def request_digest(request: dict) -> str:
    """Content address of a normalized request (the plan-cache key).

    Covers the problem (instance minus its ``vm_name`` label, or the
    seeded fleet spec) and the backend; excludes budgets and overload
    policy — a cached OPTIMAL plan is valid whatever deadline the
    submission carried.
    """
    if request["kind"] == "fleet":
        return result_digest(
            {"kind": "fleet", "backend": request["backend"], "fleet": request["fleet"]}
        )
    instance = {k: v for k, v in request["instance"].items() if k != "vm_name"}
    return result_digest(
        {"kind": request["kind"], "backend": request["backend"], "instance": instance}
    )


def build_instance(request: dict):
    """Normalized request -> DRRPInstance / SRRPInstance (imports numpy)."""
    import numpy as np

    from repro.core import CostSchedule, DRRPInstance, SRRPInstance, build_tree

    inst = request["instance"]
    costs = CostSchedule(**{f: np.asarray(inst["costs"][f]) for f in _COST_FIELDS})
    if request["kind"] == "drrp":
        kwargs = {}
        if "bottleneck_rate" in inst:
            kwargs = {
                "bottleneck_rate": inst["bottleneck_rate"],
                "bottleneck_capacity": np.asarray(inst["bottleneck_capacity"]),
            }
        return DRRPInstance(
            demand=np.asarray(inst["demand"]),
            costs=costs,
            phi=inst["phi"],
            initial_storage=inst["initial_storage"],
            vm_name=inst["vm_name"],
            **kwargs,
        )
    tree = build_tree(
        inst["tree"]["root_price"],
        [
            (np.asarray(s["values"]), np.asarray(s["probs"]))
            for s in inst["tree"]["stages"]
        ],
    )
    return SRRPInstance(
        demand=np.asarray(inst["demand"]),
        costs=costs,
        tree=tree,
        phi=inst["phi"],
        initial_storage=inst["initial_storage"],
        vm_name=inst["vm_name"],
    )


def plan_payload(kind: str, plan) -> dict:
    """A solved RentalPlan / SRRPPlan as a JSON-safe response body."""
    body = {
        "kind": kind,
        "status": plan.status.value,
        "vm_name": plan.vm_name,
        "alpha": [float(x) for x in plan.alpha],
        "beta": [float(x) for x in plan.beta],
        "chi": [int(round(float(x))) for x in plan.chi],
    }
    if kind == "drrp":
        body["total_cost"] = float(plan.total_cost)
        body["costs"] = {
            "compute": float(plan.compute_cost),
            "inventory": float(plan.inventory_cost),
            "transfer_in": float(plan.transfer_in_cost),
            "transfer_out": float(plan.transfer_out_cost),
        }
    else:
        body["expected_cost"] = float(plan.expected_cost)
        body["first_alpha"] = float(plan.first_alpha)
        body["first_chi"] = bool(plan.first_chi)
    extra = getattr(plan, "extra", None) or {}
    for key in ("nodes", "iterations", "wall_time", "fallback"):
        if extra.get(key) is not None:
            body.setdefault("solve", {})[key] = extra[key]
    return body
