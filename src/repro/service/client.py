"""Python client for the planning service (stdlib-only: ``urllib``).

:class:`ServiceClient` wraps the JSON API: submit, poll, wait, fetch,
plus health and metrics.  Saturation (429/503) surfaces as
:class:`Saturated` carrying the server's ``Retry-After`` hint, so
callers implement backoff explicitly instead of silently spinning.

:class:`ReplanPolicy` is the rolling-horizon session the paper's §V-D
practice maps onto: each slot it submits the *suffix* instance (demand
still ahead, current inventory, current price view) and executes the
returned plan's first-slot decision.  Because submissions are
content-addressed, a re-plan tick whose inputs did not change — same
remaining demand, same prices, inventory exactly as planned — is a plan
cache hit on the server: the session costs one solve per *distinct*
state, not one per tick.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from repro.obs.propagate import TRACEPARENT_HEADER, TraceContext, current_trace

__all__ = [
    "ServiceClient",
    "ServiceError",
    "Saturated",
    "SubmitResult",
    "ReplanPolicy",
    "drrp_payload",
]


class ServiceError(Exception):
    """Non-2xx response from the service."""

    def __init__(self, status: int, body: dict | None = None, message: str | None = None):
        self.status = status
        self.body = body or {}
        super().__init__(message or f"HTTP {status}: {self.body.get('error', 'error')}")


class Saturated(ServiceError):
    """The server applied backpressure (429/503); back off and retry."""

    def __init__(self, status: int, body: dict | None = None, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(status, body)


@dataclass
class SubmitResult:
    """Outcome of one submission (plus the plan, when already available)."""

    job_id: str
    state: str
    cached: bool = False
    coalesced: bool = False
    degraded: str | None = None
    plan: dict | None = None
    latency_s: float | None = None

    @property
    def hit(self) -> bool:
        """True when no new solve was admitted for this submission."""
        return self.cached or self.coalesced

    @classmethod
    def from_body(cls, body: dict, coalesced: bool = False) -> "SubmitResult":
        job = body.get("job", {})
        plan = body.get("plan")
        return cls(
            job_id=job.get("id", ""),
            state=job.get("state", ""),
            cached=bool(job.get("cached")),
            coalesced=coalesced or job.get("coalesced", 0) > 0,
            degraded=job.get("degraded") or (plan or {}).get("degraded"),
            plan=plan,
            latency_s=job.get("latency_s"),
        )


class ServiceClient:
    """Minimal JSON/HTTP client for one planning server."""

    def __init__(self, base_url: str, timeout: float = 60.0,
                 trace: TraceContext | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        #: Explicit trace context for outgoing requests; when unset, the
        #: thread's ambient context (``current_trace()``) is used instead.
        self.trace = trace

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> tuple[int, dict, dict]:
        data = None if body is None else json.dumps(body).encode()
        headers = {"Content-Type": "application/json"} if data else {}
        ctx = self.trace if self.trace is not None else current_trace()
        if ctx is not None:
            headers[TRACEPARENT_HEADER] = ctx.to_traceparent()
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers,
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, json.loads(resp.read() or b"{}"), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                payload = {}
            return exc.code, payload, dict(exc.headers or {})

    def _checked(self, method: str, path: str, body: dict | None = None,
                 ok: tuple[int, ...] = (200, 202)) -> tuple[int, dict]:
        status, payload, headers = self._request(method, path, body)
        if status in (429, 503):
            try:
                retry_after = float(headers.get("Retry-After",
                                                payload.get("retry_after", 1.0)))
            except (TypeError, ValueError):
                retry_after = 1.0
            raise Saturated(status, payload, retry_after=retry_after)
        if status not in ok:
            raise ServiceError(status, payload)
        return status, payload

    # -- API ---------------------------------------------------------------

    def healthz(self) -> dict:
        return self._checked("GET", "/healthz")[1]

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")[1]

    def submit(self, payload: dict) -> SubmitResult:
        """Asynchronous submit (``POST /v1/jobs``); never waits on a solve."""
        status, body = self._checked("POST", "/v1/jobs", payload)
        return SubmitResult.from_body(body, coalesced=status == 202 and
                                      body.get("job", {}).get("coalesced", 0) > 0)

    def status(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/jobs/{job_id}")[1]["job"]

    def plan(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/jobs/{job_id}/plan")[1]["plan"]

    def wait(self, job_id: str, timeout: float = 60.0, poll_s: float = 0.02) -> dict:
        """Poll a job to completion; returns the final job view."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.status(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']} after {timeout}s")
            time.sleep(poll_s)

    def solve(self, payload: dict, wait_s: float | None = None) -> SubmitResult:
        """Submit and wait (``POST /v1/plan``): returns the finished plan.

        Falls back to polling if the server's synchronous wait window
        elapses first (504).
        """
        body = dict(payload)
        if wait_s is not None:
            body["wait_s"] = wait_s
        status, resp, headers = self._request("POST", "/v1/plan", body)
        if status in (429, 503):
            try:
                retry_after = float(headers.get("Retry-After", resp.get("retry_after", 1.0)))
            except (TypeError, ValueError):
                retry_after = 1.0
            raise Saturated(status, resp, retry_after=retry_after)
        if status == 504:
            job_id = resp.get("job", {}).get("id", "")
            job = self.wait(job_id, timeout=wait_s or self.timeout)
            if job["state"] == "failed":
                raise ServiceError(500, {"error": job.get("error")})
            return SubmitResult.from_body({"job": job, "plan": self.plan(job_id)})
        if status != 200:
            raise ServiceError(status, resp)
        return SubmitResult.from_body(resp)


#: Default non-compute cost rates, mirroring ``repro.market.CostRates``
#: (storage $/GB-month over Amazon's 730 h billing month).
DEFAULT_RATES = {
    "storage": 0.10 / 730.0,
    "io": 0.20,
    "transfer_in": 0.10,
    "transfer_out": 0.17,
}


def drrp_payload(
    demand,
    compute_prices,
    *,
    phi: float = 0.5,
    initial_storage: float = 0.0,
    vm_name: str = "vm",
    backend: str = "auto",
    rates: dict | None = None,
    costs: dict | None = None,
    time_limit: float | None = None,
    on_overload: str | None = None,
) -> dict:
    """Build one explicit DRRP submission payload.

    The canonical spelling of the wire format every client-side planner
    shares: ``demand`` and ``compute_prices`` are per-slot floats; the
    four non-compute cost series come either from flat ``rates``
    (:data:`DEFAULT_RATES` when omitted) broadcast over the window, or —
    for aggregated multi-resolution windows whose holding rates vary per
    block — as explicit per-slot lists via ``costs``
    (``{"storage": [...], "io": [...], "transfer_in": [...],
    "transfer_out": [...]}``, each entry optional).
    """
    demand = [float(x) for x in demand]
    compute = [float(x) for x in compute_prices]
    if len(compute) != len(demand):
        raise ValueError("need a compute price for every demand slot")
    flat = dict(DEFAULT_RATES if rates is None else rates)
    explicit = costs or {}
    series: dict = {"compute": compute}
    for key in ("storage", "io", "transfer_in", "transfer_out"):
        if key in explicit:
            column = [float(x) for x in explicit[key]]
            if len(column) != len(demand):
                raise ValueError(f"costs[{key!r}] must have one entry per slot")
        else:
            column = [float(flat[key])] * len(demand)
        series[key] = column
    payload = {
        "kind": "drrp",
        "backend": backend,
        "instance": {
            "demand": demand,
            "costs": series,
            "phi": float(phi),
            "initial_storage": float(initial_storage),
            "vm_name": vm_name,
        },
    }
    if time_limit is not None:
        payload["time_limit"] = float(time_limit)
    if on_overload is not None:
        payload["on_overload"] = on_overload
    return payload


@dataclass
class ReplanPolicy:
    """Rolling-horizon replanning session over the service (see module doc).

    Pure stdlib: demand and compute prices are plain float lists for the
    whole evaluation window; each slot's submission is the explicit
    suffix instance over ``lookahead`` slots.  Deterministic by
    construction — inventory follows the *returned plan* (``beta[0]``),
    so two sessions replaying the same window submit byte-identical
    instances and the second one runs entirely out of the plan cache.
    """

    client: ServiceClient
    demand: list[float]
    compute_prices: list[float]
    lookahead: int = 6
    phi: float = 0.5
    initial_storage: float = 0.0
    vm_name: str = "vm"
    backend: str = "auto"
    rates: dict = field(default_factory=lambda: dict(DEFAULT_RATES))
    time_limit: float | None = None

    def __post_init__(self) -> None:
        if len(self.compute_prices) < len(self.demand):
            raise ValueError("need a compute price for every slot")
        if self.lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        self.t = 0
        self.inventory = float(self.initial_storage)
        self.results: list[SubmitResult] = []

    @property
    def horizon(self) -> int:
        return len(self.demand)

    @property
    def done(self) -> bool:
        return self.t >= self.horizon

    def payload_for_slot(self) -> dict:
        """The suffix instance submission for the current slot."""
        stop = min(self.t + self.lookahead, self.horizon)
        window = range(self.t, stop)
        return drrp_payload(
            [self.demand[i] for i in window],
            [self.compute_prices[i] for i in window],
            phi=self.phi,
            initial_storage=self.inventory,
            vm_name=self.vm_name,
            backend=self.backend,
            rates=self.rates,
            time_limit=self.time_limit,
        )

    def plan_slot(self, wait_s: float | None = None) -> SubmitResult:
        """Submit the current suffix instance and return the solved plan.

        Idempotent per state: calling again before :meth:`advance` (a
        re-plan tick with nothing changed) is a cache hit on the server.
        """
        if self.done:
            raise RuntimeError("session already past the final slot")
        result = self.client.solve(self.payload_for_slot(), wait_s=wait_s)
        if result.plan is None:
            raise ServiceError(500, {"error": "no plan in response"})
        return result

    def advance(self, result: SubmitResult) -> None:
        """Execute the first-slot decision of ``result`` and move one slot."""
        self.results.append(result)
        # beta[0] is the plan's own end-of-slot inventory: carrying it
        # forward exactly (not re-deriving it) keeps successive suffix
        # instances reproducible across sessions, hence cacheable.
        self.inventory = float(result.plan["beta"][0])
        self.t += 1

    def run(self, wait_s: float | None = None) -> list[SubmitResult]:
        """Plan and advance through every remaining slot."""
        while not self.done:
            self.advance(self.plan_slot(wait_s=wait_s))
        return self.results

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.hit)
