"""Job records and the in-memory job store.

A :class:`Job` is one admitted planning request: its canonical request,
content digest, lifecycle state, timing, and (once finished) the plan
payload or error.  Jobs are shared objects — in-flight coalescing hands
the *same* job to every identical concurrent submission — so state
transitions happen under the store lock and completion is signalled
through a per-job :class:`threading.Event` that any number of waiters
may block on.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only: keeps this module stdlib-importable
    from repro.obs.propagate import TraceContext
    from repro.solver.telemetry import Deadline

__all__ = ["JobState", "Job", "JobStore"]


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    @property
    def finished(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED)


@dataclass
class Job:
    """One admitted planning request (see module docstring)."""

    id: str
    digest: str
    request: dict
    state: JobState = JobState.QUEUED
    deadline: Deadline | None = None
    submitted: float = field(default_factory=time.monotonic)
    started: float | None = None
    finished: float | None = None
    cached: bool = False          # answered from the plan cache at submit
    degraded: str | None = None   # heuristic used instead of the solver
    coalesced: int = 0            # extra identical submissions sharing this job
    plan: dict | None = None
    error: str | None = None
    trace: TraceContext | None = None   # this job's own span context
    trace_parent: str | None = None     # caller's span id (from traceparent)
    wall_t0: float | None = None        # time.time() when the solve started
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def finish(self, plan: dict | None = None, error: str | None = None) -> None:
        self.finished = time.monotonic()
        if error is None:
            self.plan = plan
            self.state = JobState.DONE
        else:
            self.error = error
            self.state = JobState.FAILED
        self.done_event.set()

    @property
    def latency(self) -> float | None:
        """Submit-to-finish wall seconds (queue wait included)."""
        return None if self.finished is None else self.finished - self.submitted

    def to_dict(self) -> dict:
        """Client-facing view (no plan body — fetch that separately)."""
        view = {
            "id": self.id,
            "state": self.state.value,
            "kind": self.request.get("kind"),
            "digest": self.digest,
            "cached": self.cached,
            "coalesced": self.coalesced,
        }
        if self.trace is not None:
            view["trace_id"] = self.trace.trace_id
        if self.degraded is not None:
            view["degraded"] = self.degraded
        if self.latency is not None:
            view["latency_s"] = self.latency
        if self.error is not None:
            view["error"] = self.error
        if self.plan is not None:
            view["plan_status"] = self.plan.get("status")
        return view


class JobStore:
    """Thread-safe id -> job map with bounded retention of finished jobs.

    Unfinished jobs are never evicted (something still references them);
    finished ones age out FIFO beyond ``retain`` so a long-lived server
    does not grow without bound.
    """

    def __init__(self, retain: int = 4096) -> None:
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.retain = retain
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._lock = threading.Lock()
        self._counter = 0

    def create(self, digest: str, request: dict, **kwargs) -> Job:
        with self._lock:
            self._counter += 1
            job = Job(
                id=f"j{self._counter:06d}-{digest[7:15]}",
                digest=digest,
                request=request,
                **kwargs,
            )
            self._jobs[job.id] = job
            self._evict_locked()
            return job

    def _evict_locked(self) -> None:
        excess = len(self._jobs) - self.retain
        if excess <= 0:
            return
        for job_id in [jid for jid, j in self._jobs.items() if j.state.finished][:excess]:
            del self._jobs[job_id]

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def counts(self) -> dict:
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                counts[job.state.value] += 1
            return counts
