"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main workflows:

``plan``
    Solve DRRP for a class/horizon and print the rental schedule.
``run``
    Observed run of a DRRP solve (``run drrp``) or a paper experiment
    (``run fig10``): writes a Chrome trace (``--trace``), a provenance
    ``manifest.json`` + JSONL event log (``--out-dir``), and prints the
    span tree / metrics report (see :mod:`repro.obs`).
``analyze``
    Run the spot-price predictability summary for one class.
``simulate``
    Rolling-horizon bake-off (oracle, on-demand, det/sto policies).
``report``
    Regenerate paper figures (all, or a listed subset) — or, given paths
    to a trace / manifest / event log written by ``run``/``fuzz``, render
    the recorded span tree, metrics, and provenance instead.
``export-dataset``
    Write the bundled reference dataset as CSVs for external tools.
``fuzz``
    Differential-fuzz the solver stack against exact certificates and
    independent oracles (see :mod:`repro.verify`); CI runs the seeded
    ``--smoke`` configuration on every push and a longer budget nightly.
    ``--workers N`` shards the campaign over processes; ``--trace`` /
    ``--manifest`` record the campaign like ``run`` does.
``serve``
    Run the planning service (:mod:`repro.service`): an HTTP server with
    a bounded job queue, solver worker pool, and content-addressed plan
    cache (see ``docs/service.md``).
``submit``
    Submit one planning job to a running ``serve`` instance and print
    the plan.  Stdlib-only client path — works without numpy installed.
``bench-service``
    Deterministic load-generator benchmark against an in-process server;
    writes ``BENCH_service.json`` and exits nonzero if any request was
    dropped or the cache hit rate fell below the duplicate share.
``bench-solver``
    Solver hot-path benchmark (:mod:`repro.bench.solver`): warm vs cold
    branch-and-bound node throughput, DRRP solve times, serial vs
    parallel Benders; writes ``BENCH_solver.json``.  With
    ``--check-against BASELINE`` it exits nonzero when the
    cold-normalized throughput ratio regresses more than 25% against the
    committed baseline (the CI gate).
``plan-fleet``
    Plan a seeded multi-tenant fleet against shared capacity pools
    (:mod:`repro.fleet`): heuristic tier, gap-triggered MILP escalation,
    pool-overload repair; prints per-pool usage and the method mix.
``bench-fleet``
    Fleet planning benchmark (:mod:`repro.bench.fleet`): tenants/minute,
    heuristic-vs-MILP cost ratio on the escalation-eligible cohort,
    compile shape-cache hit rate; writes ``BENCH_fleet.json``.  With
    ``--check-against BASELINE`` it exits nonzero on infeasibility or
    quality/cache-reuse drift (the CI gate).
``trace``
    Merge per-process JSONL event files (``simulate --trace-dir``, the
    service's per-job captures, ``run --out-dir``) into one Chrome trace
    with real pid lanes and cross-process flow arrows
    (:mod:`repro.obs.propagate`).
``profile``
    Deterministic phase profiler (:mod:`repro.obs.prof`): attribute wall
    time to simplex phases, B&B node lifecycle, Benders
    master/subproblem/IPC, and service queue wait; ``--speedscope``
    exports a speedscope-JSON flamechart.  ``profile bench-solver``
    additionally fails (exit 1) when less than 95% of the bench wall
    time is attributed.
``bench-report``
    Print the headline-metric table of every committed ``BENCH_*.json``
    next to fresh records from ``REPRO_BENCH_DIR``/``bench-out/``.

Exit codes, uniformly: ``0`` success (``plan``/``submit``: the plan is
OPTIMAL; ``fuzz``: campaign completed clean), ``1`` failure (no plan,
fuzz disagreements, service errors), ``2`` usage errors, ``3`` a usable
but non-optimal result (``plan``/``submit``: FEASIBLE/TIME_LIMIT
incumbent or degraded plan; ``fuzz``: the campaign was cut short by its
deadline).
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource rental planning for elastic cloud applications (IPDPS'12 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="solve DRRP for one VM class")
    p_plan.add_argument("--vm", default="m1.large", help="VM class (default m1.large)")
    p_plan.add_argument("--horizon", type=int, default=24, help="slots to plan (default 24)")
    p_plan.add_argument("--seed", type=int, default=0, help="demand seed")
    p_plan.add_argument("--demand-mean", type=float, default=0.4, help="GB/h demand mean")
    p_plan.add_argument("--demand-std", type=float, default=0.2, help="GB/h demand std")
    p_plan.add_argument(
        "--backend", default="auto",
        help="solver backend: auto | simplex | simplex+cuts | scipy | bb-scipy",
    )
    p_plan.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole solve (best incumbent on expiry)",
    )
    p_plan.add_argument(
        "--telemetry", choices=("summary", "json"), default=None,
        help="record solve events: 'summary' prints one line, 'json' dumps the stream",
    )
    p_plan.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-event file of the solve (open in ui.perfetto.dev)",
    )
    p_plan.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="write a run manifest (seed/config/backend chain/result digest) as JSON",
    )

    p_run = sub.add_parser(
        "run", help="observed run: DRRP solve or experiment with trace/manifest output"
    )
    p_run.add_argument(
        "target",
        help="'drrp' for a single observed DRRP solve, or an experiment id (fig10, ...)",
    )
    p_run.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-event file (open in ui.perfetto.dev)",
    )
    p_run.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="write manifest.json + events.jsonl (+ default trace) here",
    )
    p_run.add_argument("--seed", type=int, default=None, help="override the run's seed")
    p_run.add_argument("--vm", default="m1.large", help="VM class for 'drrp' (default m1.large)")
    p_run.add_argument(
        "--horizon", type=int, default=None,
        help="planning horizon in slots (drrp default 24; experiments keep their own default)",
    )
    p_run.add_argument(
        "--backend", default=None,
        help="solver backend: auto | simplex | simplex+cuts | scipy | bb-scipy",
    )
    p_run.add_argument(
        "--trials", type=int, default=None,
        help="n_trials override for experiment runners that accept it",
    )
    p_run.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the 'drrp' solve",
    )

    p_an = sub.add_parser("analyze", help="spot-price predictability summary")
    p_an.add_argument("--vm", default="c1.medium")

    p_sim = sub.add_parser(
        "simulate",
        help="rolling-horizon policy bake-off, or a closed-loop campaign (--campaign)",
    )
    p_sim.add_argument("--vm", default="c1.medium")
    p_sim.add_argument("--hours", type=int, default=24, help="evaluation window (h)")
    p_sim.add_argument("--lookahead", type=int, default=6)
    p_sim.add_argument("--seed", type=int, default=2012)
    p_sim.add_argument(
        "--campaign", action="store_true",
        help="closed-loop campaign mode (repro.sim): replan every control "
             "interval over a multi-resolution window; other flags below "
             "apply only in this mode",
    )
    p_sim.add_argument("--slots", type=int, default=720,
                       help="campaign evaluation slots (default 720)")
    p_sim.add_argument("--estimation-slots", type=int, default=1440,
                       help="price history ahead of the campaign (default 1440)")
    p_sim.add_argument("--prediction", type=int, default=48,
                       help="replan lookahead in slots (default 48)")
    p_sim.add_argument("--control", type=int, default=24,
                       help="slots executed per replan (default 24)")
    p_sim.add_argument("--fine", type=int, default=None,
                       help="single-slot-resolution prefix (default: control)")
    p_sim.add_argument("--coarse-block", type=int, default=4,
                       help="slots per far-term aggregate block (default 4)")
    p_sim.add_argument("--backend", default="auto",
                       help="solver backend for campaign replans (default auto)")
    p_sim.add_argument("--interruption-loss", type=float, default=0.0,
                       help="work lost per out-of-bid event, fraction of the slot")
    p_sim.add_argument(
        "--policies", default="oracle,no-plan,rolling-drrp",
        help="comma-separated campaign roster (oracle, no-plan, on-demand, "
             "rolling-drrp, rolling-drrp-service, bid-fixed, bid-od-index, "
             "bid-percentile, bid-rebid)",
    )
    p_sim.add_argument(
        "--bid-policy", default=None, metavar="KIND",
        choices=("fixed", "od-index", "percentile", "rebid"),
        help="add a bid-reactive planner (repro.market.policy) to the roster: "
             "fixed, od-index, percentile, or rebid",
    )
    p_sim.add_argument(
        "--bid", type=float, default=None, metavar="VALUE",
        help="parameter for the bid policies: the bid in $/h (fixed), the "
             "on-demand fraction (od-index), or the availability target "
             "(percentile, rebid)",
    )
    p_sim.add_argument("--service", default=None, metavar="URL",
                       help="route rolling-drrp-service replans to this server")
    p_sim.add_argument(
        "--with-service", action="store_true",
        help="start an in-process planning server for the campaign and add "
             "rolling-drrp-service to the roster",
    )
    p_sim.add_argument("--manifest", default=None, metavar="FILE",
                       help="write the campaign RunManifest as JSON")
    p_sim.add_argument("--json", default=None, metavar="FILE", dest="out_json",
                       help="write the full campaign record (costs, ratios) as JSON")
    p_sim.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="campaign mode: record per-process event files under DIR "
             "(campaign + per-job service captures), merge them into "
             "DIR/merged.trace.json, and save a Prometheus /metrics scrape",
    )

    p_rep = sub.add_parser(
        "report", help="regenerate paper figures, or render a recorded trace/manifest file"
    )
    p_rep.add_argument(
        "experiments", nargs="*",
        help="experiment ids (default: all) — or paths to .trace.json / manifest.json / "
             "events.jsonl files written by 'run' or 'fuzz'",
    )

    p_exp = sub.add_parser("export-dataset", help="write reference traces as CSV")
    p_exp.add_argument("directory", help="output directory")

    p_fuzz = sub.add_parser("fuzz", help="differential-fuzz the solver stack")
    p_fuzz.add_argument("--seed", type=int, default=0, help="generator seed (default 0)")
    p_fuzz.add_argument(
        "--cases", type=int, default=None, metavar="N",
        help="maximum generated instances (default: smoke preset)",
    )
    p_fuzz.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole campaign",
    )
    p_fuzz.add_argument(
        "--smoke", action="store_true",
        help="CI smoke preset: the standard case count under a 60 s budget",
    )
    p_fuzz.add_argument(
        "--families", default=None,
        help="comma-separated generator families (default: all)",
    )
    p_fuzz.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="persist shrunk reproducers for any disagreement here",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="keep disagreement witnesses at generated size",
    )
    p_fuzz.add_argument(
        "--telemetry", choices=("summary", "json"), default=None,
        help="record fuzz/solve events: 'summary' prints one line, 'json' dumps the stream",
    )
    p_fuzz.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the campaign over N processes (events merge into one stream)",
    )
    p_fuzz.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-event file of the campaign",
    )
    p_fuzz.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="write a run manifest (seed/config/result digest) as JSON",
    )

    p_srv = sub.add_parser("serve", help="run the planning service (HTTP)")
    p_srv.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8080, help="port (default 8080; 0 = ephemeral)")
    p_srv.add_argument("--workers", type=int, default=2, help="solver worker threads (default 2)")
    p_srv.add_argument("--queue-size", type=int, default=64,
                       help="bounded job queue capacity (default 64)")
    p_srv.add_argument("--cache-size", type=int, default=512,
                       help="plan cache entries (default 512; 0 disables)")
    p_srv.add_argument(
        "--time-limit", type=float, default=60.0, metavar="SECONDS",
        help="default per-job budget, queue wait included (default 60; 0 = unbounded)",
    )
    p_srv.add_argument(
        "--capture-dir", default=None, metavar="DIR",
        help="write per-job manifest.json + events.jsonl under DIR/<job id>/",
    )

    p_sub = sub.add_parser("submit", help="submit one job to a running planning service")
    p_sub.add_argument("--url", default="http://127.0.0.1:8080", help="service base URL")
    p_sub.add_argument("--vm", default="m1.large", help="VM class (default m1.large)")
    p_sub.add_argument("--horizon", type=int, default=24, help="slots to plan (default 24)")
    p_sub.add_argument("--seed", type=int, default=0, help="demand seed")
    p_sub.add_argument("--demand-mean", type=float, default=0.4, help="GB/h demand mean")
    p_sub.add_argument("--demand-std", type=float, default=0.2, help="GB/h demand std")
    p_sub.add_argument("--backend", default="auto",
                       help="solver backend: auto | simplex | simplex+cuts | scipy | bb-scipy")
    p_sub.add_argument("--time-limit", type=float, default=None, metavar="SECONDS",
                       help="per-job budget (server default when unset)")
    p_sub.add_argument("--wait-s", type=float, default=60.0,
                       help="synchronous wait before falling back to polling (default 60)")
    p_sub.add_argument("--no-wait", action="store_true",
                       help="submit asynchronously and print the job id only")
    p_sub.add_argument("--json", action="store_true", dest="as_json",
                       help="print the raw plan payload as JSON")

    p_bench = sub.add_parser(
        "bench-service", help="deterministic load-generator benchmark for the service"
    )
    p_bench.add_argument("--requests", type=int, default=200,
                         help="total submissions (default 200)")
    p_bench.add_argument("--duplicate-share", type=float, default=0.3,
                         help="fraction of submissions repeating an earlier instance (default 0.3)")
    p_bench.add_argument("--seed", type=int, default=0, help="workload seed")
    p_bench.add_argument("--workers", type=int, default=2, help="server worker threads")
    p_bench.add_argument("--client-threads", type=int, default=8,
                         help="concurrent client threads (default 8)")
    p_bench.add_argument("--out", default="BENCH_service.json", metavar="FILE",
                         help="benchmark record filename (REPRO_BENCH_DIR honored)")

    p_bsol = sub.add_parser(
        "bench-solver", help="solver hot-path benchmark (warm starts, parallel Benders)"
    )
    p_bsol.add_argument("--seed", type=int, default=0, help="instance seed (default 0)")
    p_bsol.add_argument("--bb-instances", type=int, default=None,
                        help="random MILPs in the branch-and-bound leg (default 3)")
    p_bsol.add_argument("--bb-vars", type=int, default=None,
                        help="variables per random MILP (default 24)")
    p_bsol.add_argument("--bb-rows", type=int, default=None,
                        help="inequality rows per random MILP (default 20)")
    p_bsol.add_argument("--node-limit", type=int, default=None,
                        help="B&B node cap per instance (default 2000)")
    p_bsol.add_argument("--drrp-horizon", type=int, default=None,
                        help="DRRP leg horizon in slots (default 24)")
    p_bsol.add_argument("--scenarios", type=int, default=None,
                        help="Benders scenarios, minimum 8 (default 12)")
    p_bsol.add_argument("--large-horizon", type=int, default=None,
                        help="large-tier DRRP periods (default 48)")
    p_bsol.add_argument("--large-classes", type=int, default=None,
                        help="large-tier instance classes per period (default 8)")
    p_bsol.add_argument("--large-resolves", type=int, default=None,
                        help="large-tier warm re-solves per engine (default 60)")
    p_bsol.add_argument("--workers", type=int, default=None,
                        help="Benders fan-out width (default: auto)")
    p_bsol.add_argument("--out", default="BENCH_solver.json", metavar="FILE",
                        help="benchmark record filename (REPRO_BENCH_DIR honored)")
    p_bsol.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="compare against a committed BENCH_solver.json; "
                             "exit 1 on >25%% throughput-ratio regression")

    p_pf = sub.add_parser(
        "plan-fleet",
        help="plan a seeded multi-tenant fleet against shared capacity pools",
    )
    p_pf.add_argument("--tenants", type=int, default=16,
                      help="fleet size (default 16)")
    p_pf.add_argument("--seed", type=int, default=0, help="population seed")
    p_pf.add_argument("--horizon", type=int, default=24,
                      help="slots to plan (default 24)")
    p_pf.add_argument("--utilization", type=float, default=0.6,
                      help="pool capacity as a fraction of members (default 0.6)")
    p_pf.add_argument("--backend", default="auto",
                      help="MILP backend for escalated tenants (default auto)")
    p_pf.add_argument("--workers", type=int, default=None,
                      help="per-tenant fan-out width (default: auto)")
    p_pf.add_argument("--no-escalate", action="store_true",
                      help="heuristic tier only; skip gap-triggered MILP escalation")
    p_pf.add_argument("--json", action="store_true", dest="as_json",
                      help="print the full fleet summary as JSON")

    p_bfl = sub.add_parser(
        "bench-fleet",
        help="fleet planning benchmark (tenant throughput, heuristic quality, "
             "compile-cache reuse)",
    )
    p_bfl.add_argument("--seed", type=int, default=0, help="population seed (default 0)")
    p_bfl.add_argument("--tenants", type=int, default=None,
                       help="fleet size (default 1000)")
    p_bfl.add_argument("--horizon", type=int, default=None,
                       help="planning horizon in slots (default 24)")
    p_bfl.add_argument("--utilization", type=float, default=None,
                       help="pool capacity fraction (default 0.6)")
    p_bfl.add_argument("--milp-sample", type=int, default=None,
                       help="escalation-eligible tenants in the heuristic-vs-MILP "
                            "cohort (default 64)")
    p_bfl.add_argument("--workers", type=int, default=None,
                       help="per-tenant fan-out width (default: auto)")
    p_bfl.add_argument("--out", default="BENCH_fleet.json", metavar="FILE",
                       help="benchmark record filename (REPRO_BENCH_DIR honored)")
    p_bfl.add_argument("--check-against", default=None, metavar="BASELINE",
                       help="compare against a committed BENCH_fleet.json; exit 1 "
                            "on infeasibility, cost-ratio, or cache-reuse drift")

    p_bsim = sub.add_parser(
        "bench-sim",
        help="closed-loop simulation benchmark (cost-of-planning curves, "
             "service consistency, backpressure)",
    )
    p_bsim.add_argument("--seed", type=int, default=2012, help="campaign seed")
    p_bsim.add_argument("--vm", default="c1.medium")
    p_bsim.add_argument("--slots", type=int, default=720,
                        help="campaign evaluation slots (default 720)")
    p_bsim.add_argument("--estimation-slots", type=int, default=1440,
                        help="price history ahead of the campaign (default 1440)")
    p_bsim.add_argument("--prediction", type=int, default=48,
                        help="replan lookahead in slots (default 48)")
    p_bsim.add_argument("--control", type=int, default=24,
                        help="slots executed per replan (default 24)")
    p_bsim.add_argument("--coarse-block", type=int, default=4,
                        help="slots per far-term aggregate block (default 4)")
    p_bsim.add_argument("--service-slots", type=int, default=96,
                        help="window for the service/backpressure legs (default 96)")
    p_bsim.add_argument("--out", default="BENCH_sim.json", metavar="FILE",
                        help="benchmark record filename (REPRO_BENCH_DIR honored)")
    p_bsim.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="compare cost/oracle ratios and service invariants "
                             "against a committed BENCH_sim.json; exit 1 on drift")

    p_trace = sub.add_parser(
        "trace",
        help="merge per-process JSONL event files into one Chrome trace "
             "with cross-process flow arrows",
    )
    p_trace.add_argument(
        "paths", nargs="+",
        help="event files written with trace metadata, or directories to "
             "scan recursively for *.jsonl (e.g. a simulate --trace-dir)",
    )
    p_trace.add_argument("-o", "--out", default="merged.trace.json", metavar="FILE",
                         help="merged Chrome trace output (default merged.trace.json)")
    p_trace.add_argument("--label", default="repro", help="trace label (default repro)")

    p_prof = sub.add_parser(
        "profile",
        help="deterministic phase profiler: attribute wall time to solver "
             "phases and export speedscope JSON",
    )
    p_prof.add_argument(
        "target",
        help="'plan' (profile one DRRP solve), 'bench-solver' (profile the "
             "solver benchmark), or a path to a recorded events.jsonl",
    )
    p_prof.add_argument("--vm", default="m1.large", help="VM class for 'plan'")
    p_prof.add_argument("--horizon", type=int, default=24, help="'plan' horizon (default 24)")
    p_prof.add_argument("--seed", type=int, default=0, help="seed for 'plan'/'bench-solver'")
    p_prof.add_argument("--backend", default="auto", help="solver backend for 'plan'")
    p_prof.add_argument("--node-limit", type=int, default=None,
                        help="'bench-solver': B&B node cap override")
    p_prof.add_argument("--scenarios", type=int, default=None,
                        help="'bench-solver': Benders scenario count override")
    p_prof.add_argument("--speedscope", default=None, metavar="FILE",
                        help="write a speedscope JSON profile (speedscope.app)")
    p_prof.add_argument("--json", default=None, metavar="FILE", dest="out_json",
                        help="write the phase profile as JSON")

    p_brep = sub.add_parser(
        "bench-report",
        help="print the benchmark headline-metric table: committed "
             "BENCH_*.json baselines vs fresh records",
    )
    p_brep.add_argument("--dir", default=".", metavar="DIR",
                        help="directory holding the committed BENCH_*.json (default .)")
    p_brep.add_argument("--fresh", default=None, metavar="DIR",
                        help="directory with fresh records (default: REPRO_BENCH_DIR "
                             "or bench-out/ when present)")

    return parser


def _plan_result_payload(vm_name: str, horizon: int, plan) -> dict:
    """The replay-stable view of one DRRP plan, for run-manifest digests."""
    return {
        "vm": vm_name,
        "horizon": horizon,
        "status": plan.status.value,
        "total_cost": float(plan.total_cost),
        "alpha": [float(x) for x in plan.alpha],
        "beta": [float(x) for x in plan.beta],
        "chi": [int(round(float(x))) for x in plan.chi],
    }


def _cmd_plan(args) -> int:
    from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp, solve_noplan
    from repro.market import ec2_catalog
    from repro.solver import EventRecorder, Telemetry

    catalog = ec2_catalog()
    if args.vm not in catalog:
        print(f"unknown VM class {args.vm!r}; choose from {sorted(catalog)}", file=sys.stderr)
        return 2
    vm = catalog[args.vm]
    demand = NormalDemand(mean=args.demand_mean, std=args.demand_std).sample(args.horizon, args.seed)
    inst = DRRPInstance(
        demand=demand, costs=on_demand_schedule(vm, args.horizon), vm_name=vm.name
    )
    solve_kwargs = {}
    recorder = tracer = None
    if args.telemetry or args.trace or args.manifest:
        recorder = EventRecorder()
        listeners = [recorder]
        if args.trace:
            from repro.obs import Tracer

            tracer = Tracer()
            listeners.append(tracer)
        solve_kwargs["listener"] = (
            recorder if len(listeners) == 1 else Telemetry(listeners=listeners)
        )
    if args.time_limit is not None:
        solve_kwargs["time_limit"] = args.time_limit
        # WW seed guarantees an incumbent, so a tight budget still yields a plan
        solve_kwargs["warm_start"] = True
    try:
        plan = solve_drrp(inst, backend=args.backend, **solve_kwargs)
    except ValueError as exc:  # unknown backend, negative time limit, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"no plan within the budget: {exc}", file=sys.stderr)
        if recorder is not None:
            print(recorder.summary_line(), file=sys.stderr)
        return 1
    base = solve_noplan(inst)
    print(f"{vm.name}: horizon {args.horizon}h, demand total {demand.sum():.2f} GB")
    print(f"no-plan cost ${base.total_cost:.2f} | DRRP cost ${plan.total_cost:.2f} "
          f"({1 - plan.total_cost / base.total_cost:.0%} saved)")
    if plan.status.value != "optimal":
        print(f"status: {plan.status.value} (best incumbent within the budget)")
    print("slot  demand  generate  store  rent")
    for t in range(args.horizon):
        print(
            f"{t:4d}  {demand[t]:6.2f}  {plan.alpha[t]:8.2f}  {plan.beta[t]:5.2f}  "
            f"{'RENT' if plan.chi[t] > 0.5 else '-'}"
        )
    if recorder is not None:
        if args.telemetry == "json":
            print(recorder.to_json(indent=2))
        if args.telemetry:
            print(recorder.summary_line())
    if tracer is not None:
        from repro.obs import write_chrome_trace

        roots = tracer.finish()
        path = write_chrome_trace(
            args.trace, roots, tracer.markers, label=f"repro plan {vm.name}"
        )
        print(f"trace: {path}")
    if args.manifest:
        from repro.obs import RunManifest

        manifest = RunManifest.from_run(
            "plan",
            f"{vm.name}/{args.horizon}",
            result=_plan_result_payload(vm.name, args.horizon, plan),
            seed=args.seed,
            config={
                "vm": vm.name, "horizon": args.horizon, "backend": args.backend,
                "demand_mean": args.demand_mean, "demand_std": args.demand_std,
                "time_limit": args.time_limit,
            },
            recorded_events=recorder.events,
            deadline_budget=args.time_limit,
            elapsed=recorder.events[-1].t if recorder.events else None,
        )
        manifest.write(args.manifest)
        print(manifest.summary_line())
        print(f"manifest: {args.manifest}")
    # Exit-code contract: 0 only for a proven optimum; a usable incumbent
    # under a budget (FEASIBLE/TIME_LIMIT) is 3 so scripts can tell.
    return 0 if plan.status.value == "optimal" else 3


def _run_drrp_observed(args) -> int:
    from pathlib import Path

    from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp
    from repro.market import ec2_catalog
    from repro.obs import (
        MetricsAggregator,
        MetricsRegistry,
        RunManifest,
        Tracer,
        render_report as render_obs_report,
        write_chrome_trace,
        write_events_jsonl,
    )
    from repro.solver import EventRecorder, Telemetry

    catalog = ec2_catalog()
    if args.vm not in catalog:
        print(f"unknown VM class {args.vm!r}; choose from {sorted(catalog)}", file=sys.stderr)
        return 2
    vm = catalog[args.vm]
    horizon = args.horizon if args.horizon is not None else 24
    seed = args.seed if args.seed is not None else 0
    backend = args.backend or "auto"
    demand = NormalDemand().sample(horizon, seed)
    inst = DRRPInstance(demand=demand, costs=on_demand_schedule(vm, horizon), vm_name=vm.name)

    recorder = EventRecorder()
    tracer = Tracer()
    registry = MetricsRegistry()
    hub = Telemetry(listeners=[recorder, tracer, MetricsAggregator(registry)])
    solve_kwargs = {}
    if args.time_limit is not None:
        solve_kwargs["time_limit"] = args.time_limit
        solve_kwargs["warm_start"] = True
    try:
        plan = solve_drrp(inst, backend=backend, listener=hub, **solve_kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"no plan within the budget: {exc}", file=sys.stderr)
        print(recorder.summary_line(), file=sys.stderr)
        return 1
    roots = tracer.finish()

    print(f"{vm.name}: horizon {horizon}h, DRRP cost ${plan.total_cost:.2f} "
          f"(status {plan.status.value})")
    print()
    print(render_obs_report(roots, registry, tracer.markers))
    manifest = RunManifest.from_run(
        "plan",
        f"drrp:{vm.name}/{horizon}",
        result=_plan_result_payload(vm.name, horizon, plan),
        seed=seed,
        config={"vm": vm.name, "horizon": horizon, "backend": backend,
                "time_limit": args.time_limit},
        recorded_events=recorder.events,
        deadline_budget=args.time_limit,
        elapsed=recorder.events[-1].t if recorder.events else None,
    )
    print()
    print(manifest.summary_line())
    trace_path = args.trace
    if args.out_dir is not None:
        out_dir = Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        print(f"manifest: {manifest.write(out_dir / 'manifest.json')}")
        print(f"events: {write_events_jsonl(out_dir / 'events.jsonl', recorder.events)}")
        if trace_path is None:
            trace_path = out_dir / "drrp.trace.json"
    if trace_path is not None:
        path = write_chrome_trace(trace_path, roots, tracer.markers,
                                  label=f"repro drrp {vm.name}")
        print(f"trace: {path}")
    return 0


def _cmd_run(args) -> int:
    if args.target == "drrp":
        return _run_drrp_observed(args)

    import inspect

    from repro.experiments.report import ALL_EXPERIMENTS, run_instrumented
    from repro.obs import render_report as render_obs_report

    if args.target not in ALL_EXPERIMENTS:
        print(
            f"unknown run target {args.target!r}; choose 'drrp' or one of "
            f"{sorted(ALL_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    params = inspect.signature(ALL_EXPERIMENTS[args.target]).parameters
    overrides = {"seed": args.seed, "horizon": args.horizon,
                 "backend": args.backend, "n_trials": args.trials}
    kwargs = {k: v for k, v in overrides.items() if v is not None}
    ignored = sorted(set(kwargs) - set(params))
    if ignored:
        print(f"note: {args.target} does not take {', '.join(ignored)}; ignored",
              file=sys.stderr)
        kwargs = {k: v for k, v in kwargs.items() if k in params}
    run = run_instrumented(args.target, out_dir=args.out_dir, trace_path=args.trace, **kwargs)
    print(run.result.to_text())
    print()
    print(render_obs_report(run.roots, run.registry, run.markers))
    print()
    print(run.manifest.summary_line())
    for label, path in (("manifest", run.manifest_path), ("events", run.events_path),
                        ("trace", run.trace_path)):
        if path is not None:
            print(f"{label}: {path}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.market import paper_window, reference_dataset
    from repro.stats import iqr_outliers, shapiro_wilk
    from repro.timeseries import adf_test, correlogram

    dataset = reference_dataset()
    if args.vm not in dataset:
        print(f"unknown VM class {args.vm!r}; choose from {sorted(dataset)}", file=sys.stderr)
        return 2
    trace = dataset[args.vm]
    _, stats = iqr_outliers(trace.prices)
    window = paper_window(trace)
    sw = shapiro_wilk(window.estimation)
    adf = adf_test(window.estimation)
    cg = correlogram(window.estimation, 30)
    print(f"{args.vm}: {trace.n_updates} updates over {trace.duration_hours / 24:.0f} days")
    print(f"median ${stats.median:.3f}, IQR ${stats.iqr:.3f}, outliers {stats.outlier_fraction:.2%}")
    print(f"analysis window: n={window.estimation.size}, "
          f"Shapiro-Wilk p={sw.p_value:.2e} ({'non-normal' if sw.rejects_normality() else 'normal'})")
    print(f"ADF stat {adf.statistic:.2f} -> {'stationary' if adf.rejects_unit_root() else 'unit root'}")
    print(f"max |ACF| {cg.max_abs_acf():.3f} (95% band ±{cg.confidence_limit:.3f}) — "
          "weak memory: day-ahead prediction is unreliable (see fig8)")
    return 0


def _cmd_simulate_campaign(args) -> int:
    import json
    from pathlib import Path

    from repro.sim import CampaignConfig, HorizonConfig, run_campaign

    policies = tuple(p.strip() for p in args.policies.split(",") if p.strip())
    if args.with_service and "rolling-drrp-service" not in policies:
        policies = policies + ("rolling-drrp-service",)
    if args.bid_policy and f"bid-{args.bid_policy}" not in policies:
        policies = policies + (f"bid-{args.bid_policy}",)
    try:
        config = CampaignConfig(
            vm=args.vm,
            slots=args.slots,
            estimation_slots=args.estimation_slots,
            seed=args.seed,
            horizon=HorizonConfig(
                prediction=args.prediction,
                control=args.control,
                fine=args.fine,
                coarse_block=args.coarse_block,
            ),
            backend=args.backend,
            interruption_loss=args.interruption_loss,
            lookahead=args.lookahead,
            policies=policies,
            bid_value=args.bid,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    service = httpd = None
    service_url = args.service
    trace_dir = Path(args.trace_dir) if args.trace_dir else None
    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
    if args.with_service:
        from repro.service import ServiceConfig, serve

        svc_config = ServiceConfig(
            workers=2,
            capture_dir=str(trace_dir / "service") if trace_dir is not None else None,
        )
        service, httpd = serve(port=0, config=svc_config, block=False)
        service_url = f"http://127.0.0.1:{httpd.server_address[1]}"
    prom_text = None
    try:
        result = run_campaign(config, service_url=service_url)
        if trace_dir is not None and service_url is not None:
            import urllib.request

            try:  # scrape while the server is still up
                with urllib.request.urlopen(
                    service_url + "/metrics?format=prom", timeout=10
                ) as resp:
                    prom_text = resp.read().decode()
            except OSError:
                prom_text = None
    except ValueError as exc:  # unknown VM class or policy name
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
            service.close()

    for line in result.summary_lines():
        print(line)
    if trace_dir is not None:
        from repro.obs.propagate import (
            collect_event_files,
            write_merged_trace,
            write_process_events,
        )

        write_process_events(
            trace_dir / "campaign.events.jsonl", result.events,
            label="campaign", trace=result.trace, wall_t0=result.wall_t0,
        )
        files = collect_event_files(trace_dir)
        merged = write_merged_trace(trace_dir / "merged.trace.json", files,
                                    label=f"campaign {config.vm}")
        print(f"trace: {merged} ({len(files)} process files)")
        if prom_text:
            (trace_dir / "metrics.prom").write_text(prom_text)
            print(f"metrics: {trace_dir / 'metrics.prom'}")
    print(result.manifest.summary_line())
    if args.manifest:
        print(f"manifest: {result.manifest.write(args.manifest)}")
    if args.out_json:
        record = {
            "config": config.jsonable(),
            "service_routed": service_url is not None,
            "elapsed_s": result.elapsed,
            **result.result_payload(),
        }
        Path(args.out_json).write_text(
            json.dumps(record, indent=2, sort_keys=True) + "\n"
        )
        print(f"record: {args.out_json}")
    degraded = sum(o.degraded_plans for o in result.outcomes.values())
    return 3 if degraded else 0


def _cmd_simulate(args) -> int:
    if args.campaign:
        return _cmd_simulate_campaign(args)

    from datetime import date

    from repro.core import NormalDemand, Planner
    from repro.market import hourly_series, hours_since_epoch, paper_window, reference_dataset

    dataset = reference_dataset()
    if args.vm not in dataset:
        print(f"unknown VM class {args.vm!r}; choose from {sorted(dataset)}", file=sys.stderr)
        return 2
    trace = dataset[args.vm]
    history = paper_window(trace).estimation
    start = hours_since_epoch(date(2011, 2, 1))
    realized = hourly_series(trace, start, start + args.hours)
    demand = NormalDemand().sample(args.hours, args.seed)
    planner = Planner(args.vm)
    comparison = planner.evaluate_policies(realized, demand, history, lookahead=args.lookahead)
    over = comparison.overpay_percentages()
    print(f"{args.vm}: {args.hours}h from Feb 1 2011; ideal cost ${comparison.ideal_cost:.3f}")
    for name in sorted(comparison.results, key=lambda k: comparison.results[k].total_cost):
        res = comparison.results[name]
        print(f"  {name:14s} ${res.total_cost:8.3f}  overpay {over[name]:6.1f}%  "
              f"out-of-bid {res.out_of_bid_events}")
    return 0


def _render_recorded_file(path) -> tuple[str, int]:
    """Render one recorded artifact (trace / manifest / event log) to text.

    Returns ``(text, exit_code)``; dispatches on content, not extension.
    """
    import json

    from repro.obs import (
        MetricsAggregator,
        MetricsRegistry,
        RunManifest,
        Tracer,
        load_chrome_trace,
        read_events_jsonl,
        render_report as render_obs_report,
    )
    from repro.solver.telemetry import SolveEvent

    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError:
        doc = None  # maybe JSONL
    if isinstance(doc, dict) and "traceEvents" in doc:
        roots, markers = load_chrome_trace(path)
        return f"== {path} (chrome trace) ==\n" + render_obs_report(roots, None, markers), 0
    if isinstance(doc, dict) and "result_digest" in doc:
        man = RunManifest.load(path)
        lines = [
            f"== {path} (run manifest) ==",
            man.summary_line(),
            f"config: {json.dumps(man.config, sort_keys=True)}",
            f"versions: {json.dumps(man.versions, sort_keys=True)}",
        ]
        if man.deadline_budget is not None:
            lines.append(f"deadline_budget: {man.deadline_budget}s")
        if man.elapsed is not None:
            lines.append(f"elapsed: {man.elapsed:.3f}s")
        lines.append(f"events: {json.dumps(man.events, sort_keys=True)}")
        lines.append(f"result_digest: {man.result_digest}")
        return "\n".join(lines), 0
    if isinstance(doc, list):  # EventRecorder.to_json dump
        events = [
            SolveEvent(kind=o.pop("kind"), t=float(o.pop("t")), data=o) for o in doc
        ]
    else:
        try:
            events = read_events_jsonl(path)
        except (json.JSONDecodeError, KeyError, ValueError, OSError):
            return f"error: {path} is not a trace, manifest, or event log", 2
    registry = MetricsRegistry()
    tracer = Tracer()
    aggregator = MetricsAggregator(registry)
    for ev in events:
        tracer.on_event(ev)
        aggregator.on_event(ev)
    roots = tracer.finish()
    return (
        f"== {path} (event log) ==\n" + render_obs_report(roots, registry, tracer.markers),
        0,
    )


def _cmd_report(args) -> int:
    from pathlib import Path

    paths = [Path(a) for a in args.experiments]
    if paths and all(p.is_file() for p in paths):
        status = 0
        for i, path in enumerate(paths):
            if i:
                print()
            text, code = _render_recorded_file(path)
            print(text, file=sys.stderr if code else sys.stdout)
            status = max(status, code)
        return status

    from repro.experiments.report import render_report, run_all

    try:
        results = run_all(args.experiments or None)
    except ValueError as exc:
        print(f"error: {exc} (file paths render recorded runs, but every "
              f"argument must then be an existing file)", file=sys.stderr)
        return 2
    print(render_report(results))
    return 0


def _cmd_export(args) -> int:
    from repro.market import reference_dataset, traces_to_csv_dir

    paths = traces_to_csv_dir(reference_dataset(), args.directory)
    for p in paths:
        print(p)
    return 0


def _cmd_fuzz(args) -> int:
    import math

    from repro.solver import EventRecorder, Telemetry
    from repro.verify import FAMILIES, SMOKE_CASES, FuzzConfig, run_fuzz, run_fuzz_parallel

    families = tuple(FAMILIES)
    if args.families:
        families = tuple(f.strip() for f in args.families.split(",") if f.strip())
        unknown = set(families) - set(FAMILIES)
        if unknown:
            print(
                f"unknown families {sorted(unknown)}; choose from {sorted(FAMILIES)}",
                file=sys.stderr,
            )
            return 2
    cases = args.cases if args.cases is not None else SMOKE_CASES
    budget = args.time_limit if args.time_limit is not None else math.inf
    if args.smoke:
        budget = min(budget, 60.0)
    recorder = tracer = listener = None
    if args.telemetry or args.trace or args.manifest:
        recorder = EventRecorder()
        listener = recorder
        if args.trace:
            from repro.obs import Tracer

            tracer = Tracer()
            listener = Telemetry(listeners=[recorder, tracer])
    config = FuzzConfig(
        seed=args.seed,
        max_cases=cases,
        budget=budget,
        families=families,
        out_dir=args.out_dir,
        shrink=not args.no_shrink,
    )
    if args.workers is not None and args.workers > 1:
        report = run_fuzz_parallel(config, n_workers=args.workers, listener=listener)
    else:
        report = run_fuzz(config, listener=listener)
    print(report.summary_line())
    for fam, tally in report.by_family.items():
        print(
            f"  {fam:14s} cases={tally['cases']:4d} certified={tally['certified']:4d} "
            f"disagreements={tally['disagreements']}"
        )
    for d in report.disagreements:
        print(f"  DISAGREEMENT {d.family}/{d.kind}: {d.detail}", file=sys.stderr)
    for path in report.reproducer_files:
        print(f"  reproducer: {path}", file=sys.stderr)
    if recorder is not None:
        if args.telemetry == "json":
            print(recorder.to_json(indent=2))
        if args.telemetry:
            print(recorder.summary_line())
    if tracer is not None:
        from repro.obs import write_chrome_trace

        roots = tracer.finish()
        print(f"trace: {write_chrome_trace(args.trace, roots, tracer.markers, label='repro fuzz')}")
    if args.manifest:
        from repro.obs import RunManifest

        manifest = RunManifest.from_run(
            "fuzz",
            "smoke" if args.smoke else "campaign",
            result=report.digest_dict(),
            seed=args.seed,
            config={
                "cases": cases, "families": list(families),
                "shrink": not args.no_shrink, "workers": args.workers,
            },
            recorded_events=recorder.events,
            deadline_budget=None if math.isinf(budget) else budget,
            elapsed=report.elapsed,
        )
        manifest.write(args.manifest)
        print(manifest.summary_line())
        print(f"manifest: {args.manifest}")
    # 1 = disagreement/failure; 3 = clean but deadline-truncated (partial
    # evidence); 0 = the full configured campaign ran clean.
    if not report.ok:
        return 1
    return 3 if report.stopped_by == "deadline" else 0


def _cmd_serve(args) -> int:
    from repro.service import ServiceConfig, serve

    try:
        config = ServiceConfig(
            workers=args.workers,
            queue_size=args.queue_size,
            cache_size=args.cache_size,
            default_time_limit=args.time_limit if args.time_limit > 0 else None,
            capture_dir=args.capture_dir,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"planning service on http://{args.host}:{args.port} "
          f"(workers={config.workers}, queue={config.queue_size}, "
          f"cache={config.cache_size}) — Ctrl-C to stop", flush=True)
    serve(host=args.host, port=args.port, config=config, block=True)
    return 0


def _cmd_submit(args) -> int:
    import json

    from repro.service import Saturated, ServiceClient, ServiceError

    client = ServiceClient(args.url, timeout=args.wait_s + 30.0)
    payload = {
        "kind": "drrp",
        "vm": args.vm,
        "horizon": args.horizon,
        "seed": args.seed,
        "demand_mean": args.demand_mean,
        "demand_std": args.demand_std,
        "backend": args.backend,
    }
    if args.time_limit is not None:
        payload["time_limit"] = args.time_limit
    try:
        if args.no_wait:
            result = client.submit(payload)
            print(f"job {result.job_id}: {result.state}"
                  + (" (cached)" if result.cached else ""))
            if result.plan is None:
                return 0
        else:
            result = client.solve(payload, wait_s=args.wait_s)
    except Saturated as exc:
        print(f"server saturated (HTTP {exc.status}); retry after {exc.retry_after:g}s",
              file=sys.stderr)
        return 1
    except (ServiceError, OSError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    plan = result.plan
    if args.as_json:
        print(json.dumps(plan, indent=2, sort_keys=True))
    else:
        hit = " [cache hit]" if result.hit else ""
        degraded = f" [degraded: {result.degraded}]" if result.degraded else ""
        print(f"job {result.job_id}: {plan['status']}{hit}{degraded}")
        cost = plan.get("total_cost", plan.get("expected_cost"))
        rent = sum(1 for x in plan.get("chi", []) if x)
        print(f"{args.vm}: horizon {args.horizon}h, cost ${cost:.2f}, "
              f"rent slots {rent}/{len(plan.get('chi', []))}")
    if result.degraded or plan["status"] != "optimal":
        return 3
    return 0


def _cmd_bench_service(args) -> int:
    from repro.service.loadgen import LoadgenConfig, run_loadgen, summary_line

    try:
        cfg = LoadgenConfig(
            requests=args.requests,
            duplicate_share=args.duplicate_share,
            seed=args.seed,
            workers=args.workers,
            client_threads=args.client_threads,
            out=args.out,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    record = run_loadgen(cfg)
    print(summary_line(record))
    if "path" in record:
        print(f"record: {record['path']}")
    failures = []
    if record["dropped"]:
        failures.append(f"{record['dropped']} requests dropped")
    if record["cache"]["hit_rate"] < record["duplicate_share"]:
        failures.append(
            f"cache hit rate {record['cache']['hit_rate']:.0%} below "
            f"duplicate share {record['duplicate_share']:.0%}"
        )
    if not record["saturation"]["rejected"]:
        failures.append("saturation probe saw no 429 rejections")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_bench_solver(args) -> int:
    import json
    from pathlib import Path

    from repro.bench import (
        SolverBenchConfig,
        check_solver_regression,
        run_solver_bench,
        summary_lines,
    )

    overrides = {
        name: value
        for name, value in (
            ("bb_instances", args.bb_instances),
            ("bb_vars", args.bb_vars),
            ("bb_rows", args.bb_rows),
            ("node_limit", args.node_limit),
            ("drrp_horizon", args.drrp_horizon),
            ("scenarios", args.scenarios),
            ("large_horizon", args.large_horizon),
            ("large_classes", args.large_classes),
            ("large_resolves", args.large_resolves),
        )
        if value is not None
    }
    try:
        cfg = SolverBenchConfig(
            seed=args.seed,
            benders_workers=args.workers,
            out=args.out,
            **overrides,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        record = run_solver_bench(cfg)
    except RuntimeError as exc:  # a leg failed or warm/cold disagreed
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for line in summary_lines(record):
        print(line)
    if "path" in record:
        print(f"record: {record['path']}")
    if args.check_against:
        baseline_path = Path(args.check_against)
        if not baseline_path.is_file():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())
        failures = check_solver_regression(record, baseline)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate passed against {baseline_path}")
    return 0


def _cmd_plan_fleet(args) -> int:
    import json

    from repro.fleet import FleetConfig, generate_tenants, plan_fleet, uniform_pools

    try:
        tenants = generate_tenants(args.tenants, seed=args.seed, horizon=args.horizon)
        pools = uniform_pools(tenants, utilization=args.utilization)
        config = FleetConfig(
            backend=args.backend, workers=args.workers, escalate=not args.no_escalate
        )
        fleet = plan_fleet(tenants, pools, config)
    except (ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    summary = fleet.summary(tenants)
    if args.as_json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"fleet: {summary['tenants']} tenants over {args.horizon} slots, "
            f"total cost {summary['total_cost']:.4f}"
        )
        print(
            f"methods: {summary['methods']}, escalated {summary['escalated']} "
            f"({summary['escalation_fraction']:.1%}), "
            f"{summary['repair_rounds']} repair rounds, "
            f"{summary['knockouts']} knockouts"
        )
        for name, pool in sorted(summary["pools"].items()):
            print(
                f"pool {name}: capacity {pool['capacity_min']:.0f}"
                f"..{pool['capacity_max']:.0f}, peak usage {pool['peak_usage']:.0f}"
            )
        print(f"feasible: {summary['feasible']}")
    if not summary["feasible"]:
        for failure in summary["failures"][:5]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_fleet(args) -> int:
    import json
    from pathlib import Path

    from repro.bench import (
        FleetBenchConfig,
        check_fleet_regression,
        fleet_summary_lines,
        run_fleet_bench,
    )

    overrides = {
        name: value
        for name, value in (
            ("tenants", args.tenants),
            ("horizon", args.horizon),
            ("utilization", args.utilization),
            ("milp_sample", args.milp_sample),
        )
        if value is not None
    }
    try:
        cfg = FleetBenchConfig(
            seed=args.seed, workers=args.workers, out=args.out, **overrides
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        record = run_fleet_bench(cfg)
    except RuntimeError as exc:  # a leg failed or the plan was infeasible
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for line in fleet_summary_lines(record):
        print(line)
    if "path" in record:
        print(f"record: {record['path']}")
    if args.check_against:
        baseline_path = Path(args.check_against)
        if not baseline_path.is_file():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())
        failures = check_fleet_regression(record, baseline)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate passed against {baseline_path}")
    return 0


def _cmd_bench_sim(args) -> int:
    import json
    from pathlib import Path

    from repro.sim import SimBenchConfig, check_sim_regression, run_sim_bench
    from repro.sim.bench import summary_lines

    try:
        cfg = SimBenchConfig(
            seed=args.seed,
            vm=args.vm,
            slots=args.slots,
            estimation_slots=args.estimation_slots,
            prediction=args.prediction,
            control=args.control,
            coarse_block=args.coarse_block,
            service_slots=args.service_slots,
            out=args.out,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    record = run_sim_bench(cfg)
    for line in summary_lines(record):
        print(line)
    if "path" in record:
        print(f"record: {record['path']}")
    if args.check_against:
        baseline_path = Path(args.check_against)
        if not baseline_path.is_file():
            print(f"error: baseline {baseline_path} not found", file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())
        failures = check_sim_regression(record, baseline)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"regression gate passed against {baseline_path}")
    return 0


def _cmd_trace(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.propagate import collect_event_files, write_merged_trace

    files: list[Path] = []
    for raw in args.paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(collect_event_files(p))
        elif p.is_file():
            files.append(p)
        else:
            print(f"error: {p} is neither a file nor a directory", file=sys.stderr)
            return 2
    files = list(dict.fromkeys(files))
    if not files:
        print("error: no *.jsonl event files found", file=sys.stderr)
        return 2
    path = write_merged_trace(args.out, files, label=args.label)
    doc = json.loads(Path(path).read_text())
    ids = doc.get("otherData", {}).get("trace_ids", [])
    flows = sum(1 for e in doc.get("traceEvents", []) if e.get("ph") == "s")
    print(f"merged {len(files)} process files -> {path}")
    print(f"trace ids: {', '.join(ids) if ids else '(none)'}; flow arrows: {flows}")
    return 0


def _cmd_profile(args) -> int:
    import json
    from pathlib import Path

    from repro.obs.prof import parent_clock_spans, profile_spans, write_speedscope
    from repro.solver import EventRecorder

    target = args.target
    recorder = EventRecorder()
    if target == "plan":
        from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp
        from repro.market import ec2_catalog

        catalog = ec2_catalog()
        if args.vm not in catalog:
            print(f"unknown VM class {args.vm!r}; choose from {sorted(catalog)}",
                  file=sys.stderr)
            return 2
        vm = catalog[args.vm]
        demand = NormalDemand().sample(args.horizon, args.seed)
        inst = DRRPInstance(
            demand=demand, costs=on_demand_schedule(vm, args.horizon), vm_name=vm.name
        )
        solve_drrp(inst, backend=args.backend, listener=recorder)
        events = recorder.events
        name = f"repro plan {vm.name}/{args.horizon}"
    elif target == "bench-solver":
        from repro.bench import SolverBenchConfig, run_solver_bench

        overrides = {}
        if args.node_limit is not None:
            overrides["node_limit"] = args.node_limit
        if args.scenarios is not None:
            overrides["scenarios"] = args.scenarios
        try:
            cfg = SolverBenchConfig(seed=args.seed, out=None, **overrides)
            run_solver_bench(cfg, listener=recorder)
        except (ValueError, RuntimeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        events = recorder.events
        name = "repro bench-solver"
    else:
        path = Path(target)
        if not path.is_file():
            print(f"error: profile target {target!r} is not 'plan', "
                  f"'bench-solver', or an event file", file=sys.stderr)
            return 2
        from repro.obs.propagate import read_process_events

        meta, events = read_process_events(path)
        name = (meta or {}).get("label") or path.name

    roots, markers = parent_clock_spans(events)
    prof = profile_spans(roots, markers)
    print(prof.render())
    if args.out_json:
        Path(args.out_json).write_text(
            json.dumps(prof.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"profile: {args.out_json}")
    if args.speedscope:
        print(f"speedscope: {write_speedscope(args.speedscope, roots, name=name)}")
    # The bench wraps every leg in one root span, so essentially all wall
    # time must land in a named bucket; a big hole means instrumentation
    # regressed somewhere under the bench.
    if target == "bench-solver" and not prof.coverage >= 0.95:
        print(f"FAIL: profiler attributed only {prof.coverage:.0%} of the "
              f"bench wall time (need >= 95%)", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_report(args) -> int:
    import os
    from pathlib import Path

    from repro.bench.report import report_lines

    fresh = args.fresh
    if fresh is None:
        env = os.environ.get("REPRO_BENCH_DIR")
        if env and Path(env).is_dir():
            fresh = env
        elif Path("bench-out").is_dir():
            fresh = "bench-out"
    for line in report_lines(args.dir, fresh):
        print(line)
    return 0


_COMMANDS = {
    "plan": _cmd_plan,
    "run": _cmd_run,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "report": _cmd_report,
    "export-dataset": _cmd_export,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "bench-service": _cmd_bench_service,
    "bench-solver": _cmd_bench_solver,
    "plan-fleet": _cmd_plan_fleet,
    "bench-fleet": _cmd_bench_fleet,
    "bench-sim": _cmd_bench_sim,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "bench-report": _cmd_bench_report,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
