"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main workflows:

``plan``
    Solve DRRP for a class/horizon and print the rental schedule.
``analyze``
    Run the spot-price predictability summary for one class.
``simulate``
    Rolling-horizon bake-off (oracle, on-demand, det/sto policies).
``report``
    Regenerate paper figures (all, or a listed subset).
``export-dataset``
    Write the bundled reference dataset as CSVs for external tools.
``fuzz``
    Differential-fuzz the solver stack against exact certificates and
    independent oracles (see :mod:`repro.verify`); CI runs the seeded
    ``--smoke`` configuration on every push and a longer budget nightly.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource rental planning for elastic cloud applications (IPDPS'12 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="solve DRRP for one VM class")
    p_plan.add_argument("--vm", default="m1.large", help="VM class (default m1.large)")
    p_plan.add_argument("--horizon", type=int, default=24, help="slots to plan (default 24)")
    p_plan.add_argument("--seed", type=int, default=0, help="demand seed")
    p_plan.add_argument("--demand-mean", type=float, default=0.4, help="GB/h demand mean")
    p_plan.add_argument("--demand-std", type=float, default=0.2, help="GB/h demand std")
    p_plan.add_argument(
        "--backend", default="auto",
        help="solver backend: auto | simplex | simplex+cuts | scipy | bb-scipy",
    )
    p_plan.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole solve (best incumbent on expiry)",
    )
    p_plan.add_argument(
        "--telemetry", choices=("summary", "json"), default=None,
        help="record solve events: 'summary' prints one line, 'json' dumps the stream",
    )

    p_an = sub.add_parser("analyze", help="spot-price predictability summary")
    p_an.add_argument("--vm", default="c1.medium")

    p_sim = sub.add_parser("simulate", help="rolling-horizon policy bake-off")
    p_sim.add_argument("--vm", default="c1.medium")
    p_sim.add_argument("--hours", type=int, default=24, help="evaluation window (h)")
    p_sim.add_argument("--lookahead", type=int, default=6)
    p_sim.add_argument("--seed", type=int, default=2012)

    p_rep = sub.add_parser("report", help="regenerate paper figures")
    p_rep.add_argument("experiments", nargs="*", help="ids (default: all)")

    p_exp = sub.add_parser("export-dataset", help="write reference traces as CSV")
    p_exp.add_argument("directory", help="output directory")

    p_fuzz = sub.add_parser("fuzz", help="differential-fuzz the solver stack")
    p_fuzz.add_argument("--seed", type=int, default=0, help="generator seed (default 0)")
    p_fuzz.add_argument(
        "--cases", type=int, default=None, metavar="N",
        help="maximum generated instances (default: smoke preset)",
    )
    p_fuzz.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole campaign",
    )
    p_fuzz.add_argument(
        "--smoke", action="store_true",
        help="CI smoke preset: the standard case count under a 60 s budget",
    )
    p_fuzz.add_argument(
        "--families", default=None,
        help="comma-separated generator families (default: all)",
    )
    p_fuzz.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="persist shrunk reproducers for any disagreement here",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="keep disagreement witnesses at generated size",
    )
    p_fuzz.add_argument(
        "--telemetry", choices=("summary", "json"), default=None,
        help="record fuzz/solve events: 'summary' prints one line, 'json' dumps the stream",
    )

    return parser


def _cmd_plan(args) -> int:
    from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp, solve_noplan
    from repro.market import ec2_catalog
    from repro.solver import EventRecorder

    catalog = ec2_catalog()
    if args.vm not in catalog:
        print(f"unknown VM class {args.vm!r}; choose from {sorted(catalog)}", file=sys.stderr)
        return 2
    vm = catalog[args.vm]
    demand = NormalDemand(mean=args.demand_mean, std=args.demand_std).sample(args.horizon, args.seed)
    inst = DRRPInstance(
        demand=demand, costs=on_demand_schedule(vm, args.horizon), vm_name=vm.name
    )
    solve_kwargs = {}
    recorder = None
    if args.telemetry:
        recorder = EventRecorder()
        solve_kwargs["listener"] = recorder
    if args.time_limit is not None:
        solve_kwargs["time_limit"] = args.time_limit
        # WW seed guarantees an incumbent, so a tight budget still yields a plan
        solve_kwargs["warm_start"] = True
    try:
        plan = solve_drrp(inst, backend=args.backend, **solve_kwargs)
    except ValueError as exc:  # unknown backend, negative time limit, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"no plan within the budget: {exc}", file=sys.stderr)
        if recorder is not None:
            print(recorder.summary_line(), file=sys.stderr)
        return 1
    base = solve_noplan(inst)
    print(f"{vm.name}: horizon {args.horizon}h, demand total {demand.sum():.2f} GB")
    print(f"no-plan cost ${base.total_cost:.2f} | DRRP cost ${plan.total_cost:.2f} "
          f"({1 - plan.total_cost / base.total_cost:.0%} saved)")
    if plan.status.value != "optimal":
        print(f"status: {plan.status.value} (best incumbent within the budget)")
    print("slot  demand  generate  store  rent")
    for t in range(args.horizon):
        print(
            f"{t:4d}  {demand[t]:6.2f}  {plan.alpha[t]:8.2f}  {plan.beta[t]:5.2f}  "
            f"{'RENT' if plan.chi[t] > 0.5 else '-'}"
        )
    if recorder is not None:
        if args.telemetry == "json":
            print(recorder.to_json(indent=2))
        print(recorder.summary_line())
    return 0


def _cmd_analyze(args) -> int:
    from repro.market import paper_window, reference_dataset
    from repro.stats import iqr_outliers, shapiro_wilk
    from repro.timeseries import adf_test, correlogram

    dataset = reference_dataset()
    if args.vm not in dataset:
        print(f"unknown VM class {args.vm!r}; choose from {sorted(dataset)}", file=sys.stderr)
        return 2
    trace = dataset[args.vm]
    _, stats = iqr_outliers(trace.prices)
    window = paper_window(trace)
    sw = shapiro_wilk(window.estimation)
    adf = adf_test(window.estimation)
    cg = correlogram(window.estimation, 30)
    print(f"{args.vm}: {trace.n_updates} updates over {trace.duration_hours / 24:.0f} days")
    print(f"median ${stats.median:.3f}, IQR ${stats.iqr:.3f}, outliers {stats.outlier_fraction:.2%}")
    print(f"analysis window: n={window.estimation.size}, "
          f"Shapiro-Wilk p={sw.p_value:.2e} ({'non-normal' if sw.rejects_normality() else 'normal'})")
    print(f"ADF stat {adf.statistic:.2f} -> {'stationary' if adf.rejects_unit_root() else 'unit root'}")
    print(f"max |ACF| {cg.max_abs_acf():.3f} (95% band ±{cg.confidence_limit:.3f}) — "
          "weak memory: day-ahead prediction is unreliable (see fig8)")
    return 0


def _cmd_simulate(args) -> int:
    from datetime import date

    from repro.core import NormalDemand, Planner
    from repro.market import hourly_series, hours_since_epoch, paper_window, reference_dataset

    dataset = reference_dataset()
    if args.vm not in dataset:
        print(f"unknown VM class {args.vm!r}; choose from {sorted(dataset)}", file=sys.stderr)
        return 2
    trace = dataset[args.vm]
    history = paper_window(trace).estimation
    start = hours_since_epoch(date(2011, 2, 1))
    realized = hourly_series(trace, start, start + args.hours)
    demand = NormalDemand().sample(args.hours, args.seed)
    planner = Planner(args.vm)
    comparison = planner.evaluate_policies(realized, demand, history, lookahead=args.lookahead)
    over = comparison.overpay_percentages()
    print(f"{args.vm}: {args.hours}h from Feb 1 2011; ideal cost ${comparison.ideal_cost:.3f}")
    for name in sorted(comparison.results, key=lambda k: comparison.results[k].total_cost):
        res = comparison.results[name]
        print(f"  {name:14s} ${res.total_cost:8.3f}  overpay {over[name]:6.1f}%  "
              f"out-of-bid {res.out_of_bid_events}")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import render_report, run_all

    results = run_all(args.experiments or None)
    print(render_report(results))
    return 0


def _cmd_export(args) -> int:
    from repro.market import reference_dataset, traces_to_csv_dir

    paths = traces_to_csv_dir(reference_dataset(), args.directory)
    for p in paths:
        print(p)
    return 0


def _cmd_fuzz(args) -> int:
    import math

    from repro.solver import EventRecorder
    from repro.verify import FAMILIES, SMOKE_CASES, FuzzConfig, run_fuzz

    families = tuple(FAMILIES)
    if args.families:
        families = tuple(f.strip() for f in args.families.split(",") if f.strip())
        unknown = set(families) - set(FAMILIES)
        if unknown:
            print(
                f"unknown families {sorted(unknown)}; choose from {sorted(FAMILIES)}",
                file=sys.stderr,
            )
            return 2
    cases = args.cases if args.cases is not None else SMOKE_CASES
    budget = args.time_limit if args.time_limit is not None else math.inf
    if args.smoke:
        budget = min(budget, 60.0)
    recorder = EventRecorder() if args.telemetry else None
    config = FuzzConfig(
        seed=args.seed,
        max_cases=cases,
        budget=budget,
        families=families,
        out_dir=args.out_dir,
        shrink=not args.no_shrink,
    )
    report = run_fuzz(config, listener=recorder)
    print(report.summary_line())
    for fam, tally in report.by_family.items():
        print(
            f"  {fam:14s} cases={tally['cases']:4d} certified={tally['certified']:4d} "
            f"disagreements={tally['disagreements']}"
        )
    for d in report.disagreements:
        print(f"  DISAGREEMENT {d.family}/{d.kind}: {d.detail}", file=sys.stderr)
    for path in report.reproducer_files:
        print(f"  reproducer: {path}", file=sys.stderr)
    if recorder is not None:
        if args.telemetry == "json":
            print(recorder.to_json(indent=2))
        print(recorder.summary_line())
    return 0 if report.ok else 1


_COMMANDS = {
    "plan": _cmd_plan,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "report": _cmd_report,
    "export-dataset": _cmd_export,
    "fuzz": _cmd_fuzz,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
