"""Extension — the mean-CVaR efficient frontier of SRRP.

Not a paper figure: sweeps the risk weight λ of the mean-CVaR model
(:func:`repro.core.risk.solve_srrp_cvar`) on an SRRP instance built like
the rolling ``sto-exp-mean`` policy's, tracing how much expected cost an
ASP pays to compress the cost tail.  λ = 0 is exactly the paper's SRRP.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    NormalDemand,
    SRRPInstance,
    bid_adjusted_stage_distributions,
    build_tree,
    on_demand_schedule,
    solve_srrp_cvar,
)
from repro.market import ec2_catalog, paper_window, reference_dataset
from repro.stats import EmpiricalDistribution
from .base import ExperimentResult

__all__ = ["run"]


def run(
    vm_class: str = "m1.xlarge",
    horizon: int = 6,
    max_branching: int = 3,
    confidence: float = 0.9,
    risk_weights: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    bid_discount: float = 0.97,
    seed: int = 2012,
    backend: str = "auto",
) -> ExperimentResult:
    """Trace the mean-CVaR frontier for one class.

    ``bid_discount`` shades the bid slightly below the historical mean so
    the out-of-bid event has real probability — with no tail risk every
    point of the frontier coincides.
    """
    vm = ec2_catalog()[vm_class]
    history = paper_window(reference_dataset()[vm_class]).estimation
    base = EmpiricalDistribution(history)
    bid = float(history.mean()) * bid_discount
    dists = bid_adjusted_stage_distributions(
        base, np.full(horizon - 1, bid), vm.on_demand_price, max_branching
    )
    tree = build_tree(bid, dists)
    inst = SRRPInstance(
        demand=NormalDemand().sample(horizon, seed),
        costs=on_demand_schedule(vm, horizon),
        tree=tree,
        vm_name=vm_class,
    )
    rows = []
    for lam in risk_weights:
        plan = solve_srrp_cvar(inst, risk_weight=lam, confidence=confidence, backend=backend)
        rows.append(
            {
                "risk_weight": lam,
                "expected_cost": plan.expected_cost,
                "cvar": plan.cvar,
                "cost_std": plan.cost_std(),
                "rent_now": plan.first_chi,
            }
        )
    cvars = [r["cvar"] for r in rows]
    expected = [r["expected_cost"] for r in rows]
    return ExperimentResult(
        experiment="ext_risk",
        title=f"Mean-CVaR frontier of SRRP ({vm_class}, alpha={confidence})",
        rows=rows,
        findings={
            "cvar_never_increases_with_risk_weight": all(
                cvars[i] >= cvars[i + 1] - 1e-6 for i in range(len(cvars) - 1)
            ),
            "expected_cost_never_decreases": all(
                expected[i] <= expected[i + 1] + 1e-6 for i in range(len(expected) - 1)
            ),
            "frontier_has_width": (cvars[0] - cvars[-1]) >= -1e-9,
        },
    )
