"""Figure 11 — sensitivity of DRRP's cost ratio to cost weights and demand.

Left panel: starting from the m1.large base ratio (~67 % of the no-plan
cost), raise the I/O cost in one direction and the CPU cost in the other,
in steps of 0.1: the ratio rises toward 1 with costlier I/O and falls with
costlier compute ("cost reduction ... more salient for expensive
computational resources").

Right panel: raise the demand mean from 0.2 to 1.6 GB/h: processors stay
busy, inventory stops paying off, and the ratio approaches 1 ("cost
reduction is not noticeable for heavy service demand").
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp, solve_noplan
from repro.market import ec2_catalog
from .base import ExperimentResult

__all__ = ["run"]


def _cost_ratio(instance: DRRPInstance, backend: str) -> float:
    plan = solve_drrp(instance, backend=backend)
    base = solve_noplan(instance)
    return plan.total_cost / base.total_cost


def run(
    horizon: int = 24,
    seed: int = 2012,
    n_trials: int = 3,
    steps: int = 4,
    step_size: float = 0.1,
    demand_means: tuple[float, ...] = (0.2, 0.4, 0.8, 1.2, 1.6),
    backend: str = "auto",
) -> ExperimentResult:
    """Regenerate Fig. 11's two sweeps around the m1.large base point."""
    vm = ec2_catalog()["m1.large"]
    demand_model = NormalDemand()

    def avg_ratio(make_instance) -> float:
        vals = []
        for k in range(n_trials):
            vals.append(_cost_ratio(make_instance(seed + k), backend))
        return float(np.mean(vals))

    base_costs = on_demand_schedule(vm, horizon)

    def base_instance(s, costs=None, mean=0.4):
        model = NormalDemand(mean=mean, std=0.2) if mean != 0.4 else demand_model
        return DRRPInstance(
            demand=model.sample(horizon, s),
            costs=costs if costs is not None else base_costs,
            vm_name=vm.name,
        )

    rows = []
    # CPU direction: compute cost + k*step
    cpu_ratios = []
    for k in range(steps + 1):
        costs = base_costs.with_compute(base_costs.compute + k * step_size)
        r = avg_ratio(lambda s, c=costs: base_instance(s, costs=c))
        cpu_ratios.append(r)
        rows.append({"sweep": "cpu", "delta": k * step_size, "cost_ratio": r})
    # I/O direction: io cost + k*step
    io_ratios = []
    for k in range(steps + 1):
        costs = replace(base_costs, io=base_costs.io + k * step_size)
        r = avg_ratio(lambda s, c=costs: base_instance(s, costs=c))
        io_ratios.append(r)
        rows.append({"sweep": "io", "delta": k * step_size, "cost_ratio": r})
    # demand direction
    demand_ratios = []
    for mean in demand_means:
        r = avg_ratio(lambda s, m=mean: base_instance(s, mean=m))
        demand_ratios.append(r)
        rows.append({"sweep": "demand", "delta": mean, "cost_ratio": r})

    return ExperimentResult(
        experiment="fig11",
        title="DRRP sensitivity: cost ratio vs CPU/I-O weights and demand mean",
        rows=rows,
        series={
            "cpu_ratios": np.array(cpu_ratios),
            "io_ratios": np.array(io_ratios),
            "demand_ratios": np.array(demand_ratios),
            "demand_means": np.array(demand_means),
        },
        findings={
            "base_ratio": cpu_ratios[0],
            "cpu_cost_up_ratio_down": cpu_ratios[-1] < cpu_ratios[0],
            "io_cost_up_ratio_up": io_ratios[-1] > io_ratios[0],
            "heavy_demand_kills_saving": demand_ratios[-1] > 0.85,
            "demand_trend_monotone_up": bool(
                np.all(np.diff(np.array(demand_ratios)) > -0.05)
            ),
        },
    )
