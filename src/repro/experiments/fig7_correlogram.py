"""Figure 7 — ACF and PACF correlograms of the selected series.

The paper plots both out to lag ~30 (x-axis normalized so 1.0 = lag 24) and
observes "certain degree of correlation with its past at certain lag value,
e.g., lag = 3 ... However, such a correlation is not strong enough because
its value is greatly deviated from 1".
"""

from __future__ import annotations

from repro.market import paper_window, reference_dataset
from repro.timeseries import correlogram
from .base import ExperimentResult

__all__ = ["run"]


def run(vm_class: str = "c1.medium", max_lag: int = 30, seed: int | None = None) -> ExperimentResult:
    """Regenerate Fig. 7's ACF/PACF with the 95 % confidence band."""
    dataset = reference_dataset() if seed is None else reference_dataset(seed)
    prices = paper_window(dataset[vm_class]).estimation
    cg = correlogram(prices, max_lag)
    significant = cg.significant_acf_lags()
    rows = [
        {
            "lag": int(k),
            "acf": float(cg.acf_values[k]),
            "pacf": float(cg.pacf_values[k]),
            "significant": bool(abs(cg.acf_values[k]) > cg.confidence_limit),
        }
        for k in range(1, max_lag + 1)
    ]
    return ExperimentResult(
        experiment="fig7",
        title="ACF and PACF correlograms of the selected series",
        rows=rows,
        series={
            "lags": cg.lags,
            "acf": cg.acf_values,
            "pacf": cg.pacf_values,
        },
        findings={
            "confidence_limit": cg.confidence_limit,
            "some_lags_significant": significant.size > 0,
            "correlation_weak_overall": cg.max_abs_acf() < 0.9,
            "max_abs_acf": cg.max_abs_acf(),
        },
    )
