"""Figure 10 — DRRP vs no-planning cost, and DRRP's cost structure.

Upper panel: daily per-instance cost of No-Plan vs DRRP for the three
planning classes; the paper reports reductions of roughly 16 % / 33 % /
49 % growing with class power ("nearly fifty percent" for m1.xlarge).

Lower panel: DRRP's cost decomposition per class — the compute share stays
"relatively stable" while the I/O+storage share grows with class power
(pricier instances make the planner hold more inventory).
"""

from __future__ import annotations

import numpy as np

from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_drrp, solve_noplan
from repro.market import PLANNING_CLASSES, ec2_catalog
from .base import ExperimentResult

__all__ = ["run"]


def run(
    horizon: int = 24,
    seed: int = 2012,
    n_trials: int = 5,
    backend: str = "auto",
    listener=None,
) -> ExperimentResult:
    """Regenerate Fig. 10 averaged over ``n_trials`` demand draws.

    ``listener`` (a telemetry callback or hub) receives the solve events
    of every DRRP solve in the sweep, so instrumented runs (``repro run
    fig10 --trace ...``) get real per-solve spans and work counters.
    """
    catalog = ec2_catalog()
    demand_model = NormalDemand()
    rows = []
    reductions = {}
    io_shares = {}
    for name in PLANNING_CLASSES:
        vm = catalog[name]
        drrp_costs, noplan_costs = [], []
        shares_acc = {"compute": 0.0, "io_storage": 0.0, "transfer": 0.0}
        for k in range(n_trials):
            demand = demand_model.sample(horizon, seed + k)
            inst = DRRPInstance(
                demand=demand,
                costs=on_demand_schedule(vm, horizon),
                vm_name=name,
            )
            plan = solve_drrp(inst, backend=backend, listener=listener)
            base = solve_noplan(inst)
            drrp_costs.append(plan.total_cost)
            noplan_costs.append(base.total_cost)
            for key, val in plan.cost_shares().items():
                shares_acc[key] += val / n_trials
        drrp_mean = float(np.mean(drrp_costs))
        noplan_mean = float(np.mean(noplan_costs))
        red = 1.0 - drrp_mean / noplan_mean
        reductions[name] = red
        io_shares[name] = shares_acc["io_storage"]
        rows.append(
            {
                "vm_class": name,
                "noplan_daily_cost": noplan_mean,
                "drrp_daily_cost": drrp_mean,
                "reduction_pct": 100.0 * red,
                "share_compute": shares_acc["compute"],
                "share_io_storage": shares_acc["io_storage"],
                "share_transfer": shares_acc["transfer"],
            }
        )
    ordered = list(PLANNING_CLASSES)
    return ExperimentResult(
        experiment="fig10",
        title="Cost comparison: DRRP vs no-planning, and DRRP cost structure",
        rows=rows,
        findings={
            "drrp_always_cheaper": all(r > 0 for r in reductions.values()),
            "reduction_grows_with_class_power": (
                reductions[ordered[0]] < reductions[ordered[1]] < reductions[ordered[2]]
            ),
            "xlarge_reduction_near_half": abs(reductions["m1.xlarge"] - 0.5) < 0.15,
            "io_share_grows_with_class_power": (
                io_shares[ordered[0]] <= io_shares[ordered[1]] <= io_shares[ordered[2]]
            ),
        },
    )
