"""Figure 12(a) — overpay vs the perfect-information ideal cost.

For each planning class, five schemes run in the rolling-horizon simulator
against the same realized spot-price day:

* ``on-demand``   — planning, but renting at the fixed price λ;
* ``det-predict`` — DRRP fed the SARIMA day-ahead predictions as bids;
* ``sto-predict`` — SRRP with the same predictions as bids;
* ``det-exp-mean`` / ``sto-exp-mean`` — the common fixed-bid strategy
  (expected mean of the history) under DRRP / SRRP.

The ideal cost is the oracle's (DRRP over the realized prices).  The
paper's qualitative results: on-demand overpays by far the most, and SRRP
outperforms its DRRP counterpart.  The default evaluation spans three days
from Feb 1 2011 rather than the paper's single day: out-of-bid events are
what separates SRRP from DRRP ("SRRP performs significantly better than
DRRP only when the chance of losing the spot instance auction is
nontrivial", §V-D), and a longer window averages over their incidence.
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    DeterministicPolicy,
    NormalDemand,
    OnDemandPolicy,
    Planner,
    StochasticPolicy,
)
from repro.market import (
    MeanBids,
    PLANNING_CLASSES,
    ScheduleBids,
    hourly_series,
    hours_since_epoch,
    paper_window,
    reference_dataset,
)
from .base import ExperimentResult
from .fig8_prediction import fit_paper_forecaster

__all__ = ["run"]


def run(
    horizon: int = 72,
    lookahead: int = 6,
    max_branching: int = 3,
    seed: int = 2012,
    backend: str = "auto",
    classes: tuple[str, ...] = PLANNING_CLASSES,
    forecast_spec=None,
) -> ExperimentResult:
    """Regenerate Fig. 12(a): overpay percentages per class and scheme."""
    dataset = reference_dataset()
    demand = NormalDemand().sample(horizon, seed)
    rows = []
    findings = {"on_demand_worst_everywhere": True}
    sto_wins = 0
    pairs = 0

    from datetime import date

    eval_start = hours_since_epoch(date(2011, 2, 1))
    for name in classes:
        window = paper_window(dataset[name])
        history = window.estimation
        realized = hourly_series(dataset[name], eval_start, eval_start + horizon)
        model = fit_paper_forecaster(history, forecast_spec)
        predicted = model.forecast(horizon)

        mean_bids = MeanBids()
        predict_bids = ScheduleBids(values=predicted)
        planner = Planner(name, backend=backend)
        policies = {
            "on-demand": OnDemandPolicy(lookahead=lookahead, backend=backend),
            "det-predict": DeterministicPolicy(
                predict_bids, lookahead=lookahead, backend=backend, name="det-predict"
            ),
            "sto-predict": StochasticPolicy(
                predict_bids, lookahead=lookahead, max_branching=max_branching,
                backend=backend, name="sto-predict",
            ),
            "det-exp-mean": DeterministicPolicy(
                mean_bids, lookahead=lookahead, backend=backend, name="det-exp-mean"
            ),
            "sto-exp-mean": StochasticPolicy(
                mean_bids, lookahead=lookahead, max_branching=max_branching,
                backend=backend, name="sto-exp-mean",
            ),
        }
        comparison = planner.evaluate_policies(
            realized, demand, history, policies=policies, lookahead=lookahead
        )
        over = comparison.overpay_percentages()
        rows.append(
            {
                "vm_class": name,
                "ideal_cost": comparison.ideal_cost,
                **{k: over[k] for k in policies},
            }
        )
        for strategy in ("predict", "exp-mean"):
            pairs += 1
            if over[f"sto-{strategy}"] <= over[f"det-{strategy}"] + 1e-9:
                sto_wins += 1
        if over["on-demand"] < max(v for k, v in over.items() if k != "oracle") - 1e-9:
            findings["on_demand_worst_everywhere"] = False

    findings["srrp_beats_drrp_in_most_pairs"] = sto_wins >= (pairs + 1) // 2
    findings["srrp_win_rate"] = f"{sto_wins}/{pairs}"
    findings["overpay_all_nonnegative"] = all(
        all(v >= -1e-6 for k, v in row.items() if k not in ("vm_class", "ideal_cost"))
        for row in rows
    )
    return ExperimentResult(
        experiment="fig12a",
        title="Overpay percentage vs ideal-case cost, five schemes x three classes",
        rows=rows,
        findings=findings,
    )
