"""Extension — value of the planning horizon length.

Not a paper figure, but the quantity behind §V-D's rolling-horizon
discussion: how much of DRRP's saving requires looking far ahead?  We
solve DRRP for horizons from 4 h to a week on the same demand stream
(using the Wagner-Whitin DP, which is exact and fast at any length) and
report cost per served GB: the marginal value of extra horizon shrinks
fast once a horizon covers a few rental cycles — justifying the paper's
24 h planning window.
"""

from __future__ import annotations

import numpy as np

from repro.core import DRRPInstance, NormalDemand, on_demand_schedule, solve_wagner_whitin
from repro.market import ec2_catalog
from .base import ExperimentResult

__all__ = ["run"]


def run(
    vm_class: str = "m1.large",
    horizons: tuple[int, ...] = (4, 6, 12, 24, 48, 96, 168),
    total_hours: int = 168,
    seed: int = 2012,
) -> ExperimentResult:
    """Cost per GB of rolling DRRP at different lookahead lengths."""
    vm = ec2_catalog()[vm_class]
    demand = NormalDemand().sample(total_hours, seed)
    rows = []
    costs = {}
    for L in horizons:
        if L > total_hours:
            raise ValueError("horizon exceeds the evaluation window")
        total = 0.0
        carry = 0.0
        # plan in consecutive blocks of length L, chaining inventory
        for start in range(0, total_hours, L):
            chunk = demand[start : start + L]
            inst = DRRPInstance(
                demand=chunk,
                costs=on_demand_schedule(vm, chunk.shape[0]),
                initial_storage=carry,
                vm_name=vm_class,
            )
            plan = solve_wagner_whitin(inst)
            total += plan.total_cost
            carry = float(plan.beta[-1])
        per_gb = total / demand.sum()
        costs[L] = total
        rows.append(
            {
                "horizon_h": L,
                "weekly_cost": total,
                "cost_per_gb": per_gb,
            }
        )
    longest = costs[max(horizons)]
    shortest = costs[min(horizons)]
    gain_total = 1 - longest / shortest
    # how much of the total gain the 24h horizon already captures
    gain_24 = (shortest - costs.get(24, longest)) / max(shortest - longest, 1e-12)
    return ExperimentResult(
        experiment="ext_horizon",
        title="DRRP cost vs planning-horizon length (week of demand)",
        rows=rows,
        findings={
            "longer_horizons_never_cost_more": all(
                costs[a] >= costs[b] - 1e-9
                for a, b in zip(sorted(horizons), sorted(horizons)[1:])
            ),
            "day_horizon_captures_most_value": gain_24 > 0.7,
            "total_gain_pct": 100.0 * gain_total,
        },
    )
