"""Figure 6 — decomposition of the selected series into trend/seasonal/remainder.

The paper decomposes the hourly-resampled window and reads off two facts:
the series "does not exhibit clear trend" but "advertises certain cyclic
pattern" with a 24-hour season — the justification for Seasonal ARIMA.
"""

from __future__ import annotations

import numpy as np

from repro.market import paper_window, reference_dataset
from repro.timeseries import decompose_additive
from .base import ExperimentResult

__all__ = ["run"]


def run(vm_class: str = "c1.medium", period: int = 24, seed: int | None = None) -> ExperimentResult:
    """Regenerate Fig. 6's three-component decomposition."""
    dataset = reference_dataset() if seed is None else reference_dataset(seed)
    prices = paper_window(dataset[vm_class]).estimation
    d = decompose_additive(prices, period)

    overall_spread = float(prices.max() - prices.min())
    trend_share = d.trend_range() / overall_spread if overall_spread else 0.0
    rows = [
        {
            "vm_class": vm_class,
            "period": period,
            "trend_range": d.trend_range(),
            "seasonal_amplitude": d.seasonal_amplitude,
            "seasonal_strength": d.seasonal_strength(),
            "remainder_std": float(np.nanstd(d.remainder)),
            "trend_share_of_spread": trend_share,
        }
    ]
    return ExperimentResult(
        experiment="fig6",
        title="Trend/seasonal/remainder decomposition of the selected series",
        rows=rows,
        series={
            "observed": d.observed,
            "trend": d.trend,
            "seasonal": d.seasonal,
            "remainder": d.remainder,
        },
        findings={
            "no_clear_trend": trend_share < 0.5,
            "cyclic_pattern_present": d.seasonal_amplitude > 0.0,
            "seasonality_is_mild": d.seasonal_strength() < 0.6,
        },
    )
