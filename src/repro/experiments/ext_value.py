"""Extension — EVPI and VSS of the SRRP model on the reference market.

Not a paper figure: the classic stochastic-programming metrics that put
numbers on the paper's two qualitative claims — prediction would be
valuable if you had it (EVPI > 0: Fig. 12(a)'s gap between every policy
and the oracle) and modeling the uncertainty beats planning at the mean
(VSS ≥ 0: SRRP vs DRRP-at-expected-price).

For each planning class, the SRRP instance is built exactly as the rolling
``sto-exp-mean`` policy builds it (mean bid, bid-adjusted tree).
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    NormalDemand,
    SRRPInstance,
    bid_adjusted_stage_distributions,
    build_tree,
    evaluate_stochastic_value,
    on_demand_schedule,
)
from repro.market import PLANNING_CLASSES, ec2_catalog, paper_window, reference_dataset
from repro.stats import EmpiricalDistribution
from .base import ExperimentResult

__all__ = ["run"]


def run(
    horizon: int = 6,
    max_branching: int = 3,
    seed: int = 2012,
    backend: str = "auto",
    classes: tuple[str, ...] = PLANNING_CLASSES,
) -> ExperimentResult:
    """Compute WS/SP/EEV and the derived EVPI/VSS per VM class."""
    dataset = reference_dataset()
    catalog = ec2_catalog()
    demand = NormalDemand().sample(horizon, seed)
    rows = []
    for name in classes:
        vm = catalog[name]
        history = paper_window(dataset[name]).estimation
        base = EmpiricalDistribution(history)
        bid = float(history.mean())
        dists = bid_adjusted_stage_distributions(
            base, np.full(horizon - 1, bid), vm.on_demand_price, max_branching
        )
        tree = build_tree(bid, dists)
        inst = SRRPInstance(
            demand=demand,
            costs=on_demand_schedule(vm, horizon),
            tree=tree,
            vm_name=name,
        )
        report = evaluate_stochastic_value(inst, backend=backend)
        rows.append(
            {
                "vm_class": name,
                "wait_and_see": report.wait_and_see,
                "stochastic": report.stochastic,
                "expected_value_policy": report.expected_value_policy,
                "evpi": report.evpi,
                "vss": report.vss,
            }
        )
    return ExperimentResult(
        experiment="ext_value",
        title="EVPI and VSS of SRRP under mean-bid scenario trees",
        rows=rows,
        findings={
            "chain_ws_le_sp_le_eev": all(
                r["wait_and_see"] <= r["stochastic"] + 1e-9
                and r["stochastic"] <= r["expected_value_policy"] + 1e-9
                for r in rows
            ),
            "perfect_information_has_value": all(r["evpi"] >= -1e-9 for r in rows),
        },
    )
