"""Figure 4 — variation of the daily spot-price update frequency.

The paper plots updates/day for linux-c1-medium over the crawl and uses the
visible irregularity to justify resampling onto an hourly grid before any
time-series analysis.
"""

from __future__ import annotations

import numpy as np

from repro.market import daily_update_counts, reference_dataset, update_interval_stats
from .base import ExperimentResult

__all__ = ["run"]


def run(vm_class: str = "c1.medium", seed: int | None = None) -> ExperimentResult:
    """Regenerate Fig. 4's updates-per-day series and its dispersion stats."""
    dataset = reference_dataset() if seed is None else reference_dataset(seed)
    trace = dataset[vm_class]
    counts = daily_update_counts(trace)
    interval = update_interval_stats(trace)
    rows = [
        {
            "vm_class": vm_class,
            "days": counts.size,
            "min_per_day": int(counts.min()),
            "max_per_day": int(counts.max()),
            "mean_per_day": float(counts.mean()),
            "std_per_day": float(counts.std()),
            "gap_cv": interval["coefficient_of_variation"],
        }
    ]
    return ExperimentResult(
        experiment="fig4",
        title="Variation of daily spot price update frequency",
        rows=rows,
        series={"daily_update_counts": counts},
        findings={
            "sampling_is_irregular": interval["coefficient_of_variation"] > 0.3,
            "daily_rate_varies_widely": bool(counts.max() >= 3 * max(counts.min(), 1)),
        },
    )
