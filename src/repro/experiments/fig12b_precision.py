"""Figure 12(b) — impact of bid approximation precision on SRRP cost.

Taking the cost of bidding the *actual* price realization as baseline, the
paper creates artificial bids that deviate by ±2 % … ±10 % from the
realized prices, runs SRRP with them, and plots the percent cost error.
Errors grow as the approximation degrades; under-bidding hurts more than
over-bidding because it triggers out-of-bid events that fall back to λ.
"""

from __future__ import annotations

import numpy as np

from repro.core import StochasticPolicy, simulate_policy
from repro.market import PerturbedActualBids, ec2_catalog, paper_window, reference_dataset
from repro.stats import EmpiricalDistribution
from repro.core.demand import NormalDemand
from .base import ExperimentResult

__all__ = ["run"]


def run(
    vm_class: str = "c1.medium",
    horizon: int = 24,
    lookahead: int = 6,
    max_branching: int = 3,
    deviations: tuple[float, ...] = (-0.10, -0.08, -0.06, -0.04, -0.02, 0.02, 0.04, 0.06, 0.08, 0.10),
    seed: int = 2012,
    backend: str = "auto",
) -> ExperimentResult:
    """Regenerate Fig. 12(b): percent cost error vs bid deviation."""
    dataset = reference_dataset()
    vm = ec2_catalog()[vm_class]
    window = paper_window(dataset[vm_class])
    history = window.estimation
    realized = window.validation[:horizon]
    demand = NormalDemand().sample(horizon, seed)
    base_dist = EmpiricalDistribution(history)

    def srrp_cost(deviation: float) -> float:
        policy = StochasticPolicy(
            PerturbedActualBids(actual=realized, deviation=deviation),
            lookahead=lookahead,
            max_branching=max_branching,
            backend=backend,
            name=f"sto-dev{deviation:+.0%}",
        )
        res = simulate_policy(
            policy, realized, demand, vm,
            base_distribution=base_dist, price_history=history,
        )
        return res.total_cost

    baseline = srrp_cost(0.0)  # bids == actual realization
    rows = []
    errors = {}
    for dev in deviations:
        cost = srrp_cost(dev)
        err = 100.0 * (cost - baseline) / baseline
        errors[dev] = err
        rows.append({"deviation_pct": 100.0 * dev, "percent_error": err})

    under = [errors[d] for d in deviations if d < 0]
    over = [errors[d] for d in deviations if d > 0]
    worst_under = max(abs(e) for e in under)
    worst_over = max(abs(e) for e in over)
    small = [abs(errors[d]) for d in deviations if abs(d) <= 0.04]
    large = [abs(errors[d]) for d in deviations if abs(d) >= 0.08]
    return ExperimentResult(
        experiment="fig12b",
        title="Impact of bid approximation precision on SRRP cost",
        rows=rows,
        series={"baseline_cost": np.array([baseline])},
        findings={
            "errors_grow_with_imprecision": float(np.mean(large)) >= float(np.mean(small)) - 1.0,
            "underbidding_hurts_at_least_as_much": worst_under >= worst_over - 1.0,
            "worst_error_pct": max(worst_under, worst_over),
        },
    )
