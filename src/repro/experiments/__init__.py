"""One module per figure of the paper's evaluation (§IV analysis + §V
simulations); each exposes ``run(...) -> ExperimentResult`` with the
paper's parameters as defaults.  ``report.run_all()`` regenerates all."""

from .base import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
