"""Shared experiment result container and rendering helpers.

Every ``figN_*`` module exposes ``run(...) -> ExperimentResult`` that
regenerates the corresponding figure's data series with the paper's
parameters as defaults.  Results render to aligned-text tables so the
benchmark harness and EXPERIMENTS.md show exactly the rows the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["ExperimentResult", "format_table"]


def format_table(rows: list[dict[str, Any]], float_fmt: str = "{:.4f}") -> str:
    """Render dict-rows as an aligned text table (column order from row 0)."""
    if not rows:
        return "(no rows)"
    cols = list(rows[0].keys())

    def fmt(v) -> str:
        if isinstance(v, (float, np.floating)):
            return float_fmt.format(float(v))
        return str(v)

    rendered = [[fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)]
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(cell.ljust(w) for cell, w in zip(row, widths)) for row in rendered)
    return f"{header}\n{sep}\n{body}"


@dataclass
class ExperimentResult:
    """One reproduced figure.

    Attributes
    ----------
    experiment:
        Identifier ("fig3", "fig12a", ...).
    title:
        What the paper's figure shows.
    rows:
        Tabular data (the rows/series the paper reports).
    series:
        Raw arrays for callers who want to re-plot.
    findings:
        Checked claims: mapping of claim -> bool/str (the paper's
        qualitative statements, verified on the reproduction).
    """

    experiment: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    series: dict[str, np.ndarray] = field(default_factory=dict)
    findings: dict[str, Any] = field(default_factory=dict)

    def to_text(self) -> str:
        parts = [f"== {self.experiment}: {self.title} ==", format_table(self.rows)]
        if self.findings:
            parts.append("findings:")
            parts.extend(f"  - {k}: {v}" for k, v in self.findings.items())
        return "\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-safe view of the reported data (rows + checked findings).

        ``series`` is deliberately excluded: raw arrays are re-plotting
        material, while rows/findings are what the paper reports — and
        what a replay must reproduce for the digest to match.
        """
        from repro.solver.telemetry import jsonable

        return {
            "experiment": self.experiment,
            "title": self.title,
            "rows": jsonable(self.rows),
            "findings": jsonable(self.findings),
        }

    def digest(self) -> str:
        """Stable ``sha256:`` digest of the reported data (see
        :func:`repro.obs.result_digest`): identical across faithful
        replays, different whenever a row or finding drifts."""
        from repro.obs.manifest import result_digest

        return result_digest(self.to_dict())

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
