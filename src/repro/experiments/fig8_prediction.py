"""Figure 8 — day-ahead SARIMA prediction for the selected series.

The paper fits the best SARIMA (auto-selected; mostly
SARIMA(2,0,1 or 2)×(2,0,0)₂₄) on the two-month estimation window, predicts
the next 24 hours, and finds the forecasts "mostly hanging over the average
price line": the MSPE is "only slightly better than the simple prediction
using the expected mean value" — the motivation for SRRP.
"""

from __future__ import annotations

import numpy as np

from repro.market import paper_window, reference_dataset
from repro.stats import mspe
from repro.timeseries import (
    AutoARIMASpec,
    adf_test,
    auto_arima,
    fit_holt_winters,
    mean_forecast,
    naive_forecast,
)
from .base import ExperimentResult

__all__ = ["run", "fit_paper_forecaster"]


def fit_paper_forecaster(history: np.ndarray, spec: AutoARIMASpec | None = None):
    """Fit the paper's model-selection pipeline; returns the fitted result."""
    spec = spec or AutoARIMASpec(max_p=2, max_q=2, max_P=2, max_Q=0, s=24)
    return auto_arima(np.asarray(history, dtype=float), spec)


def run(
    vm_class: str = "c1.medium",
    horizon: int = 24,
    seed: int | None = None,
    spec: AutoARIMASpec | None = None,
) -> ExperimentResult:
    """Regenerate Fig. 8: fitted model, day-ahead forecasts, MSPE comparison."""
    dataset = reference_dataset() if seed is None else reference_dataset(seed)
    window = paper_window(dataset[vm_class])
    history, actual = window.estimation, window.validation[:horizon]

    model = fit_paper_forecaster(history, spec)
    predicted = model.forecast(horizon)
    mean_pred = mean_forecast(history, horizon)
    naive_pred = naive_forecast(history, horizon)

    hw = fit_holt_winters(history, period=24)
    hw_pred = hw.forecast(horizon)

    model_mspe = mspe(actual, predicted)
    mean_mspe = mspe(actual, mean_pred)
    naive_mspe = mspe(actual, naive_pred)
    hw_mspe = mspe(actual, hw_pred)

    rows = [
        {"predictor": model.order.label, "mspe_x1e6": 1e6 * model_mspe},
        {"predictor": "holt-winters(24)", "mspe_x1e6": 1e6 * hw_mspe},
        {"predictor": "expected-mean", "mspe_x1e6": 1e6 * mean_mspe},
        {"predictor": "naive-last-value", "mspe_x1e6": 1e6 * naive_mspe},
    ]
    # "hanging over the average line": mean absolute gap between the
    # forecast path and the historical mean is small vs price spread
    spread = float(history.max() - history.min())
    hover = float(np.mean(np.abs(predicted - history.mean()))) / spread if spread else 0.0
    return ExperimentResult(
        experiment="fig8",
        title="Day-ahead prediction for the selected series",
        rows=rows,
        series={
            "history_tail": history[-48:],
            "actual": actual,
            "predicted": predicted,
            "mean_line": mean_pred,
        },
        findings={
            "selected_order": model.order.label,
            # the paper's punchline inverted as a check: SARIMA never achieves
            # a *substantial* MSPE improvement over the trivial mean predictor
            "no_substantial_skill_over_mean": model_mspe >= 0.5 * mean_mspe,
            "improvement_over_mean_small": (1 - model_mspe / mean_mspe) < 0.5,
            "forecasts_hover_near_mean": hover < 0.3,
            "rmse_within_two_price_quanta": float(np.sqrt(model_mspe)) < 0.002,
            # the paper verifies stationarity before fitting d=0 models
            "series_stationary_adf": adf_test(history).rejects_unit_root(),
            # robustness: Holt-Winters extracts no substantial skill either
            "holt_winters_no_substantial_skill": hw_mspe >= 0.5 * mean_mspe,
        },
    )
