"""Figure 5 — histogram + density of the selected price window vs a normal fit.

The paper overlays the empirical density of the two-month c1.medium window
on its histogram, together with a normal curve of matched mean/variance,
and concludes (supported by Shapiro–Wilk) that "normal distribution is
inadequate to approximate the selected data set".
"""

from __future__ import annotations

import numpy as np

from repro.market import paper_window, reference_dataset
from repro.stats import GaussianKDE, histogram, jarque_bera, normal_fit, normal_pdf, shapiro_wilk
from .base import ExperimentResult

__all__ = ["run"]


def run(vm_class: str = "c1.medium", bins: int = 30, seed: int | None = None) -> ExperimentResult:
    """Regenerate Fig. 5: histogram, KDE curve, matched normal, tests."""
    dataset = reference_dataset() if seed is None else reference_dataset(seed)
    window = paper_window(dataset[vm_class])
    prices = window.estimation

    counts, edges = histogram(prices, bins=bins)
    kde = GaussianKDE(prices)
    xs, density = kde.grid(num=256)
    mu, sd = normal_fit(prices)
    normal_curve = normal_pdf(xs, mu, sd)
    sw = shapiro_wilk(prices)
    jb = jarque_bera(prices)

    # quantify the visible mismatch between KDE and the normal overlay
    l1_gap = float(np.trapezoid(np.abs(density - normal_curve), xs))

    rows = [
        {
            "vm_class": vm_class,
            "n": prices.size,
            "mean": mu,
            "std": sd,
            "shapiro_W": sw.statistic,
            "shapiro_p": sw.p_value,
            "jarque_bera_p": jb.p_value,
            "kde_vs_normal_L1": l1_gap,
        }
    ]
    return ExperimentResult(
        experiment="fig5",
        title="Histogram and density of the selected window vs normal approximation",
        rows=rows,
        series={
            "histogram_counts": counts,
            "histogram_edges": edges,
            "density_x": xs,
            "density": density,
            "normal_curve": normal_curve,
        },
        findings={
            "normality_rejected_shapiro": sw.rejects_normality(),
            "normality_rejected_jarque_bera": jb.rejects_normality(),
            "normal_curve_visibly_off": l1_gap > 0.1,
        },
    )
