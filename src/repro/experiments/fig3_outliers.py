"""Figure 3 — box-and-whisker outlier analysis of spot prices per VM class.

The paper plots log-scale box-whisker diagrams of the four linux classes'
spot prices and observes (i) more outliers in more powerful classes and
(ii) an overall outlier share below 3 % even for c1.xlarge.
"""

from __future__ import annotations

from repro.market import ANALYSIS_CLASSES, ec2_catalog, reference_dataset
from repro.stats import iqr_outliers
from .base import ExperimentResult

__all__ = ["run"]


def run(seed: int | None = None) -> ExperimentResult:
    """Regenerate Fig. 3's per-class box statistics and outlier shares."""
    dataset = reference_dataset() if seed is None else reference_dataset(seed)
    catalog = ec2_catalog()
    rows = []
    fractions = {}
    for name in ANALYSIS_CLASSES:
        trace = dataset[name]
        _, stats = iqr_outliers(trace.prices)
        fractions[name] = stats.outlier_fraction
        rows.append(
            {
                "vm_class": name,
                "n_updates": stats.n_total,
                "q1": stats.q1,
                "median": stats.median,
                "q3": stats.q3,
                "upper_fence": stats.upper_fence,
                "outlier_pct": 100.0 * stats.outlier_fraction,
            }
        )
    ordered = sorted(ANALYSIS_CLASSES, key=lambda n: catalog[n].power_rank)
    monotone = all(
        fractions[a] <= fractions[b] + 1e-12 for a, b in zip(ordered, ordered[1:])
    )
    return ExperimentResult(
        experiment="fig3",
        title="Box-and-whisker outlier analysis of spot price data sets",
        rows=rows,
        series={name: dataset[name].prices for name in ANALYSIS_CLASSES},
        findings={
            "outliers_below_3pct_everywhere": all(f < 0.03 for f in fractions.values()),
            "outliers_increase_with_class_power": monotone,
        },
    )
