"""Run every experiment and render a combined report.

``python -m repro.experiments.report`` regenerates all ten figures' data
and prints them — the programmatic backbone of EXPERIMENTS.md.

:func:`run_instrumented` is the provenance-carrying variant used by
``repro run``: it wraps one experiment in a root span, records the full
event stream, and produces a ``manifest.json`` (seed/config, package
versions, backend chain, event counts, result digest) plus optional
Chrome-trace and JSONL dumps, so any figure can be replayed and diffed.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Callable

from .base import ExperimentResult
from . import (
    ext_availability,
    ext_horizon,
    ext_risk,
    ext_value,
    fig3_outliers,
    fig4_updates,
    fig5_histogram,
    fig6_decompose,
    fig7_correlogram,
    fig8_prediction,
    fig10_drrp_costs,
    fig11_sensitivity,
    fig12a_overpay,
    fig12b_precision,
)

__all__ = ["ALL_EXPERIMENTS", "run_all", "render_report", "run_instrumented", "InstrumentedRun"]

#: Experiment id -> zero-argument runner with the paper's default parameters.
ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig3": fig3_outliers.run,
    "fig4": fig4_updates.run,
    "fig5": fig5_histogram.run,
    "fig6": fig6_decompose.run,
    "fig7": fig7_correlogram.run,
    "fig8": fig8_prediction.run,
    "fig10": fig10_drrp_costs.run,
    "fig11": fig11_sensitivity.run,
    "fig12a": fig12a_overpay.run,
    "fig12b": fig12b_precision.run,
    # extensions beyond the paper (see EXPERIMENTS.md)
    "ext_value": ext_value.run,
    "ext_availability": ext_availability.run,
    "ext_horizon": ext_horizon.run,
    "ext_risk": ext_risk.run,
}


def run_all(only: list[str] | None = None) -> dict[str, ExperimentResult]:
    """Run all (or a subset of) experiments; returns id -> result."""
    ids = only or list(ALL_EXPERIMENTS)
    unknown = set(ids) - set(ALL_EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiment ids: {sorted(unknown)}")
    return {eid: ALL_EXPERIMENTS[eid]() for eid in ids}


def render_report(results: dict[str, ExperimentResult]) -> str:
    """Render results into one text report."""
    return "\n\n".join(results[eid].to_text() for eid in results)


@dataclass
class InstrumentedRun:
    """Everything one observed experiment run produced."""

    result: ExperimentResult
    manifest: "RunManifest"  # noqa: F821 - imported lazily below
    roots: list = dc_field(default_factory=list)     # span forest
    markers: list = dc_field(default_factory=list)
    events: list = dc_field(default_factory=list)
    registry: object = None                          # MetricsRegistry
    manifest_path: Path | None = None
    trace_path: Path | None = None
    events_path: Path | None = None


def run_instrumented(
    eid: str,
    out_dir: str | Path | None = None,
    trace_path: str | Path | None = None,
    listener=None,
    **runner_kwargs,
) -> InstrumentedRun:
    """Run one experiment under full observability.

    The run is bracketed by an ``experiment:<eid>`` root span; runners
    that accept a ``listener`` parameter (e.g. fig10) additionally stream
    every inner solve's events into the same hub.  With ``out_dir`` set,
    ``manifest.json`` and ``events.jsonl`` are written there; with
    ``trace_path`` set, a Chrome trace-event file is written too.
    ``runner_kwargs`` (seed, horizon, backend, ...) are forwarded to the
    runner and recorded in the manifest's config.
    """
    from repro.obs import (
        MetricsAggregator,
        MetricsRegistry,
        RunManifest,
        Tracer,
        span,
        write_chrome_trace,
        write_events_jsonl,
    )
    from repro.solver.telemetry import EventRecorder, Telemetry

    if eid not in ALL_EXPERIMENTS:
        raise ValueError(f"unknown experiment id {eid!r}; expected one of {sorted(ALL_EXPERIMENTS)}")
    runner = ALL_EXPERIMENTS[eid]

    recorder = EventRecorder()
    tracer = Tracer()
    registry = MetricsRegistry()
    listeners = [recorder, tracer, MetricsAggregator(registry)]
    if listener is not None:
        listeners.append(listener)
    hub = Telemetry(listeners=listeners)

    kwargs = dict(runner_kwargs)
    if "listener" in inspect.signature(runner).parameters:
        kwargs.setdefault("listener", hub)
    with span(hub, f"experiment:{eid}") as info:
        result = runner(**kwargs)
        info["rows"] = len(result.rows)
    roots = tracer.finish()

    seed = kwargs.get("seed")
    config = {k: v for k, v in kwargs.items() if k != "listener"}
    manifest = RunManifest.from_run(
        "experiment",
        eid,
        result=result.to_dict(),
        seed=seed,
        config=config,
        recorded_events=recorder.events,
        elapsed=recorder.events[-1].t if recorder.events else None,
    )
    run = InstrumentedRun(
        result=result, manifest=manifest, roots=roots,
        markers=tracer.markers, events=recorder.events, registry=registry,
    )
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        run.manifest_path = manifest.write(out_dir / "manifest.json")
        run.events_path = write_events_jsonl(out_dir / "events.jsonl", recorder.events)
        if trace_path is None:
            trace_path = out_dir / f"{eid}.trace.json"
    if trace_path is not None:
        run.trace_path = write_chrome_trace(trace_path, roots, tracer.markers, label=f"repro {eid}")
    return run


def main(argv: list[str] | None = None) -> None:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate the paper's figures")
    parser.add_argument("experiments", nargs="*", help="subset of experiment ids")
    args = parser.parse_args(argv)
    results = run_all(args.experiments or None)
    print(render_report(results))


if __name__ == "__main__":  # pragma: no cover
    main()
