"""Run every experiment and render a combined report.

``python -m repro.experiments.report`` regenerates all ten figures' data
and prints them — the programmatic backbone of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from .base import ExperimentResult
from . import (
    ext_availability,
    ext_horizon,
    ext_risk,
    ext_value,
    fig3_outliers,
    fig4_updates,
    fig5_histogram,
    fig6_decompose,
    fig7_correlogram,
    fig8_prediction,
    fig10_drrp_costs,
    fig11_sensitivity,
    fig12a_overpay,
    fig12b_precision,
)

__all__ = ["ALL_EXPERIMENTS", "run_all", "render_report"]

#: Experiment id -> zero-argument runner with the paper's default parameters.
ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "fig3": fig3_outliers.run,
    "fig4": fig4_updates.run,
    "fig5": fig5_histogram.run,
    "fig6": fig6_decompose.run,
    "fig7": fig7_correlogram.run,
    "fig8": fig8_prediction.run,
    "fig10": fig10_drrp_costs.run,
    "fig11": fig11_sensitivity.run,
    "fig12a": fig12a_overpay.run,
    "fig12b": fig12b_precision.run,
    # extensions beyond the paper (see EXPERIMENTS.md)
    "ext_value": ext_value.run,
    "ext_availability": ext_availability.run,
    "ext_horizon": ext_horizon.run,
    "ext_risk": ext_risk.run,
}


def run_all(only: list[str] | None = None) -> dict[str, ExperimentResult]:
    """Run all (or a subset of) experiments; returns id -> result."""
    ids = only or list(ALL_EXPERIMENTS)
    unknown = set(ids) - set(ALL_EXPERIMENTS)
    if unknown:
        raise ValueError(f"unknown experiment ids: {sorted(unknown)}")
    return {eid: ALL_EXPERIMENTS[eid]() for eid in ids}


def render_report(results: dict[str, ExperimentResult]) -> str:
    """Render results into one text report."""
    return "\n\n".join(results[eid].to_text() for eid in results)


def main(argv: list[str] | None = None) -> None:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description="Regenerate the paper's figures")
    parser.add_argument("experiments", nargs="*", help="subset of experiment ids")
    args = parser.parse_args(argv)
    results = run_all(args.experiments or None)
    print(render_report(results))


if __name__ == "__main__":  # pragma: no cover
    main()
