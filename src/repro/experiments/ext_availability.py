"""Extension — bid price vs availability and expected effective price.

Not a paper figure: the related-work angle (Andrzejak et al. [19],
Mazzucco & Dumas [20]) made concrete on the reference dataset.  For each
class we report what the common *mean bid* actually buys (its historical
availability and blended effective price including λ fallbacks) and the
bids needed for 90/95/99 % availability — the quantities a planner trades
off when it cannot, or will not, re-plan.
"""

from __future__ import annotations

from repro.market import (
    PLANNING_CLASSES,
    availability_of_bid,
    bid_for_availability,
    ec2_catalog,
    expected_cost_of_bid,
    paper_window,
    reference_dataset,
)
from .base import ExperimentResult

__all__ = ["run"]


def run(classes: tuple[str, ...] = PLANNING_CLASSES) -> ExperimentResult:
    """Availability analysis of the mean bid and quantile bids per class."""
    dataset = reference_dataset()
    catalog = ec2_catalog()
    rows = []
    for name in classes:
        vm = catalog[name]
        prices = paper_window(dataset[name]).estimation
        mean_bid = float(prices.mean())
        rows.append(
            {
                "vm_class": name,
                "mean_bid": mean_bid,
                "mean_bid_availability": availability_of_bid(prices, mean_bid),
                "mean_bid_eff_price": expected_cost_of_bid(prices, mean_bid, vm.on_demand_price),
                "bid_90pct": bid_for_availability(prices, 0.90),
                "bid_95pct": bid_for_availability(prices, 0.95),
                "bid_99pct": bid_for_availability(prices, 0.99),
            }
        )
    return ExperimentResult(
        experiment="ext_availability",
        title="Bid price vs availability and expected effective price",
        rows=rows,
        findings={
            "mean_bid_risks_outages": all(
                r["mean_bid_availability"] < 0.999 for r in rows
            ),
            "availability_bids_ordered": all(
                r["bid_90pct"] <= r["bid_95pct"] <= r["bid_99pct"] for r in rows
            ),
            "effective_price_above_bid": all(
                r["mean_bid_eff_price"] >= r["mean_bid"] - 1e-12 for r in rows
            ),
        },
    )
