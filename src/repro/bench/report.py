"""Benchmark trajectory report: committed baselines vs fresh records.

The repo commits one JSON baseline per benchmark family
(``BENCH_solver.json``, ``BENCH_sim.json``; CI also produces
``BENCH_service.json``) and CI writes fresh records into a scratch
directory (``REPRO_BENCH_DIR``, conventionally ``bench-out/``).  This
module turns any pile of such records into one table of the
machine-independent *headline* metrics per family — the same ratios the
regression gates compare — with a delta column when both a committed and
a fresh record exist.

``repro bench-report`` is the CLI face; everything here is pure
dict-in/lines-out so tests can drive it on fixture records.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "BENCH_FILES",
    "bench_kind",
    "headline_metrics",
    "load_records",
    "report_lines",
]

#: Committed baseline filenames, in display order.
BENCH_FILES = ("BENCH_solver.json", "BENCH_sim.json", "BENCH_service.json")


def bench_kind(record: dict) -> str:
    """The benchmark family of one record (solver / sim / service / ?)."""
    # The service load generator labels its record "name"; the others
    # use "benchmark".  Either way the value is the family.
    return str(record.get("benchmark") or record.get("name") or "?")


def headline_metrics(record: dict) -> dict[str, float]:
    """The machine-independent headline numbers of one bench record.

    Keyed with stable display names; unknown families yield an empty
    dict rather than raising, so a report never fails on a new record.
    """
    kind = bench_kind(record)
    out: dict[str, float] = {}
    try:
        if kind == "solver":
            out["bb node-throughput ratio (x)"] = float(
                record["bb"]["node_throughput_ratio"])
            out["bb warm-hit rate"] = float(record["bb"]["warm"]["warm_hit_rate"])
            out["benders speedup (x)"] = float(record["benders"]["speedup"])
        elif kind == "sim":
            for policy, ratio in sorted(record.get("ratios", {}).items()):
                out[f"{policy} cost / oracle"] = float(ratio)
            service = record.get("service") or {}
            if "replay_cache_hit_rate" in service:
                out["service replay cache-hit rate"] = float(
                    service["replay_cache_hit_rate"])
        elif kind == "service":
            cache = record.get("cache") or {}
            if "hit_rate" in cache:
                out["cache hit rate"] = float(cache["hit_rate"])
            out["dropped / requests"] = (
                float(record.get("dropped", 0)) / float(record["requests"])
                if record.get("requests") else 0.0
            )
            out["duplicate share"] = float(record.get("duplicate_share", 0.0))
    except (KeyError, TypeError, ValueError):
        pass  # a malformed record reports whatever it yielded so far
    return out


def load_records(root: str | Path, names: tuple[str, ...] = BENCH_FILES) -> dict[str, dict]:
    """Read ``names`` under ``root``; missing or unparsable files are skipped."""
    root = Path(root)
    records: dict[str, dict] = {}
    for name in names:
        path = root / name
        if not path.is_file():
            continue
        try:
            records[name] = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            continue
    return records


def _fmt(value: float) -> str:
    return f"{value:.4f}"


def report_lines(committed_dir: str | Path = ".",
                 fresh_dir: str | Path | None = None) -> list[str]:
    """Render the committed-vs-fresh headline table, one family per block.

    ``fresh_dir`` (``bench-out/`` in CI) is optional: without it, or for
    families it lacks, only the committed column is shown.  Returns
    human-readable lines; empty input yields a single explanatory line.
    """
    committed = load_records(committed_dir)
    fresh = load_records(fresh_dir) if fresh_dir is not None else {}
    names = [n for n in BENCH_FILES if n in committed or n in fresh]
    if not names:
        return [f"no BENCH_*.json records found under {committed_dir}"
                + (f" or {fresh_dir}" if fresh_dir is not None else "")]

    lines: list[str] = []
    for name in names:
        base = committed.get(name)
        new = fresh.get(name)
        kind = bench_kind(base or new)
        lines.append(f"{kind} ({name})")
        base_metrics = headline_metrics(base) if base else {}
        new_metrics = headline_metrics(new) if new else {}
        keys = list(base_metrics) + [k for k in new_metrics if k not in base_metrics]
        if not keys:
            lines.append("  (no headline metrics)")
            continue
        width = max(len(k) for k in keys)
        for key in keys:
            b = base_metrics.get(key)
            f = new_metrics.get(key)
            row = f"  {key:<{width}}  "
            row += f"{_fmt(b):>10}" if b is not None else f"{'-':>10}"
            row += f"  {_fmt(f):>10}" if f is not None else ("" if new is None else f"  {'-':>10}")
            if b is not None and f is not None and b != 0:
                row += f"  {100.0 * (f - b) / abs(b):+7.1f}%"
            lines.append(row)
    return lines
