"""Fleet planning benchmark: tenant throughput, heuristic quality, cache reuse.

Four seeded legs, all deterministic given the config:

* **generate** — :func:`repro.fleet.generate_tenants` builds the seeded
  multi-tenant population (heterogeneous demand profiles, SLAs, market
  pools) used by every other leg.
* **plan** — :func:`repro.fleet.plan_fleet` plans the whole fleet
  end-to-end (heuristic tier, MILP escalation, pool repair) and reports
  tenants/minute plus the :func:`repro.solver.compile_cache_stats`
  breakdown aggregated across worker processes — the structural
  shape-cache hit rate is what makes same-horizon tenants cheap.
* **cohort** — heuristic vs MILP on the first ``milp_sample``
  escalation-eligible tenants' *base* (unknocked) instances.  The MILP is
  exact, so per-tenant ``heuristic / milp >= 1`` and the mean is the
  heuristic's true optimality gap on the cohort the escalation rule
  watches.
* **feasibility** — an independent :func:`verify_fleet_feasible` walk of
  the final fleet plan against every per-tenant constraint and pool cap.

The record is written as ``BENCH_fleet.json`` (``REPRO_BENCH_DIR``
honored).  CI gates only machine-independent quantities: the plan must be
feasible, the cohort cost ratio must stay within the paper-quality band
(mean <= ``COST_RATIO_CEILING``), and the shape-cache hit rate and
escalation fraction must not collapse relative to the committed baseline
(see :func:`check_fleet_regression` and ``docs/fleet.md``).  Absolute
wall times and tenants/minute are recorded for humans but never compared
across hosts.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.bench.solver import write_bench_record
from repro.core.drrp import solve_drrp
from repro.fleet import (
    FleetConfig,
    generate_tenants,
    plan_fleet,
    solve_heuristic,
    uniform_pools,
    verify_fleet_feasible,
)
from repro.obs.spans import span
from repro.solver import reset_compile_cache_stats
from repro.solver.telemetry import Telemetry

__all__ = [
    "FleetBenchConfig",
    "run_fleet_bench",
    "check_fleet_regression",
    "fleet_summary_lines",
]

#: Gate: fail CI when a ratio drops below this fraction of the baseline's.
REGRESSION_TOLERANCE = 0.75

#: Absolute quality ceiling for the heuristic tier (acceptance criterion):
#: mean heuristic/MILP cost ratio on the escalation-eligible cohort.
COST_RATIO_CEILING = 1.05


@dataclass(frozen=True)
class FleetBenchConfig:
    """One benchmark run (defaults match the committed baseline)."""

    seed: int = 0
    tenants: int = 1000
    horizon: int = 24
    utilization: float = 0.6
    milp_sample: int = 64
    workers: int | None = None  # None -> repro.parallel.default_workers()
    out: str | None = "BENCH_fleet.json"

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"fleet bench needs >= 1 tenant, got {self.tenants}")
        if self.horizon < 2:
            raise ValueError(f"fleet bench needs horizon >= 2, got {self.horizon}")
        if self.milp_sample < 1:
            raise ValueError(
                f"cohort leg needs >= 1 sampled tenant, got {self.milp_sample}"
            )
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {self.utilization}")


def _shape_hit_rate(stats: dict) -> float:
    """Fraction of structural builds avoided by the shape cache.

    Instance/value-digest hits skip compilation entirely; of the compiles
    that did reach the structural layer, ``shape_hits`` reused a cached
    index skeleton and only re-scattered values.
    """
    structural = int(stats.get("shape_hits", 0)) + int(stats.get("full_builds", 0))
    return int(stats.get("shape_hits", 0)) / structural if structural else 0.0


def _cohort_leg(tenants, cfg: FleetBenchConfig) -> dict:
    eligible = [t for t in tenants if t.escalation_eligible]
    sample = eligible[: cfg.milp_sample]
    ratios = []
    t0 = time.perf_counter()
    for tenant in sample:
        heur = solve_heuristic(tenant.instance)
        milp = solve_drrp(tenant.instance, backend="auto")
        denom = max(abs(float(milp.objective)), 1e-9)
        ratios.append(float(heur.exact_objective) / denom)
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "sampled": len(sample),
        "eligible_total": len(eligible),
        "cost_ratio_mean": float(np.mean(ratios)) if ratios else 1.0,
        "cost_ratio_max": float(np.max(ratios)) if ratios else 1.0,
    }


def run_fleet_bench(cfg: FleetBenchConfig | None = None, listener=None) -> dict:
    """Run all four legs and return (and optionally write) the record.

    ``listener`` attaches telemetry to the whole run: each leg gets its
    own span under one root ``bench_fleet`` span, so
    ``repro profile bench-fleet`` can attribute the wall time.
    """
    cfg = cfg or FleetBenchConfig()
    hub = Telemetry.from_listener(listener)

    with span(hub, "bench_fleet", seed=cfg.seed, tenants=cfg.tenants):
        with span(hub, "bench_leg[generate]"):
            t0 = time.perf_counter()
            tenants = generate_tenants(cfg.tenants, seed=cfg.seed, horizon=cfg.horizon)
            pools = uniform_pools(tenants, utilization=cfg.utilization)
            generate_wall = time.perf_counter() - t0

        reset_compile_cache_stats()
        with span(hub, "bench_leg[plan]"):
            t0 = time.perf_counter()
            fleet = plan_fleet(
                tenants, pools, FleetConfig(workers=cfg.workers), listener=listener
            )
            plan_wall = time.perf_counter() - t0

        with span(hub, "bench_leg[cohort]"):
            cohort = _cohort_leg(tenants, cfg)

        with span(hub, "bench_leg[feasibility]"):
            t0 = time.perf_counter()
            failures = verify_fleet_feasible(tenants, fleet.outcomes, pools)
            verify_wall = time.perf_counter() - t0

    if failures:
        raise RuntimeError(f"bench fleet plan infeasible: {failures[:3]}")

    record = {
        "benchmark": "fleet",
        "seed": cfg.seed,
        "config": {
            "tenants": cfg.tenants,
            "horizon": cfg.horizon,
            "utilization": cfg.utilization,
            "milp_sample": cfg.milp_sample,
        },
        "cpu_count": os.cpu_count() or 1,
        "generate": {"wall_s": generate_wall},
        "plan": {
            "wall_s": plan_wall,
            "tenants_per_minute": 60.0 * cfg.tenants / plan_wall if plan_wall > 0 else 0.0,
            "total_cost": float(fleet.total_cost),
            "eligible": fleet.eligible,
            "escalated": fleet.escalated,
            "escalation_fraction": fleet.escalation_fraction,
            "methods": dict(fleet.methods),
            "repair_rounds": fleet.repair_rounds,
            "knockouts": fleet.knockouts,
            "compile_stats": dict(fleet.compile_stats),
            "shape_hit_rate": _shape_hit_rate(fleet.compile_stats),
        },
        "cohort": cohort,
        "feasibility": {"wall_s": verify_wall, "feasible": not failures},
        "created": time.time(),
    }
    if cfg.out:
        record["path"] = str(write_bench_record(record, cfg.out))
    return record


def check_fleet_regression(
    record: dict, baseline: dict, tolerance: float = REGRESSION_TOLERANCE
) -> list[str]:
    """Compare a fresh record against the committed baseline.

    Returns human-readable failure strings (empty = pass).  Gates are
    machine-independent: feasibility, the heuristic's cohort cost ratio
    (absolute ceiling plus a band around the baseline), the shape-cache
    hit rate, and the escalation fraction.  Throughput is informational.
    """
    failures: list[str] = []
    if not record["feasibility"]["feasible"]:
        failures.append("fleet plan is infeasible against its pools")

    cur_mean = float(record["cohort"]["cost_ratio_mean"])
    base_mean = float(baseline["cohort"]["cost_ratio_mean"])
    if cur_mean > COST_RATIO_CEILING:
        failures.append(
            f"heuristic cost ratio mean {cur_mean:.4f} exceeds absolute "
            f"ceiling {COST_RATIO_CEILING:.2f}"
        )
    # Band around the baseline: the *excess over optimal* must not grow by
    # more than 1/tolerance (ratios near 1.0 make a plain ratio-of-ratios
    # gate vacuous).
    base_excess = max(base_mean - 1.0, 0.0)
    ceiling = 1.0 + base_excess / tolerance + 1e-9
    if base_excess > 0 and cur_mean > ceiling:
        failures.append(
            f"heuristic cost ratio mean regressed: {cur_mean:.4f} vs baseline "
            f"{base_mean:.4f} (ceiling {ceiling:.4f})"
        )

    cur_rate = float(record["plan"]["shape_hit_rate"])
    base_rate = float(baseline["plan"]["shape_hit_rate"])
    if cur_rate < tolerance * base_rate:
        failures.append(
            f"shape-cache hit rate regressed: {cur_rate:.0%} vs baseline "
            f"{base_rate:.0%} (floor {tolerance * base_rate:.0%})"
        )

    cur_esc = float(record["plan"]["escalation_fraction"])
    base_esc = float(baseline["plan"]["escalation_fraction"])
    # A collapse to ~0 means the gap certificate stopped firing; a blow-up
    # means the heuristic degraded and everything escalates.
    if base_esc > 0 and not (tolerance * base_esc <= cur_esc <= base_esc / tolerance):
        failures.append(
            f"escalation fraction drifted: {cur_esc:.1%} vs baseline "
            f"{base_esc:.1%} (band {tolerance * base_esc:.1%}.."
            f"{base_esc / tolerance:.1%})"
        )
    return failures


def fleet_summary_lines(record: dict) -> list[str]:
    plan = record["plan"]
    cohort = record["cohort"]
    stats = plan["compile_stats"]
    return [
        (
            f"plan: {record['config']['tenants']} tenants in "
            f"{plan['wall_s']:.1f} s ({plan['tenants_per_minute']:.0f}/min), "
            f"methods {plan['methods']}, escalated {plan['escalated']} "
            f"({plan['escalation_fraction']:.1%} of fleet), "
            f"{plan['repair_rounds']} repair rounds, "
            f"{plan['knockouts']} knockouts"
        ),
        (
            f"compile: {stats.get('compiles', 0)} compiles, shape hit rate "
            f"{plan['shape_hit_rate']:.0%} "
            f"({stats.get('shape_hits', 0)} shape / "
            f"{stats.get('digest_hits', 0)} digest / "
            f"{stats.get('full_builds', 0)} full)"
        ),
        (
            f"cohort: heuristic/MILP mean {cohort['cost_ratio_mean']:.4f}, "
            f"max {cohort['cost_ratio_max']:.4f} over {cohort['sampled']} "
            f"eligible tenants (ceiling {COST_RATIO_CEILING:.2f})"
        ),
        (
            f"feasible: {record['feasibility']['feasible']} "
            f"({record['cpu_count']} CPUs)"
        ),
    ]
