"""Performance benchmarks with committed JSON baselines.

``repro bench-solver`` (:mod:`repro.bench.solver`) is the repo's first
perf baseline: seeded DRRP / random-MILP branch-and-bound runs and an
SRRP-style two-stage Benders solve, reporting node throughput,
pivots/solve, warm-hit rate, and wall time to ``BENCH_solver.json``.
``docs/performance.md`` explains the methodology and how CI gates on the
committed record.
"""

from .fleet import (
    FleetBenchConfig,
    check_fleet_regression,
    fleet_summary_lines,
    run_fleet_bench,
)
from .report import report_lines
from .solver import (
    SolverBenchConfig,
    check_solver_regression,
    run_solver_bench,
    summary_lines,
)

__all__ = [
    "FleetBenchConfig",
    "SolverBenchConfig",
    "check_fleet_regression",
    "check_solver_regression",
    "fleet_summary_lines",
    "report_lines",
    "run_fleet_bench",
    "run_solver_bench",
    "summary_lines",
]
