"""Performance benchmarks with committed JSON baselines.

``repro bench-solver`` (:mod:`repro.bench.solver`) is the repo's first
perf baseline: seeded DRRP / random-MILP branch-and-bound runs and an
SRRP-style two-stage Benders solve, reporting node throughput,
pivots/solve, warm-hit rate, and wall time to ``BENCH_solver.json``.
``docs/performance.md`` explains the methodology and how CI gates on the
committed record.
"""

from .report import report_lines
from .solver import (
    SolverBenchConfig,
    check_solver_regression,
    run_solver_bench,
    summary_lines,
)

__all__ = [
    "SolverBenchConfig",
    "check_solver_regression",
    "report_lines",
    "run_solver_bench",
    "summary_lines",
]
