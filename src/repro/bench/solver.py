"""Solver hot-path benchmark: warm starts, parallel Benders, node throughput.

Three seeded workloads, all deterministic given the config:

* **bb** — random bounded integer programs (dense knapsack-style rows,
  chosen because their LP relaxations branch deep) solved twice through
  the simplex-backed branch and bound: once with LP warm starts (children
  restart phase 2 from the parent basis) and once forced cold.  Both runs
  explore the *same* tree, so the node-throughput ratio isolates the
  warm-start win from search luck.
* **drrp** — a paper DRRP instance (eq. (1)-(7) lot-sizing MILP) solved
  through the same two paths; realistic structure, mostly-integral LP
  relaxations.
* **benders** — an SRRP-style two-stage program with complete recourse,
  solved serially and with the scenario fan-out; per-scenario subproblem
  bases warm the next iteration in both modes.

The record is written as ``BENCH_solver.json`` (``REPRO_BENCH_DIR``
honored, like the service bench).  CI compares the **cold-normalized**
node-throughput ratio against the committed baseline — a ratio of
warm-to-cold throughput on the *same* machine cancels hardware speed, so
the gate transfers between laptops and runners (see
:func:`check_solver_regression` and ``docs/performance.md``).

On a single-CPU host the parallel Benders leg cannot beat serial (there
is nothing to fan out onto); the record keeps the measured speedup and
``cpu_count`` so readers and the regression gate can tell "no cores"
from "regression".
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.obs.spans import span
from repro.parallel.pool import default_workers
from repro.solver import BranchAndBoundOptions, SolverStatus, solve_compiled
from repro.solver.benders import BendersOptions, Scenario, TwoStageProblem, solve_benders
from repro.solver.model import CompiledProblem
from repro.solver.telemetry import Telemetry

__all__ = [
    "SolverBenchConfig",
    "run_solver_bench",
    "check_solver_regression",
    "summary_lines",
    "write_bench_record",
]

#: Gate: fail CI when the current warm/cold throughput ratio drops below
#: this fraction of the committed baseline's ratio.
REGRESSION_TOLERANCE = 0.75


@dataclass(frozen=True)
class SolverBenchConfig:
    """One benchmark run (defaults match the committed baseline)."""

    seed: int = 0
    bb_instances: int = 3
    bb_vars: int = 24
    bb_rows: int = 20
    node_limit: int = 2000
    drrp_horizon: int = 24
    scenarios: int = 12
    recourse_rows: int = 30
    recourse_vars: int = 60
    benders_workers: int | None = None  # None -> repro.parallel.default_workers()
    out: str | None = "BENCH_solver.json"

    def __post_init__(self) -> None:
        if self.scenarios < 8:
            raise ValueError(
                f"benders leg needs >= 8 scenarios to be meaningful, got {self.scenarios}"
            )
        if self.bb_instances < 1 or self.bb_vars < 2 or self.bb_rows < 1:
            raise ValueError("bb workload must have >= 1 instance and a nonempty LP")


def _random_milp(rng: np.random.Generator, n: int, m: int) -> CompiledProblem:
    """Dense bounded integer program whose relaxation branches deep."""
    c = -rng.uniform(1.0, 5.0, n)  # maximize profit, compiled as min -c'x
    A = rng.uniform(0.0, 3.0, (m, n))
    b = rng.uniform(0.75 * n, 1.8 * n, m)
    return CompiledProblem(
        c=c, c0=0.0, A_ub=A, b_ub=b,
        A_eq=np.zeros((0, n)), b_eq=np.zeros(0),
        lb=np.zeros(n), ub=np.full(n, 6.0),
        integrality=np.ones(n, dtype=int), maximize=False, variables=[],
    )


def _drrp_problem(cfg: SolverBenchConfig) -> tuple[CompiledProblem, np.ndarray]:
    """Paper DRRP instance plus its Wagner-Whitin incumbent.

    Mirrors ``solve_drrp(warm_start=True)``: without the polynomial-time
    incumbent, best-first B&B on the balance equalities prunes almost
    nothing and the leg would just burn its node limit.
    """
    from repro.core import DRRPInstance, NormalDemand, on_demand_schedule
    from repro.core.drrp import build_drrp_model
    from repro.core.lotsizing import solve_wagner_whitin
    from repro.market import ec2_catalog

    vm = ec2_catalog()["m1.large"]
    demand = NormalDemand(mean=0.4, std=0.2).sample(cfg.drrp_horizon, cfg.seed)
    inst = DRRPInstance(
        demand=demand, costs=on_demand_schedule(vm, cfg.drrp_horizon), vm_name=vm.name
    )
    model, _ = build_drrp_model(inst)
    ww = solve_wagner_whitin(inst)
    x0 = np.concatenate([ww.alpha, ww.beta, ww.chi])
    return model.compile(), x0


def _two_stage(cfg: SolverBenchConfig) -> TwoStageProblem:
    """SRRP-shaped two-stage program with complete recourse (elastic W)."""
    rng = np.random.default_rng(cfg.seed + 17)
    n, m, ny0, S = 8, cfg.recourse_rows, cfg.recourse_vars, cfg.scenarios
    c = rng.uniform(1.0, 4.0, n)
    A_ub = rng.uniform(0.0, 1.0, (3, n))
    b_ub = rng.uniform(6.0, 10.0, 3)
    scenarios = []
    for _ in range(S):
        W0 = rng.uniform(0.1, 1.0, (m, ny0))
        W = np.hstack([W0, np.eye(m), -np.eye(m)])
        T = rng.uniform(0.0, 0.5, (m, n))
        h = rng.uniform(2.0, 8.0, m)
        q = np.concatenate([rng.uniform(0.5, 2.0, ny0), np.full(2 * m, 6.0)])
        y_ub = np.concatenate([rng.uniform(0.5, 3.0, ny0), np.full(2 * m, np.inf)])
        scenarios.append(Scenario(prob=1.0 / S, q=q, W=W, T=T, h=h, y_ub=y_ub))
    return TwoStageProblem(
        c=c, lb=np.zeros(n), ub=np.full(n, 5.0),
        integrality=np.zeros(n, dtype=int), scenarios=scenarios,
        A_ub=A_ub, b_ub=b_ub,
    )


def _bb_leg(
    problems: list[CompiledProblem],
    warm: bool,
    node_limit: int,
    incumbent: np.ndarray | None = None,
    telemetry: Telemetry | None = None,
) -> dict:
    wall = 0.0
    nodes = pivots = lp_warm = lp_cold = 0
    objectives = []
    for p in problems:
        opts = BranchAndBoundOptions(
            warm_start_lps=warm, node_limit=node_limit, initial_incumbent=incumbent
        )
        t0 = time.perf_counter()
        res = solve_compiled(p, backend="simplex", bb_options=opts, listener=telemetry)
        wall += time.perf_counter() - t0
        if res.status not in (SolverStatus.OPTIMAL, SolverStatus.NODE_LIMIT, SolverStatus.FEASIBLE):
            raise RuntimeError(f"bench MILP terminated {res.status.value}")
        nodes += res.nodes
        pivots += res.iterations
        lp_warm += int(res.extra.get("lp_warm", 0))
        lp_cold += int(res.extra.get("lp_cold", 0))
        objectives.append(float(res.objective))
    solves = lp_warm + lp_cold
    return {
        "wall_s": wall,
        "nodes": nodes,
        "nodes_per_sec": nodes / wall if wall > 0 else 0.0,
        "pivots": pivots,
        "pivots_per_solve": pivots / solves if solves else 0.0,
        "lp_warm": lp_warm,
        "lp_cold": lp_cold,
        "warm_hit_rate": lp_warm / solves if solves else 0.0,
        "objectives": objectives,
    }


def _benders_leg(tsp: TwoStageProblem, workers: int,
                 telemetry: Telemetry | None = None) -> dict:
    opts = BendersOptions(n_workers=workers)
    t0 = time.perf_counter()
    res = solve_benders(tsp, options=opts, listener=telemetry)
    wall = time.perf_counter() - t0
    if res.status is not SolverStatus.OPTIMAL:
        raise RuntimeError(f"bench Benders terminated {res.status.value}")
    return {
        "wall_s": wall,
        "iterations": res.nodes,
        "workers": int(res.extra.get("workers", workers)),
        "subproblem_warm_hits": int(res.extra.get("subproblem_warm_hits", 0)),
        "objective": float(res.objective),
    }


def run_solver_bench(cfg: SolverBenchConfig | None = None, listener=None) -> dict:
    """Run all three workloads and return (and optionally write) the record.

    ``listener`` attaches solver telemetry to the whole run: every leg is
    bracketed in its own span under one root ``bench_solver`` span, so
    :func:`repro.obs.prof.profile_events` can attribute essentially all of
    the bench's wall time (``repro profile bench-solver``).
    """
    cfg = cfg or SolverBenchConfig()
    hub = Telemetry.from_listener(listener)
    rng = np.random.default_rng(cfg.seed)
    problems = [
        _random_milp(rng, cfg.bb_vars, cfg.bb_rows) for _ in range(cfg.bb_instances)
    ]

    with span(hub, "bench_solver", seed=cfg.seed):
        with span(hub, "bench_leg[bb_warm]"):
            bb_warm = _bb_leg(problems, warm=True, node_limit=cfg.node_limit,
                              telemetry=hub)
        with span(hub, "bench_leg[bb_cold]"):
            bb_cold = _bb_leg(problems, warm=False, node_limit=cfg.node_limit,
                              telemetry=hub)
        if not np.allclose(bb_warm["objectives"], bb_cold["objectives"], rtol=1e-7, atol=1e-7):
            raise RuntimeError(
                "warm and cold B&B disagree on bench optima: "
                f"{bb_warm['objectives']} vs {bb_cold['objectives']}"
            )

        drrp_prob, drrp_x0 = _drrp_problem(cfg)
        with span(hub, "bench_leg[drrp_warm]"):
            drrp_warm = _bb_leg([drrp_prob], warm=True, node_limit=cfg.node_limit,
                                incumbent=drrp_x0, telemetry=hub)
        with span(hub, "bench_leg[drrp_cold]"):
            drrp_cold = _bb_leg([drrp_prob], warm=False, node_limit=cfg.node_limit,
                                incumbent=drrp_x0, telemetry=hub)
        if not np.allclose(drrp_warm["objectives"], drrp_cold["objectives"], rtol=1e-7, atol=1e-7):
            raise RuntimeError(
                "warm and cold B&B disagree on the DRRP leg: "
                f"{drrp_warm['objectives']} vs {drrp_cold['objectives']}"
            )

        tsp = _two_stage(cfg)
        workers = cfg.benders_workers if cfg.benders_workers is not None else default_workers()
        with span(hub, "bench_leg[benders_serial]"):
            benders_serial = _benders_leg(tsp, workers=1, telemetry=hub)
        with span(hub, "bench_leg[benders_parallel]"):
            benders_parallel = _benders_leg(tsp, workers=max(2, workers), telemetry=hub)
    if abs(benders_serial["objective"] - benders_parallel["objective"]) > 1e-6 * max(
        1.0, abs(benders_serial["objective"])
    ):
        raise RuntimeError(
            "serial and parallel Benders disagree: "
            f"{benders_serial['objective']} vs {benders_parallel['objective']}"
        )

    record = {
        "benchmark": "solver",
        "seed": cfg.seed,
        "config": {
            "bb_instances": cfg.bb_instances,
            "bb_vars": cfg.bb_vars,
            "bb_rows": cfg.bb_rows,
            "node_limit": cfg.node_limit,
            "drrp_horizon": cfg.drrp_horizon,
            "scenarios": cfg.scenarios,
            "recourse_rows": cfg.recourse_rows,
            "recourse_vars": cfg.recourse_vars,
        },
        "cpu_count": os.cpu_count() or 1,
        "bb": {
            "warm": bb_warm,
            "cold": bb_cold,
            # Cold-normalized: warm and cold ran the same tree on the same
            # machine, so this ratio is hardware-independent — it is what
            # the CI regression gate compares.
            "node_throughput_ratio": (
                bb_warm["nodes_per_sec"] / bb_cold["nodes_per_sec"]
                if bb_cold["nodes_per_sec"] > 0 else 0.0
            ),
        },
        "drrp": {"warm": drrp_warm, "cold": drrp_cold},
        "benders": {
            "scenarios": cfg.scenarios,
            "serial": benders_serial,
            "parallel": benders_parallel,
            "speedup": (
                benders_serial["wall_s"] / benders_parallel["wall_s"]
                if benders_parallel["wall_s"] > 0 else 0.0
            ),
        },
        "created": time.time(),
    }
    if cfg.out:
        record["path"] = str(write_bench_record(record, cfg.out))
    return record


def write_bench_record(record: dict, out: str = "BENCH_solver.json") -> Path:
    from repro.serialize import jsonable

    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / out
    # jsonable maps non-finite floats to strings so the record always parses.
    path.write_text(
        json.dumps(jsonable(record), indent=2, allow_nan=False, sort_keys=True) + "\n"
    )
    return path


def check_solver_regression(
    record: dict, baseline: dict, tolerance: float = REGRESSION_TOLERANCE
) -> list[str]:
    """Compare a fresh record against the committed baseline.

    Returns human-readable failure strings (empty = pass).  Only
    machine-independent ratios are gated; absolute wall times are recorded
    for humans but never compared across hosts.  The Benders speedup is
    gated only when the current host actually has >= 2 CPUs.
    """
    failures: list[str] = []
    cur = float(record["bb"]["node_throughput_ratio"])
    base = float(baseline["bb"]["node_throughput_ratio"])
    if cur < tolerance * base:
        failures.append(
            f"bb node-throughput ratio regressed: {cur:.2f}x vs baseline "
            f"{base:.2f}x (floor {tolerance * base:.2f}x)"
        )
    # Absolute floor, but only when the baseline itself cleared it: tiny
    # smoke configurations are timing-noisy enough that warm can measure
    # below cold, and a record must always pass against itself.
    if cur < 1.0 <= base:
        failures.append(f"warm starts slower than cold ({cur:.2f}x)")
    warm_rate = float(record["bb"]["warm"]["warm_hit_rate"])
    base_rate = float(baseline["bb"]["warm"]["warm_hit_rate"])
    if warm_rate < tolerance * base_rate:
        failures.append(
            f"warm-hit rate regressed: {warm_rate:.0%} vs baseline {base_rate:.0%}"
        )
    if int(record.get("cpu_count", 1)) >= 2 and float(record["benders"]["speedup"]) <= 1.0:
        failures.append(
            f"parallel Benders no faster than serial on a "
            f"{record['cpu_count']}-CPU host (speedup "
            f"{record['benders']['speedup']:.2f}x)"
        )
    return failures


def summary_lines(record: dict) -> list[str]:
    bb = record["bb"]
    bd = record["benders"]
    return [
        (
            f"bb: warm {bb['warm']['nodes_per_sec']:.0f} nodes/s "
            f"vs cold {bb['cold']['nodes_per_sec']:.0f} nodes/s "
            f"({bb['node_throughput_ratio']:.2f}x), "
            f"warm-hit {bb['warm']['warm_hit_rate']:.0%}, "
            f"pivots/solve {bb['warm']['pivots_per_solve']:.1f} warm "
            f"vs {bb['cold']['pivots_per_solve']:.1f} cold"
        ),
        (
            f"drrp: warm {record['drrp']['warm']['wall_s'] * 1e3:.0f} ms "
            f"vs cold {record['drrp']['cold']['wall_s'] * 1e3:.0f} ms "
            f"({record['drrp']['warm']['nodes']} nodes)"
        ),
        (
            f"benders: {bd['scenarios']} scenarios, serial "
            f"{bd['serial']['wall_s'] * 1e3:.0f} ms vs parallel "
            f"{bd['parallel']['wall_s'] * 1e3:.0f} ms on "
            f"{bd['parallel']['workers']} workers ({bd['speedup']:.2f}x, "
            f"{record['cpu_count']} CPUs), warm hits "
            f"{bd['parallel']['subproblem_warm_hits']}/"
            f"{bd['scenarios'] * bd['parallel']['iterations']}"
        ),
    ]
